"""Tests for Schur complement kernels and the blocked inverse."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.linalg import blocked_inverse, d_type_schur, m_type_schur, schur_condense
from repro.linalg.schur import d_type_back_substitute


def random_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


def build_arrow_system(p, q, seed=0):
    """SPD system [[diag(u), W^T], [W, V]] like the SLAM linear system."""
    rng = np.random.default_rng(seed)
    u = rng.uniform(1.0, 3.0, size=p)
    w = rng.normal(size=(q, p))
    v = random_spd(q, seed=seed + 1) + (w @ np.diag(1.0 / u) @ w.T)
    full = np.block([[np.diag(u), w.T], [w, v]])
    rhs = rng.normal(size=p + q)
    return u, w, v, full, rhs


class TestDTypeSchur:
    def test_matches_dense_elimination(self):
        u, w, v, full, rhs = build_arrow_system(12, 5, seed=1)
        reduced, reduced_rhs = d_type_schur(v, w, u, b_x=rhs[:12], b_y=rhs[12:])
        x_full = np.linalg.solve(full, rhs)
        dy = np.linalg.solve(reduced, reduced_rhs)
        assert np.allclose(dy, x_full[12:], atol=1e-8)

    def test_back_substitution_recovers_eliminated(self):
        u, w, v, full, rhs = build_arrow_system(10, 4, seed=2)
        reduced, reduced_rhs = schur_condense(u, w, v, rhs[:10], rhs[10:])
        dy = np.linalg.solve(reduced, reduced_rhs)
        dx = d_type_back_substitute(w, u, rhs[:10], dy)
        x_full = np.linalg.solve(full, rhs)
        assert np.allclose(dx, x_full[:10], atol=1e-8)

    def test_zero_diagonal_raises(self):
        with pytest.raises(SolverError):
            d_type_schur(np.eye(2), np.zeros((2, 3)), np.array([1.0, 0.0, 2.0]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            d_type_schur(np.eye(2), np.zeros((3, 4)), np.ones(4))

    def test_no_rhs_returns_none(self):
        u, w, v, _, _ = build_arrow_system(6, 3, seed=3)
        reduced, reduced_rhs = d_type_schur(v, w, u)
        assert reduced_rhs is None
        assert reduced.shape == (3, 3)


class TestBlockedInverse:
    @pytest.mark.parametrize("split", [1, 3, 7])
    def test_matches_numpy_inverse(self, split):
        matrix = random_spd(8, seed=split)
        inverse = blocked_inverse(matrix, split)
        assert np.allclose(inverse, np.linalg.inv(matrix), atol=1e-8)

    def test_diagonal_fast_path(self):
        rng = np.random.default_rng(4)
        p, q = 6, 4
        diag = rng.uniform(1.0, 2.0, size=p)
        coupling = rng.normal(size=(p, q)) * 0.1
        lower = random_spd(q, seed=5)
        matrix = np.block([[np.diag(diag), coupling], [coupling.T, lower]])
        inverse = blocked_inverse(matrix, p, diagonal_11=True)
        assert np.allclose(inverse, np.linalg.inv(matrix), atol=1e-8)

    def test_diagonal_claim_checked(self):
        matrix = random_spd(6, seed=6)  # dense M11
        with pytest.raises(SolverError):
            blocked_inverse(matrix, 3, diagonal_11=True)

    def test_invalid_split_raises(self):
        with pytest.raises(ValueError):
            blocked_inverse(np.eye(4), 0)
        with pytest.raises(ValueError):
            blocked_inverse(np.eye(4), 4)


class TestMTypeSchur:
    def _build(self, r, m, seed=0):
        rng = np.random.default_rng(seed)
        big = random_spd(r + m, seed=seed)
        h = big  # information matrix blocked as [[M, Lambda^T], [Lambda, A]]
        m_block = h[:m, :m]
        lam = h[m:, :m]
        a_block = h[m:, m:]
        b = rng.normal(size=r + m)
        return a_block, lam, m_block, b[:m], b[m:], h, b

    def test_prior_matches_dense_marginalization(self):
        a_block, lam, m_block, b_m, b_r, h, b = self._build(5, 7, seed=7)
        hp, rp = m_type_schur(a_block, lam, m_block, b_m, b_r)
        # Dense reference: marginalize the first block of the joint
        # Gaussian; the conditional information is the Schur complement.
        expected_h = a_block - lam @ np.linalg.inv(m_block) @ lam.T
        expected_r = b_r - lam @ np.linalg.inv(m_block) @ b_m
        assert np.allclose(hp, expected_h, atol=1e-8)
        assert np.allclose(rp, expected_r, atol=1e-8)

    def test_prior_is_symmetric(self):
        a_block, lam, m_block, b_m, b_r, _, _ = self._build(4, 6, seed=8)
        hp, _ = m_type_schur(a_block, lam, m_block, b_m, b_r)
        assert np.allclose(hp, hp.T)

    def test_blocked_split_path_agrees(self):
        rng = np.random.default_rng(9)
        m, r, split = 8, 4, 5
        diag = rng.uniform(1.0, 2.0, size=split)
        m22 = random_spd(m - split, seed=10)
        m12 = rng.normal(size=(split, m - split)) * 0.1
        m_block = np.block([[np.diag(diag), m12], [m12.T, m22]])
        lam = rng.normal(size=(r, m))
        a_block = random_spd(r, seed=11) + lam @ np.linalg.inv(m_block) @ lam.T
        b_m, b_r = rng.normal(size=m), rng.normal(size=r)
        hp1, rp1 = m_type_schur(a_block, lam, m_block, b_m, b_r)
        hp2, rp2 = m_type_schur(a_block, lam, m_block, b_m, b_r, m_diagonal_split=split)
        assert np.allclose(hp1, hp2, atol=1e-8)
        assert np.allclose(rp1, rp2, atol=1e-8)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            m_type_schur(np.eye(3), np.zeros((2, 4)), np.eye(4), np.zeros(4), np.zeros(3))
