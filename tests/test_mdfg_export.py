"""M-DFG serialization and data-layout decisions.

The JSON round-trip contract: ``from_json(to_json(g))`` rebuilds a graph
with fresh uids but identical structure — node signature multiset, edge
relation, topological sequence, schedule, and costs all survive. Checked
on a fig11-scale window graph, where sharing and pipelining are real.
"""

import json
from collections import Counter

import pytest

from repro.data.stats import WindowStats
from repro.errors import GraphError
from repro.mdfg import (
    MDFG,
    NodeType,
    build_window_mdfg,
    choose_s_matrix_layout,
    from_json,
    schedule_mdfg,
    to_dot,
    to_json,
)
from repro.mdfg.export import JSON_SCHEMA_VERSION
from repro.mdfg.layout import s_matrix_buffer_words

FIG11_STATS = WindowStats(
    num_features=120, avg_observations=4.0, num_keyframes=10, num_marginalized=20
)


@pytest.fixture(scope="module")
def fig11_graph():
    return build_window_mdfg(FIG11_STATS, iterations=4)


def edge_relation(graph: MDFG) -> set[tuple]:
    """The edge set in uid-free form: (producer sig, consumer sig, rank)."""
    order = graph.topological_order()
    index = {node: i for i, node in enumerate(order)}
    return {
        (index[node], index[successor])
        for node in order
        for successor in graph.successors(node)
    }


class TestJsonRoundTrip:
    def test_structure_preserved(self, fig11_graph):
        rebuilt = from_json(to_json(fig11_graph))
        assert rebuilt.name == fig11_graph.name
        assert rebuilt.num_nodes == fig11_graph.num_nodes
        assert rebuilt.num_edges == fig11_graph.num_edges
        original_sigs = Counter(n.signature() for n in fig11_graph.nodes)
        rebuilt_sigs = Counter(n.signature() for n in rebuilt.nodes)
        assert rebuilt_sigs == original_sigs
        assert edge_relation(rebuilt) == edge_relation(fig11_graph)

    def test_topological_sequence_preserved(self, fig11_graph):
        rebuilt = from_json(to_json(fig11_graph))
        original = [n.signature() for n in fig11_graph.topological_order()]
        roundtripped = [n.signature() for n in rebuilt.topological_order()]
        assert roundtripped == original

    def test_schedule_and_costs_preserved(self, fig11_graph):
        rebuilt = from_json(to_json(fig11_graph))
        assert rebuilt.total_cost() == fig11_graph.total_cost()
        assert rebuilt.critical_path_cost() == fig11_graph.critical_path_cost()
        original_schedule = schedule_mdfg(fig11_graph)
        rebuilt_schedule = schedule_mdfg(rebuilt)
        assert rebuilt_schedule.shared_blocks == original_schedule.shared_blocks
        original_blocks = [
            original_schedule.assignments[n] for n in fig11_graph.topological_order()
        ]
        rebuilt_blocks = [
            rebuilt_schedule.assignments[n] for n in rebuilt.topological_order()
        ]
        assert rebuilt_blocks == original_blocks

    def test_uids_are_fresh(self, fig11_graph):
        rebuilt = from_json(to_json(fig11_graph))
        assert {n.uid for n in rebuilt.nodes}.isdisjoint(
            {n.uid for n in fig11_graph.nodes}
        )

    def test_document_nodes_are_in_topological_order(self, fig11_graph):
        data = json.loads(to_json(fig11_graph))
        assert data["schema"] == JSON_SCHEMA_VERSION
        assert len(data["nodes"]) == fig11_graph.num_nodes
        # every edge points forward in the node list
        assert all(producer < consumer for producer, consumer in data["edges"])

    def test_second_round_trip_is_stable(self, fig11_graph):
        once = to_json(fig11_graph)
        twice = to_json(from_json(once))
        assert once == twice


class TestJsonErrors:
    def test_malformed_json_raises_graph_error(self):
        with pytest.raises(GraphError, match="malformed"):
            from_json("{not json")

    def test_wrong_schema_rejected(self, fig11_graph):
        data = json.loads(to_json(fig11_graph))
        data["schema"] = 999
        with pytest.raises(GraphError, match="schema"):
            from_json(json.dumps(data))

    def test_dangling_edge_index_rejected(self, fig11_graph):
        data = json.loads(to_json(fig11_graph))
        data["edges"].append([0, 10**6])
        with pytest.raises(GraphError):
            from_json(json.dumps(data))

    def test_unknown_node_type_rejected(self, fig11_graph):
        data = json.loads(to_json(fig11_graph))
        data["nodes"][0]["type"] = "QUANTUM_SOLVE"
        with pytest.raises(GraphError):
            from_json(json.dumps(data))


class TestDotExport:
    def test_dot_document_covers_all_nodes_and_edges(self, fig11_graph):
        dot = to_dot(fig11_graph)
        assert dot.startswith("digraph")
        assert dot.count(" -> ") == fig11_graph.num_edges
        assert dot.count("[label=") == fig11_graph.num_nodes
        assert NodeType.CD.value in dot


class TestLayoutDecision:
    def test_compact_wins_at_paper_scale(self):
        decision = choose_s_matrix_layout(k=15, b=15)
        assert decision.chosen == "compact-si-sc"
        assert decision.words == decision.candidates["compact-si-sc"]
        assert decision.words == min(decision.candidates.values())
        assert 0.0 < decision.saving_vs_dense < 1.0
        assert 0.0 < decision.saving_vs_csr < 1.0

    def test_candidate_table_is_complete(self):
        decision = choose_s_matrix_layout(k=15, b=15)
        assert set(decision.candidates) == {
            "dense",
            "symmetric",
            "csr-symmetric",
            "compact-si-sc",
        }

    def test_buffer_words_matches_compact_candidate(self):
        decision = choose_s_matrix_layout(k=15, b=15)
        assert s_matrix_buffer_words(15, 15) == decision.candidates["compact-si-sc"]
