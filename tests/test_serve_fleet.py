"""Tests for the sharded serving tier (``repro.serve.fleet``) and the
execution backends (``repro.serve.backend``).

The load-bearing properties:

* placement is deterministic, balanced (bounded loads), and draining a
  shard moves its sessions (plus at most a bounded overflow) while the
  rest stay put;
* an N-shard fleet run is the union of N standalone single-shard runs —
  per-shard metrics byte-identical;
* the process backend reproduces the thread backend's per-shard metrics
  byte for byte;
* the wire types (requests, outcomes, controllers) survive pickling,
  which is what the process backend rides on.
"""

import json
import pickle

import pytest

from repro.engine import Engine
from repro.errors import ConfigurationError
from repro.runtime.controller import RuntimeController
from repro.runtime.profiler import IterationTable
from repro.runtime.reconfig import build_reconfiguration_table
from repro.synth import high_perf_design
from repro.serve import (
    HashRing,
    LoadProfile,
    WindowOutcome,
    WindowRequest,
    merge_shard_metrics,
    plan_shards,
    run_fleet,
    shard_service,
)
from repro.serve.service import LocalizationService


def fleet_profile(**overrides):
    base = dict(
        name="fleet-mini",
        num_sessions=6,
        num_instances=2,
        rate_hz=8.0,
        duration_s=1.0,
        sequence_duration_s=2.0,
        seed=11,
    )
    base.update(overrides)
    return LoadProfile(**base)


class TestHashRing:
    def test_assign_is_deterministic(self):
        ring = HashRing([0, 1, 2])
        again = HashRing([0, 1, 2])
        assigned = [ring.assign(sid) for sid in range(64)]
        assert assigned == [again.assign(sid) for sid in range(64)]
        assert set(assigned) <= {0, 1, 2}

    def test_preference_starts_at_home_and_covers_all_shards(self):
        ring = HashRing([0, 1, 2, 3])
        for sid in range(16):
            order = list(ring.preference(sid))
            assert order[0] == ring.assign(sid)
            assert sorted(order) == [0, 1, 2, 3]

    def test_removing_a_shard_moves_only_its_keys(self):
        full = HashRing([0, 1, 2])
        reduced = HashRing([0, 2])
        for sid in range(64):
            before = full.assign(sid)
            after = reduced.assign(sid)
            if before != 1:
                assert after == before
            else:
                assert after in (0, 2)

    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing([])
        with pytest.raises(ConfigurationError):
            HashRing([0], vnodes=0)


class TestPlanShards:
    def test_partition_is_exact_and_ordered(self):
        profile = fleet_profile(num_sessions=16)
        specs = plan_shards(profile, 4)
        placed = sorted(sid for spec in specs for sid in spec.session_ids)
        assert placed == list(range(16))
        for spec in specs:
            assert list(spec.session_ids) == sorted(spec.session_ids)

    def test_bounded_loads(self):
        profile = fleet_profile(num_sessions=16)
        for shards in (2, 3, 4, 5):
            specs = plan_shards(profile, shards)
            cap = -(-16 // shards)
            assert all(len(spec.session_ids) <= cap for spec in specs)

    def test_instances_never_starved(self):
        profile = fleet_profile(num_sessions=8, num_instances=2)
        specs = plan_shards(profile, 4)
        assert all(spec.num_instances >= 1 for spec in specs)
        generous = plan_shards(fleet_profile(num_sessions=8, num_instances=6), 4)
        assert sum(spec.num_instances for spec in generous) == 6

    def test_repeat_determinism(self):
        profile = fleet_profile(num_sessions=16)
        assert plan_shards(profile, 4) == plan_shards(profile, 4)

    def test_drain_rehashes_deterministically(self):
        profile = fleet_profile(num_sessions=16)
        full = {
            sid: spec.shard_id
            for spec in plan_shards(profile, 4)
            for sid in spec.session_ids
        }
        drained = {
            sid: spec.shard_id
            for spec in plan_shards(profile, 4, drained={2})
            for sid in spec.session_ids
        }
        again = {
            sid: spec.shard_id
            for spec in plan_shards(profile, 4, drained={2})
            for sid in spec.session_ids
        }
        assert drained == again
        assert set(drained.values()).isdisjoint({2})
        moved = {sid for sid in full if full[sid] != drained[sid]}
        shard2 = {sid for sid in full if full[sid] == 2}
        # Every drained session moved; overflow rebalancing moves at
        # most a cap's worth of others.
        assert shard2 <= moved
        assert len(moved - shard2) <= len(shard2)

    def test_cannot_drain_everything(self):
        with pytest.raises(ConfigurationError):
            plan_shards(fleet_profile(), 2, drained={0, 1})


class TestFleetRuns:
    def test_fleet_is_union_of_standalone_shards(self):
        profile = fleet_profile()
        report = run_fleet(profile, 2)
        for spec, shard_report in zip(report.specs, report.shard_reports):
            if shard_report is None:
                continue
            standalone = shard_service(
                profile, spec, engine=Engine(use_disk=False)
            ).run()
            assert json.dumps(shard_report.metrics, sort_keys=True) == json.dumps(
                standalone.metrics, sort_keys=True
            )

    def test_process_backend_matches_thread_backend(self):
        profile = fleet_profile()
        thread = run_fleet(profile, 2, backend="thread")
        process = run_fleet(profile, 2, backend="process")
        for t, p in zip(thread.shard_reports, process.shard_reports):
            if t is None:
                assert p is None
                continue
            assert json.dumps(t.metrics, sort_keys=True) == json.dumps(
                p.metrics, sort_keys=True
            )
        assert json.dumps(thread.metrics, sort_keys=True) == json.dumps(
            process.metrics, sort_keys=True
        )

    def test_repeat_runs_are_byte_identical(self, tmp_path):
        profile = fleet_profile()
        first = run_fleet(profile, 2)
        second = run_fleet(profile, 2)
        a = first.write_metrics(tmp_path / "a.json")
        b = second.write_metrics(tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

    def test_merged_totals_are_sums(self):
        profile = fleet_profile()
        report = run_fleet(profile, 2)
        live = [r for r in report.shard_reports if r is not None]
        for key in ("windows_served", "windows_shed", "errors"):
            assert report.metrics["totals"][key] == sum(
                r.metrics["totals"][key] for r in live
            )
        assert report.metrics["totals"]["makespan_s"] == max(
            r.metrics["totals"]["makespan_s"] for r in live
        )
        assert report.metrics["latency_ms"]["count"] == sum(
            r.metrics["latency_ms"]["count"] for r in live
        )
        assert report.metrics["fleet"]["num_shards"] == 2

    def test_drained_fleet_serves_everything(self):
        profile = fleet_profile()
        report = run_fleet(profile, 3, drained={1})
        assert report.metrics["fleet"]["drained"] == [1]
        placed = sorted(
            sid for spec in report.specs for sid in spec.session_ids
        )
        assert placed == list(range(profile.num_sessions))
        assert {spec.shard_id for spec in report.specs} == {0, 2}

    def test_merge_requires_input(self):
        from repro.errors import ServeError

        with pytest.raises(ServeError):
            merge_shard_metrics([], fleet_profile(), 1)

    def test_obs_export_round_trips(self, tmp_path):
        report = run_fleet(fleet_profile(), 2)
        path = report.write_obs_metrics(tmp_path / "OBS_METRICS.json")
        data = json.loads(path.read_text())
        assert data["gauges"]["serve_num_shards"] == 2.0
        assert (
            data["counters"]["serve_windows_served_total"]
            == report.metrics["totals"]["windows_served"]
        )
        assert (
            data["histograms"]["serve_latency_seconds"]["count"]
            == report.metrics["latency_ms"]["count"]
        )


class TestBackends:
    def test_process_backend_matches_thread_single_service(self):
        profile = fleet_profile(num_sessions=3, num_instances=2)
        thread = LocalizationService(
            profile, engine=Engine(use_disk=False), backend="thread"
        ).run()
        process = LocalizationService(
            profile, engine=Engine(use_disk=False), backend="process"
        ).run()
        assert json.dumps(thread.metrics, sort_keys=True) == json.dumps(
            process.metrics, sort_keys=True
        )

    def test_worker_count_does_not_change_metrics(self):
        profile = fleet_profile(num_sessions=3, num_instances=2)
        one = LocalizationService(
            profile, engine=Engine(use_disk=False), backend="process", workers=1
        ).run()
        three = LocalizationService(
            profile, engine=Engine(use_disk=False), backend="process", workers=3
        ).run()
        assert json.dumps(one.metrics, sort_keys=True) == json.dumps(
            three.metrics, sort_keys=True
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            LocalizationService(
                fleet_profile(), engine=Engine(use_disk=False), backend="fiber"
            ).run()

    def test_process_backend_rejected_for_functional_fidelity(self):
        with pytest.raises(ConfigurationError):
            LocalizationService(
                fleet_profile(),
                engine=Engine(use_disk=False),
                fidelity="functional",
                backend="process",
            )


def scenario_fleet_profile(regime, **overrides):
    """A small scenario-tagged profile with overload-shaped knobs, so the
    hard regimes exercise DEGRADE/SHED inside the fleet paths too."""
    base = dict(
        name=f"fleet-{regime}",
        num_sessions=6,
        num_instances=1,
        rate_hz=150.0,
        duration_s=0.6,
        sequence_duration_s=1.6,
        max_queue=2,
        backpressure=1,
        deadline_s=0.02,
        max_pending_per_session=1,
        scenario=regime,
        seed=13,
    )
    base.update(overrides)
    return LoadProfile(**base)


class TestHardRegimeFleet:
    """The fleet/backend equivalences must hold under the degenerate
    regimes, not just the nominal catalog mix — the scheduler takes the
    DEGRADE/SHED branches there, which the nominal tests never reach."""

    @pytest.mark.parametrize("regime", ["tunnel", "loop_closure"])
    def test_process_matches_thread_under_hard_regimes(self, regime):
        profile = scenario_fleet_profile(regime)
        thread = run_fleet(profile, 2, backend="thread")
        process = run_fleet(profile, 2, backend="process")
        for t, p in zip(thread.shard_reports, process.shard_reports):
            if t is None:
                assert p is None
                continue
            assert json.dumps(t.metrics, sort_keys=True) == json.dumps(
                p.metrics, sort_keys=True
            )
        assert json.dumps(thread.metrics, sort_keys=True) == json.dumps(
            process.metrics, sort_keys=True
        )

    @pytest.mark.parametrize("regime", ["tunnel", "loop_closure"])
    def test_fleet_is_union_of_standalone_shards_under_hard_regimes(self, regime):
        profile = scenario_fleet_profile(regime)
        report = run_fleet(profile, 2)
        for spec, shard_report in zip(report.specs, report.shard_reports):
            if shard_report is None:
                continue
            standalone = shard_service(
                profile, spec, engine=Engine(use_disk=False)
            ).run()
            assert json.dumps(shard_report.metrics, sort_keys=True) == json.dumps(
                standalone.metrics, sort_keys=True
            )

    def test_one_shard_fleet_matches_standalone_service(self):
        profile = scenario_fleet_profile("tunnel")
        fleet = run_fleet(profile, 1)
        standalone = LocalizationService(profile, engine=Engine(use_disk=False)).run()
        (shard_report,) = fleet.shard_reports
        shard = dict(shard_report.metrics)
        solo = dict(standalone.metrics)
        # The shard section legitimately differs (the shard carries its
        # placement spec); everything else must be byte-identical.
        shard.pop("shard"), solo.pop("shard")
        assert json.dumps(shard, sort_keys=True) == json.dumps(solo, sort_keys=True)

    def test_shard_count_conserves_arrivals(self):
        """Arrivals are per-session profile-seeded, so served + shed is
        invariant under resharding even though per-shard queues differ."""
        profile = scenario_fleet_profile("tunnel")
        one = run_fleet(profile, 1)
        two = run_fleet(profile, 2)
        for report in (one, two):
            assert report.metrics["totals"]["errors"] == 0
        arrivals_one = (
            one.metrics["totals"]["windows_served"]
            + one.metrics["totals"]["windows_shed"]
        )
        arrivals_two = (
            two.metrics["totals"]["windows_served"]
            + two.metrics["totals"]["windows_shed"]
        )
        assert arrivals_one == arrivals_two

    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_shard_count_conserves_per_config_counters(self, num_shards):
        """Per-config energy and window counts survive the shard merge.

        Each shard solves its own portfolio over its own instance slice,
        so resharding may change *which* configs serve *which* windows —
        but the merged per-config section must equal the exact per-shard
        sums, config by config (the regression fixed alongside the
        portfolio tier: merge used to drop the config breakout)."""
        profile = fleet_profile(
            num_sessions=8,
            num_instances=4,
            duration_s=2.0,
            scenario="mixed",
            portfolio="mixed",
            route="marginal",
            seed=0,
        )
        report = run_fleet(profile, num_shards)
        live = [r for r in report.shard_reports if r is not None]
        expected: dict[str, dict[str, float]] = {}
        for shard in live:
            for config in shard.metrics["configs"]:
                into = expected.setdefault(
                    config["config_id"],
                    {k: 0 for k in config if k != "config_id"},
                )
                for key, value in config.items():
                    if key != "config_id":
                        into[key] += value
        merged = {c["config_id"]: c for c in report.metrics["configs"]}
        assert sorted(merged) == sorted(expected)
        for config_id, sums in expected.items():
            for key, value in sums.items():
                assert merged[config_id][key] == value, (config_id, key)
        assert sum(
            c["windows_served"] for c in report.metrics["configs"]
        ) == report.metrics["totals"]["windows_served"]
        assert report.metrics["totals"]["energy_j"] == pytest.approx(
            sum(c["energy_j"] for c in report.metrics["configs"]), rel=1e-12
        )

    @pytest.mark.parametrize("regime", ["tunnel", "loop_closure"])
    def test_hard_regimes_exercise_the_shed_paths(self, regime):
        # One shard: splitting the fleet gives every shard its own
        # instance (capacity doubles), which can serve the cheap tunnel
        # windows without shedding — the saturated single shard is the
        # configuration that must take the DEGRADE/SHED branches.
        report = run_fleet(scenario_fleet_profile(regime), 1)
        totals = report.metrics["totals"]
        assert totals["windows_shed"] >= 1
        assert totals["windows_degraded"] >= 1
        assert totals["errors"] == 0


class TestWireTypesPickle:
    def test_window_request_round_trips(self):
        request = WindowRequest(
            session_id=3,
            frame_id=7,
            ready_time=0.25,
            deadline=0.5,
            iterations=4,
            config=None,
            reconfigured=True,
            degraded=False,
            seq=42,
        )
        clone = pickle.loads(pickle.dumps(request))
        assert clone.session_id == request.session_id
        assert clone.seq == request.seq
        assert clone.deadline == request.deadline

    def test_window_outcome_round_trips(self):
        outcome = WindowOutcome(
            session_id=1,
            frame_id=2,
            seq=9,
            stats=None,
            newest_position_error=0.125,
            iterations=4,
            accepted_steps=3,
            final_cost=1.5,
            error_type=None,
            error_message=None,
        )
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.ok
        assert clone.seq == 9
        assert clone.final_cost == 1.5

    def test_runtime_controller_round_trips(self):
        result = high_perf_design()
        controller = RuntimeController(
            table=IterationTable(),
            reconfig=build_reconfiguration_table(result.config, result.spec),
        )
        controller.iteration_policy(60)
        clone = pickle.loads(pickle.dumps(controller))
        # The mutable hysteresis state must travel too: both copies make
        # the same next decision.
        assert clone.iteration_policy(110) == controller.iteration_policy(110)
        assert clone.decisions == controller.decisions
