"""Tests for IMU noise models and preintegration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.geometry import SE3
from repro.imu import GRAVITY, ImuNoise, ImuPreintegration
from repro.data.trajectory import DroneTrajectory


class TestImuNoise:
    def test_discrete_sigmas_scale_with_dt(self):
        noise = ImuNoise()
        # White noise sigma grows as rate increases (1/sqrt(dt)).
        assert noise.discrete_gyro_sigma(0.001) > noise.discrete_gyro_sigma(0.01)
        # Random walk sigma shrinks with rate (sqrt(dt)).
        assert noise.discrete_gyro_walk_sigma(0.001) < noise.discrete_gyro_walk_sigma(0.01)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ImuNoise(gyro_noise=-1.0)

    def test_ideal_is_noiseless(self):
        noise = ImuNoise.ideal()
        assert noise.gyro_noise == 0.0 and noise.accel_noise == 0.0


class TestPreintegration:
    def test_rejects_bad_dt(self):
        pre = ImuPreintegration()
        with pytest.raises(DataError):
            pre.integrate(np.zeros(3), np.zeros(3), 0.0)

    def test_stationary_integration(self):
        # A motionless IMU measures -g as specific force; the deltas must
        # reproduce free-fall kinematics: alpha = 0.5*(-g_body)*t^2 with
        # gravity later re-added by the residual. Here we just check the
        # accumulated deltas against the closed form.
        pre = ImuPreintegration()
        accel = -GRAVITY  # body frame aligned with world
        dt, steps = 0.005, 200
        for _ in range(steps):
            pre.integrate(np.zeros(3), accel, dt)
        t = dt * steps
        assert np.allclose(pre.gamma, np.eye(3), atol=1e-12)
        assert np.allclose(pre.beta, accel * t, atol=1e-6)
        assert np.allclose(pre.alpha, 0.5 * accel * t * t, atol=1e-3)
        assert pre.num_samples == steps

    def test_pure_rotation(self):
        pre = ImuPreintegration()
        omega = np.array([0.0, 0.0, np.pi / 2])  # 90 deg/s about z
        dt, steps = 0.001, 1000
        for _ in range(steps):
            pre.integrate(omega, np.zeros(3), dt)
        # After 1 s: 90-degree rotation about z.
        expected = np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        assert np.allclose(pre.gamma, expected, atol=1e-3)

    def test_matches_trajectory_kinematics(self):
        """Preintegrated deltas must predict the true relative motion."""
        traj = DroneTrajectory(phases=np.array([0.3, 1.1, 0.7, 0.2, 0.9, 1.4]))
        t0, t1 = 2.0, 2.4
        dt = 1.0 / 400.0
        pre = ImuPreintegration()
        t = t0
        while t < t1 - 1e-9:
            tm = t + 0.5 * dt
            rot = traj.rotation(tm)
            gyro = traj.angular_velocity_body(tm)
            accel = rot.T @ (traj.acceleration(tm) - GRAVITY)
            pre.integrate(gyro, accel, dt)
            t += dt

        rot0 = traj.rotation(t0)
        p0, p1 = traj.position(t0), traj.position(t1)
        v0, v1 = traj.velocity(t0), traj.velocity(t1)
        dt_tot = pre.dt_total

        alpha_expected = rot0.T @ (p1 - p0 - v0 * dt_tot - 0.5 * GRAVITY * dt_tot**2)
        beta_expected = rot0.T @ (v1 - v0 - GRAVITY * dt_tot)
        gamma_expected = rot0.T @ traj.rotation(t1)

        assert np.allclose(pre.alpha, alpha_expected, atol=2e-3)
        assert np.allclose(pre.beta, beta_expected, atol=5e-3)
        assert np.allclose(pre.gamma, gamma_expected, atol=1e-3)

    def test_bias_correction_first_order(self):
        """corrected_deltas must approximate re-integration with new bias."""
        rng = np.random.default_rng(3)
        samples = [(rng.normal(scale=0.3, size=3), rng.normal(scale=2.0, size=3)) for _ in range(50)]
        dt = 0.005
        bias_ref = np.zeros(3)
        pre = ImuPreintegration(bias_gyro_ref=bias_ref, bias_accel_ref=bias_ref)
        for gyro, accel in samples:
            pre.integrate(gyro, accel, dt)

        d_bg = np.array([0.002, -0.001, 0.0015])
        d_ba = np.array([0.01, 0.02, -0.015])
        alpha_c, beta_c, gamma_c = pre.corrected_deltas(d_bg, d_ba)

        # Ground truth: re-integrate with the shifted bias reference.
        pre2 = ImuPreintegration(bias_gyro_ref=d_bg, bias_accel_ref=d_ba)
        for gyro, accel in samples:
            pre2.integrate(gyro, accel, dt)

        assert np.allclose(alpha_c, pre2.alpha, atol=1e-4)
        assert np.allclose(beta_c, pre2.beta, atol=1e-3)
        assert np.allclose(gamma_c, pre2.gamma, atol=1e-4)

    def test_covariance_grows(self):
        pre = ImuPreintegration()
        noise = ImuNoise()
        dt = 0.005
        traces = []
        for _ in range(100):
            pre.integrate(
                np.array([0.1, 0.0, 0.05]),
                np.array([0.0, 0.0, 9.81]),
                dt,
                gyro_sigma=noise.discrete_gyro_sigma(dt),
                accel_sigma=noise.discrete_accel_sigma(dt),
            )
            traces.append(np.trace(pre.covariance))
        assert all(b >= a for a, b in zip(traces, traces[1:]))
        assert traces[-1] > 0.0

    def test_information_matrix_inverts_covariance(self):
        pre = ImuPreintegration()
        dt = 0.005
        for _ in range(50):
            pre.integrate(
                np.array([0.2, -0.1, 0.3]),
                np.array([0.5, 0.2, 9.8]),
                dt,
                gyro_sigma=1e-3,
                accel_sigma=1e-2,
            )
        reg = 1e-8
        info = pre.information_matrix(regularization=reg)
        product = info @ (pre.covariance + reg * np.eye(9))
        assert np.allclose(product, np.eye(9), atol=1e-6)
