"""Tests for the degenerate-regime scenario subsystem (``repro.scenarios``)
and the oracle x scenario x design-point conformance matrix.

The load-bearing properties:

* scenario specs are frozen, validated, and deterministic — the same
  spec replays the same regime choices, window problems, stats series,
  and sequence configs byte for byte;
* every regime's window problems solve without an uncaught exception
  (the PR 3 graceful-degradation contract extended to realistic
  degenerate inputs);
* ``faults.make_degenerate_window`` is the zero-baseline limit of the
  tunnel drought builder — one code path, draw-for-draw identical;
* the scenario matrix passes clean, fails under ``--perturb`` (the
  anti-vacuity self-test), and emits a ``SCENARIOS.json`` that
  ``python -m repro.obs validate`` accepts;
* scenario-tagged serve profiles trigger DEGRADE and SHED from realistic
  inputs with zero errors, and repeat runs are byte-identical.
"""

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.scenarios import (
    DEGENERATE_REGIMES,
    REGIMES,
    SCENARIOS,
    ScenarioSpec,
    available_scenarios,
    make_drought_window,
    make_scenario_stats_series,
    make_scenario_window,
    mixture,
    pure,
    resolve_scenario,
    scenario_sequence_config,
)
from repro.slam.nls import LMConfig, levenberg_marquardt
from repro.testing.faults import graceful_outcome, make_degenerate_window
from repro.testing.strategies import (
    mixture_scenarios,
    pure_scenarios,
    scenario_specs,
)


class TestScenarioSpec:
    def test_registry_covers_all_regimes(self):
        assert set(REGIMES) <= set(available_scenarios())
        assert "mixed" in available_scenarios()
        for name in available_scenarios():
            assert resolve_scenario(name).label()

    def test_resolve_passes_specs_through(self):
        spec = pure("tunnel", severity=0.5, seed=3)
        assert resolve_scenario(spec) is spec

    def test_did_you_mean(self):
        with pytest.raises(ConfigurationError, match="tunnel"):
            resolve_scenario("tunel")

    def test_rejects_bad_specs(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="empty", components=())
        with pytest.raises(ConfigurationError):
            pure("wormhole")
        with pytest.raises(ConfigurationError):
            mixture({"tunnel": 0.0, "highway": 1.0})
        with pytest.raises(ConfigurationError):
            pure("tunnel", severity=0.0)
        with pytest.raises(ConfigurationError):
            pure("tunnel", severity=1.5)

    def test_pure_spec_is_constant(self):
        spec = pure("aggressive", seed=9)
        assert not spec.is_mixture
        assert {spec.regime_at(i) for i in range(20)} == {"aggressive"}

    def test_mixture_is_deterministic_and_seeded(self):
        spec = mixture({"tunnel": 1.0, "highway": 1.0}, seed=4)
        draws = [spec.regime_at(i) for i in range(40)]
        assert draws == [spec.regime_at(i) for i in range(40)]
        assert set(draws) == {"tunnel", "highway"}
        other = mixture({"tunnel": 1.0, "highway": 1.0}, seed=5)
        assert draws != [other.regime_at(i) for i in range(40)]


class TestScenarioWindows:
    def test_drought_is_the_faults_degenerate_window(self):
        """Satellite: one code path — the faults injector delegates here."""
        for seed in (0, 2, 17):
            a = make_degenerate_window(seed=seed, num_keyframes=3, num_features=8)
            b = make_drought_window(seed=seed, num_keyframes=3, num_features=8)
            assert len(a.visual_factors) == len(b.visual_factors)
            for fa, fb in zip(a.visual_factors, b.visual_factors):
                assert np.array_equal(fa.bearing, fb.bearing)
                assert np.array_equal(fa.pixel, fb.pixel)
            assert a.inv_depths == b.inv_depths
            assert not b.imu_factors and not b.priors

    def test_conditioned_drought_is_solvable(self):
        window = make_drought_window(seed=1, baseline=0.2, conditioned=True)
        assert window.imu_factors and window.priors
        result = levenberg_marquardt(window, LMConfig(max_iterations=5))
        assert np.isfinite(result.final_cost)

    def test_every_registered_scenario_solves(self):
        for name in SCENARIOS:
            window = make_scenario_window(name, seed=3)
            result = levenberg_marquardt(window, LMConfig(max_iterations=4))
            assert np.isfinite(result.final_cost), name

    def test_windows_are_deterministic(self):
        for name in ("tunnel", "loop_closure", "mixed"):
            a = make_scenario_window(name, seed=7)
            b = make_scenario_window(name, seed=7)
            assert len(a.visual_factors) == len(b.visual_factors)
            for fa, fb in zip(a.visual_factors, b.visual_factors):
                assert np.array_equal(fa.bearing, fb.bearing)
                assert np.array_equal(fa.pixel, fb.pixel)

    def test_regimes_reshape_the_feature_count(self):
        nominal = make_scenario_window("nominal", seed=5, num_features=12)
        tunnel = make_scenario_window("tunnel", seed=5, num_features=12)
        loop = make_scenario_window("loop_closure", seed=5, num_features=12)
        n_feats = len({f.feature_id for f in nominal.visual_factors})
        t_feats = len({f.feature_id for f in tunnel.visual_factors})
        l_feats = len({f.feature_id for f in loop.visual_factors})
        assert t_feats < n_feats < l_feats


class TestScenarioStatsSeries:
    def test_tunnel_decays_toward_zero(self):
        series = make_scenario_stats_series("tunnel", seed=0, num_windows=10)
        features = [stats.num_features for stats, _ in series]
        assert features[0] > 4 * max(features[-1], 1)
        assert all(f >= 0 for f in features)

    def test_loop_closure_spikes(self):
        series = make_scenario_stats_series("loop_closure", seed=0, num_windows=12)
        features = [stats.num_features for stats, _ in series]
        spikes = [features[i] for i in range(len(features)) if i % 4 == 3]
        baseline = [features[i] for i in range(len(features)) if i % 4 != 3]
        assert min(spikes) > max(baseline)

    def test_series_is_deterministic(self):
        a = make_scenario_stats_series("mixed", seed=3, num_windows=8)
        b = make_scenario_stats_series("mixed", seed=3, num_windows=8)
        assert [(s.num_features, i) for s, i in a] == [
            (s.num_features, i) for s, i in b
        ]


class TestScenarioSequences:
    def test_every_regime_yields_a_valid_config(self):
        for name in available_scenarios():
            config = scenario_sequence_config(name, session_id=0, duration=2.0)
            assert config.duration == 2.0
            assert config.imu_rate >= 2 * config.keyframe_rate

    def test_sessions_explore_the_regime(self):
        a = scenario_sequence_config("tunnel", session_id=0)
        b = scenario_sequence_config("tunnel", session_id=1)
        assert a.seed != b.seed
        assert a.name != b.name

    def test_estimator_survives_a_tunnel_recording(self):
        from repro.data.sequences import make_sequence
        from repro.slam import EstimatorConfig, SlidingWindowEstimator

        config = scenario_sequence_config("tunnel", session_id=0, duration=2.5)
        sequence = make_sequence(config)
        result = SlidingWindowEstimator(EstimatorConfig(window_size=6)).run(sequence)
        assert result.num_windows == sequence.num_keyframes - 1
        assert all(np.isfinite(w.final_cost) for w in result.windows)


class TestScenarioMatrix:
    def test_quick_matrix_passes_and_validates(self, tmp_path):
        from repro.obs.validate import validate_scenario_report
        from repro.testing.scenario_matrix import run_scenario_matrix

        run = run_scenario_matrix(
            scenarios=("tunnel", "highway"),
            oracle_names=("functional",),
            jobs=2,
            quick=True,
        )
        assert run.passed
        assert len(run.cells) == 4  # 2 scenarios x 2 design points
        path = run.write_json(tmp_path / "SCENARIOS.json")
        data = json.loads(path.read_text())
        assert validate_scenario_report(data) == []
        assert data["scenarios"] == ["highway", "tunnel"]
        assert data["design_points"] == ["dp-large", "dp-small"]

    def test_perturbed_matrix_fails(self):
        from repro.testing.scenario_matrix import run_scenario_matrix

        run = run_scenario_matrix(
            scenarios=("tunnel",),
            oracle_names=("functional",),
            jobs=2,
            quick=True,
            perturb="functional",
        )
        assert not run.passed
        assert run.num_mismatches > 0

    def test_unknown_scenario_rejected(self):
        from repro.testing.scenario_matrix import run_scenario_matrix

        with pytest.raises(ConfigurationError, match="unknown scenario"):
            run_scenario_matrix(scenarios=("wormhole",))

    def test_cli_scenarios_flag(self, tmp_path):
        from repro.testing.__main__ import main

        output = tmp_path / "SCENARIOS.json"
        code = main(
            [
                "--scenarios",
                "--quick",
                "--oracle",
                "functional",
                "--scenario",
                "tunnel",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.is_file()

    def test_cli_scenario_requires_scenarios_flag(self, capsys):
        from repro.testing.__main__ import main

        assert main(["--scenario", "tunnel"]) == 2
        assert "--scenarios" in capsys.readouterr().err

    def test_obs_validate_dispatches_on_schema(self, tmp_path):
        from repro.obs.__main__ import main as obs_main
        from repro.testing.scenario_matrix import run_scenario_matrix

        run = run_scenario_matrix(
            scenarios=("tunnel",), oracle_names=("functional",), quick=True
        )
        path = run.write_json(tmp_path / "SCENARIOS.json")
        assert obs_main(["validate", str(path)]) == 0

        data = json.loads(path.read_text())
        data["passed"] = not data["passed"]  # contradict the cells
        path.write_text(json.dumps(data))
        assert obs_main(["validate", str(path)]) == 1


class TestScenarioServe:
    def test_scenario_profiles_registered(self):
        from repro.serve.loadgen import available_profiles, resolve_profile

        for name in (
            "scenario-tunnel",
            "scenario-loop-closure",
            "scenario-aggressive",
            "scenario-highway",
        ):
            assert name in available_profiles()
            assert resolve_profile(name).scenario in REGIMES

    def test_per_field_validation_names_the_field(self):
        from dataclasses import replace

        from repro.serve.loadgen import PROFILES

        base = PROFILES["smoke"]
        for field, bad in (
            ("rate_hz", 0.0),
            ("think_time_s", -0.5),
            ("duration_s", 0.0),
            ("sequence_duration_s", -1.0),
            ("deadline_s", 0.0),
            ("num_sessions", 0),
            ("num_instances", 0),
            ("max_queue", 0),
            ("batch_size", 0),
            ("max_pending_per_session", 0),
        ):
            with pytest.raises(ConfigurationError, match=field):
                replace(base, **{field: bad})

    def test_scenario_field_validated_with_did_you_mean(self):
        from dataclasses import replace

        from repro.serve.loadgen import PROFILES

        with pytest.raises(ConfigurationError, match="tunnel"):
            replace(PROFILES["smoke"], scenario="tunel")

    def test_scenario_profile_replaces_the_catalog(self):
        from repro.serve.loadgen import PROFILES, session_sequence_config

        profile = PROFILES["scenario-tunnel"]
        config = session_sequence_config(profile, 0)
        assert config.name.startswith("scn-tunnel-")
        assert config.duration == profile.sequence_duration_s
        catalog = session_sequence_config(PROFILES["smoke"], 0)
        assert not catalog.name.startswith("scn-")

    def test_tunnel_profile_degrades_and_sheds_without_errors(self):
        """The acceptance criterion: realistic degenerate inputs drive
        the scheduler into DEGRADE and SHED with zero errors."""
        from repro.engine import Engine
        from repro.serve.loadgen import resolve_profile
        from repro.serve.service import LocalizationService

        report = LocalizationService(
            resolve_profile("scenario-tunnel"), engine=Engine(use_disk=False)
        ).run()
        totals = report.metrics["totals"]
        assert totals["windows_degraded"] >= 1
        assert totals["windows_shed"] >= 1
        assert totals["errors"] == 0

    def test_scenario_serve_repeats_are_byte_identical(self, tmp_path):
        from repro.engine import Engine
        from repro.serve.loadgen import LoadProfile
        from repro.serve.service import LocalizationService

        profile = LoadProfile(
            name="tunnel-mini",
            num_sessions=3,
            num_instances=1,
            rate_hz=40.0,
            duration_s=0.5,
            sequence_duration_s=2.0,
            max_queue=2,
            backpressure=1,
            deadline_s=0.02,
            max_pending_per_session=1,
            scenario="tunnel",
            seed=5,
        )
        first = LocalizationService(profile, engine=Engine(use_disk=False)).run()
        second = LocalizationService(profile, engine=Engine(use_disk=False)).run()
        a = first.write_metrics(tmp_path / "a.json")
        b = second.write_metrics(tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()


class TestScenarioProperties:
    @given(mixture_scenarios())
    def test_mixtures_stay_within_their_components(self, spec):
        members = {regime for regime, _ in spec.components}
        draws = [spec.regime_at(i) for i in range(24)]
        assert set(draws) <= members
        assert draws == [spec.regime_at(i) for i in range(24)]

    @given(pure_scenarios(), st.integers(min_value=0, max_value=60))
    def test_windows_solve_or_fail_typed(self, spec, seed):
        window = make_scenario_window(spec, seed, num_keyframes=3, num_features=6)
        outcome = graceful_outcome(
            lambda: levenberg_marquardt(window, LMConfig(max_iterations=3))
        )
        if outcome.recovered:
            assert np.isfinite(outcome.result.final_cost)
        else:
            assert outcome.error is not None

    @given(scenario_specs(), st.integers(min_value=0, max_value=40))
    def test_stats_series_shape_is_valid(self, spec, seed):
        series = make_scenario_stats_series(spec, seed, num_windows=6)
        assert len(series) == 6
        for stats, iterations in series:
            assert stats.num_features >= 0
            assert stats.num_keyframes >= 1
            assert 1 <= iterations <= 6

    @given(scenario_specs(), st.integers(min_value=0, max_value=12))
    def test_sequence_configs_always_construct(self, spec, session_id):
        config = scenario_sequence_config(spec, session_id, duration=2.0)
        assert config.imu_rate >= 2 * config.keyframe_rate
        again = scenario_sequence_config(spec, session_id, duration=2.0)
        assert config == again


def test_degenerate_regimes_are_a_subset_of_regimes():
    assert set(DEGENERATE_REGIMES) < set(REGIMES)
    assert "nominal" not in DEGENERATE_REGIMES
