"""Tests for sliding-window structures and workload statistics."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.data.window import FeatureTrack, Keyframe, SlidingWindow
from repro.data.stats import WindowStats, sequence_stats, window_stats
from repro.geometry import NavState


def make_window(num_frames=4, tracks=None):
    window = SlidingWindow(
        keyframes=[Keyframe(i, 0.2 * i, NavState()) for i in range(num_frames)]
    )
    from repro.imu import ImuPreintegration

    window.preintegrations = [ImuPreintegration() for _ in range(num_frames - 1)]
    for fid, obs_frames in (tracks or {}).items():
        window.features[fid] = FeatureTrack(
            feature_id=fid,
            position=np.zeros(3),
            observations={f: np.zeros(2) for f in obs_frames},
        )
    return window


class TestSlidingWindow:
    def test_validate_ok(self):
        window = make_window(tracks={0: [0, 1], 1: [1, 2, 3]})
        window.validate()

    def test_validate_rejects_bad_preintegration_count(self):
        window = make_window()
        window.preintegrations.pop()
        with pytest.raises(DataError):
            window.validate()

    def test_validate_rejects_duplicate_frames(self):
        window = make_window()
        window.keyframes.append(window.keyframes[0])
        window.preintegrations.append(window.preintegrations[0])
        with pytest.raises(DataError):
            window.validate()

    def test_validate_rejects_unknown_observation(self):
        window = make_window(tracks={0: [0, 99]})
        with pytest.raises(DataError):
            window.validate()

    def test_counts(self):
        window = make_window(tracks={0: [0, 1], 1: [1, 2, 3]})
        assert window.num_keyframes == 4
        assert window.num_features == 2
        assert window.num_observations == 5

    def test_features_seen_only_by(self):
        window = make_window(tracks={0: [0], 1: [0, 1], 2: [2]})
        assert window.features_seen_only_by(0) == [0]
        assert window.features_seen_only_by(2) == [2]


class TestWindowStats:
    def test_paper_parameter_names(self):
        stats = WindowStats(
            num_features=100, avg_observations=4.0, num_keyframes=10, num_marginalized=12
        )
        assert stats.a == 100
        assert stats.no == 4.0
        assert stats.b == 10
        assert stats.am == 12
        assert stats.k == 15

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WindowStats(
                num_features=-1, avg_observations=0, num_keyframes=0, num_marginalized=0
            )

    def test_window_stats_extraction(self):
        window = make_window(tracks={0: [0], 1: [0, 1, 2], 2: [1, 3]})
        stats = window_stats(window)
        assert stats.num_features == 3
        assert stats.num_observations == 6
        assert stats.avg_observations == pytest.approx(2.0)
        assert stats.num_marginalized == 1  # feature 0 seen only by kf 0

    def test_sequence_stats_aggregation(self):
        per_window = [
            WindowStats(100, 4.0, 10, 10),
            WindowStats(200, 6.0, 10, 20),
        ]
        agg = sequence_stats(per_window)
        assert agg["mean_features"] == pytest.approx(150.0)
        assert agg["max_features"] == pytest.approx(200.0)
        assert agg["mean_marginalized"] == pytest.approx(15.0)

    def test_sequence_stats_empty(self):
        agg = sequence_stats([])
        assert agg["mean_features"] == 0.0
