"""Tests for the SolverPlan layer: arenas, reuse, precision, caching."""

import threading
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SolverError
from repro.linalg.plan import (
    HAVE_SCIPY,
    PlanSolveStats,
    SolverPlan,
    SolverPlanCache,
    default_plan_cache,
    reset_default_plan_cache,
)
from repro.slam.problem import LinearSystem
from repro.testing.workloads import make_random_window


def arrow_system(p, q, seed=0, scale=1.0):
    """A well-conditioned random SPD arrow system as a LinearSystem."""
    rng = np.random.default_rng(seed)
    u = rng.uniform(0.5, 3.0, size=p) * scale
    w = rng.normal(size=(q, p)) * scale
    a = rng.normal(size=(q, q))
    v = (a @ a.T + q * np.eye(q)) * scale
    if p:
        v = v + w @ np.diag(1.0 / u) @ w.T
    b_x, b_y = rng.normal(size=p), rng.normal(size=q)
    return LinearSystem(
        u_diag=u, w_block=w, v_block=v, b_x=b_x, b_y=b_y,
        feature_ids=list(range(p)), frame_ids=list(range(max(q // 15, 1))),
    )


class TestPlanCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("damping", [0.0, 1e-4, 0.5])
    def test_plan_matches_dense_solve(self, seed, damping):
        system = arrow_system(20, 24, seed=seed)
        plan = SolverPlan(20, 24)
        d_lambda, d_state = system.solve(damping=damping, plan=plan)
        ref_lambda, ref_state = system.solve_dense(damping=damping)
        assert np.allclose(d_lambda, ref_lambda, rtol=1e-8, atol=1e-10)
        assert np.allclose(d_state, ref_state, rtol=1e-8, atol=1e-10)

    def test_solution_satisfies_block_equations(self):
        system = arrow_system(15, 12, seed=7)
        d_lambda, d_state = system.solve(damping=0.0)
        u = np.maximum(system.u_diag, 1e-8)
        assert np.allclose(
            u * d_lambda + system.w_block.T @ d_state, system.b_x, atol=1e-8
        )
        assert np.allclose(
            system.w_block @ d_lambda + system.v_block @ d_state,
            system.b_y, atol=1e-8,
        )

    def test_real_window_plan_vs_dense(self):
        problem = make_random_window(3, num_keyframes=4, num_features=14)
        system = problem.build_linear_system()
        d_lambda, d_state = system.solve(damping=1e-4)
        ref_lambda, ref_state = system.solve_dense(damping=1e-4)
        assert np.allclose(d_lambda, ref_lambda, rtol=1e-7, atol=1e-9)
        assert np.allclose(d_state, ref_state, rtol=1e-7, atol=1e-9)

    def test_empty_landmark_block(self):
        system = arrow_system(0, 6, seed=2)
        d_lambda, d_state = system.solve(damping=1e-4)
        assert d_lambda.shape == (0,)
        ref_lambda, ref_state = system.solve_dense(damping=1e-4)
        assert np.allclose(d_state, ref_state, rtol=1e-9, atol=1e-11)

    def test_structure_mismatch_raises(self):
        system = arrow_system(8, 6)
        with pytest.raises(SolverError, match="structure"):
            system.solve(plan=SolverPlan(9, 6))

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            SolverPlan(-1, 6)
        with pytest.raises(ConfigurationError):
            SolverPlan(4, 6, precision="float16")


class TestPlanReuse:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        p=st.integers(min_value=1, max_value=25),
        q=st.integers(min_value=1, max_value=20),
        damping=st.sampled_from([0.0, 1e-6, 1e-2]),
    )
    @settings(max_examples=30, deadline=None)
    def test_reused_plan_bit_identical_to_fresh(self, seed, p, q, damping):
        """Window mutations (new numbers, same structure) through a warm
        plan must equal a cold plan's answer to the bit."""
        warm = SolverPlan(p, q)
        # Warm the plan on a different system of the same structure.
        warm.execute(*_parts(arrow_system(p, q, seed=seed + 1)), damping=damping)
        system = arrow_system(p, q, seed=seed)
        got = warm.execute(*_parts(system), damping=damping)
        fresh = SolverPlan(p, q).execute(*_parts(system), damping=damping)
        assert np.array_equal(got[0], fresh[0])
        assert np.array_equal(got[1], fresh[1])

    def test_copy_true_detaches_from_arena(self):
        system_a = arrow_system(10, 9, seed=0)
        system_b = arrow_system(10, 9, seed=1)
        plan = SolverPlan(10, 9)
        kept_lambda, kept_state = system_a.solve(damping=0.0, plan=plan)
        snapshot = (kept_lambda.copy(), kept_state.copy())
        system_b.solve(damping=0.0, plan=plan)  # would clobber views
        assert np.array_equal(kept_lambda, snapshot[0])
        assert np.array_equal(kept_state, snapshot[1])

    def test_copy_false_returns_arena_views(self):
        system = arrow_system(10, 9, seed=0)
        plan = SolverPlan(10, 9)
        d_lambda, d_state = system.solve(damping=0.0, plan=plan, copy=False)
        assert np.shares_memory(d_lambda, plan.d_lambda)
        assert np.shares_memory(d_state, plan.d_state)


class TestMixedPrecision:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_refinement_reaches_float64(self, seed):
        """float32 + refinement lands within 1e-9 of the float64 answer
        (relative to the solution scale) on random SPD arrow systems."""
        system = arrow_system(18, 15, seed=seed)
        f64_lambda, f64_state = system.solve(
            damping=1e-4, plan=SolverPlan(18, 15)
        )
        mixed = SolverPlan(18, 15, precision="mixed")
        mix_lambda, mix_state = system.solve(damping=1e-4, plan=mixed)
        scale = max(
            np.abs(f64_state).max(), np.abs(f64_lambda).max(), 1.0
        )
        assert np.abs(mix_state - f64_state).max() <= 1e-9 * scale
        assert np.abs(mix_lambda - f64_lambda).max() <= 1e-9 * scale
        assert mixed.last_stats.refinement_iterations <= 8

    def test_mixed_plan_allocates_float32_arenas(self):
        plan = SolverPlan(6, 5, precision="mixed")
        assert plan.factor32.dtype == np.float32
        assert plan.rhs32.dtype == np.float32


class TestJitterPolicy:
    def test_no_jitter_on_well_conditioned_system(self):
        system = arrow_system(12, 9, seed=0)
        plan = SolverPlan(12, 9)
        system.solve(damping=0.0, plan=plan)
        assert plan.last_stats.jitter == 0.0
        assert not plan.last_stats.jitter_applied
        assert plan.last_stats.factor_attempts == 1

    def test_jitter_escalates_on_singular_system(self):
        p, q = 3, 6
        system = LinearSystem(
            u_diag=np.ones(p), w_block=np.zeros((q, p)),
            v_block=np.zeros((q, q)), b_x=np.zeros(p), b_y=np.ones(q),
            feature_ids=list(range(p)), frame_ids=[0],
        )
        plan = SolverPlan(p, q)
        d_lambda, d_state = system.solve(damping=0.0, plan=plan)
        assert plan.last_stats.jitter_applied
        assert plan.last_stats.jitter > 0.0
        assert plan.last_stats.factor_attempts > 1
        assert np.all(np.isfinite(d_lambda)) and np.all(np.isfinite(d_state))

    def test_unfactorable_system_raises_after_retries(self):
        q = 4
        system = LinearSystem(
            u_diag=np.ones(1), w_block=np.zeros((q, 1)),
            v_block=-1e6 * np.eye(q), b_x=np.zeros(1), b_y=np.ones(q),
            feature_ids=[0], frame_ids=[0],
        )
        with pytest.raises(SolverError, match="attempts"):
            system.solve(damping=0.0, plan=SolverPlan(1, q))

    def test_reduced_matrix_left_intact_after_jitter_retry(self):
        p, q = 2, 5
        system = LinearSystem(
            u_diag=np.ones(p), w_block=np.zeros((q, p)),
            v_block=np.zeros((q, q)), b_x=np.zeros(p), b_y=np.ones(q),
            feature_ids=list(range(p)), frame_ids=[0],
        )
        plan = SolverPlan(p, q)
        system.solve(damping=0.0, plan=plan)
        # reduced must hold the *unjittered* Schur complement (zeros).
        assert np.array_equal(plan.reduced, np.zeros((q, q)))


class TestZeroAllocation:
    def test_warm_execute_allocates_no_arrays(self):
        """At fig11 scale a warm plan's execute stays under a few KiB of
        transient allocation — far below any (q, q) or (q, p) buffer
        (180 KiB / 240 KiB at this scale), proving every matrix-sized
        operand lives in the preallocated arenas."""
        if not HAVE_SCIPY:
            pytest.skip("numpy-fallback Cholesky column loop is measured "
                        "per-column; the arena contract is scipy-path only")
        system = arrow_system(200, 150, seed=0)
        plan = SolverPlan(200, 150)
        parts = _parts(system)
        plan.execute(*parts, damping=1e-4)
        tracemalloc.start()
        plan.execute(*parts, damping=1e-4)  # first traced call warms tracer caches
        tracemalloc.reset_peak()
        plan.execute(*parts, damping=1e-4)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 32_768, f"solve stage allocated {peak} bytes"

    def test_warm_mixed_execute_allocates_no_arrays(self):
        if not HAVE_SCIPY:
            pytest.skip("scipy-path contract")
        system = arrow_system(200, 150, seed=1)
        plan = SolverPlan(200, 150, precision="mixed")
        parts = _parts(system)
        plan.execute(*parts, damping=1e-4)
        tracemalloc.start()
        plan.execute(*parts, damping=1e-4)
        tracemalloc.reset_peak()
        plan.execute(*parts, damping=1e-4)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 32_768, f"mixed solve stage allocated {peak} bytes"


class TestPlanCache:
    def test_hits_and_misses_counted(self):
        cache = SolverPlanCache()
        a = cache.get(10, 9)
        b = cache.get(10, 9)
        c = cache.get(11, 9)
        assert a is b and a is not c
        assert cache.stats() == {
            "hits": 1, "misses": 2, "hit_rate": pytest.approx(1 / 3), "plans": 2,
        }
        cache.clear()
        assert cache.stats()["plans"] == 0 and cache.stats()["hits"] == 0

    def test_precision_keys_separately(self):
        cache = SolverPlanCache()
        assert cache.get(5, 5) is not cache.get(5, 5, precision="mixed")

    def test_thread_keyed_plans_are_distinct(self):
        cache = SolverPlanCache()
        main_plan = cache.get(8, 6)
        seen = []
        thread = threading.Thread(target=lambda: seen.append(cache.get(8, 6)))
        thread.start()
        thread.join()
        assert seen[0] is not main_plan

    def test_lru_eviction(self):
        cache = SolverPlanCache(max_plans=2)
        cache.get(1, 1)
        cache.get(2, 2)
        cache.get(3, 3)
        assert len(cache) == 2
        cache.get(1, 1)  # evicted -> rebuilt: a miss
        assert cache.stats()["misses"] == 4

    def test_default_cache_reset(self):
        first = default_plan_cache()
        assert default_plan_cache() is first
        second = reset_default_plan_cache()
        assert second is not first
        assert default_plan_cache() is second


class TestNlsIntegration:
    def test_lm_records_solve_substage_timings(self):
        from repro.slam.nls import LMConfig, levenberg_marquardt

        problem = make_random_window(5, num_keyframes=4, num_features=12)
        result = levenberg_marquardt(problem, LMConfig(max_iterations=3))
        timings = result.timings
        assert timings.solve_s > 0.0
        assert timings.schur_s > 0.0
        assert timings.chol_s > 0.0
        assert timings.backsub_s > 0.0
        # Substages are children of solve: they never inflate the total.
        assert timings.total_s == pytest.approx(
            timings.linearize_s + timings.assemble_s
            + timings.solve_s + timings.update_s
        )

    def test_lm_reuses_one_plan_across_iterations(self):
        from repro.slam.nls import LMConfig, levenberg_marquardt

        cache = reset_default_plan_cache()
        problem = make_random_window(6, num_keyframes=4, num_features=12)
        levenberg_marquardt(problem, LMConfig(max_iterations=4))
        stats = cache.stats()
        # One structure -> one miss; the iteration loop holds the plan
        # object, so at most one extra lookup can occur.
        assert stats["misses"] == 1
        reset_default_plan_cache()

    def test_stats_dataclass_defaults(self):
        stats = PlanSolveStats()
        assert stats.jitter == 0.0 and not stats.jitter_applied
        assert stats.refinement_iterations == 0


def _parts(system):
    return (system.u_diag, system.w_block, system.v_block, system.b_x, system.b_y)
