"""Tests for the non-SLAM MAP applications (Sec. 7.7)."""

import numpy as np
import pytest

from repro.apps import (
    GenericNlsProblem,
    curve_fitting_workload,
    gauss_newton_lm,
    make_curve_fitting_problem,
    make_pose_estimation_problem,
    pose_estimation_workload,
    solve_curve_fitting,
    solve_pose_estimation,
)
from repro.errors import ConfigurationError


class TestGenericLm:
    def test_solves_linear_least_squares(self):
        rng = np.random.default_rng(0)
        design = rng.normal(size=(20, 4))
        truth = np.array([1.0, -2.0, 0.5, 3.0])
        target = design @ truth
        problem = GenericNlsProblem(
            residual=lambda x: design @ x - target, x0=np.zeros(4)
        )
        solution = gauss_newton_lm(problem)
        assert np.allclose(solution.x, truth, atol=1e-6)

    def test_solves_rosenbrock_style(self):
        problem = GenericNlsProblem(
            residual=lambda x: np.array([10 * (x[1] - x[0] ** 2), 1 - x[0]]),
            x0=np.array([-1.2, 1.0]),
        )
        solution = gauss_newton_lm(problem, max_iterations=100)
        assert np.allclose(solution.x, [1.0, 1.0], atol=1e-4)

    def test_cost_monotone(self):
        problem = GenericNlsProblem(
            residual=lambda x: np.array([x[0] ** 2 - 2.0, x[1] - 1.0]),
            x0=np.array([3.0, 3.0]),
        )
        solution = gauss_newton_lm(problem)
        assert all(
            b <= a + 1e-12
            for a, b in zip(solution.cost_history, solution.cost_history[1:])
        )

    def test_analytic_jacobian_used(self):
        calls = []

        def jacobian(x):
            calls.append(1)
            return np.eye(2)

        problem = GenericNlsProblem(
            residual=lambda x: x - np.array([1.0, 2.0]),
            x0=np.zeros(2),
            jacobian=jacobian,
        )
        solution = gauss_newton_lm(problem)
        assert calls
        assert np.allclose(solution.x, [1.0, 2.0], atol=1e-9)


class TestCurveFitting:
    def test_fits_below_noise_level(self):
        problem = make_curve_fitting_problem(noise=0.15, seed=1)
        solution = solve_curve_fitting(problem)
        errors = [
            np.linalg.norm(problem.evaluate(solution.x, t) - ref)
            for t, ref in zip(problem.times, problem.true_path)
        ]
        # Smoothing averages the waypoint noise down.
        assert np.mean(errors) < 0.15

    def test_smoothness_weight_straightens(self):
        rough = make_curve_fitting_problem(seed=2)
        smooth = make_curve_fitting_problem(seed=2)
        smooth.smoothness_weight = 200.0
        sol_rough = solve_curve_fitting(rough)
        sol_smooth = solve_curve_fitting(smooth)

        def bending(x, p):
            pts = x.reshape(p.num_control_points, 2)
            return np.sum((pts[2:] - 2 * pts[1:-1] + pts[:-2]) ** 2)

        assert bending(sol_smooth.x, smooth) < bending(sol_rough.x, rough)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_curve_fitting_problem(num_control_points=4)

    def test_deterministic(self):
        a = make_curve_fitting_problem(seed=3)
        b = make_curve_fitting_problem(seed=3)
        assert np.array_equal(a.waypoints, b.waypoints)

    def test_workload_adapter(self):
        stats, iterations = curve_fitting_workload()
        assert stats.num_features > 0
        assert 1 <= iterations <= 6


class TestPoseEstimation:
    def test_recovers_pose_to_millimeters(self):
        problem = make_pose_estimation_problem(seed=4)
        pose, solution = solve_pose_estimation(problem)
        error = np.linalg.norm(pose.translation - problem.true_pose.translation)
        assert error < 0.02
        assert solution.cost < solution.cost_history[0]

    def test_robust_to_larger_perturbation(self):
        problem = make_pose_estimation_problem(pose_perturbation=0.2, seed=5)
        pose, _ = solve_pose_estimation(problem, max_iterations=40)
        error = np.linalg.norm(pose.translation - problem.true_pose.translation)
        assert error < 0.05

    def test_more_points_more_accurate(self):
        errors = {}
        for n in (10, 200):
            trials = []
            for seed in range(5):
                problem = make_pose_estimation_problem(num_points=n, seed=seed)
                pose, _ = solve_pose_estimation(problem)
                trials.append(
                    np.linalg.norm(pose.translation - problem.true_pose.translation)
                )
            errors[n] = np.mean(trials)
        assert errors[200] < errors[10]

    def test_needs_four_points(self):
        with pytest.raises(ConfigurationError):
            make_pose_estimation_problem(num_points=3)

    def test_workload_adapter(self):
        stats, iterations = pose_estimation_workload()
        assert stats.num_features > 0
        assert 1 <= iterations <= 6
