"""Tests for M-DFG nodes, graph, cost models, builder, layout, schedule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError, GraphError
from repro.mdfg import (
    MDFG,
    MDFGNode,
    NodeType,
    build_linear_solver_mdfg,
    build_marginalization_mdfg,
    build_window_mdfg,
    choose_s_matrix_layout,
    node_cost,
    optimal_linear_solver_blocking,
    optimal_marginalization_blocking,
    schedule_mdfg,
)
from repro.mdfg.builder import build_nls_iteration_mdfg
from repro.mdfg.cost import CostModel
from repro.mdfg.schedule import HardwareBlockType

STATS = WindowStats(
    num_features=100,
    avg_observations=4.0,
    num_keyframes=10,
    num_marginalized=12,
    num_observations=400,
)


class TestNodes:
    def test_dims_validation(self):
        with pytest.raises(ValueError):
            MDFGNode(NodeType.MATMUL, (3, 4))  # needs 3 dims
        with pytest.raises(ValueError):
            MDFGNode(NodeType.CD, (4, 4))  # needs 1 dim
        with pytest.raises(ValueError):
            MDFGNode(NodeType.CD, (-1,))

    def test_signature_ignores_identity(self):
        a = MDFGNode(NodeType.MATMUL, (2, 3, 4))
        b = MDFGNode(NodeType.MATMUL, (2, 3, 4), label="other")
        assert a.uid != b.uid
        assert a.signature() == b.signature()


class TestCost:
    def test_matmul_cubic(self):
        model = CostModel()
        assert node_cost(MDFGNode(NodeType.MATMUL, (10, 10, 10)), model) == 1000

    def test_diagonal_ops_linear(self):
        model = CostModel()
        assert node_cost(MDFGNode(NodeType.DMATMUL, (50, 10)), model) == 500
        assert node_cost(MDFGNode(NodeType.DMATINV, (50,)), model) == 200  # 4x divide

    def test_transpose_free(self):
        assert node_cost(MDFGNode(NodeType.MATTP, (30, 40))) == 0.0

    def test_cholesky_cubic_leading_term(self):
        model = CostModel(divide=0.0, sqrt=0.0)
        big = node_cost(MDFGNode(NodeType.CD, (60,)), model)
        assert big == pytest.approx(60**3 / 6.0)

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=20)
    def test_costs_positive(self, n):
        for node_type, dims in [
            (NodeType.MATMUL, (n, n, n)),
            (NodeType.CD, (n,)),
            (NodeType.FBSUB, (n,)),
            (NodeType.VJAC, (n,)),
            (NodeType.IJAC, (n,)),
        ]:
            assert node_cost(MDFGNode(node_type, dims)) > 0


class TestGraph:
    def test_empty_graph_invalid(self):
        with pytest.raises(GraphError):
            MDFG().validate()

    def test_cycle_detected(self):
        graph = MDFG()
        a = graph.add(NodeType.CD, (4,))
        b = graph.add(NodeType.FBSUB, (4,), after=[a])
        graph.add_edge(b, a)
        with pytest.raises(GraphError):
            graph.validate()

    def test_edge_requires_known_nodes(self):
        graph = MDFG()
        a = graph.add(NodeType.CD, (4,))
        stray = MDFGNode(NodeType.FBSUB, (4,))
        with pytest.raises(GraphError):
            graph.add_edge(a, stray)

    def test_total_vs_critical_path(self):
        graph = MDFG()
        a = graph.add(NodeType.MATMUL, (10, 10, 10))
        graph.add(NodeType.MATMUL, (10, 10, 10), after=[a])
        parallel = MDFG()
        parallel.add(NodeType.MATMUL, (10, 10, 10))
        parallel.add(NodeType.MATMUL, (10, 10, 10))
        assert graph.total_cost() == parallel.total_cost()
        assert graph.critical_path_cost() == 2 * parallel.critical_path_cost()

    def test_shareable_signatures(self):
        graph = MDFG()
        graph.add(NodeType.CD, (10,))
        graph.add(NodeType.CD, (10,))
        graph.add(NodeType.CD, (12,))
        assert graph.shareable_signatures() == [(NodeType.CD, (10,))]


class TestBlockingOptimization:
    def test_diagonal_landmarks_win(self):
        """The paper's key observation: the optimum blocks A with a
        diagonal U (the landmark block)."""
        choice = optimal_linear_solver_blocking(100, 10)
        assert choice.diagonal
        assert choice.split == 100

    def test_diagonal_beats_dense_same_split(self):
        choice = optimal_linear_solver_blocking(100, 10)
        dense_same = choice.alternatives["schur-dense-p100"]
        assert choice.cost < dense_same

    def test_schur_beats_direct(self):
        choice = optimal_linear_solver_blocking(150, 12)
        assert choice.cost < choice.alternatives["direct"]

    @given(
        st.integers(min_value=20, max_value=400), st.integers(min_value=4, max_value=20)
    )
    @settings(max_examples=30)
    def test_diagonal_always_optimal_in_slam_regime(self, a, b):
        choice = optimal_linear_solver_blocking(a, b)
        assert choice.diagonal

    def test_marginalization_blocking_diagonal(self):
        choice = optimal_marginalization_blocking(12)
        assert choice.diagonal
        assert choice.split == 12

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            optimal_linear_solver_blocking(0, 10)
        with pytest.raises(ConfigurationError):
            optimal_marginalization_blocking(-1)


class TestBuilders:
    def test_linear_solver_graph_shape(self):
        graph = build_linear_solver_mdfg(100, 10)
        counts = graph.count_by_type()
        assert counts[NodeType.CD] == 1
        assert counts[NodeType.FBSUB] == 1
        assert counts[NodeType.DMATINV] == 1
        graph.validate()

    def test_marginalization_graph(self):
        graph = build_marginalization_mdfg(STATS)
        counts = graph.count_by_type()
        assert counts[NodeType.VJAC] == 1
        assert counts[NodeType.DMATINV] == 1  # M11^-1, the embedded D-type
        graph.validate()

    def test_iteration_graph_connects_solver(self):
        graph = build_nls_iteration_mdfg(STATS)
        graph.validate()
        sinks = [n for n in graph.nodes if not graph.successors(n)]
        assert len(sinks) == 1
        assert sinks[0].label == "update p"

    def test_window_graph_scales_with_iterations(self):
        one = build_window_mdfg(STATS, iterations=1)
        three = build_window_mdfg(STATS, iterations=3)
        assert three.num_nodes > one.num_nodes
        # Serialized iterations: critical path grows proportionally.
        assert three.critical_path_cost() > 2 * one.critical_path_cost() * 0.9

    def test_window_graph_rejects_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            build_window_mdfg(STATS, iterations=0)


class TestLayoutDecision:
    def test_compact_chosen_for_typical_window(self):
        decision = choose_s_matrix_layout(15, 15)
        assert decision.chosen == "compact-si-sc"
        assert decision.saving_vs_dense == pytest.approx(0.78, abs=0.01)
        assert decision.saving_vs_csr > 0.0

    def test_candidates_complete(self):
        decision = choose_s_matrix_layout(15, 10)
        assert set(decision.candidates) == {
            "dense",
            "symmetric",
            "csr-symmetric",
            "compact-si-sc",
        }


class TestSchedule:
    def test_all_nodes_assigned(self):
        graph = build_window_mdfg(STATS, iterations=2)
        schedule = schedule_mdfg(graph)
        assert len(schedule.assignments) == graph.num_nodes

    def test_cholesky_shared_across_phases(self):
        """NLS and marginalization Cholesky map to one physical block."""
        graph = build_window_mdfg(STATS, iterations=2)
        schedule = schedule_mdfg(graph)
        assert schedule.sharing_factor(HardwareBlockType.CHOLESKY) >= 3

    def test_dschur_shared_between_nls_and_marginalization(self):
        graph = build_window_mdfg(STATS, iterations=1)
        schedule = schedule_mdfg(graph)
        # D-type Schur work exists in both phases but one physical block.
        assert schedule.sharing_factor(HardwareBlockType.DSCHUR) > 5
        assert schedule.num_physical_blocks <= len(HardwareBlockType)

    def test_jacobian_dschur_pipelined(self):
        graph = build_window_mdfg(STATS, iterations=1)
        schedule = schedule_mdfg(graph)
        assert (
            HardwareBlockType.VISUAL_JACOBIAN,
            HardwareBlockType.DSCHUR,
        ) in schedule.pipelined_pairs
