"""Tests for the analytical latency/resource/power models (Sec. 4-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.hw import (
    DEFAULT_POWER_MODEL,
    DEFAULT_RESOURCE_MODEL,
    KINTEX7_160T,
    REFERENCE_WORKLOAD,
    VIRTEX7_690T,
    ZC706,
    HardwareConfig,
    LatencyModel,
    cholesky_latency,
    dschur_feature_latency,
    fit_linear_model,
    fit_power_model,
    jacobian_feature_latency,
    mschur_latency,
    window_latency_cycles,
    window_latency_seconds,
)
from repro.hw.config import ND_RANGE, NM_RANGE, S_RANGE, design_space_size
from repro.hw.latency import EVALUATE_LATENCY
from repro.hw.power import synthetic_power_samples


def configs():
    return st.builds(
        HardwareConfig,
        nd=st.integers(*ND_RANGE),
        nm=st.integers(*NM_RANGE),
        s=st.integers(*S_RANGE),
    )


class TestHardwareConfig:
    def test_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(nd=0)
        with pytest.raises(ConfigurationError):
            HardwareConfig(s=S_RANGE[1] + 1)
        with pytest.raises(ConfigurationError):
            HardwareConfig(nd=2.5)  # type: ignore[arg-type]

    def test_dominates(self):
        small = HardwareConfig(2, 2, 2)
        big = HardwareConfig(4, 4, 4)
        assert small.dominates(big)
        assert not big.dominates(small)

    def test_design_space_size_matches_paper(self):
        """Sec. 7.3: the space contains about 90,000 designs."""
        assert design_space_size() == 90_000


class TestLatencyComponents:
    def test_jacobian_equ6(self):
        assert jacobian_feature_latency(4.0) == pytest.approx(
            4.0 * jacobian_feature_latency(1.0)
        )

    def test_dschur_equ9_scaling(self):
        # (6 No)^2 / nd: quadratic in No, inverse in nd.
        base = dschur_feature_latency(4.0, 1)
        assert dschur_feature_latency(8.0, 1) == pytest.approx(4 * base)
        assert dschur_feature_latency(4.0, 4) == pytest.approx(base / 4)

    def test_cholesky_monotone_in_m(self):
        lat = [cholesky_latency(m, 8) for m in (10, 50, 100, 200)]
        assert all(b > a for a, b in zip(lat, lat[1:]))

    def test_cholesky_s1_closed_form(self):
        """With one Update unit every round is one iteration: the total is
        sum_i max(E, E + work_i) = m E + total update work."""
        m = 40
        expected = sum(
            max(EVALUATE_LATENCY, EVALUATE_LATENCY + (m - k - 1) * (m - k) / 2)
            for k in range(m)
        )
        assert cholesky_latency(m, 1) == pytest.approx(expected)

    def test_cholesky_more_units_helps_then_saturates(self):
        m = 225
        lat = {s: cholesky_latency(m, s) for s in (1, 4, 16, 64, 120)}
        assert lat[4] < lat[1]
        assert lat[16] < lat[4]
        # The first iteration's update work bounds the achievable latency.
        floor = EVALUATE_LATENCY + (m - 1) * m / 2
        assert lat[120] >= floor

    def test_mschur_inverse_in_nm(self):
        stats = REFERENCE_WORKLOAD
        lat = [mschur_latency(stats, nm) for nm in (1, 2, 8, 25)]
        assert all(b < a for a, b in zip(lat, lat[1:]))

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            dschur_feature_latency(4.0, 0)
        with pytest.raises(ConfigurationError):
            cholesky_latency(0, 4)
        with pytest.raises(ConfigurationError):
            mschur_latency(REFERENCE_WORKLOAD, 0)


class TestWindowLatency:
    @given(configs())
    @settings(max_examples=40, deadline=None)
    def test_positive_and_scales_with_iterations(self, config):
        one = window_latency_cycles(REFERENCE_WORKLOAD, config, iterations=1)
        six = window_latency_cycles(REFERENCE_WORKLOAD, config, iterations=6)
        assert one > 0
        assert six > one
        # Equ. 13: the delta is exactly 5 extra NLS iterations, and the
        # (un-repeated) marginalization keeps six < 6 * one.
        assert six < 6 * one

    @given(configs(), configs())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_knobs(self, c1, c2):
        """A componentwise-larger config is never slower (Equ. 9/10 are
        inverse in the MAC counts; Cholesky is checked separately since
        Equ. 7 is non-monotone in s)."""
        if c1.dominates(c2) and c1.s == c2.s:
            lat1 = window_latency_cycles(REFERENCE_WORKLOAD, c2)
            lat2 = window_latency_cycles(REFERENCE_WORKLOAD, c1)
            assert lat1 <= lat2 + 1e-9

    def test_tbl2_designs_meet_budgets(self):
        """Our synthesized High-Perf / Low-Power analogues must meet the
        paper's 20 ms / 33 ms budgets on the reference workload."""
        model = LatencyModel()
        from repro.synth import high_perf_design, low_power_design

        assert model.seconds(high_perf_design().config) <= 0.020 + 1e-9
        assert model.seconds(low_power_design().config) <= 0.033 + 1e-9

    def test_seconds_consistent_with_cycles(self):
        config = HardwareConfig(8, 8, 16)
        cycles = window_latency_cycles(REFERENCE_WORKLOAD, config)
        seconds = window_latency_seconds(REFERENCE_WORKLOAD, config)
        assert seconds == pytest.approx(cycles / ZC706.frequency_hz)


class TestResourceModel:
    def test_matches_paper_tbl2_high_perf(self):
        """Calibration check: the paper's (28, 19, 97) lands within a few
        percent of its published utilization numbers."""
        usage = DEFAULT_RESOURCE_MODEL.usage(HardwareConfig(28, 19, 97))
        assert usage["lut"] == pytest.approx(136_432, rel=0.08)
        assert usage["bram"] == pytest.approx(255.5, rel=0.08)
        assert usage["dsp"] == pytest.approx(849, rel=0.08)

    def test_matches_paper_tbl2_low_power(self):
        usage = DEFAULT_RESOURCE_MODEL.usage(HardwareConfig(21, 8, 34))
        assert usage["lut"] == pytest.approx(95_777, rel=0.08)
        assert usage["dsp"] == pytest.approx(442, rel=0.08)

    @given(configs(), configs())
    @settings(max_examples=40)
    def test_monotone(self, c1, c2):
        if c1.dominates(c2):
            u1 = DEFAULT_RESOURCE_MODEL.usage(c1)
            u2 = DEFAULT_RESOURCE_MODEL.usage(c2)
            assert all(u1[k] <= u2[k] + 1e-9 for k in u1)

    def test_fits_respects_budget(self):
        big = HardwareConfig(*[ND_RANGE[1], NM_RANGE[1], S_RANGE[1]])
        assert DEFAULT_RESOURCE_MODEL.fits(big, VIRTEX7_690T)
        assert not DEFAULT_RESOURCE_MODEL.fits(big, KINTEX7_160T)

    def test_fit_recovers_coefficients(self):
        rng = np.random.default_rng(0)
        truth = DEFAULT_RESOURCE_MODEL.dsp
        samples = [
            HardwareConfig(
                int(rng.integers(*ND_RANGE) + 1) if False else int(rng.integers(ND_RANGE[0], ND_RANGE[1] + 1)),
                int(rng.integers(NM_RANGE[0], NM_RANGE[1] + 1)),
                int(rng.integers(S_RANGE[0], S_RANGE[1] + 1)),
            )
            for _ in range(12)
        ]
        values = [truth.evaluate(c) for c in samples]
        fitted = fit_linear_model(samples, values)
        assert fitted.base == pytest.approx(truth.base, rel=1e-6)
        assert fitted.per_s == pytest.approx(truth.per_s, rel=1e-6)

    def test_fit_requires_enough_samples(self):
        with pytest.raises(ConfigurationError):
            fit_linear_model([HardwareConfig()], [1.0])


class TestPowerModel:
    def test_linear_in_knobs(self):
        p0 = DEFAULT_POWER_MODEL.power(HardwareConfig(1, 1, 1))
        p1 = DEFAULT_POWER_MODEL.power(HardwareConfig(2, 1, 1))
        assert p1 - p0 == pytest.approx(DEFAULT_POWER_MODEL.per_nd)

    def test_gated_power_between_active_and_static(self):
        static = HardwareConfig(20, 10, 60)
        active = HardwareConfig(10, 5, 30)
        gated = DEFAULT_POWER_MODEL.gated_power(static, active)
        assert DEFAULT_POWER_MODEL.power(active) < gated < DEFAULT_POWER_MODEL.power(static)

    def test_gated_power_rejects_oversized_active(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_POWER_MODEL.gated_power(HardwareConfig(5, 5, 5), HardwareConfig(6, 5, 5))

    def test_regression_fit_close_to_surrogate(self):
        configs_, powers = synthetic_power_samples(count=48)
        fitted = fit_power_model(configs_, powers)
        predictions = np.array([fitted.power(c) for c in configs_])
        assert np.mean(np.abs(predictions - np.array(powers))) < 0.1
