"""Tests for the experiment registry and the light experiments.

The heavy (estimator-driven) experiments are exercised by the benchmark
harness; here we verify the registry plumbing, result containers, and
the model-only experiments end to end.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, ExperimentResult, format_table, run_experiment
from repro.experiments.fig13_14 import run_fig13a, run_fig13c, run_fig14
from repro.experiments.fig15_16 import run_tbl2
from repro.experiments.sec3x import run_sec32, run_sec33
from repro.experiments.sec7x import run_sec73, run_sec75, run_sec77_apps, run_sec77_fpgas


class TestResultContainer:
    def test_column_access(self):
        result = ExperimentResult("x", "t", ["a", "b"], rows=[[1, 2], [3, 4]])
        assert result.column("b") == [2, 4]

    def test_render_contains_rows(self):
        result = ExperimentResult("x", "title", ["col"], rows=[[42]], notes="note")
        text = result.render()
        assert "title" in text and "42" in text and "note" in text

    def test_format_table_alignment(self):
        table = format_table(["name", "v"], [["a", 1.23456], ["bb", 2]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "1.235" in table  # 4 significant digits


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "fig11", "fig12", "fig13a", "fig13b", "fig13c", "fig14",
            "fig15", "fig16", "tbl2", "sec32", "sec33", "sec73",
            "sec75", "sec76", "sec76b", "sec77a", "sec77b",
            "ext-learned-policy", "ext-robustness", "ext-wordlength", "ext-realtime", "ext-accuracy", "ext-window-size",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_id_raises(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")


class TestLightExperiments:
    def test_fig13a_time_monotone(self):
        result = run_fig13a()
        times = result.column("time_ms")
        assert all(b <= a for a, b in zip(times, times[1:]))
        dsp = result.column("dsp_pct")
        assert all(b >= a for a, b in zip(dsp, dsp[1:]))

    def test_fig13c_s_dominates_dsp(self):
        """Fig. 13: s has the most significant resource impact."""
        result = run_fig13c()
        dsp = result.column("dsp_pct")
        assert dsp[-1] - dsp[0] > 40.0  # tens of percent over the sweep

    def test_fig14_frontier_shape(self):
        result = run_fig14()
        assert len(result.rows) >= 5
        assert "True" in result.notes  # perturbation validation passed

    def test_tbl2_high_perf_bigger(self):
        result = run_tbl2()
        hp, lp = result.rows
        assert hp[result.columns.index("dsp_pct")] > lp[result.columns.index("dsp_pct")]

    def test_sec32_diagonal_wins(self):
        result = run_sec32()
        assert result.rows[0][0] == "schur-diagonal-landmarks"
        assert "diagonal=True" in result.notes

    def test_sec33_compact_wins(self):
        result = run_sec33()
        assert result.rows[0][0] == "compact-si-sc"
        assert result.rows[0][2] == pytest.approx(78.7, abs=1.0)

    def test_sec73_numbers(self):
        result = run_sec73()
        values = dict(zip(result.column("quantity"), result.column("value")))
        assert values["design space points"] == 90_000
        assert float(values["our generator (seconds)"]) < 3.0

    def test_sec75_factors(self):
        result = run_sec75()
        by_name = {row[0]: row for row in result.rows}
        pi_ba = next(v for k, v in by_name.items() if k.startswith("pi-BA"))
        assert pi_ba[1] > 100  # >100x speedup
        hls = next(v for k, v in by_name.items() if "Cholesky" in k)
        assert 10 < hls[1] < 25  # ~16.4x

    def test_sec77_fpgas_ordering(self):
        result = run_sec77_fpgas()
        latencies = result.column("latency_ms")
        assert latencies[0] >= latencies[1] >= latencies[2]

    def test_sec77_apps_both_accelerate(self):
        result = run_sec77_apps()
        for row in result.rows:
            speedup = row[result.columns.index("speedup_x")]
            energy = row[result.columns.index("energy_red_x")]
            assert speedup > 3.0
            assert energy > 50.0
