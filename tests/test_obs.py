"""Tests for the unified observability layer (``repro.obs``)."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (
    CLOCK_VIRTUAL,
    LatencyHistogram,
    MetricsRegistry,
    Span,
    Trace,
    global_trace,
    render_rollup,
    reset_global_trace,
    rollup,
    spans_by,
    validate_chrome_trace,
)
from repro.obs.metrics import BIN_FLOOR_S, bin_upper_edge_s
from repro.runtime.profiler import StageTimings


class TestSpan:
    def test_round_trip(self):
        span = Span(
            "solve", "nls", start_s=1.5, duration_s=0.25, depth=2, track=1,
            attributes={"damping": 1e-4},
        )
        assert span.end_s == pytest.approx(1.75)
        assert Span.from_dict(span.as_dict()) == span

    def test_dict_keys_are_canonical(self):
        keys = set(Span("x").as_dict())
        assert keys == {"name", "cat", "start_s", "dur_s", "depth", "track", "args"}


class TestTrace:
    def test_nesting_depth(self):
        trace = Trace()
        with trace.span("outer"):
            with trace.span("middle"):
                with trace.span("inner"):
                    pass
        by_name = {s.name: s for s in trace.spans}
        assert by_name["outer"].depth == 0
        assert by_name["middle"].depth == 1
        assert by_name["inner"].depth == 2
        # Spans are appended on exit: innermost first.
        assert [s.name for s in trace.spans] == ["inner", "middle", "outer"]

    def test_span_yields_live_record(self):
        trace = Trace()
        with trace.span("work", category="test", tag=1) as span:
            span.attributes["late"] = True
        assert span.duration_s >= 0.0
        assert span.attributes == {"tag": 1, "late": True}

    def test_virtual_clock_rejects_measuring(self):
        trace = Trace(clock=CLOCK_VIRTUAL)
        with pytest.raises(ValueError):
            with trace.span("nope"):
                pass

    def test_virtual_spans_pin_track_zero(self):
        trace = Trace(clock=CLOCK_VIRTUAL)

        def record(i):
            trace.add_span("ev", start_s=float(i), duration_s=0.5)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(record, range(16)))
        assert len(trace) == 16
        assert all(s.track == 0 for s in trace.spans)

    def test_thread_safety_and_per_thread_depth(self):
        trace = Trace()
        barrier = threading.Barrier(4)

        def work(_):
            barrier.wait()
            for _ in range(25):
                with trace.span("outer"):
                    with trace.span("inner"):
                        pass

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(4)))
        assert len(trace) == 4 * 25 * 2
        # Nesting stacks are thread-local: every inner span sits at
        # depth 1 no matter how the threads interleaved.
        assert all(s.depth == 1 for s in trace.spans if s.name == "inner")
        assert all(s.depth == 0 for s in trace.spans if s.name == "outer")
        assert len({s.track for s in trace.spans}) <= 4

    def test_absorb_is_atomic_and_shifts_depth(self):
        child = Trace(name="window")
        with child.span("solve", category="nls"):
            pass
        child.add_measured("linearize", category="nls", duration_s=0.5)
        shared = Trace()
        parent = shared.absorb(child, name="window", category="nls",
                               attributes={"frame_id": 3})
        assert parent.attributes == {"frame_id": 3}
        names = [s.name for s in shared.spans]
        assert names[0] == "window"
        assert set(names[1:]) == {"solve", "linearize"}
        child_depths = [s.depth for s in shared.spans[1:]]
        assert all(d >= 1 for d in child_depths)
        # The parent covers its children's extent.
        assert parent.start_s <= min(s.start_s for s in shared.spans[1:])
        assert parent.end_s >= max(s.end_s for s in shared.spans[1:])

    def test_totals(self):
        trace = Trace(clock=CLOCK_VIRTUAL)
        trace.add_span("a", category="x", duration_s=1.0)
        trace.add_span("b", category="x", duration_s=2.0)
        trace.add_span("a", category="y", duration_s=4.0)
        assert trace.totals() == {"x": 3.0, "y": 4.0}
        assert trace.totals(by="name") == {"a": 5.0, "b": 2.0}
        assert trace.totals(by="both") == {"x/a": 1.0, "x/b": 2.0, "y/a": 4.0}

    def test_spans_by_category(self):
        trace = Trace(clock=CLOCK_VIRTUAL)
        trace.add_span("a", category="x")
        trace.add_span("b", category="y")
        assert [s.name for s in spans_by(trace.spans, "y")] == ["b"]


class TestExports:
    def _sample(self):
        trace = Trace(clock=CLOCK_VIRTUAL, name="sample")
        trace.add_span("service", category="serve", start_s=1.0,
                       duration_s=0.25, depth=1, session=0)
        trace.add_span("batch", category="serve", start_s=1.0, duration_s=0.5)
        return trace

    def test_chrome_export_is_schema_valid(self, tmp_path):
        path = self._sample().export_chrome(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []
        events = data["traceEvents"]
        # Timestamps are normalized to the trace start, in microseconds.
        assert min(e["ts"] for e in events) == 0.0
        assert {e["name"] for e in events} == {"service", "batch"}

    def test_validator_flags_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad = {"traceEvents": [{"name": "x", "cat": "c", "ph": "Z",
                                "ts": -1, "dur": 1, "pid": 1, "tid": 0}]}
        problems = validate_chrome_trace(bad)
        assert any("phase" in p for p in problems)
        assert any("ts" in p for p in problems)

    def test_jsonl_round_trip(self, tmp_path):
        trace = self._sample()
        path = trace.export_jsonl(tmp_path / "trace.jsonl")
        loaded = Trace.from_jsonl(path, clock=CLOCK_VIRTUAL)
        assert loaded.spans == trace.spans

    def test_virtual_jsonl_is_byte_stable(self):
        a, b = self._sample(), self._sample()
        assert a.to_jsonl() == b.to_jsonl()


class TestGlobalTrace:
    def test_reset_swaps_instance(self):
        first = global_trace()
        second = reset_global_trace()
        assert first is not second
        assert global_trace() is second


class TestHistogramEdges:
    def test_quantile_zero_returns_smallest_observed_bin(self):
        histogram = LatencyHistogram()
        histogram.record(1.0)  # far above the first bin
        # Pre-fix: rank 0 tripped on the first (empty) bin and reported
        # the bin floor; now q=0 reports the smallest observed sample.
        assert histogram.percentile(0.0) == pytest.approx(1.0)

    def test_quantile_one_is_the_max(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.004):
            histogram.record(value)
        assert histogram.percentile(1.0) == pytest.approx(0.004)

    def test_single_sample_all_quantiles_agree(self):
        histogram = LatencyHistogram()
        histogram.record(0.010)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram.percentile(q) == histogram.percentile(0.5)

    def test_all_samples_below_floor(self):
        histogram = LatencyHistogram()
        for _ in range(5):
            histogram.record(BIN_FLOOR_S / 10)
        assert histogram.counts[0] == 5
        assert histogram.percentile(0.5) == pytest.approx(BIN_FLOOR_S / 10)
        assert histogram.percentile(0.0) <= BIN_FLOOR_S


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc()
        registry.counter("requests_total").inc(2)
        registry.gauge("depth").set(7)
        snapshot = registry.as_dict()
        assert snapshot["counters"]["requests_total"] == 3.0
        assert snapshot["gauges"]["depth"] == 7.0
        with pytest.raises(ValueError):
            registry.counter("requests_total").inc(-1)

    def test_histogram_get_or_create_and_register(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")
        external = LatencyHistogram()
        external.record(0.002)
        registry.register_histogram("ext", external)
        assert registry.as_dict()["histograms"]["ext"]["count"] == 1

    def test_prometheus_dump(self):
        registry = MetricsRegistry()
        registry.counter("served_total", "windows served").inc(5)
        registry.gauge("depth").set(2)
        registry.histogram("latency_seconds").record(0.003)
        text = registry.to_prometheus()
        assert "# TYPE served_total counter" in text
        assert "# HELP served_total windows served" in text
        assert "served_total 5" in text
        assert "# TYPE depth gauge" in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text

    def test_export_json_is_canonical(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        path = registry.export_json(tmp_path / "OBS_METRICS.json")
        text = path.read_text()
        assert text == json.dumps(json.loads(text), sort_keys=True, indent=2) + "\n"

    def test_thread_safe_counting(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")

        def bump(_):
            for _ in range(1000):
                counter.inc()

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(bump, range(4)))
        assert counter.value == 4000


class TestStageTimingsView:
    def test_from_trace_sums_stage_spans(self):
        trace = Trace(clock=CLOCK_VIRTUAL)
        trace.add_span("linearize", category="nls", duration_s=1.0)
        trace.add_span("linearize", category="nls", duration_s=2.0)
        trace.add_span("solve", category="nls", duration_s=0.5)
        trace.add_span("window", category="nls", duration_s=99.0)  # ignored
        timings = StageTimings.from_trace(trace)
        assert timings.linearize_s == pytest.approx(3.0)
        assert timings.solve_s == pytest.approx(0.5)
        assert timings.assemble_s == 0.0
        assert timings.total_s == pytest.approx(3.5)


class TestRollup:
    def test_rollup_orders_by_total(self):
        spans = [
            Span("a", "x", duration_s=1.0),
            Span("b", "x", duration_s=3.0),
            Span("a", "x", duration_s=1.5),
        ]
        rows = rollup(spans)
        assert [(r.category, r.name) for r in rows] == [("x", "b"), ("x", "a")]
        assert rows[1].count == 2
        assert rows[1].mean_s == pytest.approx(1.25)

    def test_render_mentions_names_and_shares(self):
        spans = [Span("solve", "nls", duration_s=0.2)]
        text = render_rollup(spans, title="demo")
        assert "solve" in text and "nls" in text and "100.0%" in text


class TestEngineSpans:
    def test_artifact_fetches_record_provenance(self, tmp_path):
        from repro.engine import Engine
        from repro.engine.stage import Stage

        class Doubler(Stage):
            name = "doubler"
            version = "1"

            def compute(self, config, engine):
                return config * 2

        trace = Trace()
        engine = Engine(use_disk=False, trace=trace)
        stage = Doubler()
        assert engine.run(stage, 21) == 42
        assert engine.run(stage, 21) == 42
        spans = spans_by(trace.spans, "engine")
        assert [s.attributes["source"] for s in spans] == ["computed", "memory"]
        assert all(s.name == "doubler" for s in spans)

    def test_parallel_runs_record_every_fetch(self):
        from repro.engine import Engine
        from repro.engine.stage import Stage

        class Ident(Stage):
            name = "ident"
            version = "1"

            def compute(self, config, engine):
                return config

        trace = Trace()
        engine = Engine(use_disk=False, jobs=4, trace=trace)
        configs = list(range(32))
        assert engine.map(Ident(), configs) == configs
        assert len(spans_by(trace.spans, "engine")) == 32


class TestNlsSpans:
    def test_solver_folds_window_spans_into_shared_trace(self):
        import numpy as np

        from repro.data import make_euroc_sequence
        from repro.slam import EstimatorConfig, SlidingWindowEstimator

        trace = Trace()
        sequence = make_euroc_sequence("MH_01", duration=3.0)
        estimator = SlidingWindowEstimator(
            EstimatorConfig(window_size=4, trace=trace)
        )
        result = estimator.run(sequence)
        windows = [s for s in trace.spans if s.name == "window"]
        assert windows, "expected per-window parent spans"
        assert all("frame_id" in s.attributes for s in windows)
        assert all("iterations" in s.attributes for s in windows)
        # The StageTimings view over the trace reproduces the aggregate
        # the estimator reports (same spans, same sums).
        view = StageTimings.from_trace(trace)
        summary = result.timing_summary()
        assert view.total_s == pytest.approx(summary["total_s"])
        assert view.solve_s == pytest.approx(summary["solve_s"])
        assert np.isfinite(view.total_s)
