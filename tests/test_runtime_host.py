"""Tests for the host-FPGA interface model and the two CLIs."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw import REFERENCE_WORKLOAD, window_latency_seconds
from repro.runtime.host import (
    CONFIG_BYTES,
    HostLink,
    interface_overhead_fraction,
    window_payload_bytes,
)
from repro.synth import high_perf_design


class TestHostInterface:
    def test_reconfiguration_is_three_bytes(self):
        """Sec. 6.2: the host passes exactly three numbers."""
        base = window_payload_bytes(REFERENCE_WORKLOAD, reconfigured=False)
        with_config = window_payload_bytes(REFERENCE_WORKLOAD, reconfigured=True)
        assert with_config - base == CONFIG_BYTES == 3

    def test_overhead_is_negligible(self):
        """The paper's zero-overhead claim: transfer time is a tiny
        fraction of the window's compute time."""
        design = high_perf_design()
        compute = window_latency_seconds(REFERENCE_WORKLOAD, design.config)
        overhead = interface_overhead_fraction(REFERENCE_WORKLOAD, compute)
        assert overhead < 0.05

    def test_payload_scales_with_window(self):
        from repro.data.stats import WindowStats

        small = WindowStats(
            num_features=50,
            avg_observations=4.0,
            num_keyframes=8,
            num_marginalized=5,
            num_observations=200,
        )
        assert window_payload_bytes(small) < window_payload_bytes(REFERENCE_WORKLOAD)

    def test_link_validation(self):
        with pytest.raises(ConfigurationError):
            HostLink(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ConfigurationError):
            interface_overhead_fraction(REFERENCE_WORKLOAD, 0.0)


class TestSynthCli:
    def test_basic_invocation(self, capsys):
        from repro.synth.__main__ import main

        assert main(["--latency-ms", "30"]) == 0
        out = capsys.readouterr().out
        assert "design" in out and "latency" in out

    def test_infeasible_returns_error(self, capsys):
        from repro.synth.__main__ import main

        assert main(["--latency-ms", "1"]) == 1
        assert "infeasible" in capsys.readouterr().err

    def test_emit_writes_files(self, tmp_path, capsys):
        from repro.synth.__main__ import main

        out_dir = tmp_path / "rtl"
        assert main(["--latency-ms", "40", "--emit", str(out_dir)]) == 0
        files = list(out_dir.glob("*.v"))
        assert len(files) == 7  # six design files + testbench

    def test_board_and_objective_flags(self, capsys):
        from repro.synth.__main__ import main

        assert main(["--board", "virtex7-690t", "--objective", "latency"]) == 0
        assert "Virtex-7" in capsys.readouterr().out


class TestExperimentsCli:
    def test_prints_requested_tables(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["sec33", "sec73"]) == 0
        out = capsys.readouterr().out
        assert "== sec33" in out and "== sec73" in out


class TestHostInterfaceEdgeCases:
    def test_zero_observation_window_ships_only_the_prior(self):
        """A keyframe with no tracked features still costs a transfer —
        but only the marginalization prior, never negative or NaN."""
        from repro.data.stats import WindowStats
        from repro.runtime.host import PRIOR_BYTES_PER_STATE, WORD_BYTES

        empty = WindowStats(
            num_features=0,
            avg_observations=0.0,
            num_keyframes=2,
            num_marginalized=0,
            num_observations=0,
        )
        payload = window_payload_bytes(empty)
        prior_states = empty.state_size * (empty.num_keyframes - 1)
        expected = (
            prior_states * WORD_BYTES
            + prior_states * prior_states * WORD_BYTES / 2
        )
        assert payload == expected > 0
        assert PRIOR_BYTES_PER_STATE == 15 * WORD_BYTES
        # The link still charges its setup latency for the tiny payload.
        link = HostLink()
        assert link.transfer_seconds(payload) >= link.setup_latency_s

    def test_unchanged_config_ships_zero_config_bytes(self):
        """When the runtime controller's decision did not change, the
        3-byte configuration word is NOT retransmitted."""
        base = window_payload_bytes(REFERENCE_WORKLOAD)
        unchanged = window_payload_bytes(REFERENCE_WORKLOAD, reconfigured=False)
        assert unchanged == base  # default is the no-reconfiguration path
        link = HostLink()
        delta = link.transfer_seconds(
            window_payload_bytes(REFERENCE_WORKLOAD, reconfigured=True)
        ) - link.transfer_seconds(base)
        assert delta == pytest.approx(CONFIG_BYTES / link.bandwidth_bytes_per_s)

    def test_transfer_under_one_percent_at_fig11_scale(self):
        """Sec. 6.2 quantitatively: at the fig. 11 reference workload the
        host-link transfer is under 1% of the window's compute time."""
        design = high_perf_design()
        compute = window_latency_seconds(REFERENCE_WORKLOAD, design.config)
        overhead = interface_overhead_fraction(
            REFERENCE_WORKLOAD, compute, reconfigured=True
        )
        assert overhead < 0.01
