"""Tests for the learned iteration policy (future-work extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.learned import LearnedIterationPolicy, train_iteration_policy
from repro.runtime.profiler import MAX_ITERATIONS


def synthetic_profile(num_windows=120, seed=0):
    """Profiling data with the physical structure: error falls with both
    iterations and feature count, so sparse windows need more passes."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(10, 300, size=num_windows)
    profile = {}
    for cap in (1, 2, 3, 4, 6):
        samples = []
        for count in counts:
            error = (2.0 / cap**1.2) * (30.0 / np.sqrt(count))
            error *= rng.uniform(0.9, 1.1)
            samples.append((int(count), float(error)))
        profile[cap] = samples
    return profile


class TestTraining:
    def test_rejects_empty_profile(self):
        with pytest.raises(ConfigurationError):
            train_iteration_policy({})

    def test_rejects_mismatched_windows(self):
        profile = synthetic_profile()
        profile[1] = profile[1][:-3]
        with pytest.raises(ConfigurationError):
            train_iteration_policy(profile)

    def test_predictions_in_range(self):
        policy = train_iteration_policy(synthetic_profile())
        for count in (1, 20, 80, 150, 500):
            assert 1 <= policy.predict(count) <= MAX_ITERATIONS

    def test_sparse_windows_need_more_iterations(self):
        policy = train_iteration_policy(
            synthetic_profile(), accuracy_target=1.0
        )
        assert policy.predict(15) >= policy.predict(250)

    def test_tighter_target_needs_more_iterations(self):
        profile = synthetic_profile()
        loose = train_iteration_policy(profile, accuracy_target=3.0)
        tight = train_iteration_policy(profile, accuracy_target=0.5)
        count = 60
        assert tight.predict(count) >= loose.predict(count)

    def test_callable_interface(self):
        policy = train_iteration_policy(synthetic_profile())
        assert policy(100) == policy.predict(100)

    def test_reachable_targets_have_no_fallback_windows(self):
        policy = train_iteration_policy(synthetic_profile())
        assert policy.fallback_windows == 0

    def test_unreachable_target_clamps_and_counts(self):
        """A target below every profiled error has no honest label; the
        default fallback asks for everything and says it did so."""
        policy = train_iteration_policy(
            synthetic_profile(), accuracy_target=1e-9
        )
        assert policy.fallback_windows == 120
        assert policy.predict(60) == MAX_ITERATIONS

    def test_unreachable_target_can_raise_instead(self):
        with pytest.raises(ConfigurationError, match="120 of 120 profiled"):
            train_iteration_policy(
                synthetic_profile(), accuracy_target=1e-9, on_unreachable="raise"
            )

    def test_bogus_fallback_mode_is_rejected(self):
        with pytest.raises(ConfigurationError, match="on_unreachable"):
            train_iteration_policy(synthetic_profile(), on_unreachable="ignore")


class TestIntegrationWithEstimator:
    def test_policy_plugs_into_estimator(self):
        from repro.data import make_euroc_sequence
        from repro.slam import EstimatorConfig, SlidingWindowEstimator

        policy = train_iteration_policy(synthetic_profile(), accuracy_target=1.0)
        sequence = make_euroc_sequence("MH_01", duration=4.0)
        estimator = SlidingWindowEstimator(
            EstimatorConfig(window_size=6, iteration_policy=policy)
        )
        result = estimator.run(sequence)
        assert all(1 <= i <= MAX_ITERATIONS for i in result.iterations_used)

    def test_generalizes_between_buckets(self):
        """Unlike the lookup table, predictions vary smoothly: neighbors
        differ by at most one iteration."""
        policy = train_iteration_policy(synthetic_profile(), accuracy_target=1.0)
        predictions = [policy.predict(n) for n in range(10, 300, 5)]
        jumps = [abs(b - a) for a, b in zip(predictions, predictions[1:])]
        assert max(jumps) <= 1
