"""Tests for the fleet-portfolio tier (``repro.portfolio``).

The load-bearing properties:

* forecasts are canonical: weights normalize, mixtures flatten to a
  per-regime mix summing to 1, resolution has did-you-mean;
* the solver always returns a deployable fleet (counts sum to the
  instance budget, configs within the cap) and reduces *exactly* to
  single-config synthesis for a pure regime — the pinned differential
  against ``minimize_power`` / ``minimize_latency``;
* the marginal router agrees with the brute-force scan on every input;
* partial-reconfiguration charges are zero on self-swap, symmetric, and
  strictly positive across distinct configs;
* the serve integration stays bit-deterministic (repeat runs and the
  process backend reproduce ``SERVE_METRICS.json`` byte for byte) and
  the per-config counters sum exactly to the run totals.
"""

import json
from dataclasses import replace
from types import SimpleNamespace

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.stats import WindowStats
from repro.engine import Engine
from repro.errors import ConfigurationError, InfeasibleDesignError
from repro.hw.config import HardwareConfig
from repro.hw.latency import window_latency_seconds
from repro.obs.validate import validate_portfolio_report
from repro.portfolio import (
    DEFAULT_RECONFIG_MODEL,
    PartialReconfigModel,
    PortfolioObjective,
    PortfolioSpec,
    TrafficForecast,
    available_forecasts,
    brute_force_choice,
    build_portfolio_reconfig_table,
    choose_instance,
    default_portfolio_spec,
    drift_candidate,
    forecast,
    reconfig_distance,
    regime_demands,
    regime_design_spec,
    regime_sizing_workload,
    resolve_forecast,
    solve_portfolio,
)
from repro.portfolio.__main__ import portfolio_report
from repro.scenarios import REGIMES
from repro.serve import LoadProfile
from repro.serve.service import LocalizationService
from repro.synth.optimizer import minimize_latency, minimize_power
from repro.synth.spec import DesignSpec, Objective
from repro.testing.strategies import portfolio_specs, traffic_forecasts


def portfolio_profile(**overrides):
    # Session count and seed pin the 2-config "mixed" solve (the same
    # fleet shape the portfolio-mixed profile deploys), at a short
    # horizon so the suite stays fast.
    base = dict(
        name="portfolio-mini",
        num_sessions=8,
        num_instances=2,
        rate_hz=4.0,
        duration_s=2.0,
        sequence_duration_s=2.0,
        scenario="mixed",
        portfolio="mixed",
        route="marginal",
        seed=0,
    )
    base.update(overrides)
    return LoadProfile(**base)


def run_service(profile, backend="thread"):
    service = LocalizationService(
        profile, engine=Engine(use_disk=False), backend=backend
    )
    return service.run()


# ----------------------------------------------------------------------
# Forecasts
# ----------------------------------------------------------------------


class TestTrafficForecast:
    @given(traffic_forecasts())
    def test_weights_normalize_and_mix_sums_to_one(self, fc):
        assert sum(fc.normalized_weights()) == pytest.approx(1.0)
        mix = fc.regime_mix()
        assert sum(weight for _, weight in mix) == pytest.approx(1.0)
        regimes = [regime for regime, _ in mix]
        assert regimes == sorted(regimes)
        assert set(regimes) <= set(REGIMES)

    def test_named_forecasts_cover_scenarios(self):
        names = available_forecasts()
        assert "mixed" in names and "tunnel-heavy" in names
        assert resolve_forecast("tunnel").is_pure
        assert not resolve_forecast("mixed").is_pure

    def test_resolve_did_you_mean(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            resolve_forecast("mixd")
        spec = forecast({"tunnel": 1.0})
        assert resolve_forecast(spec) is spec

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrafficForecast(name="empty", components=())
        with pytest.raises(ConfigurationError):
            forecast({"tunnel": -1.0})
        with pytest.raises(ConfigurationError):
            forecast({"nope": 1.0})
        with pytest.raises(ConfigurationError):
            forecast({"tunnel": 1.0}, num_sessions=0)

    def test_sizing_workload_is_deterministic(self):
        assert regime_sizing_workload("tunnel", 3) == regime_sizing_workload(
            "tunnel", 3
        )
        stats, iterations = regime_sizing_workload("loop_closure", 0)
        assert isinstance(stats, WindowStats)
        assert iterations >= 1


# ----------------------------------------------------------------------
# Solver
# ----------------------------------------------------------------------


class TestSolver:
    @given(portfolio_specs())
    def test_solution_respects_the_budget(self, spec):
        solution = solve_portfolio(spec)
        assert solution.num_instances == spec.num_instances
        assert 1 <= solution.num_configs <= spec.max_configs
        config_ids = {entry.config_id for entry in solution.entries}
        assert {cid for _, cid in solution.assignment} <= config_ids
        assert len(solution.instance_configs()) == spec.num_instances
        assert solution.provisioned_power_w == pytest.approx(
            sum(entry.power_w * entry.count for entry in solution.entries)
        )
        for entry in solution.entries:
            assert entry.count >= 1
            assert entry.utilization >= 0.0

    def test_pure_regime_single_config_reduces_to_minimize_power(self):
        """The pinned differential: a portfolio of one is synthesis."""
        candidate = DesignSpec(latency_budget_s=0.020)
        fc = resolve_forecast("tunnel")
        spec = PortfolioSpec(
            forecast=fc, candidates=(candidate,), num_instances=2, max_configs=1
        )
        solution = solve_portfolio(spec)
        (demand,) = regime_demands(fc)
        outcome = minimize_power(regime_design_spec(candidate, demand))
        (entry,) = solution.entries
        assert entry.config == outcome.config
        assert entry.count == 2
        assert solution.assignment == (("tunnel", outcome.config.label),)

    def test_pure_regime_latency_objective_reduces_to_minimize_latency(self):
        candidate = DesignSpec(latency_budget_s=0.033, objective=Objective.LATENCY)
        fc = resolve_forecast("highway")
        spec = PortfolioSpec(
            forecast=fc,
            candidates=(candidate,),
            num_instances=1,
            max_configs=1,
            objective=PortfolioObjective.LATENCY,
        )
        solution = solve_portfolio(spec)
        (demand,) = regime_demands(fc)
        outcome = minimize_latency(regime_design_spec(candidate, demand))
        assert solution.entries[0].config == outcome.config
        assert solution.expected_latency_s == pytest.approx(
            window_latency_seconds(
                demand.stats, outcome.config, demand.iterations
            )
        )

    def test_more_configs_never_hurt_the_objective(self):
        narrow = default_portfolio_spec("mixed", num_instances=4, max_configs=1)
        wide = default_portfolio_spec("mixed", num_instances=4, max_configs=2)
        single = solve_portfolio(narrow)
        mixed = solve_portfolio(wide)
        assert (
            mixed.expected_energy_per_window_j
            <= single.expected_energy_per_window_j
        )

    def test_solve_is_deterministic(self):
        spec = default_portfolio_spec("tunnel-heavy", num_instances=3)
        assert solve_portfolio(spec).as_dict() == solve_portfolio(spec).as_dict()

    def test_infeasible_candidates_raise(self):
        impossible = DesignSpec(latency_budget_s=1e-9)
        spec = PortfolioSpec(
            forecast=resolve_forecast("tunnel"),
            candidates=(impossible,),
            num_instances=1,
            max_configs=1,
        )
        with pytest.raises(InfeasibleDesignError):
            solve_portfolio(spec)

    def test_spec_validation(self):
        fc = resolve_forecast("tunnel")
        candidates = (DesignSpec(latency_budget_s=0.020),)
        with pytest.raises(ConfigurationError):
            PortfolioSpec(forecast=fc, candidates=())
        with pytest.raises(ConfigurationError):
            PortfolioSpec(forecast=fc, candidates=candidates, num_instances=0)
        with pytest.raises(ConfigurationError):
            PortfolioSpec(forecast=fc, candidates=candidates, max_configs=0)
        with pytest.raises(ConfigurationError):
            PortfolioSpec(
                forecast=fc, candidates=candidates, latency_slo_s=0.0
            )

    def test_report_is_schema_valid(self):
        solution = solve_portfolio(default_portfolio_spec("mixed", num_instances=4))
        assert validate_portfolio_report(portfolio_report(solution)) == []


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------


class TestRouter:
    @given(
        st.integers(min_value=1, max_value=6).flatmap(
            lambda n: st.tuples(
                st.floats(min_value=0.0, max_value=10.0),
                st.lists(
                    st.floats(min_value=0.0, max_value=10.0),
                    min_size=n, max_size=n,
                ),
                st.lists(
                    st.floats(min_value=1e-6, max_value=1.0),
                    min_size=n, max_size=n,
                ),
                st.lists(
                    st.floats(min_value=0.0, max_value=5.0),
                    min_size=n, max_size=n,
                ),
            )
        )
    )
    def test_choose_matches_brute_force(self, case):
        now, free_at, service_s, energy_j = case
        assert choose_instance(now, free_at, service_s, energy_j) == (
            brute_force_choice(now, free_at, service_s, energy_j)
        )

    def test_ties_break_by_energy_then_index(self):
        assert choose_instance(0.0, [0.0, 0.0], [1.0, 1.0], [2.0, 1.0]) == 1
        assert choose_instance(0.0, [0.0, 0.0], [1.0, 1.0], [1.0, 1.0]) == 0

    def test_busy_instance_loses_to_idle_slower_one(self):
        # Completion on 0 is 5.0 + 1.0; on 1 it's 0.0 + 2.0.
        assert choose_instance(0.0, [5.0, 0.0], [1.0, 2.0], [1.0, 1.0]) == 1

    def test_drift_candidate_respects_margin(self):
        a, b = HardwareConfig(2, 2, 4), HardwareConfig(4, 1, 6)
        services = {a.label: 1.0, b.label: 0.97}
        assert drift_candidate(a, (a, b), services, 0.05) is None
        services = {a.label: 1.0, b.label: 0.90}
        assert drift_candidate(a, (a, b), services, 0.05) == b
        assert drift_candidate(b, (a, b), services, 0.05) is None


# ----------------------------------------------------------------------
# Partial reconfiguration
# ----------------------------------------------------------------------


class TestReconfig:
    def test_self_swap_is_free(self):
        config = HardwareConfig(8, 8, 16)
        charge = DEFAULT_RECONFIG_MODEL.swap_cost(config, config)
        assert charge.seconds == 0.0 and charge.joules == 0.0
        assert reconfig_distance(config, config) == 0

    def test_cost_is_symmetric_and_positive(self):
        a, b = HardwareConfig(2, 2, 4), HardwareConfig(16, 8, 24)
        forward = DEFAULT_RECONFIG_MODEL.swap_cost(a, b)
        backward = DEFAULT_RECONFIG_MODEL.swap_cost(b, a)
        assert forward == backward
        assert forward.seconds > 0 and forward.joules > 0
        assert reconfig_distance(a, b) == reconfig_distance(b, a) > 0

    def test_cost_grows_with_distance(self):
        base = HardwareConfig(4, 4, 8)
        near, far = HardwareConfig(5, 4, 8), HardwareConfig(20, 16, 96)
        model = PartialReconfigModel()
        assert model.swap_cost(base, far).seconds > model.swap_cost(
            base, near
        ).seconds

    def test_table_covers_all_pairs(self):
        configs = (HardwareConfig(2, 2, 4), HardwareConfig(4, 1, 6))
        table = build_portfolio_reconfig_table(configs)
        labels = sorted(c.label for c in configs)
        assert set(table) == {(a, b) for a in labels for b in labels}

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            PartialReconfigModel(base_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            PartialReconfigModel(improvement_margin=1.0)


# ----------------------------------------------------------------------
# Serve integration
# ----------------------------------------------------------------------


class TestServeIntegration:
    def test_profile_validation(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            portfolio_profile(portfolio="mixd")
        with pytest.raises(ConfigurationError):
            portfolio_profile(route="random")
        with pytest.raises(ConfigurationError, match="nothing to swap"):
            portfolio_profile(portfolio="", reconfig_after=2)

    def test_portfolio_pool_is_heterogeneous_and_recorded(self):
        report = run_service(portfolio_profile(num_instances=4))
        metrics = report.metrics
        assert metrics["portfolio"]["name"] == "mixed"
        deployed = {inst["config_id"] for inst in metrics["instances"]}
        solved = {e["config_id"] for e in metrics["portfolio"]["entries"]}
        assert deployed == solved
        assert len(deployed) >= 2
        assert metrics["totals"]["errors"] == 0

    def test_metrics_byte_identical_across_repeats_and_backends(self):
        profile = portfolio_profile()
        first = json.dumps(run_service(profile).metrics, sort_keys=True)
        again = json.dumps(run_service(profile).metrics, sort_keys=True)
        process = json.dumps(
            run_service(profile, backend="process").metrics, sort_keys=True
        )
        assert first == again == process

    def test_per_config_counters_sum_to_totals(self):
        metrics = run_service(portfolio_profile(num_instances=4)).metrics
        configs = metrics["configs"]
        assert configs, "a portfolio run must break out per-config counters"
        assert sum(c["windows_served"] for c in configs) == (
            metrics["totals"]["windows_served"]
        )
        assert sum(c["energy_j"] for c in configs) == pytest.approx(
            metrics["totals"]["energy_j"], rel=1e-12
        )
        assert sum(c["reconfig_energy_j"] for c in configs) == pytest.approx(
            metrics["totals"]["reconfig_energy_j"], rel=1e-12
        )

    def test_fifo_route_still_tracks_configs(self):
        metrics = run_service(portfolio_profile(route="fifo")).metrics
        assert sum(c["windows_served"] for c in metrics["configs"]) == (
            metrics["totals"]["windows_served"]
        )

    def test_forced_drift_reconfigures_and_charges_the_swap(self):
        """A sustained one-sided batch must trigger a partial swap."""
        service = LocalizationService(
            portfolio_profile(num_instances=4, reconfig_after=1),
            engine=Engine(use_disk=False),
        )
        service.prepare()
        assert len(service.portfolio_configs) >= 2
        small = min(service.portfolio_configs, key=HardwareConfig.as_tuple)
        instance = next(i for i in service.pool if i.config == small)
        stats, iterations = regime_sizing_workload("highway", 0)
        batch = [
            (
                SimpleNamespace(iterations=iterations),
                SimpleNamespace(stats=stats),
            )
        ] * 3
        before = instance.free_at
        service._maybe_reconfigure(instance, batch)
        assert instance.config != small
        assert instance.reconfigurations == 1
        assert instance.free_at > before
        assert service.telemetry.reconfigurations == 1
        swapped = service.telemetry.configs[instance.config_id]
        assert swapped.reconfig_energy_j > 0
        assert swapped.reconfig_seconds == pytest.approx(
            instance.free_at - before
        )

    def test_reconfig_run_is_deterministic(self):
        profile = portfolio_profile(reconfig_after=2)
        first = json.dumps(run_service(profile).metrics, sort_keys=True)
        again = json.dumps(run_service(profile).metrics, sort_keys=True)
        assert first == again


class TestCli:
    """python -m repro.portfolio, in-process like the other CLI tests."""

    def test_list_exits_zero(self, capsys):
        from repro.portfolio.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in available_forecasts():
            assert name in out

    def test_solve_exports_a_validatable_report(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main
        from repro.portfolio.__main__ import main

        path = tmp_path / "PORTFOLIO.json"
        assert main(["mixed", "--instances", "2", "--output", str(path)]) == 0
        report = json.loads(path.read_text())
        assert validate_portfolio_report(report) == []
        assert obs_main(["validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "valid portfolio report" in out

    def test_unknown_forecast_exits_two(self, capsys):
        from repro.portfolio.__main__ import main

        assert main(["no-such-forecast"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_instance_budget_exits_two(self, capsys):
        from repro.portfolio.__main__ import main

        assert main(["mixed", "--instances", "0"]) == 2
        assert "error:" in capsys.readouterr().err
