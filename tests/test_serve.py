"""Tests for the multi-session serving tier (``repro.serve``)."""

import json

import pytest

from repro.engine import Engine
from repro.errors import ConfigurationError, ServeError
from repro.serve import (
    Admission,
    LatencyHistogram,
    LoadProfile,
    LocalizationService,
    Scheduler,
    Telemetry,
    WindowRequest,
    available_profiles,
    open_loop_arrivals,
    resolve_profile,
    session_sequence_config,
)
from repro.serve.session import SessionState


def make_request(seq, deadline=1.0, session_id=0, degraded=False):
    return WindowRequest(
        session_id=session_id,
        frame_id=seq,
        ready_time=0.0,
        deadline=deadline,
        iterations=4,
        config=None,
        reconfigured=False,
        degraded=degraded,
        seq=seq,
    )


def mini_profile(**overrides):
    base = dict(
        name="mini",
        num_sessions=3,
        num_instances=2,
        rate_hz=8.0,
        duration_s=1.5,
        sequence_duration_s=2.0,
        seed=7,
    )
    base.update(overrides)
    return LoadProfile(**base)


def run_mini(profile, fidelity="analytical"):
    service = LocalizationService(
        profile, engine=Engine(use_disk=False), fidelity=fidelity
    )
    return service.run()


class TestLoadProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mini_profile(num_sessions=0)
        with pytest.raises(ConfigurationError):
            mini_profile(arrival="push")
        with pytest.raises(ConfigurationError):
            mini_profile(rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            mini_profile(backpressure=100, max_queue=10)
        with pytest.raises(ConfigurationError):
            mini_profile(deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            mini_profile(max_pending_per_session=0)

    def test_registry_and_did_you_mean(self):
        assert {"smoke", "steady", "overload", "closed-loop"} <= set(
            available_profiles()
        )
        assert resolve_profile("smoke").name == "smoke"
        with pytest.raises(ConfigurationError, match="did you mean"):
            resolve_profile("smokey")

    def test_sessions_cycle_the_catalog(self):
        profile = mini_profile()
        names = {session_sequence_config(profile, i).name for i in range(4)}
        assert len(names) == 4
        config = session_sequence_config(profile, 0)
        assert config.duration == profile.sequence_duration_s

    def test_open_loop_arrivals_deterministic_and_bounded(self):
        profile = mini_profile()
        a = open_loop_arrivals(profile, 1, 100)
        b = open_loop_arrivals(profile, 1, 100)
        assert a == b
        assert a != open_loop_arrivals(profile, 2, 100)
        assert all(t < profile.duration_s for t in a)
        assert open_loop_arrivals(profile, 1, 3) == a[:3]
        assert a == sorted(a)


class TestScheduler:
    def test_admission_regimes(self):
        scheduler = Scheduler(max_queue=4, backpressure=2, batch_size=8)
        assert scheduler.admit() is Admission.ACCEPT
        scheduler.push(make_request(1))
        scheduler.push(make_request(2))
        assert scheduler.admit() is Admission.DEGRADE
        scheduler.push(make_request(3, degraded=True))
        scheduler.push(make_request(4, degraded=True))
        assert scheduler.admit() is Admission.SHED
        assert scheduler.as_dict()["degraded"] == 2

    def test_overflow_is_a_typed_error(self):
        scheduler = Scheduler(max_queue=1, backpressure=1)
        scheduler.push(make_request(1))
        with pytest.raises(ServeError, match="admission control bypassed"):
            scheduler.push(make_request(2))

    def test_batches_pop_earliest_deadline_first(self):
        scheduler = Scheduler(batch_size=2)
        scheduler.push(make_request(1, deadline=3.0))
        scheduler.push(make_request(2, deadline=1.0))
        scheduler.push(make_request(3, deadline=2.0))
        first = scheduler.next_batch()
        assert [r.deadline for r in first] == [1.0, 2.0]
        assert [r.deadline for r in scheduler.next_batch()] == [3.0]
        assert scheduler.next_batch() == []

    def test_equal_deadlines_break_ties_by_submission_order(self):
        scheduler = Scheduler(batch_size=4)
        for seq in (5, 2, 9):
            scheduler.push(make_request(seq, deadline=1.0))
        assert [r.seq for r in scheduler.next_batch()] == [2, 5, 9]


class TestTelemetry:
    def test_histogram_percentiles(self):
        histogram = LatencyHistogram()
        for ms in range(1, 101):
            histogram.record(ms * 1e-3)
        assert histogram.total == 100
        # Bin upper edges overestimate by at most one bin width (~12%).
        assert 0.050 <= histogram.percentile(0.50) <= 0.057
        assert 0.095 <= histogram.percentile(0.95) <= 0.107
        assert histogram.percentile(0.99) <= histogram.max_s == 0.1
        assert histogram.as_dict()["count"] == 100

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.99) == 0.0
        assert histogram.mean_s == 0.0

    def test_queue_depth_is_time_weighted(self):
        telemetry = Telemetry()
        telemetry.sample_queue_depth(0.0, 4)  # depth 4 over [0, 2)
        telemetry.sample_queue_depth(2.0, 0)  # depth 0 over [2, 4)
        telemetry.end_time_s = 4.0
        assert telemetry.queue_depth_mean() == pytest.approx(2.0)
        assert telemetry.queue_depth_max == 4


class TestSessionStateMachine:
    @pytest.fixture(scope="class")
    def service(self):
        service = LocalizationService(
            mini_profile(num_sessions=1), engine=Engine(use_disk=False)
        )
        service._build()
        return service

    def test_arrival_and_backlog_ordering(self, service):
        session = service.sessions[0]
        assert session.state is SessionState.WAITING
        assert session.on_arrival(0.1) and session.on_arrival(0.2)
        assert session.state is SessionState.READY
        assert session.take_pending() == (1, 0.1)
        assert session.take_pending() == (2, 0.2)
        assert session.state is SessionState.WAITING
        with pytest.raises(ServeError):
            session.take_pending()

    def test_inflight_transitions_guarded(self, service):
        session = service.sessions[0]
        session.mark_inflight()
        with pytest.raises(ServeError):
            session.mark_inflight()
        session.on_complete()
        with pytest.raises(ServeError):
            session.on_complete()


class TestServeRuns:
    def test_metrics_bit_identical_across_runs(self):
        profile = mini_profile()
        dumps = [
            json.dumps(run_mini(profile).metrics, sort_keys=True, indent=2)
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_basic_accounting(self):
        report = run_mini(mini_profile())
        totals = report.metrics["totals"]
        assert totals["errors"] == 0
        assert totals["windows_served"] > 0
        assert totals["throughput_wps"] > 0
        served = sum(
            s["windows_served"] for s in report.metrics["sessions"]
        )
        assert served == totals["windows_served"]
        assert report.metrics["latency_ms"]["count"] == totals["windows_served"]
        assert totals["energy_j"] > 0
        assert report.metrics["schema"] == 1
        # Wall-clock never leaks into the exported (deterministic) dict.
        assert "wall" not in json.dumps(report.metrics)

    def test_overload_sheds_and_degrades_gracefully(self):
        profile = mini_profile(
            num_sessions=6,
            num_instances=1,
            rate_hz=80.0,
            duration_s=0.5,
            max_queue=3,
            backpressure=1,
            max_pending_per_session=1,
            deadline_s=0.01,
        )
        report = run_mini(profile)
        totals = report.metrics["totals"]
        assert totals["errors"] == 0
        assert totals["windows_shed"] > 0
        assert totals["windows_degraded"] > 0
        assert report.metrics["queue"]["depth_max"] <= profile.max_queue
        assert report.metrics["scheduler"]["shed"] == totals["windows_shed"]

    def test_closed_loop_self_limits(self):
        report = run_mini(
            mini_profile(arrival="closed", think_time_s=0.02, duration_s=0.6)
        )
        totals = report.metrics["totals"]
        assert totals["errors"] == 0 and totals["windows_shed"] == 0
        # Closed-loop arrivals wait for completions, so nobody queues
        # behind more than the fleet itself.
        assert report.metrics["queue"]["depth_max"] <= 3

    def test_functional_fidelity_runs(self):
        report = run_mini(
            mini_profile(num_sessions=1, duration_s=0.8), fidelity="functional"
        )
        totals = report.metrics["totals"]
        assert totals["errors"] == 0 and totals["windows_served"] > 0

    def test_report_render_mentions_key_numbers(self):
        report = run_mini(mini_profile(num_sessions=2))
        rendered = report.render()
        assert "p99" in rendered and "windows/s" in rendered
        assert "seed 7" in rendered

    def test_metrics_file_round_trips(self, tmp_path):
        report = run_mini(mini_profile(num_sessions=2))
        path = report.write_metrics(tmp_path / "SERVE_METRICS.json")
        assert json.loads(path.read_text()) == report.metrics


class TestServeTraces:
    """The virtual-time span trace: deterministic, schema-valid, and
    consistent with the telemetry counters."""

    def _run(self, jobs=1):
        profile = mini_profile()
        service = LocalizationService(
            profile, engine=Engine(use_disk=False, jobs=jobs)
        )
        return service.run()

    def test_trace_byte_identical_across_runs(self):
        dumps = [self._run().trace.to_jsonl() for _ in range(2)]
        assert dumps[0] == dumps[1]

    def test_trace_byte_identical_across_worker_counts(self):
        assert self._run(jobs=1).trace.to_jsonl() == self._run(jobs=4).trace.to_jsonl()

    def test_span_counts_match_telemetry(self):
        report = self._run()
        spans = report.trace.spans
        served = report.metrics["totals"]["windows_served"]
        names = [s.name for s in spans]
        assert names.count("service") == served
        assert names.count("queue_wait") == served
        assert names.count("batch") == report.metrics["batches"]["count"]
        reconfigs = sum(
            s["reconfigurations"] for s in report.metrics["sessions"]
        )
        assert names.count("reconfig") == reconfigs
        # All spans are virtual-timeline spans on track 0, category serve.
        assert all(s.track == 0 and s.category == "serve" for s in spans)

    def test_service_spans_sum_to_busy_time(self):
        report = self._run()
        service_total = sum(
            s.duration_s for s in report.trace.spans if s.name == "service"
        )
        busy = sum(i["busy_seconds"] for i in report.metrics["instances"])
        assert service_total == pytest.approx(busy)

    def test_chrome_export_is_schema_valid(self, tmp_path):
        from repro.obs import validate_chrome_trace

        report = self._run()
        path = report.write_chrome_trace(tmp_path / "trace.json")
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_obs_metrics_export_matches_telemetry(self, tmp_path):
        report = self._run()
        path = report.write_obs_metrics(tmp_path / "OBS_METRICS.json")
        data = json.loads(path.read_text())
        totals = report.metrics["totals"]
        assert data["counters"]["serve_windows_served_total"] == totals[
            "windows_served"
        ]
        assert (
            data["histograms"]["serve_latency_seconds"]["count"]
            == totals["windows_served"]
        )
        assert data["gauges"]["serve_queue_depth_max"] == report.metrics[
            "queue"
        ]["depth_max"]
