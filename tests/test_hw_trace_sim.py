"""Tests for trace-driven co-simulation and the relaxation solver."""

import pytest

from repro.data import make_euroc_sequence
from repro.hw import HardwareConfig
from repro.hw.sim.trace import simulate_trace
from repro.slam import EstimatorConfig, SlidingWindowEstimator
from repro.synth import DesignSpec, exhaustive_search
from repro.synth.relaxation import relaxation_search


@pytest.fixture(scope="module")
def short_run():
    sequence = make_euroc_sequence("MH_01", duration=5.0)
    return SlidingWindowEstimator(EstimatorConfig(window_size=6)).run(sequence)


class TestTraceSimulation:
    def test_one_sample_per_window(self, short_run):
        trace = simulate_trace(short_run, HardwareConfig(20, 10, 30))
        assert len(trace.seconds) == short_run.num_windows
        assert trace.total_seconds > 0
        assert trace.total_energy_j > 0

    def test_simulation_tracks_analytical_model(self, short_run):
        trace = simulate_trace(short_run, HardwareConfig(20, 10, 30))
        assert trace.model_agreement() < 0.35

    def test_bigger_design_faster_on_trace(self, short_run):
        small = simulate_trace(short_run, HardwareConfig(2, 2, 2))
        big = simulate_trace(short_run, HardwareConfig(30, 25, 60))
        assert big.total_seconds < small.total_seconds

    def test_worst_case_bounded_by_total(self, short_run):
        trace = simulate_trace(short_run, HardwareConfig(16, 8, 24))
        assert trace.worst_case_seconds <= trace.total_seconds

    def test_deterministic_given_seed(self, short_run):
        a = simulate_trace(short_run, HardwareConfig(16, 8, 24), seed=3)
        b = simulate_trace(short_run, HardwareConfig(16, 8, 24), seed=3)
        assert a.simulated_cycles == b.simulated_cycles

    def test_model_agreement_empty_trace(self):
        from repro.hw.sim.trace import TraceSimulation

        assert TraceSimulation().model_agreement() == 0.0

    def test_model_agreement_skips_zero_model_windows(self):
        from repro.hw.sim.trace import TraceSimulation

        trace = TraceSimulation(
            simulated_cycles=[110.0, 50.0],
            analytical_cycles=[100.0, 0.0],
        )
        # The zero-model window must not divide-by-zero the mean.
        assert trace.model_agreement() == pytest.approx(0.1)
        all_zero = TraceSimulation(
            simulated_cycles=[50.0], analytical_cycles=[0.0]
        )
        assert all_zero.model_agreement() == 0.0


class TestRelaxationSolver:
    @pytest.mark.parametrize("budget_ms", [20.0, 33.0, 60.0])
    def test_near_optimal(self, budget_ms):
        """The paper's YALMIP solve is 'near-optimal'; our relaxation
        must stay within a few percent of the exact optimum."""
        spec = DesignSpec(latency_budget_s=budget_ms / 1e3)
        exact = exhaustive_search(spec)
        relaxed = relaxation_search(spec)
        assert relaxed.latency_s <= spec.latency_budget_s + 1e-9
        gap = (relaxed.power_w - exact.power_w) / exact.power_w
        assert gap < 0.08

    def test_solution_is_feasible(self):
        from repro.hw import DEFAULT_RESOURCE_MODEL

        spec = DesignSpec(latency_budget_s=0.025)
        outcome = relaxation_search(spec)
        assert DEFAULT_RESOURCE_MODEL.fits(outcome.config, spec.platform)

    def test_fast(self):
        spec = DesignSpec(latency_budget_s=0.030)
        outcome = relaxation_search(spec)
        assert outcome.solve_seconds < 3.0
