"""Robust estimation under injected outliers (failure-injection tests)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.data.sequences import EUROC_SEQUENCES, make_sequence
from repro.data.tracks import TrackerConfig
from repro.errors import ConfigurationError
from repro.slam import EstimatorConfig, SlidingWindowEstimator
from tests.test_slam_problem import tiny_problem


def outlier_sequence(outlier_probability, duration=6.0):
    config = replace(
        EUROC_SEQUENCES["MH_01"],
        duration=duration,
        tracker=TrackerConfig(outlier_probability=outlier_probability),
    )
    return make_sequence(config)


class TestHuberKernel:
    def test_costs_agree_for_inliers(self):
        problem, _ = tiny_problem(noise=0.3)
        robust = replace_huber(problem, 50.0)  # delta far above residuals
        assert robust.cost() == pytest.approx(problem.cost(), rel=1e-9)

    def test_huber_bounds_outlier_cost(self):
        problem, _ = tiny_problem(noise=0.3)
        # Corrupt one observation grossly and isolate its contribution.
        factor = problem.visual_factors[0]
        factor.pixel = factor.pixel + 300.0
        residual = factor.residual_only(
            problem.camera,
            problem.states[factor.anchor],
            problem.states[factor.target],
            problem.inv_depths[factor.feature_id],
        )
        norm = np.linalg.norm(residual)
        quadratic_cost = 0.5 * factor.weight * norm**2
        robust = replace_huber(problem, 2.0)
        huber_cost = robust._visual_cost(residual, factor.weight)
        # Huber grows linearly, not quadratically: orders less cost.
        assert huber_cost < quadratic_cost / 50.0
        assert robust.cost() < problem.cost()

    def test_huber_downweights_in_linear_system(self):
        problem, _ = tiny_problem(noise=0.3)
        problem.visual_factors[0].pixel = problem.visual_factors[0].pixel + 300.0
        plain = problem.build_linear_system()
        robust = replace_huber(problem, 2.0)
        robust_system = robust.build_linear_system()
        fid = problem.visual_factors[0].feature_id
        index = plain.feature_ids.index(fid)
        assert robust_system.u_diag[index] < plain.u_diag[index]

    def test_stepped_preserves_kernel(self):
        problem, _ = tiny_problem()
        robust = replace_huber(problem, 3.0)
        system = robust.build_linear_system()
        d_lambda, d_state = system.solve(damping=1e-3)
        assert robust.stepped(d_lambda, d_state, system).huber_delta == 3.0


def replace_huber(problem, delta):
    from repro.slam.problem import WindowProblem

    return WindowProblem(
        camera=problem.camera,
        states=problem.states,
        inv_depths=problem.inv_depths,
        visual_factors=problem.visual_factors,
        imu_factors=problem.imu_factors,
        priors=problem.priors,
        huber_delta=delta,
    )


class TestOutlierInjection:
    def test_tracker_config_validation(self):
        with pytest.raises(ConfigurationError):
            TrackerConfig(outlier_probability=1.0)

    def test_outliers_actually_injected(self):
        clean = outlier_sequence(0.0, duration=3.0)
        dirty = outlier_sequence(0.3, duration=3.0)
        # Compare shared observations; with p=0.3 many pixels must differ
        # by far more than measurement noise.
        diffs = []
        for frame in range(clean.num_keyframes):
            shared = set(clean.observations[frame].pixels) & set(
                dirty.observations[frame].pixels
            )
            for fid in shared:
                diffs.append(
                    np.linalg.norm(
                        clean.observations[frame].pixels[fid]
                        - dirty.observations[frame].pixels[fid]
                    )
                )
        diffs = np.array(diffs)
        assert (diffs > 50.0).mean() > 0.1

    @pytest.mark.slow
    def test_huber_survives_outliers(self):
        """Failure injection: with 10% gross mismatches the robust
        pipeline (Huber + chi-square gating) stays at centimeter-level
        accuracy while the quadratic one collapses."""
        sequence = outlier_sequence(0.10, duration=6.0)
        plain = SlidingWindowEstimator(
            EstimatorConfig(window_size=8)
        ).run(sequence)
        robust = SlidingWindowEstimator(
            EstimatorConfig(window_size=8, huber_delta=2.5, outlier_gate_px=8.0)
        ).run(sequence)
        plain_error = np.mean([w.relative_error for w in plain.windows[5:]])
        robust_error = np.mean([w.relative_error for w in robust.windows[5:]])
        assert robust_error < plain_error / 10.0
        assert robust_error < 0.10  # still centimeter-grade under outliers
