"""Tests for the MSCKF filtering baseline and the MAP-vs-filter study."""

import numpy as np
import pytest

from repro.baselines.msckf import MsckfConfig, MsckfFilter
from repro.data import make_euroc_sequence
from repro.errors import ConfigurationError
from repro.slam import (
    EstimatorConfig,
    SlidingWindowEstimator,
    absolute_trajectory_error,
)


@pytest.fixture(scope="module")
def clean_run():
    sequence = make_euroc_sequence("MH_01", duration=8.0)
    return sequence, MsckfFilter().run(sequence)


class TestMsckfConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MsckfConfig(max_clones=1)
        with pytest.raises(ConfigurationError):
            MsckfConfig(pixel_sigma=0.0)


class TestMsckfFilter:
    def test_centimeter_accuracy_on_clean_data(self, clean_run):
        _, result = clean_run
        ate = absolute_trajectory_error(
            np.array(result.estimated_positions), np.array(result.true_positions)
        )
        assert ate < 0.05

    def test_updates_fire(self, clean_run):
        _, result = clean_run
        assert result.updates_applied > 50

    def test_errors_stay_bounded(self, clean_run):
        _, result = clean_run
        assert max(result.position_errors) < 0.25

    def test_operation_count_grows_with_duration(self):
        short = MsckfFilter().run(make_euroc_sequence("MH_02", duration=3.0))
        long = MsckfFilter().run(make_euroc_sequence("MH_02", duration=6.0))
        assert long.operation_count > short.operation_count

    def test_fewer_clones_cheaper(self):
        sequence = make_euroc_sequence("MH_02", duration=4.0)
        small = MsckfFilter(MsckfConfig(max_clones=4)).run(sequence)
        big = MsckfFilter(MsckfConfig(max_clones=12)).run(sequence)
        assert small.operation_count < big.operation_count

    def test_gating_rejects_outlier_tracks(self):
        from dataclasses import replace

        from repro.data.sequences import EUROC_SEQUENCES, make_sequence
        from repro.data.tracks import TrackerConfig

        config = replace(
            EUROC_SEQUENCES["MH_01"],
            duration=6.0,
            tracker=TrackerConfig(outlier_probability=0.10),
        )
        result = MsckfFilter().run(make_sequence(config))
        assert result.tracks_rejected > 20  # chi-square gate working


class TestMapVsFiltering:
    """The Sec. 2.1/2.2 comparison the paper cites [72]."""

    def test_both_paradigms_work_on_clean_data(self, clean_run):
        sequence, filter_result = clean_run
        estimator = SlidingWindowEstimator(
            EstimatorConfig(
                window_size=8,
                bootstrap_position_sigma=1e-4,
                bootstrap_rotation_sigma=1e-4,
            )
        )
        map_result = estimator.run(sequence)
        ate_filter = absolute_trajectory_error(
            np.array(filter_result.estimated_positions),
            np.array(filter_result.true_positions),
        )
        ate_map = absolute_trajectory_error(
            np.array(map_result.estimated_positions),
            np.array(map_result.true_positions),
        )
        assert ate_filter < 0.05
        assert ate_map < 0.05

    @pytest.mark.slow
    def test_map_retains_accuracy_under_outliers(self):
        """Under 10% mismatches the robust MAP pipeline stays at least as
        accurate as the filter, while the filter must discard a large
        fraction of its tracks to survive — the robustness asymmetry the
        paper's choice of MAP rests on."""
        from dataclasses import replace

        from repro.data.sequences import EUROC_SEQUENCES, make_sequence
        from repro.data.tracks import TrackerConfig

        config = replace(
            EUROC_SEQUENCES["MH_01"],
            duration=8.0,
            tracker=TrackerConfig(outlier_probability=0.10),
        )
        sequence = make_sequence(config)
        filter_result = MsckfFilter().run(sequence)
        estimator = SlidingWindowEstimator(
            EstimatorConfig(window_size=8, huber_delta=2.5, outlier_gate_px=8.0)
        )
        map_result = estimator.run(sequence)
        ate_filter = absolute_trajectory_error(
            np.array(filter_result.estimated_positions),
            np.array(filter_result.true_positions),
        )
        ate_map = absolute_trajectory_error(
            np.array(map_result.estimated_positions),
            np.array(map_result.true_positions),
        )
        assert ate_map < ate_filter * 1.3
        total = filter_result.updates_applied + filter_result.tracks_rejected
        assert filter_result.tracks_rejected / total > 0.3
