"""Integration tests of the sliding-window estimator on short sequences."""

import numpy as np
import pytest

from repro.data import make_euroc_sequence
from repro.slam import (
    EstimatorConfig,
    SlidingWindowEstimator,
    absolute_trajectory_error,
)
from repro.slam.nls import LMConfig


@pytest.fixture(scope="module")
def short_run():
    sequence = make_euroc_sequence("MH_01", duration=6.0)
    estimator = SlidingWindowEstimator(
        EstimatorConfig(window_size=8, lm=LMConfig(max_iterations=6))
    )
    return sequence, estimator.run(sequence)


class TestEstimatorRun:
    def test_one_window_per_keyframe_after_first(self, short_run):
        sequence, result = short_run
        assert result.num_windows == sequence.num_keyframes - 1

    def test_accuracy_reaches_centimeters(self, short_run):
        _, result = short_run
        errors = [w.newest_position_error for w in result.windows[5:]]
        assert np.mean(errors) < 0.15
        assert max(errors) < 0.5

    def test_ate_is_small(self, short_run):
        _, result = short_run
        ate = absolute_trajectory_error(
            np.array(result.estimated_positions), np.array(result.true_positions)
        )
        assert ate < 0.15

    def test_window_never_exceeds_configured_size(self, short_run):
        _, result = short_run
        assert max(len(w.frame_ids) for w in result.windows) <= 9
        # After warm-up the window is exactly at capacity + the incoming frame.
        assert len(result.windows[-1].frame_ids) == 9

    def test_stats_are_populated(self, short_run):
        _, result = short_run
        steady = result.windows[10:]
        assert all(w.stats.num_features > 10 for w in steady)
        assert all(w.stats.avg_observations >= 1.0 for w in steady)
        assert all(w.stats.state_size == 15 for w in steady)

    def test_iteration_counts_recorded(self, short_run):
        _, result = short_run
        assert len(result.iterations_used) == result.num_windows
        assert all(1 <= i <= 6 for i in result.iterations_used)

    def test_costs_decrease_within_windows(self, short_run):
        _, result = short_run
        improved = sum(1 for w in result.windows if w.final_cost <= w.initial_cost)
        assert improved == result.num_windows


class TestIterationPolicy:
    def test_policy_caps_iterations(self):
        sequence = make_euroc_sequence("MH_01", duration=4.0)
        estimator = SlidingWindowEstimator(
            EstimatorConfig(window_size=6, iteration_policy=lambda n: 2)
        )
        result = estimator.run(sequence)
        assert all(i <= 2 for i in result.iterations_used)

    def test_policy_receives_feature_count(self):
        sequence = make_euroc_sequence("MH_01", duration=4.0)
        seen = []

        def policy(count):
            seen.append(count)
            return 3

        estimator = SlidingWindowEstimator(
            EstimatorConfig(window_size=6, iteration_policy=policy)
        )
        result = estimator.run(sequence)
        assert seen == result.feature_counts

    def test_max_keyframes_limits_run(self):
        sequence = make_euroc_sequence("MH_01", duration=6.0)
        estimator = SlidingWindowEstimator(EstimatorConfig(window_size=6))
        result = estimator.run(sequence, max_keyframes=10)
        assert result.num_windows == 9

    def test_fewer_iterations_no_better_accuracy(self):
        """The Sec. 6 premise: cutting iterations cannot improve accuracy
        on average (it trades accuracy for energy)."""
        sequence = make_euroc_sequence("MH_02", duration=6.0)
        errors = {}
        for cap in (1, 6):
            estimator = SlidingWindowEstimator(
                EstimatorConfig(window_size=8, iteration_policy=lambda n, c=cap: c)
            )
            result = estimator.run(sequence)
            errors[cap] = np.mean([w.relative_error for w in result.windows[5:]])
        assert errors[6] <= errors[1] * 1.5  # 6 iterations never much worse
