"""Suite-wide fixtures and Hypothesis profile selection.

Profiles live in :mod:`repro.testing.strategies`: ``dev`` (default,
small example counts) and ``ci`` (more examples, derandomized so CI can
never flake on an unlucky draw). Select with ``HYPOTHESIS_PROFILE=ci``.
"""

from repro.testing.strategies import register_profiles

register_profiles()
