"""Tests for functional hardware execution: same numbers, true cycles."""

import numpy as np
import pytest

from repro.hw import HardwareConfig
from repro.hw.sim.functional import run_iteration_functional
from tests.test_slam_problem import tiny_problem


class TestFunctionalExecution:
    def test_matches_software_solver_exactly(self):
        """The hardware path must produce the same update as the
        software LinearSystem.solve (shared kernels, same order)."""
        problem, _ = tiny_problem(num_features=10)
        config = HardwareConfig(16, 8, 24)
        damping = 1e-4
        hw = run_iteration_functional(problem, config, damping=damping)
        sw_lambda, sw_state = problem.build_linear_system().solve(damping=damping)
        assert np.allclose(hw.d_lambda, sw_lambda, atol=1e-12)
        assert np.allclose(hw.d_state, sw_state, atol=1e-12)

    def test_step_reduces_cost(self):
        problem, _ = tiny_problem(num_features=8)
        hw = run_iteration_functional(problem, HardwareConfig(8, 8, 8), damping=1e-4)
        system = problem.build_linear_system()
        stepped = problem.stepped(hw.d_lambda, hw.d_state, system)
        assert stepped.cost() < problem.cost()

    def test_cycles_positive_and_config_sensitive(self):
        problem, _ = tiny_problem(num_features=12)
        small = run_iteration_functional(problem, HardwareConfig(2, 2, 1))
        big = run_iteration_functional(problem, HardwareConfig(30, 25, 60))
        assert small.cycles > big.cycles > 0

    def test_cholesky_rounds_reported(self):
        problem, _ = tiny_problem(num_features=6)
        config = HardwareConfig(8, 8, 4)
        hw = run_iteration_functional(problem, config)
        # The reduced system is 30x30 (two keyframes); with 4 Update
        # units that is ceil(30 / 4) rounds.
        assert hw.cholesky_rounds == int(np.ceil(30 / config.s))

    def test_seconds_consistent(self):
        problem, _ = tiny_problem()
        hw = run_iteration_functional(problem, HardwareConfig(8, 8, 8))
        assert hw.seconds == pytest.approx(hw.cycles / 143e6)
