"""Tests for the execution engine: keys, cache correctness, parallelism.

The contract under test is the one ``docs/engine.md`` documents:
identical bits whether an artifact is computed fresh, replayed from the
in-process memo, or decoded from a cold disk cache — and a new cache
key the moment any request field changes.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.data import EUROC_SEQUENCES, KITTI_SEQUENCES
from repro.engine import (
    ESTIMATOR,
    REPLAY,
    SEQUENCE,
    SYNTHESIS,
    TRACE,
    Engine,
    EstimatorRequest,
    PolicySpec,
    ReplayRequest,
    TraceRequest,
    artifact_key,
    config_token,
    sequence_config,
)
from repro.errors import ConfigurationError
from repro.slam import EstimatorConfig
from repro.slam.nls import LMConfig


def short_request(duration=2.5, **estimator_fields):
    return EstimatorRequest(
        sequence=sequence_config("euroc", "MH_01", duration),
        estimator=EstimatorConfig(window_size=6, **estimator_fields),
    )


class TestKeys:
    def test_same_config_same_key(self):
        a = artifact_key("estimator-run", "1", short_request())
        b = artifact_key("estimator-run", "1", short_request())
        assert a == b

    def test_every_estimator_field_changes_key(self):
        base = short_request()
        variants = [
            replace(base, estimator=replace(base.estimator, window_size=7)),
            replace(base, estimator=replace(base.estimator, huber_delta=2.0)),
            replace(
                base,
                estimator=replace(base.estimator, lm=LMConfig(max_iterations=3)),
            ),
            replace(base, policy=PolicySpec(design="Low-Power")),
            replace(base, max_keyframes=10),
        ]
        keys = {artifact_key("estimator-run", "1", v) for v in variants}
        keys.add(artifact_key("estimator-run", "1", base))
        assert len(keys) == len(variants) + 1

    def test_every_sequence_field_changes_key(self):
        base = sequence_config("kitti", "00", 3.0)
        variants = [
            replace(base, duration=3.5),
            replace(base, seed=base.seed + 1),
            replace(base, keyframe_rate=base.keyframe_rate + 1.0),
        ]
        keys = {artifact_key("sequence", "1", v) for v in variants}
        keys.add(artifact_key("sequence", "1", base))
        assert len(keys) == len(variants) + 1

    def test_stage_name_and_version_in_key(self):
        config = short_request()
        assert artifact_key("a", "1", config) != artifact_key("b", "1", config)
        assert artifact_key("a", "1", config) != artifact_key("a", "2", config)

    def test_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            config_token(EstimatorConfig(iteration_policy=lambda s, c: 3))

    def test_distinct_dataclass_types_distinct_tokens(self):
        # Same field values, different type — must not collide.
        euroc = EUROC_SEQUENCES["MH_01"]
        kitti = KITTI_SEQUENCES["00"]
        assert config_token(euroc) != config_token(kitti)

    def test_token_is_json_canonical(self):
        import json

        token = config_token(short_request())
        assert json.loads(json.dumps(token, sort_keys=True)) == token


class TestCacheCorrectness:
    def test_second_run_hits_disk_bit_identically(self, tmp_path):
        request = short_request()
        first = Engine(cache_dir=tmp_path, use_disk=True)
        run_a = first.run(ESTIMATOR, request)
        assert first.stats.computed >= 1 and first.stats.disk_hits == 0

        second = Engine(cache_dir=tmp_path, use_disk=True)
        run_b = second.run(ESTIMATOR, request)
        assert second.stats.disk_hits == 1 and second.stats.computed == 0

        assert np.array_equal(
            np.array(run_a.estimated_positions), np.array(run_b.estimated_positions)
        )
        for wa, wb in zip(run_a.windows, run_b.windows):
            assert wa.final_cost == wb.final_cost
            assert wa.newest_position_error == wb.newest_position_error
            assert wa.iterations == wb.iterations
            assert wa.stats == wb.stats

    def test_memory_hit_returns_same_object(self, tmp_path):
        engine = Engine(cache_dir=tmp_path, use_disk=True)
        request = short_request()
        assert engine.run(ESTIMATOR, request) is engine.run(ESTIMATOR, request)
        assert engine.stats.memory_hits == 1

    def test_no_cache_leaves_disk_untouched(self, tmp_path):
        cache_dir = tmp_path / "never_created"
        engine = Engine(cache_dir=cache_dir, use_disk=False)
        engine.run(SEQUENCE, sequence_config("euroc", "MH_01", 2.0))
        assert not cache_dir.exists()

    def test_changed_field_is_a_miss(self, tmp_path):
        engine = Engine(cache_dir=tmp_path, use_disk=True)
        engine.run(ESTIMATOR, short_request())
        engine.run(ESTIMATOR, short_request(huber_delta=2.0))
        estimator_stats = engine.stats.by_stage[ESTIMATOR.name]
        assert estimator_stats["computed"] == 2
        assert estimator_stats["memory_hits"] == 0
        assert estimator_stats["disk_hits"] == 0

    def test_stale_stage_version_is_a_miss(self, tmp_path):
        request = sequence_config("euroc", "MH_01", 2.0)
        engine = Engine(cache_dir=tmp_path, use_disk=True)
        engine.run(SEQUENCE, request)

        class BumpedSequence(type(SEQUENCE)):
            version = SEQUENCE.version + "-bumped"

        fresh = Engine(cache_dir=tmp_path, use_disk=True)
        fresh.run(BumpedSequence(), request)
        assert fresh.stats.disk_hits == 0 and fresh.stats.computed == 1

    def test_corrupt_blob_is_a_miss(self, tmp_path):
        request = sequence_config("euroc", "MH_01", 2.0)
        engine = Engine(cache_dir=tmp_path, use_disk=True)
        artifact = engine.artifact(SEQUENCE, request)
        blob = engine.cache.path_for(SEQUENCE.name, artifact.key)
        blob.write_bytes(b"not an npz file")

        fresh = Engine(cache_dir=tmp_path, use_disk=True)
        fresh.run(SEQUENCE, request)
        assert fresh.stats.computed == 1


class TestStageCodecs:
    """Each stage's encode/decode round-trips through a cold cache."""

    def test_trace_round_trip(self, tmp_path):
        from repro.hw import HardwareConfig

        request = TraceRequest(
            run=short_request(), hardware=HardwareConfig(nd=15, nm=12, s=40)
        )
        warm = Engine(cache_dir=tmp_path, use_disk=True)
        trace_a = warm.run(TRACE, request)
        cold = Engine(cache_dir=tmp_path, use_disk=True)
        trace_b = cold.run(TRACE, request)
        assert cold.stats.by_stage[TRACE.name]["disk_hits"] == 1
        assert trace_a.seconds == trace_b.seconds
        assert trace_a.energies_j == trace_b.energies_j
        assert trace_a.worst_case_seconds == trace_b.worst_case_seconds

    def test_synthesis_round_trip(self, tmp_path):
        from repro.engine.stages import NAMED_DESIGN_SPECS

        spec = NAMED_DESIGN_SPECS["High-Perf"]
        warm = Engine(cache_dir=tmp_path, use_disk=True)
        design_a = warm.run(SYNTHESIS, spec)
        cold = Engine(cache_dir=tmp_path, use_disk=True)
        design_b = cold.run(SYNTHESIS, spec)
        assert design_a.config == design_b.config
        assert design_a.latency_s == design_b.latency_s
        assert design_a.power_w == design_b.power_w
        assert design_a.utilization == design_b.utilization
        assert design_a.spec.platform.name == design_b.spec.platform.name

    def test_replay_round_trip(self, tmp_path):
        request = ReplayRequest(run=short_request(), design="Low-Power")
        warm = Engine(cache_dir=tmp_path, use_disk=True)
        replay_a = warm.run(REPLAY, request)
        cold = Engine(cache_dir=tmp_path, use_disk=True)
        replay_b = cold.run(REPLAY, request)
        assert replay_a.decisions == replay_b.decisions
        assert replay_a.total_energy_j == replay_b.total_energy_j
        assert replay_a.energy_saving == replay_b.energy_saving
        for iterations in (1, 3, 6):
            assert replay_a.gated_power(iterations) == replay_b.gated_power(iterations)


class TestParallelRunner:
    def test_map_matches_serial(self, tmp_path):
        configs = [
            sequence_config("euroc", "MH_01", 2.0),
            sequence_config("kitti", "00", 2.0),
        ]
        serial = Engine(cache_dir=tmp_path / "a", use_disk=False, jobs=1)
        threaded = Engine(cache_dir=tmp_path / "b", use_disk=False, jobs=2)
        runs_serial = serial.map(SEQUENCE, configs)
        runs_threaded = threaded.map(SEQUENCE, configs)
        for a, b in zip(runs_serial, runs_threaded):
            assert a.config == b.config
            assert np.array_equal(a.timestamps, b.timestamps)

    def test_single_flight_same_key(self, tmp_path):
        engine = Engine(cache_dir=tmp_path, use_disk=True, jobs=4)
        request = sequence_config("euroc", "MH_01", 2.0)
        results = engine.parallel(
            lambda _: engine.run(SEQUENCE, request), list(range(4))
        )
        assert all(r is results[0] for r in results)
        assert engine.stats.computed == 1

    def test_parallel_preserves_order(self, tmp_path):
        engine = Engine(cache_dir=tmp_path, use_disk=False, jobs=3)
        assert engine.parallel(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]


class TestRegistryIntegration:
    def test_unknown_experiment_suggests_close_match(self):
        from repro.experiments import run_experiment

        with pytest.raises(ConfigurationError, match="fig11"):
            run_experiment("fig_11")

    def test_run_experiments_rejects_unknown_upfront(self):
        from repro.experiments import run_experiments

        with pytest.raises(ConfigurationError):
            run_experiments(["fig13a", "nope"])

    def test_common_has_no_lru_cache(self):
        import repro.experiments.common as common

        assert "lru_cache" not in open(common.__file__).read()

    def test_stats_line_mentions_cache(self, tmp_path):
        engine = Engine(cache_dir=tmp_path, use_disk=True)
        engine.run(SEQUENCE, sequence_config("euroc", "MH_01", 2.0))
        line = engine.stats_line()
        assert "1 computed" in line and str(tmp_path) in line


class TestCacheCounters:
    """Blob-level hit/miss accounting on the artifact cache."""

    def test_miss_put_then_hit(self, tmp_path):
        request = sequence_config("euroc", "MH_01", 2.0)
        engine = Engine(cache_dir=tmp_path, use_disk=True)
        engine.run(SEQUENCE, request)
        first = engine.cache_counters()
        assert first["misses"] == 1 and first["puts"] == 1 and first["hits"] == 0

        fresh = Engine(cache_dir=tmp_path, use_disk=True)
        fresh.run(SEQUENCE, request)
        warm = fresh.cache_counters()
        assert warm["hits"] == 1 and warm["misses"] == 0 and warm["puts"] == 0

    def test_corrupt_blob_counted_separately(self, tmp_path):
        request = sequence_config("euroc", "MH_01", 2.0)
        engine = Engine(cache_dir=tmp_path, use_disk=True)
        artifact = engine.artifact(SEQUENCE, request)
        engine.cache.path_for(SEQUENCE.name, artifact.key).write_bytes(b"garbage")

        fresh = Engine(cache_dir=tmp_path, use_disk=True)
        fresh.run(SEQUENCE, request)
        counters = fresh.cache_counters()
        assert counters["corrupt_blob_misses"] == 1
        assert counters["misses"] == 1  # the breakdown is also a miss
        assert counters["puts"] == 1  # the recomputed blob was re-stored

    def test_stale_version_counted_separately(self, tmp_path):
        # The stage version is baked into the artifact key, so a version
        # bump normally lands on a different path (a plain miss). The
        # stale counter guards the defence-in-depth check inside load():
        # a blob sitting at the right key whose recorded version
        # disagrees — rewrite one in place to exercise it.
        request = sequence_config("euroc", "MH_01", 2.0)
        engine = Engine(cache_dir=tmp_path, use_disk=True)
        artifact = engine.artifact(SEQUENCE, request)
        arrays, meta = SEQUENCE.encode(artifact.payload)
        engine.cache.store(
            SEQUENCE.name, SEQUENCE.version + "-old", artifact.key, arrays, meta
        )

        fresh = Engine(cache_dir=tmp_path, use_disk=True)
        fresh.run(SEQUENCE, request)
        counters = fresh.cache_counters()
        assert counters["stale_misses"] == 1 and counters["misses"] == 1

    def test_no_disk_engine_reports_zeros(self):
        counters = Engine(use_disk=False).cache_counters()
        assert set(counters) == {
            "hits",
            "misses",
            "puts",
            "corrupt_blob_misses",
            "stale_misses",
        }
        assert all(value == 0 for value in counters.values())

    def test_stats_line_surfaces_blob_counters(self, tmp_path):
        request = sequence_config("euroc", "MH_01", 2.0)
        engine = Engine(cache_dir=tmp_path, use_disk=True)
        engine.run(SEQUENCE, request)
        line = engine.stats_line()
        assert "blob hits" in line and "puts" in line
        assert Engine(use_disk=False).stats_line().endswith("(disk: disabled)")
