"""Tests for synthetic sequence generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.data import (
    EUROC_SEQUENCES,
    KITTI_SEQUENCES,
    SequenceConfig,
    make_euroc_sequence,
    make_kitti_sequence,
    make_sequence,
)
from repro.data.sequences import _synthesize_imu_segment  # noqa: F401 (API surface)


class TestSequenceConfig:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            SequenceConfig(kind="boat")

    def test_rejects_low_imu_rate(self):
        with pytest.raises(ConfigurationError):
            SequenceConfig(imu_rate=5.0, keyframe_rate=5.0)

    def test_catalogs_complete(self):
        assert sorted(EUROC_SEQUENCES) == [f"MH_0{i}" for i in range(1, 6)]
        assert sorted(KITTI_SEQUENCES) == [f"{i:02d}" for i in range(11)]


class TestSequenceGeneration:
    @pytest.fixture(scope="class")
    def euroc(self):
        return make_euroc_sequence("MH_01", duration=5.0)

    def test_keyframe_count(self, euroc):
        assert euroc.num_keyframes == 26  # 5 s at 5 Hz inclusive

    def test_deterministic(self):
        a = make_euroc_sequence("MH_02", duration=2.0)
        b = make_euroc_sequence("MH_02", duration=2.0)
        assert np.array_equal(a.landmarks, b.landmarks)
        assert np.array_equal(a.imu_segments[0].gyro, b.imu_segments[0].gyro)
        assert a.observations[3].pixels.keys() == b.observations[3].pixels.keys()

    def test_distinct_sequences_differ(self):
        a = make_euroc_sequence("MH_01", duration=2.0)
        b = make_euroc_sequence("MH_03", duration=2.0)
        assert not np.array_equal(a.landmarks[: len(b.landmarks)], b.landmarks[: len(a.landmarks)])

    def test_imu_segment_shapes(self, euroc):
        assert len(euroc.imu_segments) == euroc.num_keyframes - 1
        segment = euroc.imu_segments[0]
        assert segment.gyro.shape == segment.accel.shape
        assert segment.gyro.shape[0] == pytest.approx(
            euroc.config.imu_rate / euroc.config.keyframe_rate, abs=1
        )

    def test_feature_counts_vary(self, euroc):
        counts = euroc.feature_counts()
        assert counts.min() >= 0
        assert counts.max() <= euroc.config.tracker.max_features
        assert counts.std() > 1.0  # the density profile creates variation

    def test_observations_are_in_image(self, euroc):
        camera = euroc.config.camera
        for obs in euroc.observations[:10]:
            for pixel in obs.pixels.values():
                # Noise can push a pixel slightly outside; allow margin.
                assert -10 <= pixel[0] <= camera.width + 10
                assert -10 <= pixel[1] <= camera.height + 10

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigurationError):
            make_euroc_sequence("MH_99")
        with pytest.raises(ConfigurationError):
            make_kitti_sequence("42")

    def test_true_states_follow_trajectory(self, euroc):
        # Velocity should be the numerical derivative of positions.
        dt = 1.0 / euroc.config.keyframe_rate
        p0 = euroc.true_states[0].position
        p1 = euroc.true_states[1].position
        v_avg = (p1 - p0) / dt
        v_mid = 0.5 * (euroc.true_states[0].velocity + euroc.true_states[1].velocity)
        assert np.allclose(v_avg, v_mid, atol=0.2)

    def test_kitti_is_planar_ish(self):
        seq = make_kitti_sequence("01", duration=5.0)
        zs = np.array([s.position[2] for s in seq.true_states])
        assert zs.std() < 1.0  # near-planar driving

    def test_custom_config_roundtrip(self):
        config = SequenceConfig(name="tiny", kind="drone", seed=7, duration=2.0)
        seq = make_sequence(config)
        assert seq.config.name == "tiny"
        assert seq.num_keyframes == 11
