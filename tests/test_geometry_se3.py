"""Tests for SE(3) poses and the 15-DoF navigation state."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import SE3, NavState, STATE_DIM, random_rotation


def tangent6():
    return st.lists(st.floats(-2, 2, allow_nan=False), min_size=6, max_size=6).map(np.array)


def random_pose(seed):
    rng = np.random.default_rng(seed)
    return SE3(random_rotation(rng), rng.normal(size=3))


class TestSE3:
    def test_identity(self):
        pose = SE3.identity()
        p = np.array([1.0, 2.0, 3.0])
        assert np.allclose(pose.transform(p), p)

    def test_compose_inverse(self):
        pose = random_pose(1)
        composed = pose.compose(pose.inverse())
        assert np.allclose(composed.rotation, np.eye(3), atol=1e-12)
        assert np.allclose(composed.translation, 0.0, atol=1e-12)

    def test_transform_round_trip(self):
        pose = random_pose(2)
        p = np.array([0.5, -1.0, 2.0])
        assert np.allclose(pose.transform_to_body(pose.transform(p)), p)

    def test_transform_batch(self):
        pose = random_pose(3)
        pts = np.random.default_rng(0).normal(size=(10, 3))
        batch = pose.transform(pts)
        rows = np.stack([pose.transform(p) for p in pts])
        assert np.allclose(batch, rows)

    @given(tangent6())
    @settings(max_examples=40)
    def test_exp_log_round_trip(self, xi):
        if np.linalg.norm(xi[3:]) >= np.pi - 1e-2:
            xi[3:] *= (np.pi - 0.1) / np.linalg.norm(xi[3:])
        pose = SE3.exp(xi)
        assert np.allclose(pose.log(), xi, atol=1e-8)

    @given(tangent6())
    @settings(max_examples=40)
    def test_retract_local_round_trip(self, delta):
        if np.linalg.norm(delta[3:]) >= np.pi - 1e-2:
            delta[3:] *= (np.pi - 0.1) / np.linalg.norm(delta[3:])
        pose = random_pose(4)
        other = pose.retract(delta)
        assert np.allclose(pose.local(other), delta, atol=1e-8)

    def test_matrix_homogeneous(self):
        pose = random_pose(5)
        p = np.array([1.0, -2.0, 0.3])
        hom = pose.matrix() @ np.append(p, 1.0)
        assert np.allclose(hom[:3], pose.transform(p))


class TestNavState:
    def test_retract_local_round_trip(self):
        rng = np.random.default_rng(6)
        state = NavState(
            pose=SE3(random_rotation(rng), rng.normal(size=3)),
            velocity=rng.normal(size=3),
            bias_gyro=rng.normal(size=3) * 0.01,
            bias_accel=rng.normal(size=3) * 0.1,
        )
        delta = rng.normal(size=STATE_DIM) * 0.5
        other = state.retract(delta)
        assert np.allclose(state.local(other), delta, atol=1e-8)

    def test_zero_retract_is_identity(self):
        state = NavState()
        same = state.retract(np.zeros(STATE_DIM))
        assert np.allclose(same.position, state.position)
        assert np.allclose(same.velocity, state.velocity)

    def test_state_dim_is_paper_k(self):
        # The per-keyframe state size is the k = 15 of Sec. 3.3.
        assert STATE_DIM == 15
