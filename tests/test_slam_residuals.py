"""Numeric verification of the factor Jacobians (VJac / IJac semantics)."""

import numpy as np
import pytest

from repro.geometry import SE3, NavState, random_rotation
from repro.geometry.camera import PinholeCamera
from repro.imu import ImuPreintegration
from repro.slam.residuals import (
    ImuFactor,
    PriorFactor,
    VisualFactor,
    make_pose_anchor_prior,
)


@pytest.fixture
def camera():
    return PinholeCamera()


def make_visual_setup(seed, camera):
    """A feature anchored at one keyframe, observed by another."""
    rng = np.random.default_rng(seed)
    anchor = NavState(pose=SE3(random_rotation(rng) @ np.eye(3), rng.normal(size=3)))
    bearing = np.array([rng.uniform(-0.3, 0.3), rng.uniform(-0.2, 0.2), 1.0])
    inv_depth = rng.uniform(0.1, 0.5)
    point_w = anchor.pose.transform(bearing / inv_depth)
    # Target: anchor pose shifted slightly so the point stays in view.
    target = NavState(
        pose=SE3(anchor.rotation, anchor.position + rng.normal(scale=0.2, size=3))
    )
    pixel = camera.project(target.pose, point_w) + rng.normal(scale=1.0, size=2)
    factor = VisualFactor(0, 0, 1, bearing, pixel)
    return factor, anchor, target, inv_depth


class TestVisualFactor:
    def test_rejects_self_observation(self):
        with pytest.raises(ValueError):
            VisualFactor(0, 1, 1, np.array([0, 0, 1.0]), np.zeros(2))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_jacobians_match_numeric(self, camera, seed):
        factor, anchor, target, inv_depth = make_visual_setup(seed, camera)
        lin = factor.linearize(camera, anchor, target, inv_depth)
        assert lin is not None
        eps = 1e-6

        num_lambda = (
            factor.residual_only(camera, anchor, target, inv_depth + eps)
            - factor.residual_only(camera, anchor, target, inv_depth - eps)
        ) / (2 * eps)
        assert np.allclose(lin.jac_inv_depth.ravel(), num_lambda, atol=1e-4)

        for k in range(6):
            d = np.zeros(6)
            d[k] = eps
            plus = factor.residual_only(
                camera, NavState(pose=anchor.pose.retract(d)), target, inv_depth
            )
            minus = factor.residual_only(
                camera, NavState(pose=anchor.pose.retract(-d)), target, inv_depth
            )
            assert np.allclose(lin.jac_pose_anchor[:, k], (plus - minus) / (2 * eps), atol=1e-4)

            plus = factor.residual_only(
                camera, anchor, NavState(pose=target.pose.retract(d)), inv_depth
            )
            minus = factor.residual_only(
                camera, anchor, NavState(pose=target.pose.retract(-d)), inv_depth
            )
            assert np.allclose(lin.jac_pose_target[:, k], (plus - minus) / (2 * eps), atol=1e-4)

    def test_point_behind_camera_returns_none(self, camera):
        factor, anchor, _, inv_depth = make_visual_setup(0, camera)
        # Target looking the other way: the landmark is behind it.
        behind = NavState(
            pose=SE3(
                anchor.rotation
                @ np.array([[1.0, 0, 0], [0, -1.0, 0], [0, 0, -1.0]]),
                anchor.position,
            )
        )
        assert factor.residual_only(camera, anchor, behind, inv_depth) is None
        assert factor.linearize(camera, anchor, behind, inv_depth) is None

    def test_zero_residual_at_consistent_geometry(self, camera):
        rng = np.random.default_rng(5)
        anchor = NavState(pose=SE3(np.eye(3), np.zeros(3)))
        bearing = np.array([0.1, -0.05, 1.0])
        inv_depth = 0.25
        point_w = bearing / inv_depth
        target = NavState(pose=SE3(np.eye(3), np.array([0.3, 0.0, 0.0])))
        pixel = camera.project(target.pose, point_w)
        factor = VisualFactor(0, 0, 1, bearing, pixel)
        residual = factor.residual_only(camera, anchor, target, inv_depth)
        assert np.allclose(residual, 0.0, atol=1e-10)


def make_imu_setup(seed):
    rng = np.random.default_rng(seed)
    pre = ImuPreintegration()
    for _ in range(40):
        pre.integrate(
            rng.normal(scale=0.3, size=3),
            rng.normal(scale=1.0, size=3) + np.array([0.0, 0.0, 9.8]),
            0.005,
            1e-3,
            1e-2,
        )
    state_i = NavState(
        pose=SE3(random_rotation(rng), rng.normal(size=3)),
        velocity=rng.normal(size=3),
        bias_gyro=rng.normal(scale=0.01, size=3),
        bias_accel=rng.normal(scale=0.05, size=3),
    )
    state_j = NavState(
        pose=SE3(random_rotation(rng), rng.normal(size=3)),
        velocity=rng.normal(size=3),
        bias_gyro=state_i.bias_gyro + rng.normal(scale=0.001, size=3),
        bias_accel=state_i.bias_accel + rng.normal(scale=0.01, size=3),
    )
    return ImuFactor(0, 1, pre), state_i, state_j


class TestImuFactor:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_jacobians_match_numeric(self, seed):
        factor, state_i, state_j = make_imu_setup(seed)
        lin = factor.linearize(state_i, state_j)
        eps = 1e-6
        for k in range(15):
            d = np.zeros(15)
            d[k] = eps
            num_i = (
                factor.linearize(state_i.retract(d), state_j).residual
                - factor.linearize(state_i.retract(-d), state_j).residual
            ) / (2 * eps)
            num_j = (
                factor.linearize(state_i, state_j.retract(d)).residual
                - factor.linearize(state_i, state_j.retract(-d)).residual
            ) / (2 * eps)
            assert np.allclose(lin.jac_i[:, k], num_i, atol=5e-4)
            assert np.allclose(lin.jac_j[:, k], num_j, atol=5e-4)

    def test_zero_residual_for_consistent_states(self):
        """Propagating state i through the deltas must zero the residual."""
        from repro.imu.preintegration import GRAVITY

        factor, state_i, _ = make_imu_setup(3)
        pre = factor.preintegration
        dt = pre.dt_total
        alpha, beta, gamma = pre.corrected_deltas(state_i.bias_gyro, state_i.bias_accel)
        rot_i = state_i.rotation
        state_j = NavState(
            pose=SE3(
                rot_i @ gamma,
                state_i.position
                + state_i.velocity * dt
                + 0.5 * GRAVITY * dt * dt
                + rot_i @ alpha,
            ),
            velocity=state_i.velocity + GRAVITY * dt + rot_i @ beta,
            bias_gyro=state_i.bias_gyro,
            bias_accel=state_i.bias_accel,
        )
        lin = factor.linearize(state_i, state_j)
        assert np.allclose(lin.residual, 0.0, atol=1e-8)

    def test_information_is_positive_definite(self):
        factor, state_i, state_j = make_imu_setup(4)
        lin = factor.linearize(state_i, state_j)
        eigvals = np.linalg.eigvalsh(lin.information)
        assert eigvals.min() > 0.0


class TestPriorFactor:
    def test_contribution_at_linearization_point(self):
        state = NavState()
        prior = make_pose_anchor_prior(0, state)
        h, g = prior.contribution({0: state})
        assert np.allclose(g, 0.0)  # rp = 0 and offset = 0
        assert np.all(np.diag(h) > 0.0)

    def test_cost_grows_with_offset(self):
        state = NavState()
        prior = make_pose_anchor_prior(0, state)
        moved = state.retract(0.1 * np.ones(15))
        assert prior.cost({0: moved}) > prior.cost({0: state})

    def test_contribution_shifts_with_state(self):
        state = NavState()
        prior = make_pose_anchor_prior(0, state)
        delta = 0.05 * np.ones(15)
        moved = state.retract(delta)
        h, g = prior.contribution({0: moved})
        assert np.allclose(g, -h @ delta, atol=1e-10)

    def test_frame_state_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            PriorFactor([0, 1], np.eye(30), np.zeros(30), [NavState()])
