"""Tests for Verilog emission, the structural linter, and the testbench."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.config import HardwareConfig, ND_RANGE, NM_RANGE, S_RANGE
from repro.hw.rtl import (
    emit_design,
    emit_module,
    emit_testbench,
    lint_design,
    lint_source,
)


class TestEmitter:
    def test_design_has_all_modules(self):
        files = emit_design(HardwareConfig(10, 8, 20))
        assert set(files) == {
            "archytas_mac.v",
            "archytas_dschur.v",
            "archytas_mschur.v",
            "archytas_cholesky.v",
            "archytas_param_buffer.v",
            "archytas_top.v",
        }

    def test_parameters_baked_in(self):
        files = emit_design(HardwareConfig(13, 7, 42))
        assert "ND    = 13" in files["archytas_dschur.v"]
        assert "NM    = 7" in files["archytas_mschur.v"]
        assert "S     = 42" in files["archytas_cholesky.v"]
        assert "nd=13 nm=7 s=42" in files["archytas_top.v"]

    def test_runtime_interface_present(self):
        """The Sec. 6.2 host interface: three active-count registers."""
        top = emit_module("archytas_top", HardwareConfig(8, 8, 8))
        for signal in ("cfg_nd_active", "cfg_nm_active", "cfg_s_active", "cfg_we"):
            assert signal in top

    def test_clock_gating_compares_against_active(self):
        dschur = emit_module("archytas_dschur", HardwareConfig(8, 8, 8))
        assert "g < nd_active" in dschur

    def test_param_buffer_sized_by_compact_layout(self):
        from repro.linalg.smatrix import SMatrixLayout

        buffer = emit_module("archytas_param_buffer", HardwareConfig(), k=15, b=15)
        assert f"DEPTH = {SMatrixLayout(15, 15).compact_words}" in buffer

    def test_unknown_module_rejected(self):
        with pytest.raises(KeyError):
            emit_module("nonexistent", HardwareConfig())

    @given(
        st.integers(*ND_RANGE), st.integers(*NM_RANGE), st.integers(*S_RANGE)
    )
    @settings(max_examples=25, deadline=None)
    def test_every_config_lints_clean(self, nd, nm, s):
        config = HardwareConfig(nd, nm, s)
        files = emit_design(config)
        files["archytas_tb.v"] = emit_testbench(config)
        report = lint_design(files)
        assert report.ok, report.errors


class TestLinter:
    def test_clean_module_passes(self):
        source = "module m(input wire a);\n  wire b;\nendmodule\n"
        assert lint_source(source).ok

    def test_unbalanced_module_caught(self):
        report = lint_source("module m(input a);\n")
        assert not report.ok

    def test_unbalanced_begin_end_caught(self):
        source = "module m;\nalways @(*) begin\nendmodule\n"
        report = lint_source(source)
        assert any("begin" in e for e in report.errors)

    def test_leftover_token_caught(self):
        source = "module m;\nparameter N = __ND__;\nendmodule\n"
        report = lint_source(source)
        assert any("template token" in e for e in report.errors)

    def test_comments_ignored(self):
        source = "module m;\n// begin (\n/* module { */\nendmodule\n"
        assert lint_source(source).ok

    def test_cross_file_instantiation_check(self):
        files = {
            "top.v": "module archytas_top;\n  archytas_ghost u0 ();\nendmodule\n"
        }
        report = lint_design(files)
        assert any("never defined" in e for e in report.errors)


class TestTestbench:
    def test_testbench_structure(self):
        tb = emit_testbench(HardwareConfig(16, 10, 40))
        assert "archytas_top dut" in tb
        assert "window_done" in tb
        assert "$fatal" in tb  # self-checking
        assert "8'd8" in tb  # nd/2 gated value

    def test_testbench_lints(self):
        assert lint_source(emit_testbench(HardwareConfig(4, 4, 4))).ok
