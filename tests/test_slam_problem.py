"""Tests for window-problem assembly and the structured solve."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.geometry import SE3, NavState
from repro.geometry.camera import PinholeCamera
from repro.geometry.navstate import STATE_DIM
from repro.imu import ImuPreintegration
from repro.slam.problem import WindowProblem
from repro.slam.residuals import ImuFactor, VisualFactor, make_pose_anchor_prior


def tiny_problem(seed=0, num_features=6, noise=1.0):
    """Two keyframes, a handful of features, one IMU factor, one prior."""
    rng = np.random.default_rng(seed)
    camera = PinholeCamera()
    state0 = NavState(pose=SE3(np.eye(3), np.zeros(3)), velocity=np.array([1.0, 0, 0]))
    true_pose1 = SE3(np.eye(3), np.array([0.4, 0.0, 0.0]))

    factors, inv_depths = [], {}
    for fid in range(num_features):
        bearing = np.array([rng.uniform(-0.4, 0.4), rng.uniform(-0.3, 0.3), 1.0])
        depth = rng.uniform(3.0, 8.0)
        point_w = bearing * depth  # anchor at identity
        pixel = camera.project(true_pose1, point_w) + rng.normal(scale=noise, size=2)
        factors.append(VisualFactor(fid, 0, 1, bearing, pixel))
        inv_depths[fid] = 1.0 / depth * rng.uniform(0.8, 1.25)  # perturbed init

    pre = ImuPreintegration()
    # Constant velocity, flat attitude: specific force = -gravity.
    for _ in range(40):
        pre.integrate(np.zeros(3), np.array([0.0, 0.0, 9.81]), 0.01, 1e-3, 1e-2)
    state1_init = NavState(
        pose=SE3(np.eye(3), np.array([0.35, 0.05, -0.02])),
        velocity=np.array([1.0, 0.05, 0.0]),
    )
    problem = WindowProblem(
        camera=camera,
        states={0: state0, 1: state1_init},
        inv_depths=inv_depths,
        visual_factors=factors,
        imu_factors=[ImuFactor(0, 1, pre)],
        priors=[make_pose_anchor_prior(0, state0)],
    )
    return problem, true_pose1


class TestWindowProblem:
    def test_validation_rejects_unknown_frames(self):
        camera = PinholeCamera()
        with pytest.raises(SolverError):
            WindowProblem(
                camera=camera,
                states={0: NavState()},
                inv_depths={0: 0.2},
                visual_factors=[
                    VisualFactor(0, 0, 7, np.array([0, 0, 1.0]), np.zeros(2))
                ],
            )

    def test_validation_rejects_missing_depth(self):
        camera = PinholeCamera()
        with pytest.raises(SolverError):
            WindowProblem(
                camera=camera,
                states={0: NavState(), 1: NavState()},
                inv_depths={},
                visual_factors=[
                    VisualFactor(0, 0, 1, np.array([0, 0, 1.0]), np.zeros(2))
                ],
            )

    def test_system_dimensions(self):
        problem, _ = tiny_problem(num_features=5)
        system = problem.build_linear_system()
        assert system.u_diag.shape == (5,)
        assert system.w_block.shape == (2 * STATE_DIM, 5)
        assert system.v_block.shape == (2 * STATE_DIM, 2 * STATE_DIM)
        assert system.num_features == 5
        assert system.num_frames == 2

    def test_v_block_symmetric(self):
        problem, _ = tiny_problem()
        system = problem.build_linear_system()
        assert np.allclose(system.v_block, system.v_block.T, atol=1e-9)

    def test_structured_solve_matches_dense(self):
        """The D-type Schur path must equal solving the full arrow system."""
        problem, _ = tiny_problem(num_features=8)
        system = problem.build_linear_system()
        damping = 1e-3
        d_lambda, d_state = system.solve(damping=damping)

        p = len(system.feature_ids)
        u = np.maximum(system.u_diag, 1e-8) + damping
        full = np.block(
            [
                [np.diag(u), system.w_block.T],
                [system.w_block, system.v_block + damping * np.eye(system.v_block.shape[0])],
            ]
        )
        rhs = np.concatenate([system.b_x, system.b_y])
        reference = np.linalg.solve(full, rhs)
        assert np.allclose(d_lambda, reference[:p], atol=1e-6)
        assert np.allclose(d_state, reference[p:], atol=1e-6)

    def test_gradient_matches_numeric(self):
        """b_y must be the negative gradient of the cost wrt keyframe states."""
        problem, _ = tiny_problem(num_features=4)
        system = problem.build_linear_system()
        eps = 1e-6
        frame_ids = system.frame_ids
        for fi, fid in enumerate(frame_ids):
            for k in range(STATE_DIM):
                d = np.zeros(STATE_DIM)
                d[k] = eps
                plus = dict(problem.states)
                plus[fid] = plus[fid].retract(d)
                minus = dict(problem.states)
                minus[fid] = minus[fid].retract(-d)
                p_plus = WindowProblem(
                    problem.camera, plus, problem.inv_depths,
                    problem.visual_factors, problem.imu_factors, problem.priors,
                )
                p_minus = WindowProblem(
                    problem.camera, minus, problem.inv_depths,
                    problem.visual_factors, problem.imu_factors, problem.priors,
                )
                numeric = (p_plus.cost() - p_minus.cost()) / (2 * eps)
                assert np.isclose(
                    -system.b_y[STATE_DIM * fi + k], numeric, rtol=2e-3, atol=2e-3
                )

    def test_step_reduces_cost(self):
        problem, _ = tiny_problem(num_features=8)
        system = problem.build_linear_system()
        d_lambda, d_state = system.solve(damping=1e-4)
        stepped = problem.stepped(d_lambda, d_state, system)
        assert stepped.cost() < problem.cost()

    def test_stepped_does_not_mutate_original(self):
        problem, _ = tiny_problem()
        before = problem.cost()
        system = problem.build_linear_system()
        d_lambda, d_state = system.solve(damping=1e-4)
        problem.stepped(d_lambda, d_state, system)
        assert problem.cost() == pytest.approx(before)
