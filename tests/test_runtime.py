"""Tests for the run-time system (Sec. 6)."""

import numpy as np
import pytest

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.hw import DEFAULT_POWER_MODEL, HardwareConfig
from repro.runtime import (
    IterationTable,
    ReconfigurationTable,
    RuntimeController,
    TwoBitSaturatingCounter,
    build_iteration_table,
    build_reconfiguration_table,
)
from repro.runtime.profiler import MAX_ITERATIONS
from repro.synth import DesignSpec, high_perf_design


def make_stats(features, am=20):
    return WindowStats(
        num_features=features,
        avg_observations=10.0,
        num_keyframes=15,
        num_marginalized=am,
        num_observations=int(features * 10),
    )


class TestIterationTable:
    def test_lookup_monotone(self):
        table = IterationTable()
        iters = [table.lookup(n) for n in (0, 30, 60, 100, 160, 220, 400)]
        assert all(b <= a for a, b in zip(iters, iters[1:]))

    def test_sparse_windows_get_max_iterations(self):
        table = IterationTable()
        assert table.lookup(5) == MAX_ITERATIONS

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IterationTable(thresholds=(10, 5), iterations=(6, 5, 4))
        with pytest.raises(ConfigurationError):
            IterationTable(thresholds=(10,), iterations=(2, 6))  # increasing
        with pytest.raises(ConfigurationError):
            IterationTable(thresholds=(10,), iterations=(9, 1))  # above cap
        with pytest.raises(ConfigurationError):
            IterationTable().lookup(-1)

    def test_build_from_profile(self):
        """A synthetic profile where high feature counts reach the target
        accuracy with few iterations."""
        profile = {}
        for cap in (1, 2, 4, 6):
            samples = []
            for count in range(10, 400, 10):
                # Error falls with both iterations and feature count.
                error = 1.0 / (cap * np.sqrt(count))
                samples.append((count, error))
            profile[cap] = samples
        table = build_iteration_table(profile)
        assert table.lookup(20) >= table.lookup(300)
        assert 1 <= table.lookup(300) <= MAX_ITERATIONS


class TestSaturatingCounter:
    def test_single_disagreement_ignored(self):
        counter = TwoBitSaturatingCounter(initial=6)
        assert counter.update(3) == 6  # first proposal: pending only
        assert counter.update(6) == 6  # back to agreement: reset
        assert counter.update(3) == 6
        assert counter.transitions == 0

    def test_two_consecutive_agreements_apply(self):
        counter = TwoBitSaturatingCounter(initial=6)
        counter.update(3)
        assert counter.update(3) == 3
        assert counter.transitions == 1

    def test_changing_proposals_reset_confidence(self):
        counter = TwoBitSaturatingCounter(initial=6)
        counter.update(3)
        counter.update(4)  # different proposal: restart confidence
        assert counter.current == 6
        assert counter.update(4) == 4

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            TwoBitSaturatingCounter(initial=6, threshold=0)


class TestReconfigurationTable:
    @pytest.fixture(scope="class")
    def setup(self):
        result = high_perf_design()
        table = build_reconfiguration_table(result.config, result.spec)
        return result, table

    def test_entries_for_all_iterations(self, setup):
        _, table = setup
        assert sorted(table.entries) == list(range(1, MAX_ITERATIONS + 1))

    def test_entries_fit_inside_static(self, setup):
        """Equ. 18's key constraint: gated configs never exceed the
        static design (clock gating cannot add hardware)."""
        result, table = setup
        for config in table.entries.values():
            assert config.dominates(result.config)

    def test_fewer_iterations_never_more_power(self, setup):
        _, table = setup
        powers = [table.gated_power(i) for i in range(1, MAX_ITERATIONS + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(powers, powers[1:]))

    def test_gated_power_between_bounds(self, setup):
        result, table = setup
        static_power = DEFAULT_POWER_MODEL.power(result.config)
        for i in range(1, MAX_ITERATIONS + 1):
            assert table.gated_power(i) <= static_power + 1e-12

    def test_reduced_iterations_meet_budget(self, setup):
        """Every gated config must still meet the latency budget at its
        iteration count."""
        from repro.hw.latency import window_latency_seconds

        result, table = setup
        for iterations, config in table.entries.items():
            latency = window_latency_seconds(
                result.spec.workload, config, iterations, result.spec.platform
            )
            assert latency <= result.spec.latency_budget_s + 1e-9

    def test_lookup_clamps(self, setup):
        _, table = setup
        assert table.lookup(0) == table.entries[1]
        assert table.lookup(99) == table.entries[MAX_ITERATIONS]


class TestRuntimeController:
    @pytest.fixture()
    def controller(self):
        result = high_perf_design()
        reconfig = build_reconfiguration_table(result.config, result.spec)
        return RuntimeController(table=IterationTable(), reconfig=reconfig)

    def test_rich_windows_save_energy(self, controller):
        # Plenty of features -> few iterations -> gated-down hardware.
        for _ in range(10):
            controller.process_window(make_stats(300))
        assert controller.energy_saving > 0.2

    def test_sparse_windows_save_little(self, controller):
        for _ in range(10):
            controller.process_window(make_stats(20))
        # Max iterations: only latency-slack gating remains.
        assert controller.energy_saving < 0.2

    def test_hysteresis_limits_reconfigurations(self, controller):
        # Alternating proposals should not cause thrashing.
        for i in range(20):
            controller.process_window(make_stats(300 if i % 2 == 0 else 20))
        assert controller.num_reconfigurations <= 2

    def test_decision_bookkeeping(self, controller):
        decision = controller.process_window(make_stats(300))
        assert decision.energy_j > 0
        assert decision.static_energy_j >= decision.energy_j
        assert decision.proposed_iterations == IterationTable().lookup(300)

    def test_iteration_policy_adapter(self, controller):
        # First call proposes a change; hysteresis keeps the old value.
        assert controller.iteration_policy(300) == MAX_ITERATIONS
        assert controller.iteration_policy(300) == IterationTable().lookup(300)


class TestControllerSessionIsolation:
    """Regression: concurrent serve sessions must not cross-contaminate
    the controller's 2-bit counter state (the documented contract: tables
    shared read-only, one controller per session via ``for_session``)."""

    @pytest.fixture()
    def prototype(self):
        result = high_perf_design()
        reconfig = build_reconfiguration_table(result.config, result.spec)
        return RuntimeController(table=IterationTable(), reconfig=reconfig)

    @staticmethod
    def replay(controller, stream):
        return [controller.decide(features) for features in stream]

    def test_for_session_shares_tables_not_state(self, prototype):
        session = prototype.for_session()
        assert session.table is prototype.table
        assert session.reconfig is prototype.reconfig
        prototype.decide(300)
        prototype.decide(300)
        # The prototype's hysteresis history must not leak into the fork.
        fresh = prototype.for_session()
        assert fresh.decide(300) == prototype.for_session().decide(300)
        assert fresh.decisions == []

    def test_interleaved_sessions_match_isolated_runs(self, prototype):
        # Robot A sees rich windows, robot B sparse — opposite proposals,
        # so any shared counter state would flip decisions.
        stream_a = [300, 300, 20, 20, 300, 300, 300, 20, 300, 300]
        stream_b = [20, 20, 300, 20, 20, 20, 300, 300, 20, 20]
        isolated_a = self.replay(prototype.for_session(), stream_a)
        isolated_b = self.replay(prototype.for_session(), stream_b)

        controller_a = prototype.for_session()
        controller_b = prototype.for_session()
        interleaved_a, interleaved_b = [], []
        for features_a, features_b in zip(stream_a, stream_b):
            interleaved_a.append(controller_a.decide(features_a))
            interleaved_b.append(controller_b.decide(features_b))
        assert interleaved_a == isolated_a
        assert interleaved_b == isolated_b

    def test_shared_controller_would_contaminate(self, prototype):
        # The counter-example the contract exists for: one controller fed
        # both robots' streams diverges from the isolated decisions.
        stream_a = [300, 300, 300, 300]
        isolated_a = self.replay(prototype.for_session(), stream_a)
        shared = prototype.for_session()
        contaminated_a = []
        for features_a in stream_a:
            contaminated_a.append(shared.decide(features_a))
            shared.decide(20)  # robot B interleaves through the same counter
        assert contaminated_a != isolated_a

    def test_degrade_drops_iterations_but_not_counter_state(self, prototype):
        plain = prototype.for_session()
        degraded = prototype.for_session()
        stream = [300, 300, 300, 300]
        for features in stream:
            applied_plain, _, _ = plain.decide(features)
            applied_degraded, config, _ = degraded.decide(features, degrade=2)
            assert applied_degraded == max(1, applied_plain - 2)
            assert config == degraded.reconfig.lookup(applied_degraded)
        # Backpressure fed the counter the *undegraded* proposal, so once
        # load clears both controllers agree again immediately — the
        # recovering one just reports a reconfiguration back up.
        applied_plain, config_plain, _ = plain.decide(300)
        applied_recovered, config_recovered, reconfigured = degraded.decide(300)
        assert (applied_recovered, config_recovered) == (applied_plain, config_plain)
        assert reconfigured
