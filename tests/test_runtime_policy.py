"""Tests for the learned runtime controller (``repro.runtime.policy``).

Covers the frozen-artifact contract (pickle/JSON/digest round-trips,
tamper detection), decision determinism (Hypothesis: decisions are pure
functions of features and weights, bounded by the frozen caps/actions),
the scheduler's learned-admission band semantics, the controller's
counter bypass, and end-to-end serve byte-identity across execution
backends and repeats given one frozen ``POLICY.json``.
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ServeError
from repro.runtime.policy import (
    ADMISSION_ACTIONS,
    ControllerPolicy,
    PolicyTrainSpec,
    admission_features,
    fit_admission_heads,
    fit_error_heads,
    iteration_features,
    load_policy,
    resolve_policy_spec,
    ridge_fit,
)
from repro.runtime.profiler import MAX_ITERATIONS
from repro.serve import Admission, Scheduler


def tiny_policy(**overrides):
    """A hand-built policy with legible decisions.

    Error heads are constant per cap and decreasing, so without the
    drift feature the argmin lands on the middle cap once the energy
    price is added; admission heads score on queue fraction alone
    (accept when near-empty, shed when near-full).
    """
    base = dict(
        name="tiny",
        caps=(1, 2, 4),
        error_heads=(
            (0.30, 0.0, 0.0, 0.0, 0.0),
            (0.05, 0.0, 0.0, 0.0, 0.5),
            (0.04, 0.0, 0.0, 0.0, 0.0),
        ),
        admission_heads=(
            (1.0, -2.0, 0.0, 0.0, 0.0, 0.0),
            (0.2, 1.0, 0.0, 0.0, 0.0, 0.0),
            (-1.0, 3.0, 0.0, 0.0, 0.0, 0.0),
        ),
        energy_weight=0.01,
    )
    base.update(overrides)
    return ControllerPolicy(**base)


class TestControllerPolicyContract:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            tiny_policy(caps=(), error_heads=())
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            tiny_policy(caps=(2, 2, 4))
        with pytest.raises(ConfigurationError, match="must lie in"):
            tiny_policy(caps=(1, 2, MAX_ITERATIONS + 1))
        with pytest.raises(ConfigurationError, match="error heads"):
            tiny_policy(caps=(1, 2))
        with pytest.raises(ConfigurationError, match="one head per action"):
            tiny_policy(admission_heads=((1.0, 0.0, 0.0, 0.0, 0.0, 0.0),))
        with pytest.raises(ConfigurationError, match="error heads must match"):
            tiny_policy(
                error_heads=((0.3, 0.0), (0.05, 0.0), (0.04, 0.0))
            )
        with pytest.raises(ConfigurationError, match="admission heads must match"):
            tiny_policy(
                admission_heads=(
                    (1.0, -2.0, 0.0, 0.0, 0.0),
                    (0.2, 1.0, 0.0, 0.0, 0.0),
                    (-1.0, 3.0, 0.0, 0.0, 0.0),
                )
            )
        with pytest.raises(ConfigurationError, match="energy_weight"):
            tiny_policy(energy_weight=-0.1)
        with pytest.raises(ConfigurationError, match="drift_alpha"):
            tiny_policy(drift_alpha=0.0)

    def test_pickle_round_trip_is_exact(self):
        policy = tiny_policy()
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy
        assert clone.digest == policy.digest

    def test_json_round_trip_is_exact(self, tmp_path):
        policy = tiny_policy(trained_on=("smoke", "steady"))
        path = policy.save(tmp_path / "POLICY.json")
        clone = ControllerPolicy.load(path)
        assert clone == policy
        assert clone.digest == policy.digest

    def test_digest_tracks_content(self):
        assert tiny_policy().digest == tiny_policy().digest
        assert tiny_policy().digest != tiny_policy(energy_weight=0.02).digest

    def test_tampered_artifact_is_rejected(self, tmp_path):
        path = tiny_policy().save(tmp_path / "POLICY.json")
        data = json.loads(path.read_text())
        data["energy_weight"] = 123.0
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError, match="digest mismatch"):
            ControllerPolicy.load(path)

    def test_non_policy_json_is_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "repro.scenarios/v1"}))
        with pytest.raises(ConfigurationError, match="not a policy artifact"):
            ControllerPolicy.load(path)

    def test_load_policy_dispatch(self, tmp_path):
        path = tiny_policy().save(tmp_path / "POLICY.json")
        assert load_policy(str(path)) == tiny_policy()
        with pytest.raises(ConfigurationError, match="must end in .json"):
            load_policy(str(tmp_path / "POLICY"))
        with pytest.raises(ConfigurationError, match="unknown policy spec"):
            resolve_policy_spec("defualt")

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            PolicyTrainSpec(profiles=())
        with pytest.raises(ConfigurationError):
            PolicyTrainSpec(caps=(3, 1))
        with pytest.raises(ConfigurationError):
            PolicyTrainSpec(ridge=0.0)


class TestDecisionProperties:
    @given(
        count=st.integers(min_value=0, max_value=5000),
        drift=st.floats(
            min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_iteration_cap_bounded_and_deterministic(self, count, drift):
        policy = tiny_policy()
        cap = policy.iteration_cap(count, drift)
        assert cap in policy.caps
        assert cap == policy.iteration_cap(count, drift)
        assert cap == pickle.loads(pickle.dumps(policy)).iteration_cap(count, drift)

    @given(
        queue_frac=st.floats(
            min_value=-1.0, max_value=2.0, allow_nan=False, allow_infinity=False
        ),
        headroom=st.floats(
            min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False
        ),
        drift=st.floats(
            min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_admission_bounded_and_deterministic(self, queue_frac, headroom, drift):
        policy = tiny_policy()
        action = policy.admission(queue_frac, 0.25, headroom, drift)
        assert action in ADMISSION_ACTIONS
        assert action == policy.admission(queue_frac, 0.25, headroom, drift)

    def test_features_are_clipped(self):
        assert iteration_features(50, 99.0)[-1] == 1.0
        assert iteration_features(50, -1.0)[-1] == 0.0
        assert admission_features(2.0, 0.5, -9.0, 42.0) == (
            1.0, 1.0, 1.0, 0.5, -1.0, 1.0,
        )

    def test_drift_raises_the_chosen_cap(self):
        """The cap-2 head prices drift in; diverging sessions escalate."""
        policy = tiny_policy()
        assert policy.iteration_cap(100, drift_m=0.0) == 2
        assert policy.iteration_cap(100, drift_m=0.5) == 4


class TestFitHelpers:
    def test_ridge_fit_recovers_linear_targets(self):
        rows = [(1.0, float(i), float(i * i % 7)) for i in range(30)]
        targets = [2.0 * x[0] - 0.5 * x[1] + 0.25 * x[2] for x in rows]
        weights = ridge_fit(rows, targets, ridge=1e-9)
        assert weights == pytest.approx((2.0, -0.5, 0.25), abs=1e-6)

    def test_ridge_fit_is_deterministic(self):
        rows = [(1.0, float(i) / 3.0) for i in range(20)]
        targets = [0.1 * i for i in range(20)]
        assert ridge_fit(rows, targets, 1e-3) == ridge_fit(rows, targets, 1e-3)

    def test_ridge_fit_rejects_empty_and_singular(self):
        with pytest.raises(ConfigurationError, match="at least one sample"):
            ridge_fit([], [], 1e-3)
        with pytest.raises(ConfigurationError, match="singular"):
            ridge_fit([(0.0, 0.0)], [1.0], ridge=0.0)

    def test_fit_error_heads_one_per_cap(self):
        samples = {
            cap: [(iteration_features(n, 0.0), 1.0 / cap) for n in (10, 50, 200)]
            for cap in (1, 2)
        }
        heads = fit_error_heads(samples, (1, 2), ridge=1e-3)
        assert len(heads) == 2
        assert all(len(head) == 5 for head in heads)

    def test_fit_admission_heads_clone_a_separable_teacher(self):
        log = []
        for depth in range(100):
            frac = depth / 100.0
            action = "accept" if frac < 0.3 else "degrade" if frac < 0.8 else "shed"
            log.append(
                {
                    "queue_frac": frac,
                    "band_frac": 0.3,
                    "headroom": 1.0,
                    "drift": 0.0,
                    "action": action,
                }
            )
        heads = fit_admission_heads(log, ridge=1e-6)
        policy = tiny_policy(admission_heads=heads)
        assert policy.admission(0.1, 0.3, 1.0, 0.0) == "accept"
        assert policy.admission(0.5, 0.3, 1.0, 0.0) == "degrade"
        assert policy.admission(0.95, 0.3, 1.0, 0.0) == "shed"

    def test_fit_admission_heads_need_samples(self):
        with pytest.raises(ConfigurationError, match="logged decisions"):
            fit_admission_heads([], ridge=1e-3)


class TestSchedulerPolicyBand:
    def shed_happy_policy(self):
        """A policy whose admission head always says shed."""
        return tiny_policy(
            admission_heads=(
                (-1.0, 0.0, 0.0, 0.0, 0.0, 0.0),
                (-1.0, 0.0, 0.0, 0.0, 0.0, 0.0),
                (1.0, 0.0, 0.0, 0.0, 0.0, 0.0),
            )
        )

    def test_policy_decides_inside_the_band(self):
        scheduler = Scheduler(max_queue=8, backpressure=0, policy=tiny_policy())
        assert scheduler.admit() is Admission.ACCEPT

    def test_hard_bound_overrides_the_policy(self):
        accept_happy = tiny_policy(
            admission_heads=(
                (1.0, 0.0, 0.0, 0.0, 0.0, 0.0),
                (-1.0, 0.0, 0.0, 0.0, 0.0, 0.0),
                (-1.0, 0.0, 0.0, 0.0, 0.0, 0.0),
            )
        )
        scheduler = Scheduler(max_queue=3, backpressure=0, policy=accept_happy)
        for seq in range(3):
            assert scheduler.admit() is Admission.ACCEPT
            scheduler.push(TestSchedulerCounters().make_request(seq))
        assert scheduler.admit() is Admission.SHED

    def test_learned_shed_below_backpressure_demotes_to_degrade(self):
        scheduler = Scheduler(
            max_queue=8, backpressure=4, policy=self.shed_happy_policy()
        )
        assert scheduler.admit() is Admission.DEGRADE


class TestSchedulerCounters:
    def make_request(self, seq, degraded=False):
        from repro.serve.session import WindowRequest

        return WindowRequest(
            session_id=0,
            frame_id=seq,
            ready_time=0.0,
            deadline=1.0,
            iterations=4,
            config=None,
            reconfigured=False,
            degraded=degraded,
            seq=seq,
        )

    def test_negative_backpressure_is_a_typed_error(self):
        with pytest.raises(ServeError, match="backpressure threshold must be >= 0"):
            Scheduler(max_queue=4, backpressure=-1)

    def test_counters_partition_submissions(self):
        scheduler = Scheduler(max_queue=8, backpressure=2)
        scheduler.push(self.make_request(1))
        scheduler.push(self.make_request(2))
        scheduler.push(self.make_request(3, degraded=True))
        scheduler.record_shed()
        counts = scheduler.as_dict()
        assert counts["accepted"] == 2
        assert counts["degraded"] == 1
        assert counts["shed"] == 1
        assert counts["submitted"] == 4
        assert (
            counts["accepted"] + counts["degraded"] + counts["shed"]
            == counts["submitted"]
        )

    def test_degraded_pushes_do_not_count_as_accepted(self):
        scheduler = Scheduler(max_queue=8, backpressure=0)
        scheduler.push(self.make_request(1, degraded=True))
        assert scheduler.accepted == 0
        assert scheduler.degraded == 1


class TestControllerBypass:
    @pytest.fixture(scope="class")
    def reconfig(self):
        from repro.runtime.reconfig import build_reconfiguration_table
        from repro.synth import high_perf_design

        result = high_perf_design()
        return build_reconfiguration_table(result.config, result.spec)

    def make_controller(self, reconfig, policy=None):
        from repro.runtime.controller import RuntimeController
        from repro.runtime.profiler import IterationTable

        return RuntimeController(
            table=IterationTable(), reconfig=reconfig, policy=policy
        )

    def test_policy_bypasses_the_counter(self, reconfig):
        controller = self.make_controller(reconfig, policy=tiny_policy())
        applied, _, _ = controller.decide(100)
        assert applied == tiny_policy().iteration_cap(100, 0.0)
        # The counter still sits at its initial value: the learned path
        # must not have fed it at all.
        assert controller._counter.current == MAX_ITERATIONS
        assert controller._counter.transitions == 0

    def test_drift_ewma_feeds_the_policy(self, reconfig):
        controller = self.make_controller(reconfig, policy=tiny_policy())
        assert controller.drift_estimate == 0.0
        for _ in range(40):
            controller.observe_drift(1.0)
        assert controller.drift_estimate == pytest.approx(1.0, abs=1e-3)
        applied, _, _ = controller.decide(100)
        assert applied == 4  # escalated by the drift feature

    def test_for_session_shares_the_policy_but_not_the_ewma(self, reconfig):
        controller = self.make_controller(reconfig, policy=tiny_policy())
        controller.observe_drift(0.9)
        fresh = controller.for_session()
        assert fresh.policy is controller.policy
        assert fresh.drift_estimate == 0.0

    def test_degrade_still_applies_on_top_of_the_policy(self, reconfig):
        controller = self.make_controller(reconfig, policy=tiny_policy())
        baseline, _, _ = controller.for_session().decide(100)
        degraded, _, _ = controller.decide(100, degrade=1)
        assert degraded == baseline - 1


class TestServeIntegration:
    def run_profile(self, tmp_path, backend="thread", policy_path=None):
        from repro.engine import Engine
        from repro.serve import LoadProfile, LocalizationService

        profile = LoadProfile(
            name="mini-policy",
            num_sessions=3,
            num_instances=2,
            rate_hz=8.0,
            duration_s=1.5,
            sequence_duration_s=2.0,
            seed=7,
            policy=str(policy_path) if policy_path else "",
        )
        service = LocalizationService(
            profile, engine=Engine(use_disk=False), backend=backend
        )
        return service.run()

    def test_frozen_artifact_is_byte_identical_across_backends(self, tmp_path):
        path = tiny_policy().save(tmp_path / "POLICY.json")
        thread = self.run_profile(tmp_path, "thread", path)
        again = self.run_profile(tmp_path, "thread", path)
        process = self.run_profile(tmp_path, "process", path)
        blob = json.dumps(thread.metrics, sort_keys=True)
        assert blob == json.dumps(again.metrics, sort_keys=True)
        assert blob == json.dumps(process.metrics, sort_keys=True)

    def test_metrics_carry_the_policy_identity(self, tmp_path):
        path = tiny_policy().save(tmp_path / "POLICY.json")
        report = self.run_profile(tmp_path, "thread", path)
        assert report.metrics["policy"]["name"] == "tiny"
        assert report.metrics["policy"]["digest"] == tiny_policy().digest
        baseline = self.run_profile(tmp_path, "thread", None)
        assert baseline.metrics["policy"] == {"name": ""}

    def test_scheduler_invariant_holds_in_metrics(self, tmp_path):
        path = tiny_policy().save(tmp_path / "POLICY.json")
        for policy_path in (None, path):
            counts = self.run_profile(tmp_path, "thread", policy_path).metrics[
                "scheduler"
            ]
            assert (
                counts["accepted"] + counts["degraded"] + counts["shed"]
                == counts["submitted"]
            )

    def test_unknown_policy_spec_fails_at_profile_validation(self):
        from repro.serve import LoadProfile

        with pytest.raises(ConfigurationError, match="unknown policy spec"):
            LoadProfile(
                name="bad",
                num_sessions=1,
                num_instances=1,
                rate_hz=4.0,
                duration_s=1.0,
                sequence_duration_s=1.5,
                policy="no-such-spec",
            )
