"""Tests for fixed-point modeling and the wordlength study."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.fixedpoint import QFormat, quantized_solve, wordlength_study


def arrow_system(p=12, q=9, seed=0):
    rng = np.random.default_rng(seed)
    u = rng.uniform(0.5, 3.0, size=p)
    w = rng.normal(size=(q, p)) * 0.4
    base = rng.normal(size=(q, q))
    v = base @ base.T + q * np.eye(q) + w @ np.diag(1.0 / u) @ w.T
    return u, w, v, rng.normal(size=p), rng.normal(size=q)


class TestQFormat:
    def test_resolution(self):
        assert QFormat(fraction_bits=8).resolution == pytest.approx(1 / 256)

    def test_total_bits(self):
        assert QFormat(integer_bits=15, fraction_bits=16).total_bits == 32

    def test_quantize_rounds_to_grid(self):
        q = QFormat(integer_bits=4, fraction_bits=2)  # resolution 0.25
        assert q.quantize(np.array([0.3])) == pytest.approx(0.25)
        assert q.quantize(np.array([0.38])) == pytest.approx(0.5)

    def test_saturation(self):
        q = QFormat(integer_bits=3, fraction_bits=4)
        assert q.quantize(np.array([100.0]))[0] == pytest.approx(q.max_value)
        assert q.quantize(np.array([-100.0]))[0] == pytest.approx(-8.0)

    def test_invalid_format(self):
        with pytest.raises(ConfigurationError):
            QFormat(integer_bits=0)

    @given(st.floats(min_value=-7.0, max_value=7.0, allow_nan=False))
    @settings(max_examples=40)
    def test_quantization_error_bounded(self, value):
        q = QFormat(integer_bits=3, fraction_bits=10)
        error = abs(q.quantize(np.array([value]))[0] - value)
        assert error <= q.resolution / 2 + 1e-12


class TestQuantizedSolve:
    def test_high_precision_matches_double(self):
        u, w, v, bx, by = arrow_system()
        d_lambda, d_state = quantized_solve(u, w, v, bx, by, QFormat(fraction_bits=24))
        full = np.block([[np.diag(u), w.T], [w, v]])
        reference = np.linalg.solve(full, np.concatenate([bx, by]))
        solution = np.concatenate([d_lambda, d_state])
        assert np.allclose(solution, reference, atol=1e-4)

    def test_low_precision_degrades(self):
        u, w, v, bx, by = arrow_system()
        coarse = quantized_solve(u, w, v, bx, by, QFormat(fraction_bits=4))
        fine = quantized_solve(u, w, v, bx, by, QFormat(fraction_bits=20))
        full = np.block([[np.diag(u), w.T], [w, v]])
        reference = np.linalg.solve(full, np.concatenate([bx, by]))
        err_coarse = np.linalg.norm(np.concatenate(coarse) - reference)
        err_fine = np.linalg.norm(np.concatenate(fine) - reference)
        assert err_fine < err_coarse


class TestWordlengthStudy:
    def test_error_monotone_in_bits(self):
        """The classic wordlength curve: error falls with fraction bits."""
        u, w, v, bx, by = arrow_system(seed=3)
        errors = wordlength_study(u, w, v, bx, by)
        bits = sorted(errors)
        values = [errors[b] for b in bits]
        # Allow small non-monotonic wiggle at the floor.
        assert values[0] > values[-1] * 10
        assert all(b <= a * 1.5 for a, b in zip(values, values[1:]))

    def test_q16_is_sufficient(self):
        """The RTL's Q15.16 words keep the solve error below 1e-3 — the
        reason 32-bit fixed point is safe for this workload."""
        u, w, v, bx, by = arrow_system(seed=5)
        errors = wordlength_study(u, w, v, bx, by, fraction_bits=(16,))
        assert errors[16] < 1e-3

    def test_on_real_window(self):
        """Run the study on an actual estimator window's linear system."""
        from tests.test_slam_problem import tiny_problem

        problem, _ = tiny_problem(num_features=8)
        system = problem.build_linear_system()
        errors = wordlength_study(
            np.maximum(system.u_diag, 1e-6),
            system.w_block,
            system.v_block,
            system.b_x,
            system.b_y,
            fraction_bits=(8, 16, 24),
        )
        assert errors[24] <= errors[8]
