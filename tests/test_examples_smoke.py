"""Smoke test: every entry point a reader can run exits cleanly.

Covers the example scripts plus the module CLIs
(``python -m repro.experiments`` / ``repro.synth``), each executed as a
real subprocess with REPRO_EXAMPLE_DURATION shortened so the
estimator-driven ones stay quick, and the engine cache pointed at a
throwaway directory so runs never leak state into the repo. The
``--no-cache`` path is exercised both through the experiments flag and
through the ``REPRO_NO_CACHE`` environment analogue the flagless
examples honor.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def run_entry_point(argv, tmp_path, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_EXAMPLE_DURATION"] = "3.0"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["MPLBACKEND"] = "Agg"  # headless, should any example ever plot
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def assert_clean(completed, name):
    assert completed.returncode == 0, (
        f"{name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{name} printed nothing"


def test_examples_discovered():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, tmp_path):
    completed = run_entry_point([str(script)], tmp_path)
    assert_clean(completed, script.name)


def test_example_runs_without_disk_cache(tmp_path):
    """REPRO_NO_CACHE=1 is the --no-cache of flagless entry points: the
    run succeeds and the cache directory is never created."""
    script = REPO_ROOT / "examples" / "quickstart.py"
    completed = run_entry_point(
        [str(script)], tmp_path, extra_env={"REPRO_NO_CACHE": "1"}
    )
    assert_clean(completed, script.name)
    assert not (tmp_path / "cache").exists()


class TestModuleEntryPoints:
    def test_experiments_list(self, tmp_path):
        completed = run_entry_point(["-m", "repro.experiments", "--list"], tmp_path)
        assert_clean(completed, "repro.experiments --list")
        ids = completed.stdout.split()
        assert "fig11" in ids and len(ids) >= 10

    def test_experiments_no_cache_run(self, tmp_path):
        completed = run_entry_point(
            ["-m", "repro.experiments", "sec33", "--no-cache"], tmp_path
        )
        assert_clean(completed, "repro.experiments sec33 --no-cache")
        assert "disk: disabled" in completed.stdout
        assert not (tmp_path / "cache").exists()

    def test_experiments_unknown_id_exits_two(self, tmp_path):
        completed = run_entry_point(
            ["-m", "repro.experiments", "fig99", "--no-cache"], tmp_path
        )
        assert completed.returncode == 2
        assert "fig99" in completed.stderr

    def test_synth_cli_prints_design(self, tmp_path):
        completed = run_entry_point(
            ["-m", "repro.synth", "--latency-ms", "40"], tmp_path
        )
        assert_clean(completed, "repro.synth")
        assert "design" in completed.stdout and "power" in completed.stdout

    def test_synth_cli_infeasible_exits_one(self, tmp_path):
        completed = run_entry_point(
            ["-m", "repro.synth", "--latency-ms", "0.0001"], tmp_path
        )
        assert completed.returncode == 1
        assert "infeasible" in completed.stderr


class TestServeCli:
    """``python -m repro.serve``: the multi-session serving tier."""

    ARGS = [
        "-m",
        "repro.serve",
        "smoke",
        "--sessions",
        "2",
        "--duration",
        "1.0",
    ]

    def test_list_profiles(self, tmp_path):
        completed = run_entry_point(["-m", "repro.serve", "--list"], tmp_path)
        assert_clean(completed, "repro.serve --list")
        names = completed.stdout.split()
        assert "smoke" in names and "overload" in names

    def test_smoke_run_writes_metrics(self, tmp_path):
        output = tmp_path / "SERVE_METRICS.json"
        completed = run_entry_point([*self.ARGS, "--output", str(output)], tmp_path)
        assert_clean(completed, "repro.serve smoke")
        assert "p99" in completed.stdout
        metrics = json.loads(output.read_text())
        assert metrics["totals"]["errors"] == 0
        assert metrics["totals"]["windows_served"] > 0

    def test_no_cache_flag_and_env_agree(self, tmp_path):
        """--no-cache and REPRO_NO_CACHE both disable the disk cache and
        produce byte-identical metrics (the cache never affects results)."""
        via_flag = tmp_path / "flag.json"
        completed = run_entry_point(
            [*self.ARGS, "--no-cache", "--output", str(via_flag)], tmp_path
        )
        assert_clean(completed, "repro.serve --no-cache")
        assert "disk: disabled" in completed.stdout
        assert not (tmp_path / "cache").exists()

        via_env = tmp_path / "env.json"
        completed = run_entry_point(
            [*self.ARGS, "--output", str(via_env)],
            tmp_path,
            extra_env={"REPRO_NO_CACHE": "1"},
        )
        assert_clean(completed, "repro.serve REPRO_NO_CACHE=1")
        assert not (tmp_path / "cache").exists()
        assert via_flag.read_bytes() == via_env.read_bytes()

    def test_unknown_profile_exits_two_with_suggestion(self, tmp_path):
        completed = run_entry_point(
            ["-m", "repro.serve", "smokey", "--no-cache"], tmp_path
        )
        assert completed.returncode == 2
        assert "smokey" in completed.stderr
        assert "did you mean" in completed.stderr


class TestObsCli:
    """``python -m repro.obs``: trace report + Chrome schema validation,
    fed by a real serve run's exports."""

    def _serve_with_exports(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        obs = tmp_path / "OBS_METRICS.json"
        completed = run_entry_point(
            [
                "-m",
                "repro.serve",
                "smoke",
                "--sessions",
                "2",
                "--duration",
                "1.0",
                "--no-cache",
                "--output",
                str(tmp_path / "SERVE_METRICS.json"),
                "--trace",
                str(trace),
                "--chrome-trace",
                str(chrome),
                "--obs-metrics",
                str(obs),
            ],
            tmp_path,
        )
        assert_clean(completed, "repro.serve with trace exports")
        return trace, chrome, obs

    def test_serve_exports_then_report_and_validate(self, tmp_path):
        trace, chrome, obs = self._serve_with_exports(tmp_path)
        assert trace.exists() and chrome.exists() and obs.exists()
        assert json.loads(obs.read_text())["counters"][
            "serve_windows_served_total"
        ] > 0

        report = run_entry_point(["-m", "repro.obs", "report", str(trace)], tmp_path)
        assert_clean(report, "repro.obs report")
        assert "serve" in report.stdout and "service" in report.stdout

        validate = run_entry_point(
            ["-m", "repro.obs", "validate", str(chrome)], tmp_path
        )
        assert_clean(validate, "repro.obs validate")
        assert "valid Chrome trace" in validate.stdout

    def test_report_missing_file_exits_two(self, tmp_path):
        completed = run_entry_point(
            ["-m", "repro.obs", "report", str(tmp_path / "nope.jsonl")], tmp_path
        )
        assert completed.returncode == 2
