"""Smoke test: every example script runs headless and exits cleanly.

Each example is executed as a real subprocess (the way a reader would
run it), with REPRO_EXAMPLE_DURATION shortened so the estimator-driven
ones stay quick, and the engine cache pointed at a throwaway directory
so runs never leak state into the repo.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_EXAMPLE_DURATION"] = "3.0"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["MPLBACKEND"] = "Agg"  # headless, should any example ever plot
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
