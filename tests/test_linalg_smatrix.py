"""Tests for the compact S-matrix layout (Sec. 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DataError
from repro.linalg import CompactSMatrix, SMatrixLayout
from repro.linalg.smatrix import POSE_DOF


def make_structured_contributions(k, b, seed=0):
    """Random Si (tri-block-diagonal, symmetric) and Sc (6x6 corners)."""
    rng = np.random.default_rng(seed)
    n = k * b
    si = np.zeros((n, n))
    for i in range(b):
        block = rng.normal(size=(k, k))
        si[i * k : (i + 1) * k, i * k : (i + 1) * k] = block + block.T
        if i + 1 < b:
            sub = rng.normal(size=(k, k))
            si[(i + 1) * k : (i + 2) * k, i * k : (i + 1) * k] = sub
            si[i * k : (i + 1) * k, (i + 1) * k : (i + 2) * k] = sub.T
    sc = np.zeros((n, n))
    pose_blocks = rng.normal(size=(b * POSE_DOF, b * POSE_DOF))
    pose_blocks = pose_blocks + pose_blocks.T
    for i in range(b):
        for j in range(b):
            sc[i * k : i * k + POSE_DOF, j * k : j * k + POSE_DOF] = pose_blocks[
                i * POSE_DOF : (i + 1) * POSE_DOF, j * POSE_DOF : (j + 1) * POSE_DOF
            ]
    return si, sc


class TestLayoutModel:
    def test_paper_headline_saving(self):
        """k = 15, b = 15 gives the paper's ~78% saving over dense."""
        layout = SMatrixLayout(k=15, b=15)
        assert layout.dense_words == 50625
        assert layout.compact_words == 18 * 225 + 2 * 15 * 225
        assert layout.saving_vs_dense == pytest.approx(0.78, abs=0.01)

    def test_beats_csr(self):
        """Compact layout uses less space than symmetric CSR (paper: 17.8%)."""
        layout = SMatrixLayout(k=15, b=15)
        assert layout.compact_words < layout.csr_words(symmetric=True)
        assert 0.05 < layout.saving_vs_csr < 0.35

    def test_symmetry_only_saves_half(self):
        layout = SMatrixLayout(k=15, b=15)
        assert layout.symmetric_words == pytest.approx(layout.dense_words / 2, rel=0.01)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SMatrixLayout(k=3, b=15)
        with pytest.raises(ConfigurationError):
            SMatrixLayout(k=15, b=0)

    @given(st.integers(min_value=6, max_value=30), st.integers(min_value=2, max_value=40))
    @settings(max_examples=40)
    def test_compact_always_beats_dense_for_real_sizes(self, k, b):
        layout = SMatrixLayout(k=k, b=b)
        if b >= 3 and k >= 10:
            assert layout.compact_words < layout.dense_words

    def test_pattern_nnz_counts(self):
        layout = SMatrixLayout(k=15, b=15)
        si_nnz = (3 * 15 - 2) * 225
        sc_nnz = 36 * 225
        overlap = 36 * (3 * 15 - 2)
        assert layout.pattern_nnz == si_nnz + sc_nnz - overlap


class TestCompactSMatrix:
    def test_lossless_round_trip(self):
        si, sc = make_structured_contributions(15, 6, seed=1)
        compact = CompactSMatrix.from_contributions(si, sc)
        assert np.allclose(compact.assemble(), si + sc, atol=1e-12)

    def test_rejects_unstructured_si(self):
        si, sc = make_structured_contributions(15, 4, seed=2)
        si[0, 59] = 1.0  # far off-diagonal entry violates the structure
        si[59, 0] = 1.0
        with pytest.raises(DataError):
            CompactSMatrix.from_contributions(si, sc)

    def test_rejects_unstructured_sc(self):
        si, sc = make_structured_contributions(15, 4, seed=3)
        sc[10, 10] = 1.0  # outside the 6x6 pose corner
        with pytest.raises(DataError):
            CompactSMatrix.from_contributions(si, sc)

    def test_stored_words_matches_model(self):
        compact = CompactSMatrix(15, 12)
        assert compact.stored_words == SMatrixLayout(15, 12).compact_words

    def test_rejects_bad_size(self):
        with pytest.raises(DataError):
            CompactSMatrix.from_contributions(np.eye(16), np.eye(16))
