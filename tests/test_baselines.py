"""Tests for CPU baselines, the dense LM reference, and comparators."""

import numpy as np
import pytest

from repro.baselines import (
    ARM_A57,
    BAX,
    HLS_CHOLESKY,
    INTEL_COMET_LAKE,
    PI_BA,
    PISCES,
    PRIOR_ACCELERATORS,
    ZHANG_RSS17,
    dense_lm_solve,
)
from repro.errors import ConfigurationError
from repro.hw import HardwareConfig, REFERENCE_WORKLOAD
from repro.hw.latency import (
    cholesky_latency,
    nls_iteration_latency,
    window_latency_seconds,
)
from repro.hw.power import DEFAULT_POWER_MODEL
from repro.slam.nls import LMConfig, levenberg_marquardt
from repro.synth import high_perf_design
from tests.test_slam_problem import tiny_problem


class TestCpuPlatforms:
    def test_platform_validation(self):
        from repro.baselines.cpu import CpuPlatform

        with pytest.raises(ConfigurationError):
            CpuPlatform("bad", 0, 1e9, 1e8, 10.0)
        with pytest.raises(ConfigurationError):
            CpuPlatform("bad", 4, 1e9, -1.0, 10.0)

    def test_intel_faster_than_arm(self):
        t_intel = INTEL_COMET_LAKE.window_time(REFERENCE_WORKLOAD)
        t_arm = ARM_A57.window_time(REFERENCE_WORKLOAD)
        assert t_intel < t_arm

    def test_arm_lower_energy_than_intel(self):
        """The Arm board burns far less power; its energy per window is
        lower despite being slower — the paper's speedup-vs-energy split."""
        e_intel = INTEL_COMET_LAKE.window_energy(REFERENCE_WORKLOAD)
        e_arm = ARM_A57.window_energy(REFERENCE_WORKLOAD)
        assert e_arm < e_intel

    def test_headline_speedups(self):
        """Sec. 7.4: High-Perf achieves ~6.2x over Intel and ~39.7x over
        Arm on the full-scale workload (we assert the band, not the digit)."""
        hp = high_perf_design()
        t_hp = window_latency_seconds(REFERENCE_WORKLOAD, hp.config)
        intel_speedup = INTEL_COMET_LAKE.window_time(REFERENCE_WORKLOAD) / t_hp
        arm_speedup = ARM_A57.window_time(REFERENCE_WORKLOAD) / t_hp
        assert 4.0 < intel_speedup < 9.0
        assert 25.0 < arm_speedup < 55.0

    def test_headline_energy_reductions(self):
        hp = high_perf_design()
        t_hp = window_latency_seconds(REFERENCE_WORKLOAD, hp.config)
        e_hp = t_hp * hp.power_w
        intel_ratio = INTEL_COMET_LAKE.window_energy(REFERENCE_WORKLOAD) / e_hp
        arm_ratio = ARM_A57.window_energy(REFERENCE_WORKLOAD) / e_hp
        assert 50.0 < intel_ratio < 120.0
        assert 9.0 < arm_ratio < 25.0

    def test_time_scales_with_workload(self):
        from repro.data.stats import WindowStats

        small = WindowStats(50, 4.0, 8, 6, num_observations=200)
        assert INTEL_COMET_LAKE.window_time(small) < INTEL_COMET_LAKE.window_time(
            REFERENCE_WORKLOAD
        )


class TestDenseLmReference:
    def test_matches_structured_solver(self):
        """The D-type Schur path and the dense (ceres-style) solver must
        land on the same optimum — the correctness contract."""
        problem, _ = tiny_problem(num_features=10)
        structured = levenberg_marquardt(problem, LMConfig(max_iterations=12))
        dense = dense_lm_solve(problem, LMConfig(max_iterations=12))
        assert dense.final_cost == pytest.approx(structured.final_cost, rel=1e-4)
        for fid in structured.problem.states:
            assert np.allclose(
                structured.problem.states[fid].position,
                dense.problem.states[fid].position,
                atol=1e-5,
            )

    def test_reduces_cost(self):
        problem, _ = tiny_problem()
        result = dense_lm_solve(problem)
        assert result.final_cost < result.initial_cost


class TestPriorAccelerators:
    def test_catalog(self):
        assert set(PRIOR_ACCELERATORS) == {"pi-ba", "bax", "zhang-rss17", "pisces"}

    def test_paper_ratios_reproduced(self):
        """Sec. 7.5 headline factors against the High-Perf design,
        normalized per NLS iteration."""
        hp = high_perf_design()
        t_iter = nls_iteration_latency(REFERENCE_WORKLOAD, hp.config) / 143e6
        e_iter = t_iter * hp.power_w
        assert PI_BA.speedup_of(t_iter) == pytest.approx(137, rel=0.25)
        assert PI_BA.energy_reduction_of(e_iter) == pytest.approx(132, rel=0.25)
        assert BAX.speedup_of(t_iter) == pytest.approx(9, rel=0.3)
        # BAX: Archytas consumes ~44% less energy.
        assert 1.0 - e_iter / BAX.per_iteration_j == pytest.approx(0.44, abs=0.15)
        assert ZHANG_RSS17.speedup_of(t_iter) > 15
        assert PISCES.speedup_of(t_iter) == pytest.approx(5.4, rel=0.3)
        # PISCES: Archytas spends ~3x MORE energy (it's a low-power design).
        assert e_iter / PISCES.per_iteration_j == pytest.approx(3.0, rel=0.4)

    def test_marginalization_support_flags(self):
        assert not PI_BA.supports_marginalization
        assert not BAX.supports_marginalization
        assert ZHANG_RSS17.supports_marginalization

    def test_validation(self):
        from repro.baselines.accelerators import PriorAccelerator

        with pytest.raises(ConfigurationError):
            PriorAccelerator("bad", -1.0, 1.0)


class TestHlsComparator:
    def test_slowdown_matches_paper(self):
        """Sec. 7.5: the HLS Cholesky is ~16.4x slower than the hand
        design (same matrix, each at its own achieved clock)."""
        hp = high_perf_design()
        m = 225
        hand_cycles = cholesky_latency(m, hp.config.s)
        slowdown = HLS_CHOLESKY.slowdown_vs(hand_cycles, 143e6, m)
        assert slowdown == pytest.approx(16.4, rel=0.3)

    def test_lower_clock_and_more_resources(self):
        assert HLS_CHOLESKY.frequency_hz < 143e6 * 0.75
        assert HLS_CHOLESKY.resource_factor == pytest.approx(2.0)

    def test_cycles_grow_with_matrix(self):
        assert HLS_CHOLESKY.factorization_cycles(100) < HLS_CHOLESKY.factorization_cycles(200)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            HLS_CHOLESKY.factorization_cycles(0)
