"""Tests for the Levenberg-Marquardt solver."""

import numpy as np
import pytest

from repro.slam.nls import LMConfig, levenberg_marquardt
from tests.test_slam_problem import tiny_problem


class TestLMConfig:
    def test_rejects_bad_schedule(self):
        with pytest.raises(ValueError):
            LMConfig(damping_up=0.5)
        with pytest.raises(ValueError):
            LMConfig(damping_down=1.5)

    def test_rejects_bad_iterations(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            LMConfig(max_iterations=0)


class TestLevenbergMarquardt:
    def test_cost_monotone_nonincreasing(self):
        problem, _ = tiny_problem(num_features=8)
        result = levenberg_marquardt(problem, LMConfig(max_iterations=6))
        history = result.cost_history
        assert all(b <= a + 1e-12 for a, b in zip(history, history[1:]))

    def test_converges_toward_true_pose(self):
        problem, true_pose1 = tiny_problem(num_features=12, noise=0.5)
        before = np.linalg.norm(problem.states[1].position - true_pose1.translation)
        result = levenberg_marquardt(problem, LMConfig(max_iterations=10))
        after = np.linalg.norm(
            result.problem.states[1].position - true_pose1.translation
        )
        assert after < before
        assert after < 0.03

    def test_iteration_cap_respected(self):
        problem, _ = tiny_problem()
        for cap in (1, 2, 4):
            result = levenberg_marquardt(problem, LMConfig(max_iterations=cap))
            assert result.iterations <= cap

    def test_more_iterations_no_worse(self):
        """The Fig. 12 premise: error decreases with the iteration cap."""
        costs = []
        for cap in (1, 3, 6):
            problem, _ = tiny_problem(num_features=10)
            result = levenberg_marquardt(problem, LMConfig(max_iterations=cap))
            costs.append(result.final_cost)
        assert costs[2] <= costs[1] <= costs[0] + 1e-9

    def test_does_not_mutate_input(self):
        problem, _ = tiny_problem()
        cost_before = problem.cost()
        levenberg_marquardt(problem, LMConfig(max_iterations=4))
        assert problem.cost() == pytest.approx(cost_before)

    def test_result_bookkeeping(self):
        problem, _ = tiny_problem()
        result = levenberg_marquardt(problem, LMConfig(max_iterations=5))
        assert result.initial_cost == result.cost_history[0]
        assert result.final_cost == pytest.approx(result.cost_history[-1])
        assert result.final_cost <= result.initial_cost
        assert result.accepted_steps <= result.iterations
