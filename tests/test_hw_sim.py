"""Tests for the cycle-level simulators and their agreement with the
analytical models (the role Vivado timing played in the paper)."""

import numpy as np
import pytest

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.hw import HardwareConfig, REFERENCE_WORKLOAD, window_latency_cycles
from repro.hw.latency import CO_OBSERVATION, EVALUATE_LATENCY, cholesky_latency
from repro.hw.sim import (
    AcceleratorSim,
    JacobianPipeline,
    simulate_cholesky,
    simulate_jacobian_pipeline,
)
from repro.hw.sim.engine import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_for_ties(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().payload == "first"

    def test_rejects_past(self):
        q = EventQueue()
        q.push(5.0)
        q.pop()
        with pytest.raises(ValueError):
            q.push(1.0)


class TestCholeskySim:
    def test_matches_analytical_s1(self):
        """With one Update unit the analytical form is exact."""
        sim = simulate_cholesky(m=40, s=1)
        assert sim.total_cycles == pytest.approx(cholesky_latency(40, 1), rel=1e-9)

    @pytest.mark.parametrize("m,s", [(50, 4), (100, 8), (225, 57), (225, 120)])
    def test_close_to_analytical(self, m, s):
        """Equ. 7 approximates each round by max(sE, E + first update);
        the event simulation must stay within a modest envelope."""
        sim = simulate_cholesky(m=m, s=s)
        analytical = cholesky_latency(m, s)
        assert sim.total_cycles == pytest.approx(analytical, rel=0.35)

    def test_round_count(self):
        sim = simulate_cholesky(m=100, s=8)
        assert sim.num_rounds == int(np.ceil(100 / 8))

    def test_more_units_never_slower(self):
        totals = [simulate_cholesky(m=225, s=s).total_cycles for s in (1, 2, 8, 32)]
        assert all(b <= a for a, b in zip(totals, totals[1:]))

    def test_functional_mode_factors_matrix(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(20, 20))
        spd = a @ a.T + 20 * np.eye(20)
        sim = simulate_cholesky(s=4, matrix=spd)
        assert sim.factor is not None
        assert np.allclose(sim.factor @ sim.factor.T, spd, atol=1e-8)
        assert sim.total_cycles > 0

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            simulate_cholesky(m=10, s=0)
        with pytest.raises(ConfigurationError):
            simulate_cholesky(m=0, s=2)


class TestJacobianPipelineSim:
    def test_uniform_stream_matches_equ6(self):
        """With constant observation counts the pipeline is perfectly
        balanced: total ~= a * No * Co plus the fill latency."""
        counts = [4] * 100
        pipe = JacobianPipeline()
        sim = simulate_jacobian_pipeline(counts, pipe)
        steady = 100 * 4 * pipe.co
        # Allow for the pipeline fill plus FIFO-quantization slack.
        assert sim.total_cycles == pytest.approx(steady + pipe.feature_latency, rel=0.10)

    def test_variance_adds_stalls(self):
        rng = np.random.default_rng(1)
        bursty = np.clip(rng.poisson(4.0, size=200), 1, None)
        uniform = [4] * 200
        pipe = JacobianPipeline()
        assert (
            simulate_jacobian_pipeline(bursty, pipe).stall_cycles
            >= simulate_jacobian_pipeline(uniform, pipe).stall_cycles
        )

    def test_stage_count_rule(self):
        pipe = JacobianPipeline(co=100.0, feature_latency=600.0)
        # Lf / (No Co) = 600 / (2 * 100) = 3 stages.
        assert pipe.stage_count(2.0) == 3

    def test_requires_observations(self):
        with pytest.raises(ConfigurationError):
            simulate_jacobian_pipeline([])
        with pytest.raises(ConfigurationError):
            simulate_jacobian_pipeline([0, 3])

    def test_deeper_fifo_reduces_stalls(self):
        rng = np.random.default_rng(2)
        counts = np.clip(rng.poisson(6.0, size=300), 1, None)
        shallow = simulate_jacobian_pipeline(counts, JacobianPipeline(fifo_depth=1))
        deep = simulate_jacobian_pipeline(counts, JacobianPipeline(fifo_depth=16))
        assert deep.total_cycles <= shallow.total_cycles


class TestAcceleratorSim:
    def test_agrees_with_analytical_model(self):
        config = HardwareConfig(20, 10, 40)
        sim = AcceleratorSim(config)
        execution = sim.run_window(REFERENCE_WORKLOAD, iterations=6)
        analytical = window_latency_cycles(REFERENCE_WORKLOAD, config, 6)
        assert execution.total_cycles == pytest.approx(analytical, rel=0.35)

    def test_phase_breakdown_sums_to_total(self):
        sim = AcceleratorSim(HardwareConfig(10, 10, 20))
        execution = sim.run_window(REFERENCE_WORKLOAD, iterations=3)
        # Feature pipeline phases overlap internally but phases are
        # serialized, so the sum of per-phase cycles >= the total is not
        # expected; instead the recorded phases must cover the total.
        assert execution.total_cycles <= sum(execution.phase_cycles.values()) + 1e-6

    def test_energy_positive_and_consistent(self):
        sim = AcceleratorSim(HardwareConfig(10, 10, 20))
        execution = sim.run_window(REFERENCE_WORKLOAD)
        assert execution.energy_j > 0
        assert execution.energy_j == pytest.approx(
            execution.seconds * sim.power_model.power(sim.config)
        )

    def test_bigger_config_faster(self):
        small = AcceleratorSim(HardwareConfig(2, 2, 2)).run_window(REFERENCE_WORKLOAD)
        big = AcceleratorSim(HardwareConfig(30, 25, 60)).run_window(REFERENCE_WORKLOAD)
        assert big.total_cycles < small.total_cycles

    def test_explicit_observation_counts(self):
        stats = WindowStats(
            num_features=10, avg_observations=3.0, num_keyframes=5, num_marginalized=2
        )
        counts = np.array([3.0] * 10)
        execution = AcceleratorSim(HardwareConfig(4, 4, 8)).run_window(
            stats, iterations=2, observation_counts=counts
        )
        assert execution.total_cycles > 0

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            AcceleratorSim(HardwareConfig(4, 4, 8)).run_window(REFERENCE_WORKLOAD, 0)
