"""Unit and property tests for SO(3) primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    hat,
    vee,
    so3_exp,
    so3_log,
    quat_to_rot,
    rot_to_quat,
    quat_multiply,
    quat_normalize,
    random_rotation,
)


def small_vectors(max_norm=3.0):
    return st.lists(
        st.floats(-max_norm, max_norm, allow_nan=False), min_size=3, max_size=3
    ).map(np.array)


class TestHatVee:
    def test_hat_is_cross_product(self):
        w = np.array([1.0, -2.0, 0.5])
        v = np.array([0.3, 0.7, -1.1])
        assert np.allclose(hat(w) @ v, np.cross(w, v))

    def test_hat_antisymmetric(self):
        w = np.array([0.1, 0.2, 0.3])
        m = hat(w)
        assert np.allclose(m, -m.T)

    @given(small_vectors())
    def test_vee_inverts_hat(self, w):
        assert np.allclose(vee(hat(w)), w)


class TestExpLog:
    def test_exp_zero_is_identity(self):
        assert np.allclose(so3_exp(np.zeros(3)), np.eye(3))

    def test_exp_quarter_turn(self):
        rot = so3_exp([0.0, 0.0, np.pi / 2])
        assert np.allclose(rot @ np.array([1.0, 0, 0]), [0.0, 1.0, 0.0], atol=1e-12)

    @given(small_vectors(max_norm=1.5))
    @settings(max_examples=60)
    def test_exp_is_rotation(self, w):
        rot = so3_exp(w)
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-10)
        assert np.isclose(np.linalg.det(rot), 1.0, atol=1e-10)

    @given(small_vectors(max_norm=3.0))
    @settings(max_examples=60)
    def test_log_inverts_exp(self, w):
        # Stay inside the injectivity radius.
        if np.linalg.norm(w) >= np.pi - 1e-3:
            w = w / np.linalg.norm(w) * (np.pi - 0.1)
        assert np.allclose(so3_log(so3_exp(w)), w, atol=1e-8)

    def test_log_near_pi(self):
        w = np.array([np.pi - 1e-4, 0.0, 0.0])
        recovered = so3_log(so3_exp(w))
        assert np.allclose(np.abs(recovered), np.abs(w), atol=1e-5)

    def test_log_small_angle(self):
        w = np.array([1e-10, -2e-10, 3e-10])
        assert np.allclose(so3_log(so3_exp(w)), w, atol=1e-14)


class TestQuaternions:
    def test_identity_round_trip(self):
        assert np.allclose(quat_to_rot([1, 0, 0, 0]), np.eye(3))
        assert np.allclose(rot_to_quat(np.eye(3)), [1, 0, 0, 0])

    @given(st.lists(st.floats(-1, 1, allow_nan=False), min_size=4, max_size=4))
    @settings(max_examples=60)
    def test_round_trip(self, q):
        q = np.array(q)
        if np.linalg.norm(q) < 1e-3:
            q = np.array([1.0, 0.1, 0.2, 0.3])
        q = quat_normalize(q)
        recovered = rot_to_quat(quat_to_rot(q))
        # Antipodal quaternions encode the same rotation; at w ~= 0 the
        # sign convention cannot distinguish them at machine precision.
        err = min(np.linalg.norm(recovered - q), np.linalg.norm(recovered + q))
        assert err < 1e-8

    def test_multiply_matches_rotation_composition(self):
        rng = np.random.default_rng(0)
        q1 = quat_normalize(rng.normal(size=4))
        q2 = quat_normalize(rng.normal(size=4))
        lhs = quat_to_rot(quat_multiply(q1, q2))
        rhs = quat_to_rot(q1) @ quat_to_rot(q2)
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            quat_normalize(np.zeros(4))

    def test_trace_negative_branch(self):
        # 180-degree rotation about x has trace -1: exercises the
        # largest-diagonal branch of rot_to_quat.
        rot = so3_exp([np.pi, 0.0, 0.0])
        q = rot_to_quat(rot)
        assert np.allclose(quat_to_rot(q), rot, atol=1e-10)


class TestRandomRotation:
    def test_is_valid_rotation(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            rot = random_rotation(rng)
            assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-10)
            assert np.isclose(np.linalg.det(rot), 1.0)
