"""The argument-validation helpers of :mod:`repro.utils.validation`.

Each helper gets its pass path (value returned, normalized) and its fail
path (typed exception whose message names the offending argument).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_positive_int,
    check_shape,
    check_square,
    check_symmetric,
)


class TestCheckPositive:
    def test_returns_float(self):
        assert check_positive("x", 3) == 3.0
        assert isinstance(check_positive("x", 3), float)

    @pytest.mark.parametrize("bad", [0.0, -1.5, float("nan"), float("inf")])
    def test_rejects_nonpositive_and_nonfinite(self, bad):
        with pytest.raises(ConfigurationError, match="clock_hz"):
            check_positive("clock_hz", bad)


class TestCheckPositiveInt:
    def test_accepts_python_and_numpy_ints(self):
        assert check_positive_int("n", 4) == 4
        result = check_positive_int("n", np.int64(4))
        assert result == 4 and isinstance(result, int)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_less_than_one(self, bad):
        with pytest.raises(ConfigurationError, match="window_size"):
            check_positive_int("window_size", bad)

    @pytest.mark.parametrize("bad", [1.0, "2", True])
    def test_rejects_non_integers(self, bad):
        with pytest.raises(ConfigurationError, match="window_size"):
            check_positive_int("window_size", bad)


class TestCheckFinite:
    def test_returns_float_array(self):
        out = check_finite("residual", [1, 2, 3])
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    @pytest.mark.parametrize("bad", [[1.0, np.nan], [np.inf, 0.0]])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="residual"):
            check_finite("residual", bad)


class TestCheckShape:
    def test_pass(self):
        out = check_shape("pixel", [1, 2], (2,))
        assert out.shape == (2,)

    def test_fail_names_argument_and_shapes(self):
        with pytest.raises(ValueError, match=r"pixel.*\(2,\).*\(3,\)"):
            check_shape("pixel", [1, 2, 3], (2,))


class TestCheckSquare:
    def test_pass(self):
        assert check_square("hessian", np.eye(3)).shape == (3, 3)

    @pytest.mark.parametrize("bad", [np.zeros((2, 3)), np.zeros(4), np.zeros((2, 2, 2))])
    def test_rejects_non_square(self, bad):
        with pytest.raises(ValueError, match="hessian"):
            check_square("hessian", bad)


class TestCheckSymmetric:
    def test_pass_within_tolerance(self):
        matrix = np.eye(2) + np.array([[0.0, 1e-10], [0.0, 0.0]])
        out = check_symmetric("info", matrix)
        np.testing.assert_array_equal(out, matrix)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="info"):
            check_symmetric("info", np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_custom_tolerance(self):
        matrix = np.eye(2) + np.array([[0.0, 1e-5], [0.0, 0.0]])
        with pytest.raises(ValueError, match="info"):
            check_symmetric("info", matrix)
        check_symmetric("info", matrix, tol=1e-4)
