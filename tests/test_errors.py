"""The exception hierarchy: one root, typed leaves, contextful messages.

The library's error contract has two halves: every failure is a
:class:`repro.errors.ReproError` subclass (single-``except`` catchable),
and the message carries enough configuration context to act on without a
debugger.
"""

import pytest

import repro.errors as errors_module
from repro.errors import (
    ConfigurationError,
    DataError,
    GraphError,
    InfeasibleDesignError,
    ReproError,
    ScheduleError,
    ServeError,
    SolverError,
)

LEAVES = [
    ConfigurationError,
    InfeasibleDesignError,
    GraphError,
    ScheduleError,
    DataError,
    SolverError,
    ServeError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", LEAVES)
    def test_every_error_subclasses_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_module_exports_nothing_outside_the_hierarchy(self):
        public = [
            obj
            for name, obj in vars(errors_module).items()
            if isinstance(obj, type) and not name.startswith("_")
        ]
        assert set(public) == set(LEAVES) | {ReproError}

    def test_single_except_clause_catches_any_library_failure(self):
        from repro.hw import HardwareConfig

        caught = None
        try:
            HardwareConfig(nd=0)
        except ReproError as error:
            caught = error
        assert isinstance(caught, ConfigurationError)


class TestMessagesCarryContext:
    def test_hardware_config_message_names_field_and_range(self):
        from repro.hw.config import ND_RANGE, HardwareConfig

        with pytest.raises(ConfigurationError) as info:
            HardwareConfig(nd=0)
        message = str(info.value)
        assert "nd" in message
        assert str(ND_RANGE[0]) in message and str(ND_RANGE[1]) in message
        assert "0" in message

    def test_infeasible_design_message_names_budget_and_platform(self):
        from repro.synth import DesignSpec, exhaustive_search

        spec = DesignSpec(latency_budget_s=1e-9)
        with pytest.raises(InfeasibleDesignError) as info:
            exhaustive_search(spec)
        message = str(info.value)
        assert spec.platform.name in message
        assert "latency" in message

    def test_unknown_design_message_lists_choices(self):
        from repro.engine.stages import NAMED_DESIGN_SPECS, named_design

        with pytest.raises(ConfigurationError) as info:
            named_design("no-such-design")
        message = str(info.value)
        assert "no-such-design" in message
        assert all(name in message for name in NAMED_DESIGN_SPECS)

    def test_solver_error_names_failing_pivot(self):
        import numpy as np

        from repro.linalg.cholesky import cholesky_evaluate_update

        singular = np.zeros((3, 3))
        with pytest.raises(SolverError) as info:
            cholesky_evaluate_update(singular)
        assert "pivot" in str(info.value)

    def test_imu_gap_message_names_keyframes_and_sequence(self):
        from repro.data import make_euroc_sequence
        from repro.slam import EstimatorConfig, SlidingWindowEstimator
        from repro.testing.faults import inject_imu_gap

        sequence = make_euroc_sequence("MH_01", duration=3.0)
        faulted = inject_imu_gap(sequence, segment_index=1)
        with pytest.raises(DataError) as info:
            SlidingWindowEstimator(EstimatorConfig(window_size=4)).run(faulted)
        message = str(info.value)
        assert "keyframes 1 and 2" in message
        assert sequence.config.name in message
