"""Tests for the Evaluate/Update Cholesky and triangular solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.linalg import (
    backward_substitution,
    cholesky_evaluate_update,
    forward_substitution,
    solve_cholesky,
    solve_spd,
)


def random_spd(n, seed=0, conditioning=1.0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a @ a.T + conditioning * n * np.eye(n)


class TestCholesky:
    @pytest.mark.parametrize("n", [1, 2, 5, 12, 30])
    def test_matches_numpy(self, n):
        matrix = random_spd(n, seed=n)
        factor, _ = cholesky_evaluate_update(matrix)
        assert np.allclose(factor, np.linalg.cholesky(matrix), atol=1e-10)

    def test_factor_reconstructs_input(self):
        matrix = random_spd(8, seed=1)
        factor, _ = cholesky_evaluate_update(matrix)
        assert np.allclose(factor @ factor.T, matrix, atol=1e-10)

    def test_op_counts_match_paper_model(self):
        """At iteration i, Evaluate does m-i ops, Update (m-i-1)(m-i)/2."""
        m = 9
        _, counts = cholesky_evaluate_update(random_spd(m, seed=2))
        assert len(counts) == m
        for i, (ev, up) in enumerate(counts):
            assert ev == m - i
            assert up == (m - i - 1) * (m - i) // 2

    def test_jitter_regularizes(self):
        # A singular PSD matrix factors once jitter is added.
        matrix = np.ones((4, 4))
        with pytest.raises(SolverError):
            cholesky_evaluate_update(matrix)
        factor, _ = cholesky_evaluate_update(matrix, jitter=0.5)
        assert np.allclose(factor @ factor.T, matrix + 0.5 * np.eye(4), atol=1e-10)

    def test_non_spd_raises(self):
        with pytest.raises(SolverError):
            cholesky_evaluate_update(-np.eye(3))

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_reconstruction(self, n, seed):
        matrix = random_spd(n, seed=seed)
        factor, _ = cholesky_evaluate_update(matrix)
        assert np.allclose(factor @ factor.T, matrix, atol=1e-8 * n)
        assert np.allclose(np.triu(factor, 1), 0.0)


class TestSubstitution:
    def test_forward(self):
        lower = np.tril(random_spd(6, seed=3))
        x = np.arange(1.0, 7.0)
        assert np.allclose(forward_substitution(lower, lower @ x), x, atol=1e-8)

    def test_backward(self):
        upper = np.triu(random_spd(6, seed=4))
        x = np.arange(1.0, 7.0)
        assert np.allclose(backward_substitution(upper, upper @ x), x, atol=1e-8)

    def test_zero_pivot_raises(self):
        lower = np.eye(3)
        lower[1, 1] = 0.0
        with pytest.raises(SolverError):
            forward_substitution(lower, np.ones(3))
        with pytest.raises(SolverError):
            backward_substitution(lower, np.ones(3))

    def test_matrix_rhs(self):
        lower = np.tril(random_spd(5, seed=5))
        rhs = np.random.default_rng(0).normal(size=(5, 3))
        y = forward_substitution(lower, rhs)
        assert np.allclose(lower @ y, rhs, atol=1e-8)


class TestSolve:
    @pytest.mark.parametrize("n", [1, 4, 15])
    def test_solve_spd(self, n):
        matrix = random_spd(n, seed=n + 10)
        x_true = np.linspace(-1.0, 1.0, n)
        x = solve_spd(matrix, matrix @ x_true)
        assert np.allclose(x, x_true, atol=1e-8)

    def test_solve_cholesky_consistent(self):
        matrix = random_spd(7, seed=20)
        factor, _ = cholesky_evaluate_update(matrix)
        rhs = np.arange(7.0)
        assert np.allclose(matrix @ solve_cholesky(factor, rhs), rhs, atol=1e-8)
