"""Cross-cutting property and failure-injection tests.

Deeper invariants spanning modules: marginalization produces PSD priors
on randomized problems, the estimator is deterministic, degenerate
windows are survived, and the optimizer's feasibility contract holds
across random specs.

All randomized inputs come from :mod:`repro.testing.strategies`; example
counts are governed by the named Hypothesis profile loaded in
``tests/conftest.py`` (``dev`` locally, ``ci`` in CI) rather than
per-test ``settings``.
"""

import numpy as np
from dataclasses import replace
from hypothesis import given

from repro.errors import InfeasibleDesignError
from repro.hw import DEFAULT_RESOURCE_MODEL
from repro.synth import DesignSpec, exhaustive_search
from repro.testing.strategies import design_specs, seeds
from tests.test_slam_marginalization import three_frame_problem


class TestMarginalizationProperties:
    @given(seeds())
    def test_prior_always_psd(self, seed):
        """Any marginalization of a well-posed window yields a positive
        semi-definite prior (otherwise later windows become indefinite)."""
        from repro.slam.marginalization import marginalize_window

        problem = three_frame_problem(seed=seed)
        result = marginalize_window(problem, 0)
        assert result.prior is not None
        eigvals = np.linalg.eigvalsh(result.prior.hp)
        assert eigvals.min() >= -1e-8

    @given(seeds())
    def test_prior_symmetric(self, seed):
        from repro.slam.marginalization import marginalize_window

        problem = three_frame_problem(seed=seed)
        result = marginalize_window(problem, 0)
        assert np.allclose(result.prior.hp, result.prior.hp.T)


class TestEstimatorDeterminism:
    def test_same_sequence_same_result(self):
        from repro.data import make_euroc_sequence
        from repro.slam import EstimatorConfig, SlidingWindowEstimator

        sequence = make_euroc_sequence("MH_01", duration=3.0)
        run_a = SlidingWindowEstimator(EstimatorConfig(window_size=6)).run(sequence)
        run_b = SlidingWindowEstimator(EstimatorConfig(window_size=6)).run(sequence)
        assert np.array_equal(
            np.array(run_a.estimated_positions), np.array(run_b.estimated_positions)
        )
        assert run_a.iterations_used == run_b.iterations_used


class TestDegenerateWindows:
    def test_estimator_survives_feature_starvation(self):
        """With an absurdly small feature budget the estimator must not
        crash — accuracy degrades, the pipeline survives."""
        from repro.data.sequences import EUROC_SEQUENCES, make_sequence
        from repro.data.tracks import TrackerConfig
        from repro.slam import EstimatorConfig, SlidingWindowEstimator

        config = replace(
            EUROC_SEQUENCES["MH_01"],
            duration=4.0,
            tracker=TrackerConfig(max_features=5),
        )
        sequence = make_sequence(config)
        result = SlidingWindowEstimator(EstimatorConfig(window_size=6)).run(sequence)
        assert result.num_windows == sequence.num_keyframes - 1
        assert all(np.isfinite(w.final_cost) for w in result.windows)

    def test_window_stats_handle_empty(self):
        from repro.data.stats import WindowStats
        from repro.hw.latency import window_latency_cycles
        from repro.hw import HardwareConfig

        empty = WindowStats(
            num_features=0, avg_observations=0.0, num_keyframes=1, num_marginalized=0
        )
        cycles = window_latency_cycles(empty, HardwareConfig(4, 4, 4))
        assert np.isfinite(cycles) and cycles > 0


class TestOptimizerContract:
    @given(design_specs())
    def test_feasible_or_explicit_infeasible(self, spec):
        """Every solve either returns a design meeting all constraints or
        raises InfeasibleDesignError — never a silently-violating design."""
        try:
            outcome = exhaustive_search(spec)
        except InfeasibleDesignError:
            return
        assert outcome.latency_s <= spec.latency_budget_s + 1e-12
        utilization = DEFAULT_RESOURCE_MODEL.utilization(
            outcome.config, spec.platform
        )
        assert all(u <= spec.resource_budget + 1e-12 for u in utilization.values())

    @given(design_specs(min_budget_ms=20.0, max_budget_ms=100.0, min_resource_budget=1.0))
    def test_power_monotone_in_budget(self, spec):
        """Loosening the latency budget never increases optimal power."""
        tight = exhaustive_search(DesignSpec(latency_budget_s=spec.latency_budget_s))
        loose = exhaustive_search(
            DesignSpec(latency_budget_s=spec.latency_budget_s + 10.0 / 1e3)
        )
        assert loose.power_w <= tight.power_w + 1e-12
