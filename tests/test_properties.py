"""Cross-cutting property and failure-injection tests.

Deeper invariants spanning modules: marginalization produces PSD priors
on randomized problems, the estimator is deterministic, degenerate
windows are survived, and the optimizer's feasibility contract holds
across random specs.
"""

import numpy as np
import pytest
from dataclasses import replace
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleDesignError
from repro.hw import DEFAULT_RESOURCE_MODEL
from repro.synth import DesignSpec, exhaustive_search
from tests.test_slam_marginalization import three_frame_problem


class TestMarginalizationProperties:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_prior_always_psd(self, seed):
        """Any marginalization of a well-posed window yields a positive
        semi-definite prior (otherwise later windows become indefinite)."""
        from repro.slam.marginalization import marginalize_window

        problem = three_frame_problem(seed=seed)
        result = marginalize_window(problem, 0)
        assert result.prior is not None
        eigvals = np.linalg.eigvalsh(result.prior.hp)
        assert eigvals.min() >= -1e-8

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_prior_symmetric(self, seed):
        from repro.slam.marginalization import marginalize_window

        problem = three_frame_problem(seed=seed)
        result = marginalize_window(problem, 0)
        assert np.allclose(result.prior.hp, result.prior.hp.T)


class TestEstimatorDeterminism:
    def test_same_sequence_same_result(self):
        from repro.data import make_euroc_sequence
        from repro.slam import EstimatorConfig, SlidingWindowEstimator

        sequence = make_euroc_sequence("MH_01", duration=3.0)
        run_a = SlidingWindowEstimator(EstimatorConfig(window_size=6)).run(sequence)
        run_b = SlidingWindowEstimator(EstimatorConfig(window_size=6)).run(sequence)
        assert np.array_equal(
            np.array(run_a.estimated_positions), np.array(run_b.estimated_positions)
        )
        assert run_a.iterations_used == run_b.iterations_used


class TestDegenerateWindows:
    def test_estimator_survives_feature_starvation(self):
        """With an absurdly small feature budget the estimator must not
        crash — accuracy degrades, the pipeline survives."""
        from repro.data.sequences import EUROC_SEQUENCES, make_sequence
        from repro.data.tracks import TrackerConfig
        from repro.slam import EstimatorConfig, SlidingWindowEstimator

        config = replace(
            EUROC_SEQUENCES["MH_01"],
            duration=4.0,
            tracker=TrackerConfig(max_features=5),
        )
        sequence = make_sequence(config)
        result = SlidingWindowEstimator(EstimatorConfig(window_size=6)).run(sequence)
        assert result.num_windows == sequence.num_keyframes - 1
        assert all(np.isfinite(w.final_cost) for w in result.windows)

    def test_window_stats_handle_empty(self):
        from repro.data.stats import WindowStats
        from repro.hw.latency import window_latency_cycles
        from repro.hw import HardwareConfig

        empty = WindowStats(
            num_features=0, avg_observations=0.0, num_keyframes=1, num_marginalized=0
        )
        cycles = window_latency_cycles(empty, HardwareConfig(4, 4, 4))
        assert np.isfinite(cycles) and cycles > 0


class TestOptimizerContract:
    @given(
        st.floats(min_value=18.0, max_value=120.0),
        st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_feasible_or_explicit_infeasible(self, budget_ms, resource_budget):
        """Every solve either returns a design meeting all constraints or
        raises InfeasibleDesignError — never a silently-violating design."""
        spec = DesignSpec(
            latency_budget_s=budget_ms / 1e3, resource_budget=resource_budget
        )
        try:
            outcome = exhaustive_search(spec)
        except InfeasibleDesignError:
            return
        assert outcome.latency_s <= spec.latency_budget_s + 1e-12
        utilization = DEFAULT_RESOURCE_MODEL.utilization(
            outcome.config, spec.platform
        )
        assert all(u <= resource_budget + 1e-12 for u in utilization.values())

    @given(st.floats(min_value=20.0, max_value=100.0))
    @settings(max_examples=15, deadline=None)
    def test_power_monotone_in_budget(self, budget_ms):
        """Loosening the latency budget never increases optimal power."""
        tight = exhaustive_search(DesignSpec(latency_budget_s=budget_ms / 1e3))
        loose = exhaustive_search(
            DesignSpec(latency_budget_s=(budget_ms + 10.0) / 1e3)
        )
        assert loose.power_w <= tight.power_w + 1e-12
