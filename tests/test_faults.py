"""Fault injection: every layer degrades gracefully, never crashes.

One test per injector, asserting the contract of
:mod:`repro.testing.faults`: faulted inputs end in recovery or a typed
:class:`repro.errors.ReproError` — any other exception propagates out
of :func:`graceful_outcome` and fails the test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_euroc_sequence
from repro.data.stats import WindowStats
from repro.engine.engine import Engine
from repro.engine.stages import SEQUENCE
from repro.errors import ConfigurationError, DataError, SolverError
from repro.runtime.controller import RuntimeController
from repro.runtime.profiler import IterationTable
from repro.slam import EstimatorConfig, SlidingWindowEstimator
from repro.slam.nls import LMConfig, levenberg_marquardt
from repro.testing.faults import (
    corrupt_cache_artifacts,
    graceful_outcome,
    inject_imu_gap,
    inject_nan_tracks,
    inject_track_dropout,
    make_degenerate_window,
)


@pytest.fixture(scope="module")
def sequence():
    return make_euroc_sequence("MH_01", duration=4.0)


def run_estimator(seq):
    return SlidingWindowEstimator(EstimatorConfig(window_size=5)).run(seq)


class TestNanTracks:
    def test_estimator_survives_nan_pixels(self, sequence):
        faulted = inject_nan_tracks(sequence, fraction=0.3, seed=3)
        outcome = graceful_outcome(lambda: run_estimator(faulted))
        assert outcome.recovered
        result = outcome.result
        assert result.num_windows == sequence.num_keyframes - 1
        assert all(np.isfinite(w.final_cost) for w in result.windows)
        assert all(np.all(np.isfinite(p)) for p in result.estimated_positions)

    def test_injection_is_deterministic_and_nonmutating(self, sequence):
        a = inject_nan_tracks(sequence, fraction=0.3, seed=3)
        b = inject_nan_tracks(sequence, fraction=0.3, seed=3)
        nan_a = [
            fid for obs in a.observations
            for fid, px in obs.pixels.items() if not np.all(np.isfinite(px))
        ]
        nan_b = [
            fid for obs in b.observations
            for fid, px in obs.pixels.items() if not np.all(np.isfinite(px))
        ]
        assert nan_a == nan_b and nan_a
        # the shared original must be untouched
        assert all(
            np.all(np.isfinite(px))
            for obs in sequence.observations
            for px in obs.pixels.values()
        )

    def test_bad_fraction_rejected(self, sequence):
        with pytest.raises(ConfigurationError):
            inject_nan_tracks(sequence, fraction=1.5)


class TestTrackDropout:
    def test_estimator_survives_heavy_dropout(self, sequence):
        faulted = inject_track_dropout(sequence, fraction=0.8, seed=7)
        outcome = graceful_outcome(lambda: run_estimator(faulted))
        assert outcome.recovered
        assert all(np.isfinite(w.final_cost) for w in outcome.result.windows)

    def test_total_dropout_still_graceful(self, sequence):
        faulted = inject_track_dropout(sequence, fraction=1.0, seed=7)
        assert all(obs.num_features == 0 for obs in faulted.observations)
        outcome = graceful_outcome(lambda: run_estimator(faulted))
        assert outcome.recovered


class TestImuGap:
    def test_gap_raises_typed_data_error(self, sequence):
        faulted = inject_imu_gap(sequence, segment_index=2)
        outcome = graceful_outcome(lambda: run_estimator(faulted))
        assert not outcome.recovered
        assert isinstance(outcome.error, DataError)
        assert "IMU gap" in str(outcome.error)
        assert "keyframes 2 and 3" in str(outcome.error)

    def test_bad_segment_index_rejected(self, sequence):
        with pytest.raises(ConfigurationError):
            inject_imu_gap(sequence, segment_index=10**6)


class TestDegenerateWindow:
    def test_singular_cholesky_raises_typed_solver_error(self):
        """The raw kernel surfaces rank deficiency as SolverError; the
        solve() wrapper recovers via its jitter — both are graceful."""
        from repro.linalg.cholesky import cholesky_evaluate_update
        from repro.linalg.schur import d_type_schur
        from repro.slam.problem import _U_FLOOR

        problem = make_degenerate_window(seed=0)
        system = problem.build_linear_system()
        u = np.maximum(system.u_diag, _U_FLOOR)
        reduced, _ = d_type_schur(
            system.v_block, system.w_block, u, b_x=system.b_x, b_y=system.b_y
        )
        with pytest.raises(SolverError, match="pivot"):
            cholesky_evaluate_update(reduced)
        outcome = graceful_outcome(lambda: system.solve(damping=0.0))
        assert outcome.recovered
        assert all(np.all(np.isfinite(part)) for part in outcome.result)

    def test_lm_survives_rank_deficiency(self):
        problem = make_degenerate_window(seed=1)
        outcome = graceful_outcome(
            lambda: levenberg_marquardt(problem, LMConfig(max_iterations=4))
        )
        assert outcome.recovered
        assert np.isfinite(outcome.result.final_cost)
        assert outcome.result.final_cost <= outcome.result.initial_cost


class TestCorruptedCache:
    @pytest.mark.parametrize("mode", ["truncate", "garbage", "empty"])
    def test_engine_recomputes_through_corruption(self, tmp_path, mode, sequence):
        config = sequence.config
        warm = Engine(cache_dir=tmp_path, jobs=1)
        reference = warm.run(SEQUENCE, config)
        assert warm.stats.stores >= 1

        corrupted = corrupt_cache_artifacts(tmp_path, mode=mode)
        assert corrupted >= 1

        cold = Engine(cache_dir=tmp_path, jobs=1)
        outcome = graceful_outcome(lambda: cold.run(SEQUENCE, config))
        assert outcome.recovered
        assert cold.stats.computed == 1  # corrupt blob treated as a miss
        assert np.array_equal(outcome.result.timestamps, reference.timestamps)

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            corrupt_cache_artifacts(tmp_path, mode="bitflip-everything")


class TestRuntimeControllerDegradation:
    def test_controller_survives_starved_windows(self):
        from repro.engine.stages import design_reconfiguration

        controller = RuntimeController(
            table=IterationTable(), reconfig=design_reconfiguration("High-Perf")
        )
        for features in (0, 1, 0, 3):
            stats = WindowStats(
                num_features=features,
                avg_observations=0.0 if not features else 2.0,
                num_keyframes=2,
                num_marginalized=0,
            )
            decision = graceful_outcome(lambda s=stats: controller.process_window(s))
            assert decision.recovered
            assert np.isfinite(decision.result.energy_j)
            assert decision.result.energy_j >= 0.0
        assert controller.total_energy_j >= 0.0
