"""Tests for marginalization: the prior must preserve information."""

import numpy as np
import pytest

from repro.slam.marginalization import marginalize_window
from repro.slam.nls import LMConfig, levenberg_marquardt
from repro.slam.problem import WindowProblem
from tests.test_slam_problem import tiny_problem


def three_frame_problem(seed=0):
    """Extend the tiny two-frame problem with a third keyframe."""
    import numpy as np

    from repro.geometry import SE3, NavState
    from repro.imu import ImuPreintegration
    from repro.slam.residuals import ImuFactor, VisualFactor

    problem, _ = tiny_problem(seed=seed, num_features=8)
    rng = np.random.default_rng(seed + 100)
    camera = problem.camera

    true_pose2 = SE3(np.eye(3), np.array([0.8, 0.0, 0.0]))
    states = dict(problem.states)
    states[2] = NavState(
        pose=SE3(np.eye(3), np.array([0.75, 0.03, 0.01])),
        velocity=np.array([1.0, 0.0, 0.0]),
    )

    visual = list(problem.visual_factors)
    for fid, inv_depth in problem.inv_depths.items():
        anchor_factor = next(f for f in visual if f.feature_id == fid)
        point_w = anchor_factor.bearing / inv_depth  # anchor is identity
        pixel = camera.project(true_pose2, point_w) + rng.normal(scale=1.0, size=2)
        visual.append(VisualFactor(fid, 0, 2, anchor_factor.bearing, pixel))

    pre = ImuPreintegration()
    for _ in range(40):
        pre.integrate(np.zeros(3), np.array([0.0, 0.0, 9.81]), 0.01, 1e-3, 1e-2)
    imu = list(problem.imu_factors) + [ImuFactor(1, 2, pre)]

    return WindowProblem(
        camera=camera,
        states=states,
        inv_depths=dict(problem.inv_depths),
        visual_factors=visual,
        imu_factors=imu,
        priors=list(problem.priors),
    )


class TestMarginalization:
    def test_unknown_frame_raises(self):
        problem, _ = tiny_problem()
        with pytest.raises(ValueError):
            marginalize_window(problem, 99)

    def test_counts_marginalized_features(self):
        problem = three_frame_problem()
        result = marginalize_window(problem, 0)
        # All features are anchored at frame 0 in this construction.
        assert sorted(result.marginalized_features) == sorted(problem.inv_depths)

    def test_prior_covers_remaining_frames(self):
        problem = three_frame_problem()
        result = marginalize_window(problem, 0)
        assert result.prior is not None
        assert result.prior.frame_ids == [1, 2]
        assert result.prior.hp.shape == (30, 30)

    def test_prior_is_positive_semidefinite(self):
        problem = three_frame_problem()
        result = marginalize_window(problem, 0)
        eigvals = np.linalg.eigvalsh(result.prior.hp)
        assert eigvals.min() >= -1e-9

    def test_prior_preserves_normal_equations(self):
        """Schur identity: (prior + remaining factors) must equal the
        Schur complement of the full linearized system onto kept states."""
        problem = three_frame_problem()
        result = marginalize_window(problem, 0)
        prior = result.prior

        # Full linearized system over [features, kf0, kf1, kf2] at the
        # same linearization point, using the problem's own assembly.
        system = problem.build_linear_system()
        p = len(system.feature_ids)
        u = np.maximum(system.u_diag, 1e-8)
        full = np.block(
            [[np.diag(u), system.w_block.T], [system.w_block, system.v_block]]
        )
        rhs = np.concatenate([system.b_x, system.b_y])
        m_dim = p + 15  # all features + kf0 are marginalized
        m_block = full[:m_dim, :m_dim]
        lam = full[m_dim:, :m_dim]
        a_block = full[m_dim:, m_dim:]
        hp_ref = a_block - lam @ np.linalg.inv(m_block) @ lam.T
        rp_ref = rhs[m_dim:] - lam @ np.linalg.inv(m_block) @ rhs[:m_dim]

        # Reduced system = prior + the factors that stay active (IMU 1->2).
        reduced = WindowProblem(
            camera=problem.camera,
            states={1: problem.states[1], 2: problem.states[2]},
            inv_depths={},
            visual_factors=[],
            imu_factors=[f for f in problem.imu_factors if f.frame_i != 0],
            priors=[prior],
        )
        red_sys = reduced.build_linear_system()
        scale = max(np.abs(hp_ref).max(), 1.0)
        assert np.allclose(red_sys.v_block, hp_ref, atol=1e-6 * scale)
        assert np.allclose(red_sys.b_y, rp_ref, atol=1e-6 * max(np.abs(rp_ref).max(), 1.0))

    def test_marginalized_estimator_tracks_batch(self):
        """After marginalization, re-optimizing the remaining problem must
        stay close to the full-problem optimum for the kept states."""
        problem = three_frame_problem()
        full_result = levenberg_marquardt(problem, LMConfig(max_iterations=15))

        marg = marginalize_window(problem, 0)
        reduced = WindowProblem(
            camera=problem.camera,
            states={1: problem.states[1], 2: problem.states[2]},
            inv_depths={},
            visual_factors=[],
            imu_factors=[f for f in problem.imu_factors if f.frame_i != 0],
            priors=[marg.prior],
        )
        reduced_result = levenberg_marquardt(reduced, LMConfig(max_iterations=15))

        for fid in (1, 2):
            full_pos = full_result.problem.states[fid].position
            red_pos = reduced_result.problem.states[fid].position
            assert np.linalg.norm(full_pos - red_pos) < 0.02
