"""Batched-backend equivalence: the vectorized hot loop vs the factor loop.

The batched linearization/assembly path (``repro.slam.batch``) must be a
numerical clone of the per-factor reference loop — same normal
equations, same cost, same trajectories — so the loop backend stays a
trustworthy oracle and the speedup is free of behavioral drift.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.data import make_euroc_sequence
from repro.errors import SolverError
from repro.geometry import SE3
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import transform_points_batch, transform_to_body_batch
from repro.geometry.so3 import hat, hat_batch, so3_exp
from repro.slam import EstimatorConfig, SlidingWindowEstimator
from repro.slam.batch import VisualFactorBatch, linearize_visual_batch
from repro.slam.nls import LMConfig, levenberg_marquardt
from repro.slam.problem import WindowProblem
from repro.testing.workloads import make_random_window as random_window

# The batched kernels reorder floating-point accumulation only at the
# BLAS/einsum level; measured deviations are ~1e-12 absolute on blocks of
# magnitude 1e7, far inside the ISSUE's atol=1e-10 budget.
TOL = dict(rtol=1e-12, atol=1e-10)


def both_backends(problem: WindowProblem) -> tuple[WindowProblem, WindowProblem]:
    """The same window under the batched and loop backends."""
    loop = replace(problem, backend="loop")
    batched = replace(problem, backend="batched")
    return batched, loop


def assert_systems_match(batched, loop):
    assert batched.feature_ids == loop.feature_ids
    assert batched.frame_ids == loop.frame_ids
    np.testing.assert_allclose(batched.u_diag, loop.u_diag, **TOL)
    np.testing.assert_allclose(batched.w_block, loop.w_block, **TOL)
    np.testing.assert_allclose(batched.v_block, loop.v_block, **TOL)
    np.testing.assert_allclose(batched.b_x, loop.b_x, **TOL)
    np.testing.assert_allclose(batched.b_y, loop.b_y, **TOL)


class TestBackendEquivalence:
    """Property-style: batched == loop over randomized windows."""

    @pytest.mark.parametrize("seed", range(6))
    def test_build_linear_system_matches(self, seed):
        problem = random_window(
            seed, num_keyframes=3 + seed % 3, num_features=6 + 3 * seed
        )
        batched, loop = both_backends(problem)
        assert_systems_match(batched.build_linear_system(), loop.build_linear_system())

    @pytest.mark.parametrize("seed", range(6))
    def test_cost_matches(self, seed):
        problem = random_window(
            seed, num_keyframes=3 + seed % 3, num_features=6 + 3 * seed
        )
        batched, loop = both_backends(problem)
        assert batched.cost() == pytest.approx(loop.cost(), rel=1e-12, abs=1e-10)

    @pytest.mark.parametrize("seed", range(3))
    def test_behind_camera_observations_are_culled_identically(self, seed):
        problem = random_window(seed, num_features=10, lift_last_keyframe=6.0)
        batched, loop = both_backends(problem)
        # The lift must actually push some (not all) rows behind the camera,
        # otherwise this exercises nothing.
        lin = linearize_visual_batch(
            batched.camera,
            batched._visual_batch(),
            *batched._pose_stacks(batched._sorted_ids()[0]),
            batched._inv_depth_vector(batched._sorted_ids()[1]),
            huber_delta=batched.huber_delta,
        )
        assert (~lin.valid).any()
        assert lin.valid.any()
        assert_systems_match(batched.build_linear_system(), loop.build_linear_system())
        assert batched.cost() == pytest.approx(loop.cost(), rel=1e-12, abs=1e-10)

    @pytest.mark.parametrize("seed", range(3))
    def test_huber_active_windows_match(self, seed):
        # Random pixels make almost every residual exceed a 0.5 px delta,
        # so the IRLS reweighting path is fully exercised.
        problem = random_window(seed, num_features=10, huber_delta=0.5)
        batched, loop = both_backends(problem)
        lin = linearize_visual_batch(
            batched.camera,
            batched._visual_batch(),
            *batched._pose_stacks(batched._sorted_ids()[0]),
            batched._inv_depth_vector(batched._sorted_ids()[1]),
            huber_delta=0.5,
        )
        base = batched._visual_batch().weights
        assert (lin.weights[lin.valid] < base[lin.valid]).any()
        assert_systems_match(batched.build_linear_system(), loop.build_linear_system())
        assert batched.cost() == pytest.approx(loop.cost(), rel=1e-12, abs=1e-10)

    def test_empty_feature_window_matches(self):
        problem = random_window(0, num_features=4)
        empty = replace(problem, inv_depths={}, visual_factors=[])
        batched, loop = both_backends(empty)
        sys_batched = batched.build_linear_system()
        sys_loop = loop.build_linear_system()
        assert sys_batched.u_diag.shape == (0,)
        assert_systems_match(sys_batched, sys_loop)
        assert batched.cost() == pytest.approx(loop.cost(), rel=1e-12, abs=1e-10)

    def test_lm_solves_agree_step_for_step(self):
        batched, loop = both_backends(random_window(1, num_features=14))
        config = LMConfig(max_iterations=5)
        result_batched = levenberg_marquardt(batched, config)
        result_loop = levenberg_marquardt(loop, config)
        assert result_batched.iterations == result_loop.iterations
        assert result_batched.accepted_steps == result_loop.accepted_steps
        assert result_batched.final_cost == pytest.approx(
            result_loop.final_cost, rel=1e-10
        )
        for fid in result_batched.problem.states:
            np.testing.assert_allclose(
                result_batched.problem.states[fid].pose.translation,
                result_loop.problem.states[fid].pose.translation,
                rtol=1e-9,
                atol=1e-10,
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverError):
            replace(random_window(0), backend="gpu")


class TestBatchedGeometryKernels:
    """The SoA kernels against their scalar counterparts."""

    def test_hat_batch_matches_hat(self):
        rng = np.random.default_rng(0)
        omegas = rng.normal(size=(7, 3))
        batched = hat_batch(omegas)
        for i, omega in enumerate(omegas):
            np.testing.assert_array_equal(batched[i], hat(omega))

    def test_transform_batches_match_se3(self):
        rng = np.random.default_rng(1)
        poses = [
            SE3(so3_exp(rng.normal(size=3)), rng.normal(size=3)) for _ in range(5)
        ]
        points = rng.normal(size=(5, 3)) + np.array([0.0, 0.0, 4.0])
        rotations = np.stack([p.rotation for p in poses])
        translations = np.stack([p.translation for p in poses])
        forward = transform_points_batch(rotations, translations, points)
        backward = transform_to_body_batch(rotations, translations, points)
        for i, pose in enumerate(poses):
            np.testing.assert_allclose(forward[i], pose.transform(points[i]), rtol=1e-14)
            np.testing.assert_allclose(
                backward[i], pose.transform_to_body(points[i]), rtol=1e-13, atol=1e-14
            )

    def test_projection_jacobians_batch_matches_scalar(self):
        rng = np.random.default_rng(2)
        camera = PinholeCamera()
        poses = [
            SE3(so3_exp(rng.normal(scale=0.2, size=3)), rng.normal(scale=0.5, size=3))
            for _ in range(6)
        ]
        points_w = rng.uniform(-1.0, 1.0, size=(6, 3)) + np.array([0.0, 0.0, 5.0])
        rotations = np.stack([p.rotation for p in poses])
        translations = np.stack([p.translation for p in poses])
        points_c = transform_to_body_batch(rotations, translations, points_w)
        valid, d_pose, d_point = camera.projection_jacobians_batch(rotations, points_c)
        assert valid.all()
        pixels = camera.project_camera_points_batch(points_c)
        for i, pose in enumerate(poses):
            pc, d_pose_ref, d_point_ref = camera.projection_jacobians(
                pose, points_w[i]
            )
            np.testing.assert_allclose(points_c[i], pc, rtol=1e-13, atol=1e-14)
            np.testing.assert_allclose(d_pose[i], d_pose_ref, rtol=1e-12, atol=1e-13)
            np.testing.assert_allclose(d_point[i], d_point_ref, rtol=1e-12, atol=1e-13)
            np.testing.assert_allclose(
                pixels[i], camera.project(pose, points_w[i]), rtol=1e-13
            )

    def test_projection_batch_flags_behind_camera(self):
        camera = PinholeCamera()
        points_c = np.array([[0.1, 0.0, 4.0], [0.1, 0.0, -2.0], [0.0, 0.0, 0.0]])
        rotations = np.broadcast_to(np.eye(3), (3, 3, 3))
        valid, d_pose, d_point = camera.projection_jacobians_batch(rotations, points_c)
        np.testing.assert_array_equal(valid, [True, False, False])
        assert np.isfinite(d_pose).all() and np.isfinite(d_point).all()

    def test_from_factors_layout(self):
        problem = random_window(3, num_features=8)
        frame_ids, feature_ids = problem._sorted_ids()
        batch = VisualFactorBatch.from_factors(
            problem.visual_factors,
            {fid: i for i, fid in enumerate(frame_ids)},
            {fid: i for i, fid in enumerate(feature_ids)},
        )
        n = len(problem.visual_factors)
        assert batch.num_observations == n
        assert batch.bearings.shape == (n, 3)
        assert batch.pixels.shape == (n, 2)
        for row, factor in enumerate(problem.visual_factors):
            assert frame_ids[batch.anchor_index[row]] == factor.anchor
            assert frame_ids[batch.target_index[row]] == factor.target
            assert feature_ids[batch.feature_index[row]] == factor.feature_id
            np.testing.assert_array_equal(batch.bearings[row], factor.bearing)


class TestImuResidualOnly:
    def test_residual_only_matches_linearize(self):
        problem = random_window(4)
        for factor in problem.imu_factors:
            state_i = problem.states[factor.frame_i]
            state_j = problem.states[factor.frame_j]
            lin = factor.linearize(state_i, state_j)
            np.testing.assert_array_equal(
                factor.residual_only(state_i, state_j), lin.residual
            )
            np.testing.assert_array_equal(factor.information(), lin.information)


class TestFullRunRegression:
    @pytest.fixture(scope="class")
    def runs(self):
        sequence = make_euroc_sequence("MH_01", duration=5.0)
        results = {}
        for backend in ("loop", "batched"):
            estimator = SlidingWindowEstimator(
                EstimatorConfig(
                    window_size=6, lm=LMConfig(max_iterations=4), backend=backend
                )
            )
            results[backend] = estimator.run(sequence)
        return results

    def test_trajectories_identical_across_backends(self, runs):
        loop = np.stack(runs["loop"].estimated_positions)
        batched = np.stack(runs["batched"].estimated_positions)
        assert loop.shape == batched.shape
        assert np.abs(loop - batched).max() < 1e-8

    def test_window_decisions_identical(self, runs):
        for w_loop, w_batched in zip(runs["loop"].windows, runs["batched"].windows):
            assert w_loop.iterations == w_batched.iterations
            assert w_loop.accepted_steps == w_batched.accepted_steps
            assert w_loop.final_cost == pytest.approx(w_batched.final_cost, rel=1e-9)

    def test_stage_timings_populated(self, runs):
        run = runs["batched"]
        summary = run.timing_summary()
        for stage in ("linearize_s", "assemble_s", "solve_s", "update_s"):
            assert summary[stage] > 0.0
        assert summary["total_s"] == pytest.approx(
            sum(summary[s] for s in ("linearize_s", "assemble_s", "solve_s", "update_s"))
        )
        assert summary["windows_per_second"] > 0.0
        assert all(w.timings.total_s > 0.0 for w in run.windows)

    def test_timings_survive_codec_round_trip(self, runs):
        from repro.engine.codecs import decode_run_result, encode_run_result

        run = runs["batched"]
        arrays, meta = encode_run_result(run)
        decoded = decode_run_result(arrays, meta)
        for original, roundtripped in zip(run.windows, decoded.windows):
            assert original.timings.as_dict() == roundtripped.timings.as_dict()
