"""Unit tests for trajectory generators and the landmark field."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.landmarks import density_profile, make_landmarks
from repro.data.trajectory import CarTrajectory, DroneTrajectory
from repro.errors import ConfigurationError


class TestDroneTrajectory:
    @pytest.fixture
    def trajectory(self):
        return DroneTrajectory(phases=np.linspace(0.3, 2.4, 6))

    def test_rotation_is_valid(self, trajectory):
        for t in (0.0, 3.7, 12.2):
            rot = trajectory.rotation(t)
            assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-10)

    def test_velocity_is_position_derivative(self, trajectory):
        t, h = 5.0, 1e-5
        numeric = (trajectory.position(t + h) - trajectory.position(t - h)) / (2 * h)
        assert np.allclose(trajectory.velocity(t), numeric, atol=1e-4)

    def test_acceleration_is_velocity_derivative(self, trajectory):
        t, h = 5.0, 1e-4
        numeric = (trajectory.velocity(t + h) - trajectory.velocity(t - h)) / (2 * h)
        assert np.allclose(trajectory.acceleration(t), numeric, atol=1e-2)

    def test_stays_in_flight_volume(self, trajectory):
        positions = np.array([trajectory.position(t) for t in np.linspace(0, 60, 200)])
        assert np.all(np.abs(positions[:, 0]) <= trajectory.extent[0] + 1e-9)
        assert np.all(np.abs(positions[:, 1]) <= trajectory.extent[1] + 1e-9)

    def test_accelerations_mav_grade(self, trajectory):
        """EuRoC-MH-like dynamics: peak accelerations of a few m/s^2,
        enough to make the accelerometer bias observable."""
        accels = [
            np.linalg.norm(trajectory.acceleration(t))
            for t in np.linspace(0, 30, 300)
        ]
        assert 1.0 < max(accels) < 20.0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            DroneTrajectory(extent=np.array([0.0, 1.0, 1.0]))
        with pytest.raises(ConfigurationError):
            DroneTrajectory(speed_scale=0.0)


class TestCarTrajectory:
    @pytest.fixture
    def trajectory(self):
        return CarTrajectory(phases=np.array([0.1, 0.9, 1.7, 2.4]))

    def test_speed_near_nominal(self, trajectory):
        for t in (1.0, 20.0, 60.0):
            speed = np.linalg.norm(trajectory.velocity(t)[:2])
            assert speed == pytest.approx(trajectory.speed, rel=0.01)

    def test_position_consistent_with_velocity(self, trajectory):
        """The quadrature path must integrate the analytic velocity."""
        t0, t1 = 10.0, 10.5
        steps = np.linspace(t0, t1, 501)
        integral = np.trapezoid(
            np.array([trajectory.velocity(t) for t in steps]), steps, axis=0
        )
        delta = trajectory.position(t1) - trajectory.position(t0)
        assert np.allclose(delta, integral, atol=2e-3)

    def test_heading_follows_velocity(self, trajectory):
        t = 15.0
        velocity = trajectory.velocity(t)
        heading = np.arctan2(velocity[1], velocity[0])
        forward = trajectory.rotation(t) @ np.array([1.0, 0.0, 0.0])
        assert np.arctan2(forward[1], forward[0]) == pytest.approx(heading, abs=0.05)

    def test_invalid_speed(self):
        with pytest.raises(ConfigurationError):
            CarTrajectory(speed=0.0)


class TestLandmarks:
    def test_density_profile_bounds(self):
        profile = density_profile(period=30.0, floor=0.2)
        values = [profile(t) for t in np.linspace(0, 200, 500)]
        assert min(values) >= 0.2
        assert max(values) <= 1.0
        assert max(values) - min(values) > 0.3  # actual variation

    def test_density_floor_validation(self):
        with pytest.raises(ConfigurationError):
            density_profile(floor=0.0)

    def test_landmarks_near_trajectory(self):
        rng = np.random.default_rng(0)
        trajectory = DroneTrajectory(phases=np.zeros(6))
        points = make_landmarks(
            trajectory, duration=20.0, rng=rng, count=500, lateral_spread=3.0,
            vertical_spread=2.0, forward_spread=3.0,
        )
        assert 200 < len(points) <= 500  # density thins the field
        # Every landmark within a few spreads of some path point.
        path = np.array([trajectory.position(t) for t in np.linspace(0, 20, 100)])
        distances = np.min(
            np.linalg.norm(points[:, None, :] - path[None, :, :], axis=2), axis=1
        )
        assert np.percentile(distances, 95) < 15.0

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        trajectory = DroneTrajectory(phases=np.zeros(6))
        with pytest.raises(ConfigurationError):
            make_landmarks(trajectory, duration=0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            make_landmarks(trajectory, duration=10.0, rng=rng, count=0)

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_given_seed(self, seed):
        trajectory = CarTrajectory(phases=np.zeros(4))
        a = make_landmarks(trajectory, 10.0, np.random.default_rng(seed), count=50)
        b = make_landmarks(trajectory, 10.0, np.random.default_rng(seed), count=50)
        assert np.array_equal(a, b)
