"""The differential conformance subsystem: oracles, matrix, CLI.

Two families of assertions: (a) the clean tree passes every oracle at
every scale, and (b) every oracle *detects* a deliberately perturbed
input — a gate that cannot fail is not a gate.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine.engine import Engine
from repro.errors import ConfigurationError
from repro.testing import (
    DEFAULT_WORKLOADS,
    ORACLES,
    QUICK_WORKLOADS,
    run_conformance,
)
from repro.testing.conformance import ConformanceWorkload

REPO_ROOT = Path(__file__).resolve().parent.parent
SMALL = ConformanceWorkload("small", seed=21, num_keyframes=5, num_features=24, num_windows=12)


class TestOracleMatrix:
    def test_default_matrix_covers_seven_oracles_three_scales(self):
        assert len(ORACLES) == 7
        assert len(DEFAULT_WORKLOADS) >= 3
        assert len(QUICK_WORKLOADS) >= 3
        assert len({w.name for w in DEFAULT_WORKLOADS}) >= 3

    @pytest.mark.parametrize("oracle", sorted(ORACLES))
    @pytest.mark.parametrize("workload", QUICK_WORKLOADS, ids=lambda w: w.name)
    def test_clean_tree_passes(self, oracle, workload):
        report = ORACLES[oracle](workload)
        assert report.passed, [m.to_dict() for m in report.mismatches]
        assert report.checks > 0
        assert report.oracle == oracle

    @pytest.mark.parametrize("oracle", sorted(ORACLES))
    def test_perturbed_input_is_detected(self, oracle):
        """Feeding a skewed input must produce at least one mismatch."""
        report = ORACLES[oracle](SMALL, perturbation=0.05)
        assert not report.passed
        assert report.mismatches[0].tolerance >= 0.0
        assert report.mismatches[0].metric

    def test_reports_are_deterministic(self):
        a = ORACLES["backend"](SMALL)
        b = ORACLES["backend"](SMALL)
        assert a.to_dict()["info"] == b.to_dict()["info"]
        assert a.checks == b.checks


class TestConformanceRun:
    def test_parallel_matches_serial(self):
        serial = run_conformance(workloads=(SMALL,), jobs=1)
        parallel = run_conformance(
            workloads=(SMALL,), engine=Engine(cache_dir=None, use_disk=False, jobs=4)
        )
        assert serial.passed and parallel.passed
        assert [r.to_dict()["info"] for r in serial.reports] == [
            r.to_dict()["info"] for r in parallel.reports
        ]

    def test_perturbed_run_fails_and_records_target(self):
        run = run_conformance(workloads=(SMALL,), perturb="backend")
        assert not run.passed
        assert run.perturbed == "backend"
        failing = {r.oracle for r in run.reports if not r.passed}
        assert failing == {"backend"}

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ConfigurationError):
            run_conformance(workloads=(SMALL,), oracle_names=("nope",))
        with pytest.raises(ConfigurationError):
            run_conformance(workloads=(SMALL,), perturb="nope")

    def test_json_artifact_schema(self, tmp_path):
        run = run_conformance(workloads=(SMALL,), oracle_names=("functional",))
        path = run.write_json(tmp_path / "CONFORMANCE.json")
        data = json.loads(path.read_text())
        assert data["passed"] is True
        assert data["checks"] == run.total_checks
        assert data["oracles"] == ["functional"]
        report = data["reports"][0]
        assert set(report) >= {"oracle", "workload", "passed", "checks", "mismatches"}


class TestConformanceCli:
    def _run(self, *args: str, cwd: Path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.testing", *args],
            cwd=cwd,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )

    def test_quick_clean_run_exits_zero_and_writes_report(self, tmp_path):
        completed = self._run("--quick", "--jobs", "2", cwd=tmp_path)
        assert completed.returncode == 0, completed.stdout + completed.stderr
        data = json.loads((tmp_path / "CONFORMANCE.json").read_text())
        assert data["passed"] is True
        assert sorted(data["oracles"]) == sorted(ORACLES)
        assert len(data["workloads"]) >= 3

    def test_perturbed_run_exits_nonzero(self, tmp_path):
        completed = self._run(
            "--quick", "--perturb", "fixedpoint", "--oracle", "fixedpoint",
            cwd=tmp_path,
        )
        assert completed.returncode == 1
        data = json.loads((tmp_path / "CONFORMANCE.json").read_text())
        assert data["passed"] is False
        assert data["perturbed"] == "fixedpoint"
        assert data["mismatches"] > 0

    def test_bad_perturb_target_exits_two(self, tmp_path):
        completed = self._run("--perturb", "bogus", cwd=tmp_path)
        assert completed.returncode == 2
        assert "bogus" in completed.stderr
