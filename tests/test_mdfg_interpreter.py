"""Tests for M-DFG functional semantics and the DOT export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.mdfg import NodeType, build_linear_solver_mdfg, build_window_mdfg
from repro.mdfg.export import to_dot
from repro.mdfg.interpreter import evaluate_primitive, execute_linear_solver_graph
from repro.data.stats import WindowStats


def random_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


class TestPrimitiveSemantics:
    def test_dmatinv(self):
        assert np.allclose(
            evaluate_primitive(NodeType.DMATINV, np.array([2.0, 4.0])), [0.5, 0.25]
        )

    def test_dmatinv_zero_raises(self):
        with pytest.raises(GraphError):
            evaluate_primitive(NodeType.DMATINV, np.array([1.0, 0.0]))

    def test_matmul_matsub_mattp(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        assert np.allclose(evaluate_primitive(NodeType.MATMUL, a, b), a @ b)
        assert np.allclose(evaluate_primitive(NodeType.MATSUB, a, a), 0.0)
        assert np.allclose(evaluate_primitive(NodeType.MATTP, a), a.T)

    def test_dmatmul_is_row_scaling(self):
        d = np.array([1.0, 2.0, 3.0])
        m = np.ones((3, 4))
        out = evaluate_primitive(NodeType.DMATMUL, d, m)
        assert np.allclose(out, np.diag(d) @ m)

    def test_cd_and_fbsub(self):
        s = random_spd(6, seed=1)
        factor = evaluate_primitive(NodeType.CD, s)
        assert np.allclose(factor @ factor.T, s, atol=1e-9)
        rhs = np.arange(6.0)
        x = evaluate_primitive(NodeType.FBSUB, factor, rhs)
        assert np.allclose(s @ x, rhs, atol=1e-8)

    def test_jacobian_nodes_not_evaluable(self):
        with pytest.raises(GraphError):
            evaluate_primitive(NodeType.VJAC, np.zeros(3))


class TestGraphExecution:
    def _arrow_system(self, p, q, seed=0):
        rng = np.random.default_rng(seed)
        u = rng.uniform(1.0, 3.0, size=p)
        w = rng.normal(size=(q, p))
        v = random_spd(q, seed=seed + 1) + w @ np.diag(1.0 / u) @ w.T
        bx, by = rng.normal(size=p), rng.normal(size=q)
        return u, w, v, bx, by

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_graph_matches_dense_solution(self, seed):
        """Executing the Fig. 3b M-DFG equals solving the arrow system."""
        p, q = 14, 9
        u, w, v, bx, by = self._arrow_system(p, q, seed)
        graph = build_linear_solver_mdfg(p, q // 3, state_size=3)
        d_lambda, d_state = execute_linear_solver_graph(graph, u, w, v, bx, by)
        full = np.block([[np.diag(u), w.T], [w, v]])
        reference = np.linalg.solve(full, np.concatenate([bx, by]))
        assert np.allclose(d_lambda, reference[:p], atol=1e-8)
        assert np.allclose(d_state, reference[p:], atol=1e-8)

    def test_graph_matches_structured_solver(self):
        """Graph execution equals the estimator's LinearSystem.solve."""
        from repro.slam.problem import LinearSystem

        p, q = 10, 6
        u, w, v, bx, by = self._arrow_system(p, q, seed=5)
        system = LinearSystem(
            u_diag=u, w_block=w, v_block=v, b_x=bx, b_y=by,
            feature_ids=list(range(p)), frame_ids=list(range(q // 15 + 1)),
        )
        d_lambda_ref, d_state_ref = system.solve(damping=0.0)
        graph = build_linear_solver_mdfg(p, 2, state_size=3)
        d_lambda, d_state = execute_linear_solver_graph(graph, u, w, v, bx, by)
        assert np.allclose(d_lambda, d_lambda_ref, atol=1e-7)
        assert np.allclose(d_state, d_state_ref, atol=1e-7)

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=20, deadline=None)
    def test_property_residual_is_zero(self, seed):
        p, q = 8, 6
        u, w, v, bx, by = self._arrow_system(p, q, seed)
        graph = build_linear_solver_mdfg(p, 2, state_size=3)
        d_lambda, d_state = execute_linear_solver_graph(graph, u, w, v, bx, by)
        # Verify the solution satisfies both block equations.
        assert np.allclose(u * d_lambda + w.T @ d_state, bx, atol=1e-7)
        assert np.allclose(w @ d_lambda + v @ d_state, by, atol=1e-7)

    def test_wrong_graph_rejected(self):
        from repro.mdfg.graph import MDFG

        graph = MDFG()
        graph.add(NodeType.CD, (4,), "Cholesky")
        with pytest.raises(GraphError):
            execute_linear_solver_graph(
                graph, np.ones(2), np.ones((3, 2)), np.eye(3), np.ones(2), np.ones(3)
            )


class TestDotExport:
    def test_contains_all_nodes_and_edges(self):
        stats = WindowStats(20, 4.0, 5, 3, num_observations=80)
        graph = build_window_mdfg(stats, iterations=1)
        dot = to_dot(graph)
        assert dot.startswith("digraph")
        assert dot.count("->") == graph.num_edges
        assert dot.count("label=") == graph.num_nodes

    def test_block_colors_present(self):
        graph = build_linear_solver_mdfg(10, 3)
        dot = to_dot(graph, name="solver")
        assert "salmon" in dot  # Cholesky block color
        assert '"solver"' in dot
