"""Tests for the dataflow ablation and the template block inventory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.hw import REFERENCE_WORKLOAD
from repro.hw.blocks import fixed_block_totals, template_inventory
from repro.hw.dataflow import (
    dataflow_energy_ratio,
    feature_stationary_cost,
    ram_word_energy,
    rotation_stationary_cost,
)
from repro.hw.resources import DEFAULT_RESOURCE_MODEL


class TestDataflowAblation:
    def test_feature_stationary_wins_on_typical_window(self):
        """Sec. 4.2's decision: with ~10x more features than keyframes,
        the feature-stationary order saves substantial access energy."""
        ratio = dataflow_energy_ratio(REFERENCE_WORKLOAD)
        assert ratio > 3.0

    def test_small_ram_is_cheaper_per_word(self):
        assert ram_word_energy(100) < ram_word_energy(10_000)

    def test_rotation_ram_is_the_small_one(self):
        feature = feature_stationary_cost(REFERENCE_WORKLOAD)
        rotation = rotation_stationary_cost(REFERENCE_WORKLOAD)
        assert feature.ram_capacity_words < rotation.ram_capacity_words

    @given(
        st.integers(min_value=50, max_value=500),
        st.integers(min_value=5, max_value=20),
        st.floats(min_value=2.0, max_value=15.0),
    )
    @settings(max_examples=40)
    def test_wins_across_slam_regimes(self, features, keyframes, avg_obs):
        """Whenever features outnumber keyframes by the SLAM-typical
        margin, feature-stationary is the right dataflow."""
        stats = WindowStats(
            num_features=features,
            avg_observations=avg_obs,
            num_keyframes=keyframes,
            num_marginalized=1,
            num_observations=int(features * avg_obs),
        )
        if features >= 5 * keyframes:
            assert dataflow_energy_ratio(stats) > 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            feature_stationary_cost(
                WindowStats(
                    num_features=0,
                    avg_observations=1.0,
                    num_keyframes=1,
                    num_marginalized=0,
                )
            )


class TestBlockInventory:
    def test_fixed_blocks_sum_to_model_base(self):
        """The inventory partitions exactly the R0 of Equ. 16."""
        totals = fixed_block_totals()
        for kind in ("lut", "ff", "bram", "dsp"):
            assert totals[kind] == pytest.approx(
                getattr(DEFAULT_RESOURCE_MODEL, kind).base, rel=1e-9
            )

    def test_customizable_blocks_match_model_slopes(self):
        inventory = {b.name: b for b in template_inventory()}
        dschur = inventory["d-type-schur (per MAC)"]
        assert dschur.dsp == DEFAULT_RESOURCE_MODEL.dsp.per_nd
        chol = inventory["cholesky (per Update unit)"]
        assert chol.lut == DEFAULT_RESOURCE_MODEL.lut.per_s

    def test_three_customizable_blocks(self):
        customizable = [b for b in template_inventory() if b.customizable]
        assert len(customizable) == 3  # the paper's nd / nm / s

    def test_buffers_hold_the_s_matrix(self):
        from repro.linalg.smatrix import SMatrixLayout

        inventory = {b.name: b for b in template_inventory()}
        buffers = inventory["parameter-and-io-buffers"]
        needed = SMatrixLayout(15, 15).compact_words * 32 / 36_864
        assert buffers.bram > needed * 0.5

    def test_jacobian_units_carry_most_fixed_dsp(self):
        inventory = [b for b in template_inventory() if not b.customizable]
        dsp = {b.name: b.dsp for b in inventory}
        assert max(dsp, key=dsp.get) == "visual-jacobian-unit"
