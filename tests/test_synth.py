"""Tests for the synthesizer: optimization, Pareto frontier, DSE."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InfeasibleDesignError
from repro.hw import DEFAULT_POWER_MODEL, DEFAULT_RESOURCE_MODEL, LatencyModel
from repro.hw.fpga import KINTEX7_160T, VIRTEX7_690T, ZC706
from repro.synth import (
    DesignSpec,
    Objective,
    biggest_fit_design,
    design_space_metrics,
    exhaustive_search,
    exhaustive_flow_years,
    high_perf_design,
    low_power_design,
    minimize_latency,
    minimize_power,
    pareto_frontier,
    perturb_and_validate,
    pruned_search,
    synthesize,
)


class TestDesignSpec:
    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            DesignSpec(latency_budget_s=0.0)
        with pytest.raises(ConfigurationError):
            DesignSpec(resource_budget=1.5)
        with pytest.raises(ConfigurationError):
            DesignSpec(iterations=0)


class TestOptimizers:
    def test_exhaustive_and_pruned_agree(self):
        for budget_ms in (20.0, 33.0, 60.0):
            spec = DesignSpec(latency_budget_s=budget_ms / 1e3)
            a = exhaustive_search(spec)
            b = pruned_search(spec)
            assert a.config == b.config
            assert a.power_w == pytest.approx(b.power_w)

    def test_pruned_touches_fewer_points(self):
        spec = DesignSpec(latency_budget_s=0.033)
        a = exhaustive_search(spec)
        b = pruned_search(spec)
        assert b.evaluated_points < a.evaluated_points

    def test_solution_meets_constraints(self):
        spec = DesignSpec(latency_budget_s=0.025)
        outcome = exhaustive_search(spec)
        assert outcome.latency_s <= spec.latency_budget_s + 1e-12
        assert DEFAULT_RESOURCE_MODEL.fits(outcome.config, spec.platform)

    def test_tighter_budget_needs_more_power(self):
        loose = exhaustive_search(DesignSpec(latency_budget_s=0.060))
        tight = exhaustive_search(DesignSpec(latency_budget_s=0.020))
        assert tight.power_w > loose.power_w

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleDesignError):
            exhaustive_search(DesignSpec(latency_budget_s=0.001))

    def test_minimize_latency_ignores_budget(self):
        spec = DesignSpec(latency_budget_s=0.5, objective=Objective.LATENCY)
        outcome = minimize_latency(spec)
        assert outcome.latency_s < 0.025  # near the feasible floor
        assert DEFAULT_RESOURCE_MODEL.fits(outcome.config, spec.platform)

    def test_solve_is_fast(self):
        """Sec. 7.3: design identification takes seconds, not years."""
        outcome = exhaustive_search(DesignSpec())
        assert outcome.solve_seconds < 3.0


class TestNamedDesigns:
    def test_high_perf_meets_20ms(self):
        result = high_perf_design()
        assert result.latency_s <= 0.020 + 1e-12
        assert result.power_w > low_power_design().power_w

    def test_low_power_meets_33ms(self):
        result = low_power_design()
        assert result.latency_s <= 0.033 + 1e-12

    def test_high_perf_uses_more_resources(self):
        """Tbl. 2's qualitative content: High-Perf > Low-Power on every
        resource, with roughly a 2 W power gap."""
        hp, lp = high_perf_design(), low_power_design()
        for kind in hp.utilization:
            assert hp.utilization[kind] > lp.utilization[kind]
        assert 1.0 < hp.power_w - lp.power_w < 3.0

    def test_biggest_fit_ranks_boards(self):
        """Sec. 7.7: a bigger FPGA admits a faster design."""
        kintex = biggest_fit_design(KINTEX7_160T)
        zc706 = biggest_fit_design(ZC706)
        virtex = biggest_fit_design(VIRTEX7_690T)
        assert virtex.latency_s <= zc706.latency_s <= kintex.latency_s

    def test_emit_verilog(self):
        files = high_perf_design().emit_verilog()
        assert "archytas_top.v" in files
        top = files["archytas_top.v"]
        assert "module archytas_top" in top
        assert "cfg_nd_active" in top  # the run-time reconfig interface


class TestPareto:
    @pytest.fixture(scope="class")
    def frontier(self):
        return pareto_frontier()

    def test_frontier_nonempty_and_sorted(self, frontier):
        assert len(frontier) >= 5
        latencies = [p.latency_s for p in frontier]
        assert latencies == sorted(latencies)

    def test_frontier_is_non_dominated(self, frontier):
        for p in frontier:
            for q in frontier:
                if q is not p:
                    assert not (
                        q.latency_s <= p.latency_s and q.power_w < p.power_w
                    )

    def test_power_decreases_along_frontier(self, frontier):
        powers = [p.power_w for p in frontier]
        assert all(b <= a for a, b in zip(powers, powers[1:]))

    def test_frontier_spans_paper_ranges(self, frontier):
        """Sec. 7.2: the generated designs cover a several-x performance
        range and ~2x power range."""
        lat_ratio = frontier[-1].latency_s / frontier[0].latency_s
        pow_ratio = frontier[0].power_w / frontier[-1].power_w
        assert lat_ratio > 2.0
        assert pow_ratio > 1.4

    def test_perturbation_validation(self, frontier):
        """Fig. 14: perturbed designs are Pareto-dominated by the frontier."""
        perturbed, all_dominated = perturb_and_validate(frontier)
        assert len(perturbed) > 0
        assert all_dominated


class TestDse:
    def test_exhaustive_flow_estimate(self):
        """Sec. 7.3: ~90k designs x 1.5 h ~= 15 years."""
        years = exhaustive_flow_years()
        assert years == pytest.approx(15.4, abs=0.5)

    def test_metrics(self):
        metrics = design_space_metrics()
        assert metrics.num_designs == 90_000
        assert metrics.generator_seconds < 3.0
        assert metrics.speed_ratio > 1e6


class TestSearchEquivalence:
    """Differential sweep: pruned and exhaustive must agree exactly.

    The two solvers historically used different tie-breaking (absolute
    1e-15 first-seen-wins vs a relative 1e-12 band with a stable
    tiebreak sort); they now share one semantics, so on any spec they
    must return the identical HardwareConfig tuple.
    """

    def _random_spec(self, rng, objective):
        from repro.data.stats import WindowStats

        stats = WindowStats(
            num_features=int(rng.integers(40, 400)),
            avg_observations=float(rng.uniform(2.0, 6.0)),
            num_keyframes=int(rng.integers(4, 12)),
            num_marginalized=int(rng.integers(5, 60)),
        )
        spec = DesignSpec(
            latency_budget_s=1.0,
            workload=stats,
            iterations=int(rng.integers(1, 7)),
            resource_budget=float(rng.uniform(0.6, 1.0)),
            objective=Objective.LATENCY,
        )
        if objective is Objective.LATENCY:
            return spec
        # POWER needs a satisfiable budget: derive one from the latency
        # optimum of the same workload.
        floor = minimize_latency(spec).latency_s
        return DesignSpec(
            latency_budget_s=floor * float(rng.uniform(1.05, 3.0)),
            workload=stats,
            iterations=spec.iterations,
            resource_budget=spec.resource_budget,
            objective=Objective.POWER,
        )

    @pytest.mark.parametrize("objective", [Objective.LATENCY, Objective.POWER])
    def test_randomized_sweep_agrees(self, objective):
        rng = np.random.default_rng(20260806)
        for _ in range(20):
            spec = self._random_spec(rng, objective)
            a = exhaustive_search(spec)
            b = pruned_search(spec)
            assert (a.config.nd, a.config.nm, a.config.s) == (
                b.config.nd,
                b.config.nm,
                b.config.s,
            ), f"solvers disagree on {spec}"
            assert a.power_w == b.power_w
            assert a.latency_s == b.latency_s

    def test_solve_seconds_come_from_spans(self):
        from repro.obs import global_trace

        before = len(global_trace().spans)
        outcome = exhaustive_search(DesignSpec(latency_budget_s=0.033))
        spans = global_trace().spans[before:]
        assert any(
            s.name == "exhaustive_search" and s.category == "synth" for s in spans
        )
        assert outcome.solve_seconds > 0.0


class TestSpecFieldPreservation:
    """minimize_power/minimize_latency must keep every DesignSpec field
    (the old hand-copied constructor silently reset unlisted fields)."""

    def _custom_spec(self):
        from repro.data.stats import WindowStats

        return DesignSpec(
            latency_budget_s=0.040,
            platform=KINTEX7_160T,
            resource_budget=0.85,
            workload=WindowStats(
                num_features=150,
                avg_observations=4.0,
                num_keyframes=9,
                num_marginalized=30,
            ),
            iterations=3,
            objective=Objective.LATENCY,
        )

    def test_minimize_power_round_trips_fields(self):
        import dataclasses

        spec = self._custom_spec()
        outcome = minimize_power(spec)
        expected = exhaustive_search(
            dataclasses.replace(spec, objective=Objective.POWER)
        )
        assert outcome.config == expected.config
        assert outcome.power_w == expected.power_w

    def test_minimize_latency_round_trips_fields(self):
        import dataclasses

        spec = self._custom_spec()
        outcome = minimize_latency(spec)
        expected = exhaustive_search(
            dataclasses.replace(spec, objective=Objective.LATENCY)
        )
        assert outcome.config == expected.config
        assert outcome.latency_s == expected.latency_s

    def test_non_default_budget_changes_the_answer(self):
        """Regression guard: the preserved fields actually matter — a
        tight resource budget must steer minimize_power elsewhere."""
        spec = self._custom_spec()
        tight = dataclasses_replace_budget(spec, 0.85)
        loose = dataclasses_replace_budget(spec, 1.0)
        a = minimize_latency(tight)
        b = minimize_latency(loose)
        assert a.latency_s > b.latency_s
        assert a.config != b.config


def dataclasses_replace_budget(spec, budget):
    import dataclasses

    return dataclasses.replace(spec, resource_budget=budget)
