"""Tests for accuracy metrics."""

import numpy as np
import pytest

from repro.geometry import random_rotation
from repro.slam.metrics import (
    absolute_trajectory_error,
    relative_errors,
    rmse,
    translational_error_cm,
    umeyama_alignment,
)


class TestRmse:
    def test_zero_for_empty(self):
        assert rmse(np.array([])) == 0.0

    def test_known_value(self):
        assert rmse(np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))

    def test_scale(self):
        errors = np.array([1.0, 2.0, 3.0])
        assert rmse(2 * errors) == pytest.approx(2 * rmse(errors))


class TestAlignment:
    def test_recovers_rigid_transform(self):
        rng = np.random.default_rng(0)
        reference = rng.normal(size=(20, 3))
        rotation = random_rotation(rng)
        translation = np.array([1.0, -2.0, 0.5])
        estimated = (reference - translation) @ rotation  # inverse transform
        rot, trans = umeyama_alignment(estimated, reference)
        aligned = estimated @ rot.T + trans
        assert np.allclose(aligned, reference, atol=1e-10)

    def test_requires_enough_points(self):
        with pytest.raises(ValueError):
            umeyama_alignment(np.zeros((2, 3)), np.zeros((2, 3)))


class TestAte:
    def test_zero_for_identical(self):
        traj = np.random.default_rng(1).normal(size=(10, 3))
        assert absolute_trajectory_error(traj, traj) == pytest.approx(0.0, abs=1e-12)

    def test_alignment_removes_gauge(self):
        rng = np.random.default_rng(2)
        reference = rng.normal(size=(15, 3))
        rotation = random_rotation(rng)
        estimated = reference @ rotation.T + np.array([5.0, 5.0, 5.0])
        assert absolute_trajectory_error(estimated, reference) < 1e-9
        assert absolute_trajectory_error(estimated, reference, align=False) > 1.0


class TestRelativeErrors:
    def test_drift_free_translation_offset(self):
        """A constant offset (accumulated drift) has zero relative error."""
        rng = np.random.default_rng(3)
        reference = np.cumsum(rng.normal(size=(20, 3)), axis=0)
        estimated = reference + np.array([10.0, 0.0, 0.0])
        assert np.allclose(relative_errors(estimated, reference), 0.0)

    def test_detects_local_error(self):
        reference = np.zeros((5, 3))
        estimated = np.zeros((5, 3))
        estimated[2, 0] = 0.5
        errors = relative_errors(estimated, reference)
        assert errors.max() == pytest.approx(0.5)

    def test_short_input(self):
        assert relative_errors(np.zeros((1, 3)), np.zeros((1, 3))).size == 0


class TestTranslationalErrorCm:
    def test_unit_conversion(self):
        est = np.array([[0.01, 0.0, 0.0]])
        ref = np.zeros((1, 3))
        assert translational_error_cm(est, ref) == pytest.approx(1.0)
