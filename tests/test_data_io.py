"""Tests for sequence serialization."""

import numpy as np
import pytest

from repro.data import make_euroc_sequence, make_kitti_sequence
from repro.data.io import (
    load_sequence,
    save_sequence,
    sequence_from_arrays,
    sequence_to_arrays,
)
from repro.errors import DataError


@pytest.fixture(
    scope="module", params=["euroc", "kitti"], ids=["euroc-MH_02", "kitti-00"]
)
def round_trip(request, tmp_path_factory):
    if request.param == "euroc":
        sequence = make_euroc_sequence("MH_02", duration=3.0)
    else:
        sequence = make_kitti_sequence("00", duration=3.0)
    path = tmp_path_factory.mktemp("seq") / f"{request.param}.npz"
    save_sequence(sequence, path)
    return sequence, load_sequence(path), path


class TestSerialization:
    def test_config_preserved(self, round_trip):
        original, loaded, _ = round_trip
        assert loaded.config == original.config

    def test_ground_truth_preserved(self, round_trip):
        original, loaded, _ = round_trip
        assert np.array_equal(loaded.timestamps, original.timestamps)
        for a, b in zip(original.true_states, loaded.true_states):
            assert np.allclose(a.position, b.position)
            assert np.allclose(a.rotation, b.rotation)
            assert np.allclose(a.velocity, b.velocity)

    def test_observations_preserved(self, round_trip):
        original, loaded, _ = round_trip
        for a, b in zip(original.observations, loaded.observations):
            assert a.pixels.keys() == b.pixels.keys()
            for fid in a.pixels:
                assert np.allclose(a.pixels[fid], b.pixels[fid])

    def test_imu_preserved(self, round_trip):
        original, loaded, _ = round_trip
        assert len(loaded.imu_segments) == len(original.imu_segments)
        for a, b in zip(original.imu_segments, loaded.imu_segments):
            assert np.allclose(a.gyro, b.gyro)
            assert np.allclose(a.accel, b.accel)
            assert a.dt == b.dt

    def test_estimator_runs_identically(self, round_trip):
        from repro.slam import EstimatorConfig, SlidingWindowEstimator

        original, loaded, _ = round_trip
        run_a = SlidingWindowEstimator(EstimatorConfig(window_size=6)).run(original)
        run_b = SlidingWindowEstimator(EstimatorConfig(window_size=6)).run(loaded)
        assert np.allclose(
            np.array(run_a.estimated_positions), np.array(run_b.estimated_positions)
        )

    def test_version_check(self, tmp_path):
        sequence = make_euroc_sequence("MH_01", duration=1.0)
        path = tmp_path / "seq.npz"
        save_sequence(sequence, path)
        # Corrupt the version field.
        import json

        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta_json"]).decode())
        meta["version"] = 999
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(DataError):
            load_sequence(path)

    def test_in_memory_arrays_round_trip(self):
        """The engine's sequence codec path: arrays without touching disk."""
        sequence = make_kitti_sequence("05", duration=2.0)
        arrays = sequence_to_arrays(sequence)
        assert all(isinstance(v, np.ndarray) for v in arrays.values())
        restored = sequence_from_arrays(arrays)
        assert restored.config == sequence.config
        assert np.array_equal(restored.timestamps, sequence.timestamps)

    def test_arrays_version_mismatch_rejected(self):
        import json

        sequence = make_euroc_sequence("MH_01", duration=1.0)
        arrays = dict(sequence_to_arrays(sequence))
        meta = json.loads(bytes(np.asarray(arrays["meta_json"])).decode())
        meta["version"] = 999
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        with pytest.raises(DataError):
            sequence_from_arrays(arrays)
