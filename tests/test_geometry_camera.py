"""Tests for the pinhole camera and its analytic Jacobians."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import SE3, PinholeCamera, random_rotation


@pytest.fixture
def camera():
    return PinholeCamera()


def numeric_jacobian(f, x, eps=1e-6):
    x = np.asarray(x, dtype=float)
    f0 = np.asarray(f(x))
    jac = np.zeros((f0.size, x.size))
    for i in range(x.size):
        dx = np.zeros_like(x)
        dx[i] = eps
        jac[:, i] = (np.asarray(f(x + dx)) - np.asarray(f(x - dx))) / (2 * eps)
    return jac


class TestProjection:
    def test_principal_ray(self, camera):
        pixel = camera.project_camera_point([0.0, 0.0, 2.0])
        assert np.allclose(pixel, [camera.cx, camera.cy])

    def test_projection_scale_invariant(self, camera):
        p1 = camera.project_camera_point([0.2, 0.1, 1.0])
        p2 = camera.project_camera_point([0.4, 0.2, 2.0])
        assert np.allclose(p1, p2)

    def test_behind_camera_raises(self, camera):
        with pytest.raises(ValueError):
            camera.project_camera_point([0.0, 0.0, -1.0])

    def test_visibility(self, camera):
        pose = SE3.identity()
        assert camera.is_visible(pose, [0.0, 0.0, 5.0])
        assert not camera.is_visible(pose, [0.0, 0.0, -5.0])
        assert not camera.is_visible(pose, [100.0, 0.0, 1.0])

    def test_world_projection_consistency(self, camera):
        rng = np.random.default_rng(0)
        pose = SE3(random_rotation(rng), rng.normal(size=3))
        point_c = np.array([0.1, -0.2, 3.0])
        point_w = pose.transform(point_c)
        assert np.allclose(
            camera.project(pose, point_w), camera.project_camera_point(point_c)
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            PinholeCamera(fx=-1.0)
        with pytest.raises(ConfigurationError):
            PinholeCamera(min_depth=0.0)


class TestProjectionJacobians:
    def _setup(self, seed):
        rng = np.random.default_rng(seed)
        pose = SE3(random_rotation(rng), rng.normal(size=3))
        # Put the point safely in front of the camera.
        point_c = np.array([0.3, -0.2, 4.0]) + rng.normal(scale=0.2, size=3)
        point_w = pose.transform(point_c)
        return pose, point_w

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_point_jacobian_matches_numeric(self, camera, seed):
        pose, point_w = self._setup(seed)
        _, _, d_point = camera.projection_jacobians(pose, point_w)
        numeric = numeric_jacobian(lambda p: camera.project(pose, p), point_w)
        assert np.allclose(d_point, numeric, atol=1e-4)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_pose_jacobian_matches_numeric(self, camera, seed):
        pose, point_w = self._setup(seed)
        _, d_pose, _ = camera.projection_jacobians(pose, point_w)

        def f(delta):
            return camera.project(pose.retract(delta), point_w)

        numeric = numeric_jacobian(f, np.zeros(6))
        assert np.allclose(d_pose, numeric, atol=1e-4)

    def test_low_depth_raises(self, camera):
        pose = SE3.identity()
        with pytest.raises(ValueError):
            camera.projection_jacobians(pose, [0.0, 0.0, 0.01])
