"""Self-driving-car localization on a KITTI-like sequence.

Runs the estimator on a synthetic KITTI odometry trace, then compares
the High-Perf and Low-Power accelerator variants against the two CPU
baselines on the trace's actual per-window workloads — the Sec. 7.4
evaluation in miniature.

The estimator run goes through the execution engine's artifact cache,
so a second invocation (or any experiment touching the same trace)
reuses it.

Run: python examples/kitti_odometry.py
Set REPRO_EXAMPLE_DURATION to shorten the sequence (e.g. smoke tests).
"""

import os

import numpy as np

from repro.baselines import ARM_A57, INTEL_COMET_LAKE
from repro.engine import (
    ESTIMATOR,
    EstimatorRequest,
    SEQUENCE,
    get_engine,
    sequence_config,
)
from repro.hw import window_latency_seconds
from repro.slam import EstimatorConfig
from repro.synth import high_perf_design, low_power_design


def main() -> None:
    duration = float(os.environ.get("REPRO_EXAMPLE_DURATION", "20.0"))
    engine = get_engine()
    config = sequence_config("kitti", "00", duration)
    sequence = engine.run(SEQUENCE, config)
    print(f"sequence KITTI-00: {sequence.num_keyframes} keyframes")

    request = EstimatorRequest(
        sequence=config, estimator=EstimatorConfig(window_size=8)
    )
    run = engine.run(ESTIMATOR, request)

    rel = np.array([w.relative_error for w in run.windows])
    print(f"estimation: {run.num_windows} windows, "
          f"mean window-relative error {100 * rel.mean():.1f} cm")

    designs = {"High-Perf": high_perf_design(), "Low-Power": low_power_design()}
    stats_list = [w.stats for w in run.windows if w.stats.num_features >= 5]

    header = (f"{'design':10s} {'acc ms':>8s} {'Intel ms':>9s} {'Arm ms':>8s} "
              f"{'speedup-I':>10s} {'energy-I':>9s} {'speedup-A':>10s} {'energy-A':>9s}")
    print("\nper-window averages over the trace:")
    print(header)
    for name, design in designs.items():
        acc_t, ratios = [], {"si": [], "ei": [], "sa": [], "ea": []}
        for stats in stats_list:
            t_acc = window_latency_seconds(stats, design.config)
            e_acc = t_acc * design.power_w
            acc_t.append(t_acc)
            t_i = INTEL_COMET_LAKE.window_time(stats)
            t_a = ARM_A57.window_time(stats)
            ratios["si"].append(t_i / t_acc)
            ratios["ei"].append(t_i * INTEL_COMET_LAKE.power_w / e_acc)
            ratios["sa"].append(t_a / t_acc)
            ratios["ea"].append(t_a * ARM_A57.power_w / e_acc)
        t_i_mean = np.mean([INTEL_COMET_LAKE.window_time(s) for s in stats_list])
        t_a_mean = np.mean([ARM_A57.window_time(s) for s in stats_list])
        print(f"{name:10s} {np.mean(acc_t) * 1e3:8.2f} {t_i_mean * 1e3:9.1f} "
              f"{t_a_mean * 1e3:8.1f} {np.mean(ratios['si']):9.1f}x "
              f"{np.mean(ratios['ei']):8.0f}x {np.mean(ratios['sa']):9.1f}x "
              f"{np.mean(ratios['ea']):8.0f}x")
    print(f"\n{engine.stats_line()}")


if __name__ == "__main__":
    main()
