"""Design-space exploration: knob sweeps, Pareto frontier, other boards.

Reproduces the designer-facing workflow of Sec. 5 / 7.2 / 7.3:
  1. sweep each customization knob and watch the latency-resource trade;
  2. sweep the latency budget to trace the Pareto frontier (Fig. 14),
     validating it by perturbation;
  3. pack the biggest design onto three different FPGA boards.

Run: python examples/design_space_exploration.py
"""

from repro.hw import DEFAULT_RESOURCE_MODEL, HardwareConfig, LatencyModel, ZC706
from repro.hw.fpga import KINTEX7_160T, VIRTEX7_690T
from repro.synth import (
    biggest_fit_design,
    design_space_metrics,
    pareto_frontier,
    perturb_and_validate,
)


def main() -> None:
    latency = LatencyModel()

    print("-- knob sweep (others fixed mid-range) --")
    print(f"{'knob':>5s} {'value':>5s} {'time ms':>8s} {'DSP %':>6s}")
    for knob in ("nd", "nm", "s"):
        for value in (1, 8, 20):
            config = HardwareConfig(
                nd=value if knob == "nd" else 15,
                nm=value if knob == "nm" else 12,
                s=value if knob == "s" else 40,
            )
            dsp = DEFAULT_RESOURCE_MODEL.utilization(config, ZC706)["dsp"]
            print(f"{knob:>5s} {value:5d} {latency.seconds(config) * 1e3:8.1f} "
                  f"{100 * dsp:6.1f}")

    print("\n-- Pareto frontier (latency budget sweep) --")
    frontier = pareto_frontier()
    for point in frontier[:: max(len(frontier) // 8, 1)]:
        print(f"  {point.latency_s * 1e3:6.1f} ms  {point.power_w:5.2f} W  "
              f"(nd={point.config.nd}, nm={point.config.nm}, s={point.config.s})")
    perturbed, dominated = perturb_and_validate(frontier)
    print(f"  perturbation validation: {len(perturbed)} neighbours, "
          f"all dominated by the frontier: {dominated}")

    print("\n-- biggest design per board (Equ. 12) --")
    for board in (KINTEX7_160T, ZC706, VIRTEX7_690T):
        design = biggest_fit_design(board)
        print(f"  {board.name:40s} {design.latency_s * 1e3:6.2f} ms  "
              f"(nd={design.config.nd}, nm={design.config.nm}, s={design.config.s})")

    metrics = design_space_metrics()
    print(f"\n-- generator efficiency --")
    print(f"  {metrics.num_designs:,} designs; exhaustive FPGA flow "
          f"~{metrics.exhaustive_flow_years:.0f} years; our generator "
          f"{metrics.generator_seconds * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
