"""Quickstart: synthesize a localization accelerator from constraints.

Walks the core Archytas flow end to end:
  1. describe the design constraints (latency budget, target FPGA);
  2. let the synthesizer solve the constrained optimization (Equ. 11);
  3. inspect the chosen (nd, nm, s) design and its predicted metrics;
  4. emit the synthesizable Verilog;
  5. cycle-simulate one sliding window on the generated design.

Run: python examples/quickstart.py
"""

from repro.hw import REFERENCE_WORKLOAD, ZC706
from repro.hw.sim import AcceleratorSim
from repro.synth import DesignSpec, synthesize


def main() -> None:
    # 1-2. Constraints in, optimal design out (solved in milliseconds).
    spec = DesignSpec(latency_budget_s=0.025, platform=ZC706)
    design = synthesize(spec)

    # 3. What did the synthesizer pick?
    print(f"target       : {spec.platform.name}")
    print(f"budget       : {spec.latency_budget_s * 1e3:.0f} ms/window")
    print(f"design       : nd={design.config.nd} nm={design.config.nm} s={design.config.s}")
    print(f"latency      : {design.latency_s * 1e3:.1f} ms")
    print(f"power        : {design.power_w:.2f} W")
    print(f"binding res. : {design.binding_resource}")
    print("utilization  : " + "  ".join(
        f"{kind}={100 * value:.0f}%" for kind, value in design.utilization.items()
    ))
    print(f"solve time   : {design.solve_seconds * 1e3:.1f} ms over "
          f"{design.evaluated_points:,} candidate designs")

    # 4. The synthesizable output.
    files = design.emit_verilog()
    top = files["archytas_top.v"]
    print(f"\nemitted {len(files)} Verilog files; archytas_top.v begins:")
    print("\n".join("  " + line for line in top.splitlines()[:6]))

    # 5. Cycle-level simulation of one full-scale sliding window.
    sim = AcceleratorSim(design.config)
    execution = sim.run_window(REFERENCE_WORKLOAD, iterations=spec.iterations)
    print(f"\nsimulated window: {execution.total_cycles:,.0f} cycles "
          f"= {execution.seconds * 1e3:.2f} ms, {execution.energy_j * 1e3:.1f} mJ")
    print("phase breakdown:")
    for phase, cycles in execution.phase_cycles.items():
        print(f"  {phase:22s} {cycles:12,.0f} cycles")


if __name__ == "__main__":
    main()
