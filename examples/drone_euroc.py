"""Drone localization on a EuRoC-like sequence, with dynamic optimization.

The full on-vehicle story of Fig. 1:
  1. synthesize a High-Perf accelerator for the ZC706;
  2. run the MAP estimator over a synthetic EuRoC Machine-Hall sequence
     (the work the accelerator would execute per window);
  3. enable the Sec. 6 run-time system — feature-count lookup table,
     2-bit saturating counter, memoized clock-gated configurations —
     and compare energy with and without it.

Everything flows through the execution engine, so a second invocation
replays the cached artifacts instead of recomputing them.

Run: python examples/drone_euroc.py
Set REPRO_EXAMPLE_DURATION to shorten the sequence (e.g. smoke tests).
"""

import os

import numpy as np

from repro.engine import (
    ESTIMATOR,
    EstimatorRequest,
    PolicySpec,
    REPLAY,
    ReplayRequest,
    SEQUENCE,
    get_engine,
    named_design,
    sequence_config,
)
from repro.slam import EstimatorConfig, absolute_trajectory_error


def main() -> None:
    duration = float(os.environ.get("REPRO_EXAMPLE_DURATION", "12.0"))
    engine = get_engine()
    config = sequence_config("euroc", "MH_03", duration)
    sequence = engine.run(SEQUENCE, config)
    print(f"sequence MH_03: {sequence.num_keyframes} keyframes, "
          f"{len(sequence.landmarks)} landmarks")

    # The static accelerator design.
    design = named_design("High-Perf", engine)
    print(f"accelerator: nd={design.config.nd} nm={design.config.nm} "
          f"s={design.config.s} @ {design.power_w:.2f} W")

    # Run the estimator with the run-time iteration policy installed.
    request = EstimatorRequest(
        sequence=config,
        estimator=EstimatorConfig(window_size=8),
        policy=PolicySpec(design="High-Perf"),
    )
    run = engine.run(ESTIMATOR, request)

    ate = absolute_trajectory_error(
        np.array(run.estimated_positions), np.array(run.true_positions)
    )
    print(f"\nestimation: {run.num_windows} windows, ATE = {ate * 100:.1f} cm")
    print(f"feature counts: min {min(run.feature_counts)}, "
          f"max {max(run.feature_counts)}")

    # Replay the workload through the controller for energy accounting.
    replay = engine.run(REPLAY, ReplayRequest(run=request, design="High-Perf"))
    print(f"\nrun-time optimization:")
    print(f"  static energy  : {replay.total_static_energy_j * 1e3:.1f} mJ")
    print(f"  dynamic energy : {replay.total_energy_j * 1e3:.1f} mJ")
    print(f"  saving         : {100 * replay.energy_saving:.1f}%")
    print(f"  reconfigurations: {replay.num_reconfigurations} "
          f"(host passes 3 numbers to the FPGA each time)")
    iterations = [d.applied_iterations for d in replay.decisions]
    print(f"  iteration counts: mean {np.mean(iterations):.1f}, "
          f"histogram {np.bincount(iterations, minlength=7)[1:].tolist()}")
    print(f"\n{engine.stats_line()}")


if __name__ == "__main__":
    main()
