"""Drone localization on a EuRoC-like sequence, with dynamic optimization.

The full on-vehicle story of Fig. 1:
  1. synthesize a High-Perf accelerator for the ZC706;
  2. run the MAP estimator over a synthetic EuRoC Machine-Hall sequence
     (the work the accelerator would execute per window);
  3. enable the Sec. 6 run-time system — feature-count lookup table,
     2-bit saturating counter, memoized clock-gated configurations —
     and compare energy with and without it.

Run: python examples/drone_euroc.py
"""

import numpy as np

from repro.data import make_euroc_sequence
from repro.runtime import IterationTable, RuntimeController, build_reconfiguration_table
from repro.slam import EstimatorConfig, SlidingWindowEstimator, absolute_trajectory_error
from repro.synth import high_perf_design


def main() -> None:
    sequence = make_euroc_sequence("MH_03", duration=12.0)
    print(f"sequence MH_03: {sequence.num_keyframes} keyframes, "
          f"{len(sequence.landmarks)} landmarks")

    # The static accelerator design.
    design = high_perf_design()
    print(f"accelerator: nd={design.config.nd} nm={design.config.nm} "
          f"s={design.config.s} @ {design.power_w:.2f} W")

    # Run the estimator with the run-time iteration policy installed.
    reconfig = build_reconfiguration_table(design.config, design.spec)
    controller = RuntimeController(table=IterationTable(), reconfig=reconfig)
    estimator = SlidingWindowEstimator(
        EstimatorConfig(window_size=8, iteration_policy=controller.iteration_policy)
    )
    run = estimator.run(sequence)

    ate = absolute_trajectory_error(
        np.array(run.estimated_positions), np.array(run.true_positions)
    )
    print(f"\nestimation: {run.num_windows} windows, ATE = {ate * 100:.1f} cm")
    print(f"feature counts: min {min(run.feature_counts)}, "
          f"max {max(run.feature_counts)}")

    # Replay the workload through the controller for energy accounting.
    accounting = RuntimeController(table=IterationTable(), reconfig=reconfig)
    for window in run.windows:
        accounting.process_window(window.stats)
    print(f"\nrun-time optimization:")
    print(f"  static energy  : {accounting.total_static_energy_j * 1e3:.1f} mJ")
    print(f"  dynamic energy : {accounting.total_energy_j * 1e3:.1f} mJ")
    print(f"  saving         : {100 * accounting.energy_saving:.1f}%")
    print(f"  reconfigurations: {accounting.num_reconfigurations} "
          f"(host passes 3 numbers to the FPGA each time)")
    iterations = [d.applied_iterations for d in accounting.decisions]
    print(f"  iteration counts: mean {np.mean(iterations):.1f}, "
          f"histogram {np.bincount(iterations, minlength=7)[1:].tolist()}")


if __name__ == "__main__":
    main()
