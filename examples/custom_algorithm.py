"""Generating accelerators for non-SLAM MAP algorithms (Sec. 7.7).

MAP estimation shows up across robotics; this example solves two other
workloads with the library's NLS machinery, then generates an
accelerator for each and compares against the Intel software baseline:

  * smooth curve fitting for motion planning (B-spline smoothing);
  * 6-DoF pose estimation for Augmented Reality (PnP refinement).

Run: python examples/custom_algorithm.py
"""

import numpy as np

from repro.apps import (
    curve_fitting_workload,
    make_curve_fitting_problem,
    make_pose_estimation_problem,
    pose_estimation_workload,
    solve_curve_fitting,
    solve_pose_estimation,
)
from repro.baselines import INTEL_COMET_LAKE
from repro.synth import DesignSpec, Objective, minimize_latency, synthesize


def main() -> None:
    # --- solve the problems themselves (the algorithms are real) ---
    curve = make_curve_fitting_problem(num_waypoints=60, noise=0.15)
    curve_solution = solve_curve_fitting(curve)
    errors = [
        np.linalg.norm(curve.evaluate(curve_solution.x, t) - ref)
        for t, ref in zip(curve.times, curve.true_path)
    ]
    print("curve fitting: smoothed 60 noisy waypoints "
          f"(noise 15 cm) to {100 * np.mean(errors):.1f} cm mean error "
          f"in {curve_solution.iterations} LM iterations")

    pose_problem = make_pose_estimation_problem(num_points=80, pixel_noise=1.0)
    pose, pose_solution = solve_pose_estimation(pose_problem)
    pose_error = np.linalg.norm(
        pose.translation - pose_problem.true_pose.translation
    )
    print(f"pose estimation: refined the camera pose to "
          f"{1000 * pose_error:.1f} mm in {pose_solution.iterations} iterations")

    # --- generate an accelerator for each workload ---
    print("\ngenerated accelerators (ZC706, vs Intel Comet Lake):")
    for name, (stats, iterations) in (
        ("curve fitting ", curve_fitting_workload()),
        ("pose estimation", pose_estimation_workload()),
    ):
        fastest = minimize_latency(
            DesignSpec(workload=stats, iterations=iterations, objective=Objective.LATENCY)
        )
        design = synthesize(
            DesignSpec(
                workload=stats,
                iterations=iterations,
                latency_budget_s=fastest.latency_s * 1.05,
            )
        )
        t_cpu = INTEL_COMET_LAKE.window_time(stats, iterations)
        speedup = t_cpu / design.latency_s
        energy = t_cpu * INTEL_COMET_LAKE.power_w / (design.latency_s * design.power_w)
        print(f"  {name}: nd={design.config.nd:2d} nm={design.config.nm:2d} "
              f"s={design.config.s:3d}  {design.latency_s * 1e3:5.2f} ms  "
              f"{speedup:4.1f}x speedup  {energy:5.0f}x energy reduction")


if __name__ == "__main__":
    main()
