"""Content-addressed artifact keys.

Every cacheable stage invocation is identified by a key derived from the
stage name, the stage's code-version tag, and a canonical token of the
configuration object. Any change to any configuration field — however
deep (nested dataclasses, enums, numpy arrays) — changes the token and
therefore the key, which is what makes the on-disk cache safe to reuse
across processes: a key either means exactly one computation or it does
not exist.

Callables are deliberately unhashable here. Stateful hooks such as
``EstimatorConfig.iteration_policy`` cannot be content-addressed, so the
engine requires them to be expressed declaratively (see
:class:`repro.engine.stages.PolicySpec`) and raises otherwise.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

# Global schema tag: bump when the key derivation itself changes.
KEY_SCHEMA_VERSION = "1"


def config_token(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serializable token.

    Dataclasses carry their qualified type name so two config classes
    with identical fields cannot alias each other's cache entries.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips float64 exactly; json.dumps uses it.
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__module__}.{type(obj).__qualname__}",
                "value": config_token(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        token = {"__type__": f"{type(obj).__module__}.{type(obj).__qualname__}"}
        for field in dataclasses.fields(obj):
            token[field.name] = config_token(getattr(obj, field.name))
        return token
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()
        return {"__ndarray__": digest, "dtype": str(obj.dtype), "shape": list(obj.shape)}
    if isinstance(obj, np.generic):
        return config_token(obj.item())
    if isinstance(obj, (list, tuple)):
        return [config_token(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): config_token(value) for key, value in sorted(obj.items())}
    if callable(obj):
        raise ConfigurationError(
            f"cannot derive a cache key from callable {obj!r}; express runtime "
            "hooks declaratively (e.g. repro.engine.stages.PolicySpec) instead"
        )
    raise ConfigurationError(
        f"cannot derive a cache key from {type(obj).__name__!r} value {obj!r}"
    )


def artifact_key(stage_name: str, stage_version: str, config: Any) -> str:
    """The content-addressed key of one stage invocation (hex sha256)."""
    payload = {
        "schema": KEY_SCHEMA_VERSION,
        "stage": stage_name,
        "version": stage_version,
        "config": config_token(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
