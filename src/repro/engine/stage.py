"""The Stage abstraction: a named, versioned, cacheable computation.

A stage maps a frozen configuration dataclass to a payload. The engine
(:mod:`repro.engine.engine`) addresses the result by the content key of
``(stage.name, stage.version, config)`` and persists it through the
stage's codec hooks. ``version`` is the stage's *code-version tag*:
bump it whenever the stage's computation changes meaning, and every
previously cached artifact of that stage is invalidated at once.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class Stage:
    """Base class for typed pipeline stages."""

    #: Unique stage name; also the cache subdirectory.
    name: str = "stage"
    #: Code-version tag; part of every artifact key and blob.
    version: str = "1"

    def compute(self, config: Any, engine) -> Any:
        """Produce the payload for ``config``.

        ``engine`` is passed so a stage can pull its upstream artifacts
        through the same cache (e.g. the trace stage pulling the
        estimator run it replays).
        """
        raise NotImplementedError

    def encode(self, payload: Any) -> tuple[dict[str, np.ndarray], dict]:
        """Payload -> (arrays, json-safe meta) for the disk cache."""
        raise NotImplementedError

    def decode(self, arrays: dict[str, np.ndarray], meta: dict) -> Any:
        """Inverse of :meth:`encode`; must be bit-exact for numerics."""
        raise NotImplementedError
