"""The artifact/stage execution engine.

Every expensive computation in the reproduction — sequence synthesis,
estimator runs, hardware co-simulation, synthesis solves, runtime
replays — is a typed :class:`~repro.engine.stage.Stage` keyed by the
content of its configuration. The :class:`~repro.engine.engine.Engine`
memoizes stage products in process, persists them in a
content-addressed cache under ``.repro_cache/``, and runs independent
work in parallel. See ``docs/engine.md`` for the cache layout and
invalidation rules.

Typical use::

    from repro.engine import ESTIMATOR, EstimatorRequest, get_engine
    from repro.engine.stages import sequence_config

    run = get_engine().run(
        ESTIMATOR, EstimatorRequest(sequence=sequence_config("euroc", "MH_01", 14.0))
    )
"""

from repro.engine.engine import (
    Artifact,
    DEFAULT_CACHE_DIR,
    Engine,
    configure,
    get_engine,
)
from repro.engine.cache import ArtifactCache, CacheCounters, CacheStats
from repro.engine.keys import artifact_key, config_token
from repro.engine.stage import Stage
from repro.engine.stages import (
    ESTIMATOR,
    POLICY,
    REPLAY,
    SEQUENCE,
    SYNTHESIS,
    TRACE,
    EstimatorRequest,
    PolicySpec,
    PolicyStage,
    ReplayRequest,
    SequenceStage,
    SynthesisStage,
    TraceRequest,
    design_reconfiguration,
    named_design,
    sequence_config,
)

__all__ = [
    "Artifact",
    "ArtifactCache",
    "CacheCounters",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "Engine",
    "Stage",
    "artifact_key",
    "config_token",
    "configure",
    "get_engine",
    "SEQUENCE",
    "ESTIMATOR",
    "TRACE",
    "SYNTHESIS",
    "REPLAY",
    "POLICY",
    "EstimatorRequest",
    "PolicySpec",
    "PolicyStage",
    "ReplayRequest",
    "SequenceStage",
    "SynthesisStage",
    "TraceRequest",
    "design_reconfiguration",
    "named_design",
    "sequence_config",
]
