"""The typed stages of the reproduction pipeline.

Five stages cover everything the Sec. 7 harness recomputes by hand
today; every consumer (experiments, benchmarks, examples) goes through
them so repeated invocations — across processes — hit the artifact
cache instead of re-running the estimator:

* :class:`SequenceStage` — synthesize a sensor recording from its
  :class:`~repro.data.sequences.SequenceConfig`;
* :class:`EstimatorStage` — run the sliding-window estimator over a
  sequence (optionally with a declaratively-specified runtime policy);
* :class:`TraceStage` — replay an estimator run through the cycle-level
  accelerator co-simulation;
* :class:`SynthesisStage` — solve a :class:`~repro.synth.spec.DesignSpec`
  constrained optimization;
* :class:`ReplayStage` — replay a run's workload through the runtime
  controller for the Sec. 7.6 energy bookkeeping.

Runtime hooks cannot be content-addressed (they are callables), so the
estimator stage accepts a :class:`PolicySpec` naming the design whose
reconfiguration table drives the iteration policy; the stage
materializes the controller itself.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from repro.data.io import sequence_from_arrays, sequence_to_arrays
from repro.data.sequences import (
    EUROC_SEQUENCES,
    KITTI_SEQUENCES,
    SequenceConfig,
    make_sequence,
)
from repro.engine import codecs
from repro.engine.keys import artifact_key
from repro.engine.stage import Stage
from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform, ZC706
from repro.hw.sim.trace import simulate_windows
from repro.runtime.controller import RuntimeController, replay_windows
from repro.runtime.profiler import IterationTable
from repro.runtime.reconfig import ReconfigurationTable, build_reconfiguration_table
from repro.slam.estimator import EstimatorConfig, SlidingWindowEstimator
from repro.synth.spec import DesignSpec, Objective
from repro.synth.synthesizer import SynthesisResult, synthesize
from repro.synth.optimizer import minimize_latency


# ----------------------------------------------------------------------
# Request dataclasses
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PolicySpec:
    """Declarative stand-in for ``EstimatorConfig.iteration_policy``.

    Names the Tbl. 2 design whose offline-built reconfiguration table
    (plus the default iteration lookup table and 2-bit counter) drives
    the per-window iteration cap. Being a plain frozen dataclass, it is
    content-addressable where the live controller callable is not.
    """

    design: str = "High-Perf"


@dataclass(frozen=True)
class EstimatorRequest:
    """One estimator run: which sequence, which estimator tuning.

    ``estimator`` must not carry live callables (``iteration_policy`` /
    ``window_probe``) — the key derivation rejects them; express runtime
    policies via ``policy`` instead.
    """

    sequence: SequenceConfig
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    policy: PolicySpec | None = None
    max_keyframes: int | None = None


@dataclass(frozen=True)
class TraceRequest:
    """Co-simulate an estimator run on a hardware design."""

    run: EstimatorRequest
    hardware: HardwareConfig
    platform: FpgaPlatform = ZC706
    seed: int = 0


@dataclass(frozen=True)
class ReplayRequest:
    """Replay a run's workload through the runtime controller."""

    run: EstimatorRequest
    design: str = "High-Perf"
    table: IterationTable = field(default_factory=IterationTable)


# ----------------------------------------------------------------------
# Named designs (Tbl. 2) and their reconfiguration tables
# ----------------------------------------------------------------------

NAMED_DESIGN_SPECS: dict[str, DesignSpec] = {
    "High-Perf": DesignSpec(latency_budget_s=0.020),
    "Low-Power": DesignSpec(latency_budget_s=0.033),
}

_reconfig_lock = threading.Lock()
_reconfig_memo: dict[str, ReconfigurationTable] = {}


def named_design(name: str, engine=None) -> SynthesisResult:
    """Solve (or fetch) one of the named Tbl. 2 designs via the engine."""
    if name not in NAMED_DESIGN_SPECS:
        raise ConfigurationError(
            f"unknown design {name!r}; choose from {sorted(NAMED_DESIGN_SPECS)}"
        )
    if engine is None:
        from repro.engine.engine import get_engine

        engine = get_engine()
    return engine.run(SYNTHESIS, NAMED_DESIGN_SPECS[name])


def design_reconfiguration(name: str, engine=None) -> ReconfigurationTable:
    """The Equ. 18 reconfiguration table of a named design.

    The table holds live :class:`HardwareConfig` entries solved against
    the design's spec; building it is deterministic, so a process-local
    memo (keyed by the design's artifact key) is enough — the heavy
    upstream work (the synthesis solve) already flows through the cache.
    """
    design = named_design(name, engine)
    memo_key = artifact_key("reconfig-table", "1", NAMED_DESIGN_SPECS[name])
    with _reconfig_lock:
        table = _reconfig_memo.get(memo_key)
    if table is None:
        table = build_reconfiguration_table(design.config, design.spec)
        with _reconfig_lock:
            _reconfig_memo[memo_key] = table
    return table


def materialize_policy(spec: PolicySpec, engine=None):
    """Turn a :class:`PolicySpec` into a live iteration-policy callable."""
    reconfig = design_reconfiguration(spec.design, engine)
    controller = RuntimeController(table=IterationTable(), reconfig=reconfig)
    return controller.iteration_policy


# ----------------------------------------------------------------------
# Stage implementations
# ----------------------------------------------------------------------

class SequenceStage(Stage):
    name = "sequence"
    version = "1"

    def compute(self, config: SequenceConfig, engine):
        del engine
        return make_sequence(config)

    def encode(self, payload):
        return sequence_to_arrays(payload), {}

    def decode(self, arrays, meta):
        del meta
        return sequence_from_arrays(arrays)


class EstimatorStage(Stage):
    name = "estimator-run"
    # v2: batched linearization backend (PR 2) — numerics differ from the
    # loop backend at rounding level and RunResult carries stage timings,
    # so loop-era artifacts must not be silently reused.
    # v3: SolverPlan solve path — jitter is now applied only on
    # factorization failure (was an unconditional 1e-9), shifting the
    # solve numerics at rounding level, and RunResult carries the
    # schur/chol/backsub timing split.
    version = "3"

    def compute(self, config: EstimatorRequest, engine):
        sequence = engine.run(SEQUENCE, config.sequence)
        estimator_config = config.estimator
        if config.policy is not None:
            estimator_config = replace(
                estimator_config,
                iteration_policy=materialize_policy(config.policy, engine),
            )
        estimator = SlidingWindowEstimator(estimator_config)
        return estimator.run(sequence, max_keyframes=config.max_keyframes)

    def encode(self, payload):
        return codecs.encode_run_result(payload)

    def decode(self, arrays, meta):
        return codecs.decode_run_result(arrays, meta)


class TraceStage(Stage):
    name = "trace-cosim"
    # v2: consumes estimator-run v2 outputs (batched backend numerics).
    # v3: consumes estimator-run v3 outputs (SolverPlan solve numerics).
    version = "3"

    def compute(self, config: TraceRequest, engine):
        run = engine.run(ESTIMATOR, config.run)
        return simulate_windows(
            [(w.stats, w.iterations) for w in run.windows],
            config.hardware,
            platform=config.platform,
            seed=config.seed,
        )

    def encode(self, payload):
        return codecs.encode_trace(payload)

    def decode(self, arrays, meta):
        return codecs.decode_trace(arrays, meta)


class SynthesisStage(Stage):
    name = "synthesis"
    version = "1"

    def compute(self, config: DesignSpec, engine):
        del engine
        if config.objective is Objective.LATENCY:
            outcome = minimize_latency(config)
            from repro.hw.resources import DEFAULT_RESOURCE_MODEL

            return SynthesisResult(
                config=outcome.config,
                spec=config,
                latency_s=outcome.latency_s,
                power_w=outcome.power_w,
                utilization=DEFAULT_RESOURCE_MODEL.utilization(
                    outcome.config, config.platform
                ),
                solve_seconds=outcome.solve_seconds,
                evaluated_points=outcome.evaluated_points,
            )
        return synthesize(config)

    def encode(self, payload):
        return codecs.encode_synthesis(payload)

    def decode(self, arrays, meta):
        return codecs.decode_synthesis(arrays, meta)


class PolicyStage(Stage):
    name = "runtime-policy"
    version = "1"

    def compute(self, config, engine):
        # Lazy: training replays serve profiles, and repro.serve imports
        # this module (same cycle-break as the portfolio solve).
        from repro.runtime.policy import train_controller_policy

        return train_controller_policy(config, engine)

    def encode(self, payload):
        return {}, payload.to_dict()

    def decode(self, arrays, meta):
        del arrays
        from repro.runtime.policy import ControllerPolicy

        return ControllerPolicy.from_dict(meta)


class ReplayStage(Stage):
    name = "runtime-replay"
    # v2: consumes estimator-run v2 outputs (batched backend numerics).
    # v3: consumes estimator-run v3 outputs (SolverPlan solve numerics).
    version = "3"

    def compute(self, config: ReplayRequest, engine):
        run = engine.run(ESTIMATOR, config.run)
        reconfig = design_reconfiguration(config.design, engine)
        return replay_windows(
            [w.stats for w in run.windows], config.table, reconfig
        )

    def encode(self, payload):
        return codecs.encode_replay(payload)

    def decode(self, arrays, meta):
        return codecs.decode_replay(arrays, meta)


# Singleton stage instances (stages are stateless; share them).
SEQUENCE = SequenceStage()
ESTIMATOR = EstimatorStage()
TRACE = TraceStage()
SYNTHESIS = SynthesisStage()
REPLAY = ReplayStage()
POLICY = PolicyStage()


# ----------------------------------------------------------------------
# Catalog helpers
# ----------------------------------------------------------------------

def sequence_config(kind: str, name: str, duration: float) -> SequenceConfig:
    """Resolve a catalog sequence (EuRoC/KITTI-like) at a duration."""
    if kind == "euroc":
        catalog = EUROC_SEQUENCES
    elif kind == "kitti":
        catalog = KITTI_SEQUENCES
    else:
        raise ConfigurationError(f"unknown dataset kind {kind!r}")
    if name not in catalog:
        raise ConfigurationError(
            f"unknown {kind} sequence {name!r}; choose from {sorted(catalog)}"
        )
    return replace(catalog[name], duration=duration)
