"""The execution engine: cached, parallel stage runs.

One :class:`Engine` owns three layers:

1. an in-process memo (always on — the successor of the old
   ``functools.lru_cache`` helpers, but shared by every consumer);
2. the content-addressed on-disk :class:`~repro.engine.cache.ArtifactCache`
   (on by default under ``.repro_cache/``; disable with
   ``use_disk=False`` / ``--no-cache``);
3. a thread-pool parallel runner for independent work items
   (``jobs`` > 1). Stages are deterministic functions of their config —
   seeds live inside the configs — so results are bit-identical at any
   worker count and with the cache on or off.

Computes are single-flight: concurrent requests for the same artifact
key block on one computation instead of duplicating it.

A module-level default engine serves library helpers
(:func:`get_engine`); the experiments CLI reconfigures it from
``--jobs`` / ``--cache-dir`` / ``--no-cache`` via :func:`configure`.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.engine.cache import ArtifactCache, CacheCounters, CacheStats
from repro.engine.keys import artifact_key
from repro.engine.stage import Stage
from repro.obs.tracer import Trace

logger = logging.getLogger("repro.engine")

DEFAULT_CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def _disk_cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set truthy — the environment
    analogue of ``--no-cache`` for entry points without CLI flags
    (examples, smoke tests)."""
    return os.environ.get("REPRO_NO_CACHE", "").lower() not in ("1", "true", "yes")


@dataclass(frozen=True)
class Artifact:
    """One stage product plus its provenance."""

    stage: str
    key: str
    payload: Any
    source: str  # "computed" | "memory" | "disk"
    seconds: float = 0.0


class Engine:
    """Runs stages through the memo/disk cache, optionally in parallel."""

    def __init__(
        self,
        cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
        use_disk: bool = True,
        jobs: int = 1,
        trace: Trace | None = None,
    ) -> None:
        self.cache = (
            ArtifactCache(cache_dir) if (use_disk and cache_dir is not None) else None
        )
        self.jobs = max(1, int(jobs))
        self.stats = CacheStats()
        # Optional repro.obs trace: every artifact fetch/compute becomes
        # a wall-clock span tagged with its cache provenance.
        self.trace = trace
        self._memory: dict[str, Any] = {}
        self._locks: dict[str, threading.Lock] = {}
        self._registry_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Single artifacts
    # ------------------------------------------------------------------

    def key_for(self, stage: Stage, config: Any) -> str:
        return artifact_key(stage.name, stage.version, config)

    def artifact(self, stage: Stage, config: Any) -> Artifact:
        """Fetch or compute one artifact, with provenance.

        With a trace attached, the whole fetch (cache probes included)
        is recorded as one span whose ``source`` attribute says whether
        the memo, the disk cache, or a fresh compute served it.
        """
        if self.trace is None:
            return self._artifact(stage, config)
        tic = time.perf_counter()
        artifact = self._artifact(stage, config)
        self.trace.add_span(
            stage.name,
            category="engine",
            start_s=tic,
            duration_s=time.perf_counter() - tic,
            source=artifact.source,
            key=artifact.key[:12],
        )
        return artifact

    def _artifact(self, stage: Stage, config: Any) -> Artifact:
        key = self.key_for(stage, config)
        payload = self._memory.get(key)
        if payload is not None:
            self.stats.record(stage.name, "memory_hits")
            return Artifact(stage.name, key, payload, "memory")
        with self._key_lock(key):
            payload = self._memory.get(key)
            if payload is not None:
                self.stats.record(stage.name, "memory_hits")
                return Artifact(stage.name, key, payload, "memory")
            if self.cache is not None:
                blob = self.cache.load(stage.name, stage.version, key)
                if blob is not None:
                    payload = stage.decode(*blob)
                    self._memory[key] = payload
                    self.stats.record(stage.name, "disk_hits")
                    logger.debug("disk hit %s %s", stage.name, key[:12])
                    return Artifact(stage.name, key, payload, "disk")
            started = time.perf_counter()
            payload = stage.compute(config, self)
            elapsed = time.perf_counter() - started
            self._memory[key] = payload
            self.stats.record(stage.name, "computed")
            logger.debug("computed %s %s in %.2fs", stage.name, key[:12], elapsed)
            if self.cache is not None:
                arrays, meta = stage.encode(payload)
                try:
                    self.cache.store(stage.name, stage.version, key, arrays, meta)
                    self.stats.record(stage.name, "stores")
                except OSError as error:
                    # A cache is never worth losing a finished computation
                    # over; an unwritable directory degrades to no-cache.
                    logger.warning(
                        "cache store failed for %s (%s); continuing uncached",
                        stage.name,
                        error,
                    )
            return Artifact(stage.name, key, payload, "computed", elapsed)

    def run(self, stage: Stage, config: Any) -> Any:
        """Fetch or compute one artifact and return its payload."""
        return self.artifact(stage, config).payload

    # ------------------------------------------------------------------
    # Parallel runs
    # ------------------------------------------------------------------

    def map(self, stage: Stage, configs: list) -> list:
        """Run one stage over many configs, in order, possibly parallel."""
        return self.parallel(lambda config: self.run(stage, config), configs)

    def parallel(self, fn, items: list) -> list:
        """Apply ``fn`` over ``items`` on the engine's worker pool.

        Results come back in input order; with ``jobs == 1`` this is a
        plain loop, so single- and multi-worker runs traverse items in
        the same deterministic order of responsibility.
        """
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
            return list(pool.map(fn, items))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cache_counters(self) -> dict[str, int]:
        """Blob-level disk-cache counters (all zero when disk is off)."""
        if self.cache is None:
            return CacheCounters().as_dict()
        return self.cache.counters.as_dict()

    def stats_line(self) -> str:
        if self.cache is None:
            return f"[engine] cache: {self.stats.summary()} (disk: disabled)"
        return (
            f"[engine] cache: {self.stats.summary()} "
            f"(disk: {self.cache.cache_dir}; {self.cache.counters.summary()})"
        )

    def _key_lock(self, key: str) -> threading.Lock:
        with self._registry_lock:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock


_default_engine: Engine | None = None
_default_lock = threading.Lock()


def get_engine() -> Engine:
    """The process-wide default engine (created on first use)."""
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = Engine(use_disk=_disk_cache_enabled())
        return _default_engine


def configure(
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
    use_disk: bool = True,
    jobs: int = 1,
    trace: Trace | None = None,
) -> Engine:
    """Replace the default engine (CLI flags, test fixtures)."""
    global _default_engine
    with _default_lock:
        _default_engine = Engine(
            cache_dir=cache_dir, use_disk=use_disk, jobs=jobs, trace=trace
        )
        return _default_engine
