"""The content-addressed on-disk artifact cache.

Layout (one blob per artifact, all self-describing):

    <cache_dir>/<stage-name>/<key>.npz

where ``key`` is the hex sha256 of (schema version, stage name, stage
code-version tag, canonical config token) — see
:mod:`repro.engine.keys`. Each blob holds the stage codec's arrays plus
an ``__engine_meta__`` JSON record (stage, version, key, codec meta).
A blob whose recorded stage version differs from the running code is
ignored (treated as a miss), which is how stage-logic changes invalidate
stale artifacts without any bookkeeping: bump the stage's ``version``
tag and old keys simply stop being produced while old blobs stop being
trusted.

Writes are atomic (temp file + ``os.replace``) so concurrent workers —
or a killed run — can never leave a half-written blob that a later
process would trust.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

_META_KEY = "__engine_meta__"


@dataclass
class CacheCounters:
    """Blob-level hit/miss accounting kept by :class:`ArtifactCache`.

    ``hits`` and ``misses`` count :meth:`ArtifactCache.load` outcomes;
    ``puts`` counts :meth:`ArtifactCache.store` calls;
    ``corrupt_blob_misses`` and ``stale_misses`` break the misses down
    by cause (an unreadable blob vs a stage-version mismatch — both are
    also counted in ``misses``). Increments are lock-protected so
    concurrent engine workers and serve sessions can share one cache.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt_blob_misses: int = 0
    stale_misses: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, *events: str) -> None:
        with self._lock:
            for event in events:
                setattr(self, event, getattr(self, event) + 1)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "corrupt_blob_misses": self.corrupt_blob_misses,
                "stale_misses": self.stale_misses,
            }

    def summary(self) -> str:
        d = self.as_dict()
        return (
            f"{d['hits']} blob hits, {d['misses']} misses "
            f"({d['corrupt_blob_misses']} corrupt, {d['stale_misses']} stale), "
            f"{d['puts']} puts"
        )


@dataclass
class CacheStats:
    """Hit/miss counters, kept per engine and reported by the CLI."""

    memory_hits: int = 0
    disk_hits: int = 0
    computed: int = 0
    stores: int = 0
    by_stage: dict[str, dict[str, int]] = field(default_factory=dict)

    def record(self, stage: str, event: str) -> None:
        setattr(self, event, getattr(self, event) + 1)
        per_stage = self.by_stage.setdefault(
            stage, {"memory_hits": 0, "disk_hits": 0, "computed": 0, "stores": 0}
        )
        per_stage[event] += 1

    def summary(self) -> str:
        return (
            f"{self.memory_hits} memory hits, {self.disk_hits} disk hits, "
            f"{self.computed} computed"
        )


class ArtifactCache:
    """Load/store codec blobs under a cache directory."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.counters = CacheCounters()

    def path_for(self, stage_name: str, key: str) -> Path:
        return self.cache_dir / stage_name / f"{key}.npz"

    def load(self, stage_name: str, stage_version: str, key: str):
        """Return ``(arrays, meta)`` or ``None`` on miss/stale/corrupt."""
        path = self.path_for(stage_name, key)
        if not path.exists():
            self.counters.record("misses")
            return None
        try:
            with np.load(path) as data:
                engine_meta = json.loads(bytes(np.asarray(data[_META_KEY])).decode())
                if engine_meta.get("stage") != stage_name:
                    self.counters.record("misses")
                    return None
                if engine_meta.get("version") != stage_version:
                    # Stale: stage logic changed since this blob.
                    self.counters.record("misses", "stale_misses")
                    return None
                arrays = {k: data[k] for k in data.files if k != _META_KEY}
            self.counters.record("hits")
            return arrays, engine_meta.get("codec_meta", {})
        except (
            OSError,
            ValueError,
            KeyError,
            EOFError,
            json.JSONDecodeError,
            zipfile.BadZipFile,
            zlib.error,
        ):
            # Unreadable/corrupt blob (truncated zip, flipped bytes,
            # bad JSON, ...): recompute rather than fail.
            self.counters.record("misses", "corrupt_blob_misses")
            return None

    def store(
        self,
        stage_name: str,
        stage_version: str,
        key: str,
        arrays: dict[str, np.ndarray],
        codec_meta: dict,
    ) -> Path:
        path = self.path_for(stage_name, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        engine_meta = {
            "stage": stage_name,
            "version": stage_version,
            "key": key,
            "codec_meta": codec_meta,
        }
        blob = dict(arrays)
        blob[_META_KEY] = np.frombuffer(
            json.dumps(engine_meta).encode(), dtype=np.uint8
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:12]}-", suffix=".npz.tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.counters.record("puts")
        return path
