"""Array-level codecs for stage payloads.

Each codec turns a payload into ``(arrays, meta)`` — a flat mapping of
numpy arrays plus a small JSON-safe metadata dict — and back. The cache
stores both in a single ``.npz`` blob (see :mod:`repro.engine.cache`),
mirroring the format :mod:`repro.data.io` established for sequences.

The round-trip contract is *bit-identity*: every float travels through
float64 arrays (never JSON), so a decoded payload feeds the experiments
the exact numbers the fresh computation would have.
"""

from __future__ import annotations

import numpy as np

from repro.data.stats import WindowStats
from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform
from repro.hw.sim.trace import TraceSimulation
from repro.runtime.controller import ReplayResult, WindowDecision
from repro.runtime.profiler import StageTimings
from repro.slam.estimator import RunResult, WindowResult
from repro.synth.spec import DesignSpec, Objective
from repro.synth.synthesizer import SynthesisResult


def _int_array(values) -> np.ndarray:
    return np.asarray(list(values), dtype=np.int64)


def _float_array(values) -> np.ndarray:
    return np.asarray(list(values), dtype=np.float64)


# ----------------------------------------------------------------------
# RunResult
# ----------------------------------------------------------------------

def encode_run_result(run: RunResult) -> tuple[dict[str, np.ndarray], dict]:
    windows = run.windows
    frame_ids = [w.frame_ids for w in windows]
    positions = (
        np.stack(run.estimated_positions)
        if run.estimated_positions
        else np.zeros((0, 3))
    )
    true_positions = (
        np.stack(run.true_positions) if run.true_positions else np.zeros((0, 3))
    )
    arrays = {
        "window_index": _int_array(w.window_index for w in windows),
        "iterations": _int_array(w.iterations for w in windows),
        "accepted_steps": _int_array(w.accepted_steps for w in windows),
        "initial_cost": _float_array(w.initial_cost for w in windows),
        "final_cost": _float_array(w.final_cost for w in windows),
        "newest_position_error": _float_array(
            w.newest_position_error for w in windows
        ),
        "relative_error": _float_array(w.relative_error for w in windows),
        "timing_linearize": _float_array(w.timings.linearize_s for w in windows),
        "timing_assemble": _float_array(w.timings.assemble_s for w in windows),
        "timing_solve": _float_array(w.timings.solve_s for w in windows),
        "timing_update": _float_array(w.timings.update_s for w in windows),
        "timing_schur": _float_array(w.timings.schur_s for w in windows),
        "timing_chol": _float_array(w.timings.chol_s for w in windows),
        "timing_backsub": _float_array(w.timings.backsub_s for w in windows),
        "stats_num_features": _int_array(w.stats.num_features for w in windows),
        "stats_avg_observations": _float_array(
            w.stats.avg_observations for w in windows
        ),
        "stats_num_keyframes": _int_array(w.stats.num_keyframes for w in windows),
        "stats_num_marginalized": _int_array(
            w.stats.num_marginalized for w in windows
        ),
        "stats_state_size": _int_array(w.stats.state_size for w in windows),
        "stats_num_observations": _int_array(
            w.stats.num_observations for w in windows
        ),
        "frame_ids_flat": _int_array(
            fid for window_ids in frame_ids for fid in window_ids
        ),
        "frame_ids_len": _int_array(len(window_ids) for window_ids in frame_ids),
        "estimated_positions": positions,
        "true_positions": true_positions,
        "feature_counts": _int_array(run.feature_counts),
        "iterations_used": _int_array(run.iterations_used),
    }
    return arrays, {}


def decode_run_result(arrays, meta) -> RunResult:
    del meta
    run = RunResult()
    offsets = np.cumsum(np.concatenate([[0], arrays["frame_ids_len"]]))
    flat = arrays["frame_ids_flat"]
    for i in range(len(arrays["window_index"])):
        stats = WindowStats(
            num_features=int(arrays["stats_num_features"][i]),
            avg_observations=float(arrays["stats_avg_observations"][i]),
            num_keyframes=int(arrays["stats_num_keyframes"][i]),
            num_marginalized=int(arrays["stats_num_marginalized"][i]),
            state_size=int(arrays["stats_state_size"][i]),
            num_observations=int(arrays["stats_num_observations"][i]),
        )
        run.windows.append(
            WindowResult(
                window_index=int(arrays["window_index"][i]),
                frame_ids=[int(f) for f in flat[offsets[i]:offsets[i + 1]]],
                stats=stats,
                iterations=int(arrays["iterations"][i]),
                accepted_steps=int(arrays["accepted_steps"][i]),
                initial_cost=float(arrays["initial_cost"][i]),
                final_cost=float(arrays["final_cost"][i]),
                newest_position_error=float(arrays["newest_position_error"][i]),
                relative_error=float(arrays["relative_error"][i]),
                timings=StageTimings(
                    linearize_s=float(arrays["timing_linearize"][i]),
                    assemble_s=float(arrays["timing_assemble"][i]),
                    solve_s=float(arrays["timing_solve"][i]),
                    update_s=float(arrays["timing_update"][i]),
                    # Pre-split artifacts decode with zero sub-phase
                    # timings rather than failing (stage version gates
                    # reuse anyway).
                    schur_s=float(arrays["timing_schur"][i])
                    if "timing_schur" in arrays else 0.0,
                    chol_s=float(arrays["timing_chol"][i])
                    if "timing_chol" in arrays else 0.0,
                    backsub_s=float(arrays["timing_backsub"][i])
                    if "timing_backsub" in arrays else 0.0,
                ),
            )
        )
    run.estimated_positions = [row.copy() for row in arrays["estimated_positions"]]
    run.true_positions = [row.copy() for row in arrays["true_positions"]]
    run.feature_counts = [int(v) for v in arrays["feature_counts"]]
    run.iterations_used = [int(v) for v in arrays["iterations_used"]]
    return run


# ----------------------------------------------------------------------
# TraceSimulation
# ----------------------------------------------------------------------

def encode_trace(trace: TraceSimulation) -> tuple[dict[str, np.ndarray], dict]:
    arrays = {
        "seconds": _float_array(trace.seconds),
        "energies_j": _float_array(trace.energies_j),
        "simulated_cycles": _float_array(trace.simulated_cycles),
        "analytical_cycles": _float_array(trace.analytical_cycles),
    }
    return arrays, {}


def decode_trace(arrays, meta) -> TraceSimulation:
    del meta
    return TraceSimulation(
        seconds=[float(v) for v in arrays["seconds"]],
        energies_j=[float(v) for v in arrays["energies_j"]],
        simulated_cycles=[float(v) for v in arrays["simulated_cycles"]],
        analytical_cycles=[float(v) for v in arrays["analytical_cycles"]],
    )


# ----------------------------------------------------------------------
# ReplayResult (runtime controller)
# ----------------------------------------------------------------------

def encode_replay(replay: ReplayResult) -> tuple[dict[str, np.ndarray], dict]:
    decisions = replay.decisions
    arrays = {
        "feature_count": _int_array(d.feature_count for d in decisions),
        "proposed_iterations": _int_array(d.proposed_iterations for d in decisions),
        "applied_iterations": _int_array(d.applied_iterations for d in decisions),
        "config_nd": _int_array(d.config.nd for d in decisions),
        "config_nm": _int_array(d.config.nm for d in decisions),
        "config_s": _int_array(d.config.s for d in decisions),
        "reconfigured": _int_array(int(d.reconfigured) for d in decisions),
        "energy_j": _float_array(d.energy_j for d in decisions),
        "static_energy_j": _float_array(d.static_energy_j for d in decisions),
        "gated_iter": _int_array(sorted(replay.gated_power_by_iter)),
        "gated_power": _float_array(
            replay.gated_power_by_iter[i] for i in sorted(replay.gated_power_by_iter)
        ),
    }
    return arrays, {}


def decode_replay(arrays, meta) -> ReplayResult:
    del meta
    decisions = tuple(
        WindowDecision(
            feature_count=int(arrays["feature_count"][i]),
            proposed_iterations=int(arrays["proposed_iterations"][i]),
            applied_iterations=int(arrays["applied_iterations"][i]),
            config=HardwareConfig(
                nd=int(arrays["config_nd"][i]),
                nm=int(arrays["config_nm"][i]),
                s=int(arrays["config_s"][i]),
            ),
            reconfigured=bool(arrays["reconfigured"][i]),
            energy_j=float(arrays["energy_j"][i]),
            static_energy_j=float(arrays["static_energy_j"][i]),
        )
        for i in range(len(arrays["feature_count"]))
    )
    gated = {
        int(it): float(power)
        for it, power in zip(arrays["gated_iter"], arrays["gated_power"])
    }
    return ReplayResult(decisions=decisions, gated_power_by_iter=gated)


# ----------------------------------------------------------------------
# SynthesisResult
# ----------------------------------------------------------------------

def encode_synthesis(result: SynthesisResult) -> tuple[dict[str, np.ndarray], dict]:
    spec = result.spec
    platform = spec.platform
    workload = spec.workload
    arrays = {
        "knobs": _int_array(result.config.as_tuple()),
        "latency_s": _float_array([result.latency_s]),
        "power_w": _float_array([result.power_w]),
        "solve_seconds": _float_array([result.solve_seconds]),
        "evaluated_points": _int_array([result.evaluated_points]),
        "utilization": _float_array(
            result.utilization[k] for k in sorted(result.utilization)
        ),
        "spec_scalars": _float_array(
            [spec.latency_budget_s, spec.resource_budget, spec.iterations]
        ),
        "platform_scalars": _float_array(
            [platform.lut, platform.ff, platform.bram, platform.dsp,
             platform.frequency_hz]
        ),
        "workload_scalars": _float_array(
            [workload.num_features, workload.avg_observations,
             workload.num_keyframes, workload.num_marginalized,
             workload.state_size, workload.num_observations]
        ),
    }
    meta = {
        "utilization_keys": sorted(result.utilization),
        "objective": spec.objective.value,
        "platform_name": platform.name,
    }
    return arrays, meta


def decode_synthesis(arrays, meta) -> SynthesisResult:
    nd, nm, s = (int(v) for v in arrays["knobs"])
    p = arrays["platform_scalars"]
    platform = FpgaPlatform(
        name=str(meta["platform_name"]),
        lut=int(p[0]),
        ff=int(p[1]),
        bram=float(p[2]),
        dsp=int(p[3]),
        frequency_hz=float(p[4]),
    )
    w = arrays["workload_scalars"]
    workload = WindowStats(
        num_features=int(w[0]),
        avg_observations=float(w[1]),
        num_keyframes=int(w[2]),
        num_marginalized=int(w[3]),
        state_size=int(w[4]),
        num_observations=int(w[5]),
    )
    spec_scalars = arrays["spec_scalars"]
    spec = DesignSpec(
        latency_budget_s=float(spec_scalars[0]),
        platform=platform,
        resource_budget=float(spec_scalars[1]),
        workload=workload,
        iterations=int(spec_scalars[2]),
        objective=Objective(str(meta["objective"])),
    )
    return SynthesisResult(
        config=HardwareConfig(nd=nd, nm=nm, s=s),
        spec=spec,
        latency_s=float(arrays["latency_s"][0]),
        power_w=float(arrays["power_w"][0]),
        utilization={
            key: float(value)
            for key, value in zip(meta["utilization_keys"], arrays["utilization"])
        },
        solve_seconds=float(arrays["solve_seconds"][0]),
        evaluated_points=int(arrays["evaluated_points"][0]),
    )
