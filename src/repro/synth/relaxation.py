"""Mixed-integer solve via continuous relaxation (the YALMIP analogue).

The paper formulates synthesis as 3-variable mixed-integer convex
programming and solves it near-optimally with YALMIP in milliseconds.
Our primary solver is the exact grid search (strictly stronger), but
this module reproduces the paper's *approach*: relax the integrality,
solve the continuous program with SciPy's SLSQP, then round to the
neighboring lattice points and locally repair. Tests verify the relaxed
solve lands within a small optimality gap of the exact optimum — the
"near-optimal" behaviour the paper reports.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import numpy as np
from scipy.optimize import NonlinearConstraint, minimize

from repro.errors import InfeasibleDesignError
from repro.hw.config import HardwareConfig, ND_RANGE, NM_RANGE, S_RANGE
from repro.hw.fpga import RESOURCE_KINDS
from repro.hw.latency import (
    backsub_latency,
    cholesky_latency,
    dschur_feature_latency,
    jacobian_feature_latency,
    mschur_latency,
)
from repro.hw.power import DEFAULT_POWER_MODEL, PowerModel
from repro.hw.resources import DEFAULT_RESOURCE_MODEL, ResourceModel
from repro.obs.tracer import global_trace
from repro.synth.optimizer import SearchOutcome
from repro.synth.spec import DesignSpec


class _ContinuousLatency:
    """A continuous surrogate of the latency model.

    The nd and nm terms of Equ. 9-10 are already smooth in the real
    knobs; the s term (Equ. 7) is piecewise, so it is linearly
    interpolated over the integer grid — the standard relaxation of a
    tabulated integer response.
    """

    def __init__(self, spec: DesignSpec) -> None:
        stats = spec.workload
        self._spec = spec
        self._a = max(stats.num_features, 1)
        self._am = max(stats.num_marginalized, 1)
        self._jac = jacobian_feature_latency(stats.avg_observations)
        self._sub = backsub_latency(stats)
        self._no = stats.avg_observations
        q = stats.state_size * max(stats.num_keyframes, 1)
        self._s_grid = np.arange(S_RANGE[0], S_RANGE[1] + 1, dtype=float)
        self._chol = np.array([cholesky_latency(q, int(s)) for s in self._s_grid])

    def seconds(self, x: np.ndarray) -> float:
        nd, nm, s = x
        dschur = dschur_feature_latency(self._no, 1) / max(nd, 1e-6)
        chol = float(np.interp(s, self._s_grid, self._chol))
        per_feature = max(self._jac, dschur)
        nls = self._a * per_feature + chol + self._sub
        # Continuous Equ. 10: inline with real-valued nm.
        stats = self._spec.workload
        mschur = mschur_latency(stats, 1) * 0.0  # placeholder, computed below
        am, b = self._am, max(stats.num_keyframes, 2)
        bk = (15.0 + am) / max(nm, 1e-6)
        keep = 6.0 * (b - 1) + 9.0
        from repro.hw.latency import CYCLES_PER_MAC

        mschur = CYCLES_PER_MAC * (
            15.0 * am + am * am + bk * (15.0 + am) * keep + bk * keep * keep
        )
        marg = self._am * self._jac + self._am * dschur + chol + mschur
        cycles = self._spec.iterations * nls + marg
        return cycles / self._spec.platform.frequency_hz


def relaxation_search(
    spec: DesignSpec,
    resource_model: ResourceModel = DEFAULT_RESOURCE_MODEL,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
) -> SearchOutcome:
    """Solve Equ. 11 by continuous relaxation + rounding + local repair."""
    with global_trace().span("relaxation_search", category="synth") as span:
        outcome = _solve(spec, resource_model, power_model)
    return replace(outcome, solve_seconds=span.duration_s)


def _solve(
    spec: DesignSpec,
    resource_model: ResourceModel,
    power_model: PowerModel,
) -> SearchOutcome:
    latency = _ContinuousLatency(spec)

    def power_of(x: np.ndarray) -> float:
        return (
            power_model.base
            + power_model.per_nd * x[0]
            + power_model.per_nm * x[1]
            + power_model.per_s * x[2]
        )

    def resource_slack(x: np.ndarray) -> np.ndarray:
        config_like = x
        slacks = []
        for kind in RESOURCE_KINDS:
            linear = getattr(resource_model, kind)
            usage = (
                linear.base
                + linear.per_nd * config_like[0]
                + linear.per_nm * config_like[1]
                + linear.per_s * config_like[2]
            )
            slacks.append(
                spec.resource_budget * spec.platform.capacity(kind) - usage
            )
        return np.array(slacks)

    bounds = [
        (float(ND_RANGE[0]), float(ND_RANGE[1])),
        (float(NM_RANGE[0]), float(NM_RANGE[1])),
        (float(S_RANGE[0]), float(S_RANGE[1])),
    ]
    constraints = [
        NonlinearConstraint(
            lambda x: spec.latency_budget_s - latency.seconds(x), 0.0, np.inf
        ),
        NonlinearConstraint(resource_slack, 0.0, np.inf),
    ]
    x0 = np.array([b[1] for b in bounds])  # start feasible-in-latency
    solution = minimize(
        power_of,
        x0,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": 200, "ftol": 1e-10},
    )

    # Round to the neighboring lattice and locally repair: among the 27
    # integer neighbours (then an expanding ring if none is feasible),
    # pick the min-power feasible point.
    from repro.hw.latency import window_latency_seconds

    def feasible(config: HardwareConfig) -> bool:
        if not resource_model.fits(config, spec.platform, spec.resource_budget):
            return False
        return (
            window_latency_seconds(
                spec.workload, config, spec.iterations, spec.platform
            )
            <= spec.latency_budget_s
        )

    center = solution.x
    best: HardwareConfig | None = None
    best_power = np.inf
    for radius in (1, 2, 4, 8):
        offsets = range(-radius, radius + 1)
        for d_nd, d_nm, d_s in itertools.product(offsets, offsets, offsets):
            nd = int(np.clip(round(center[0]) + d_nd, *ND_RANGE))
            nm = int(np.clip(round(center[1]) + d_nm, *NM_RANGE))
            s = int(np.clip(round(center[2]) + d_s, *S_RANGE))
            config = HardwareConfig(nd, nm, s)
            power = power_model.power(config)
            if power < best_power and feasible(config):
                best, best_power = config, power
        if best is not None:
            break
    if best is None:
        raise InfeasibleDesignError(
            "relaxation rounding found no feasible integer design"
        )
    return SearchOutcome(
        config=best,
        power_w=best_power,
        latency_s=window_latency_seconds(
            spec.workload, best, spec.iterations, spec.platform
        ),
        solve_seconds=0.0,  # stamped by the caller's span
        evaluated_points=int(solution.nit),
    )
