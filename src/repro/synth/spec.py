"""Design specifications: what the user hands the synthesizer.

A :class:`DesignSpec` fixes the constraints of Equ. 11/12 — the latency
target, the FPGA resource budget, the workload the latency model is
evaluated on, and the optimization objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.hw.fpga import FpgaPlatform, ZC706
from repro.hw.latency import REFERENCE_WORKLOAD


class Objective(Enum):
    """What the synthesizer minimizes."""

    POWER = "power"  # Equ. 11: min power s.t. latency + resources
    LATENCY = "latency"  # Equ. 12: min latency s.t. resources


@dataclass(frozen=True)
class DesignSpec:
    """Constraints of one synthesis run.

    Attributes:
        latency_budget_s: L* — per-window latency bound [s]. Ignored
            when the objective is LATENCY.
        platform: the FPGA whose capacities form R*.
        resource_budget: fraction of each capacity usable (<= 1.0);
            below 1.0 leaves headroom for routing congestion.
        workload: window statistics the latency model is evaluated on.
        iterations: the NLS iteration count Iter the static design must
            accommodate (the paper caps it at 6).
        objective: POWER (Equ. 11) or LATENCY (Equ. 12).
    """

    latency_budget_s: float = 0.020
    platform: FpgaPlatform = ZC706
    resource_budget: float = 1.0
    workload: WindowStats = REFERENCE_WORKLOAD
    iterations: int = 6
    objective: Objective = Objective.POWER

    def __post_init__(self) -> None:
        if self.objective is Objective.POWER and self.latency_budget_s <= 0:
            raise ConfigurationError("latency_budget_s must be positive")
        if not 0 < self.resource_budget <= 1.0:
            raise ConfigurationError("resource_budget must be in (0, 1]")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
