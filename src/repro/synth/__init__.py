"""The hardware synthesizer (Sec. 5).

Given a latency constraint, a resource budget (an FPGA platform), and a
workload, the synthesizer solves the constrained optimization of Equ. 11
(minimize power) or Equ. 12 (minimize latency) over the (nd, nm, s)
design space, then emits the concrete accelerator (the RTL of
:mod:`repro.hw.rtl`). The solver is exact: the 90,000-point space is
searched with monotonicity pruning in milliseconds, strictly stronger
than the paper's near-optimal mixed-integer convex solve.
"""

from repro.synth.spec import DesignSpec, Objective
from repro.synth.relaxation import relaxation_search
from repro.synth.optimizer import (
    exhaustive_search,
    pruned_search,
    minimize_power,
    minimize_latency,
)
from repro.synth.synthesizer import (
    SynthesisResult,
    synthesize,
    high_perf_design,
    low_power_design,
    biggest_fit_design,
)
from repro.synth.pareto import ParetoPoint, pareto_frontier, perturb_and_validate
from repro.synth.dse import (
    design_space_metrics,
    exhaustive_flow_years,
    generator_seconds,
)

__all__ = [
    "DesignSpec",
    "Objective",
    "exhaustive_search",
    "pruned_search",
    "minimize_power",
    "minimize_latency",
    "relaxation_search",
    "SynthesisResult",
    "synthesize",
    "high_perf_design",
    "low_power_design",
    "biggest_fit_design",
    "ParetoPoint",
    "pareto_frontier",
    "perturb_and_validate",
    "design_space_metrics",
    "exhaustive_flow_years",
    "generator_seconds",
]
