"""CLI synthesizer: ``python -m repro.synth --latency-ms 20 --board zc706``.

The command-line face of the framework: constraints in, design summary
and (optionally) Verilog files out.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import InfeasibleDesignError
from repro.hw.fpga import FPGA_CATALOG
from repro.synth.spec import DesignSpec, Objective
from repro.synth.synthesizer import synthesize


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.synth",
        description="Synthesize a localization accelerator from constraints.",
    )
    parser.add_argument(
        "--latency-ms",
        type=float,
        default=20.0,
        help="per-window latency budget in milliseconds (default 20)",
    )
    parser.add_argument(
        "--board",
        choices=sorted(FPGA_CATALOG),
        default="zc706",
        help="target FPGA platform",
    )
    parser.add_argument(
        "--objective",
        choices=["power", "latency"],
        default="power",
        help="minimize power under the budget (Equ. 11) or latency (Equ. 12)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=6,
        help="NLS iteration count the design must accommodate",
    )
    parser.add_argument(
        "--resource-budget",
        type=float,
        default=1.0,
        help="usable fraction of each FPGA resource (routing headroom)",
    )
    parser.add_argument(
        "--emit",
        metavar="DIR",
        default=None,
        help="write the generated Verilog (and testbench) into DIR",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    spec = DesignSpec(
        latency_budget_s=args.latency_ms / 1e3,
        platform=FPGA_CATALOG[args.board],
        resource_budget=args.resource_budget,
        iterations=args.iterations,
        objective=Objective(args.objective),
    )
    try:
        design = synthesize(spec)
    except InfeasibleDesignError as error:
        print(f"infeasible: {error}", file=sys.stderr)
        return 1

    print(f"board      : {spec.platform.name}")
    print(f"design     : nd={design.config.nd} nm={design.config.nm} s={design.config.s}")
    print(f"latency    : {design.latency_s * 1e3:.2f} ms/window")
    print(f"power      : {design.power_w:.2f} W")
    print("utilization: " + "  ".join(
        f"{k}={100 * v:.0f}%" for k, v in design.utilization.items()
    ))
    print(f"solved in  : {design.solve_seconds * 1e3:.1f} ms")

    if args.emit:
        from repro.hw.rtl import emit_testbench

        out_dir = Path(args.emit)
        out_dir.mkdir(parents=True, exist_ok=True)
        files = design.emit_verilog()
        files["archytas_tb.v"] = emit_testbench(design.config)
        for name, source in files.items():
            (out_dir / name).write_text(source)
        print(f"wrote {len(files)} Verilog files to {out_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
