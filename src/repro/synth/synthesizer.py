"""End-to-end synthesis: spec in, concrete accelerator out.

``synthesize`` runs the constrained optimization, packages the chosen
(nd, nm, s) with its predicted latency/power/utilization, and can emit
the synthesizable Verilog for the design. ``high_perf_design`` and
``low_power_design`` are the two named designs of Tbl. 2 (optimized
under 20 ms and 33 ms respectively); ``biggest_fit_design`` is the
Sec. 7.7 flow that packs the largest design a given board can hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform, ZC706
from repro.hw.power import DEFAULT_POWER_MODEL, PowerModel
from repro.hw.resources import DEFAULT_RESOURCE_MODEL, ResourceModel
from repro.synth.optimizer import exhaustive_search, minimize_latency
from repro.synth.spec import DesignSpec, Objective


@dataclass(frozen=True)
class SynthesisResult:
    """A concrete accelerator design and its predicted characteristics."""

    config: HardwareConfig
    spec: DesignSpec
    latency_s: float
    power_w: float
    utilization: dict[str, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    evaluated_points: int = 0

    @property
    def binding_resource(self) -> str:
        return max(self.utilization, key=self.utilization.get)

    def emit_verilog(self) -> dict[str, str]:
        """Generate the synthesizable Verilog for this design."""
        from repro.hw.rtl import emit_design

        return emit_design(self.config, self.spec.platform)


def synthesize(
    spec: DesignSpec,
    resource_model: ResourceModel = DEFAULT_RESOURCE_MODEL,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
) -> SynthesisResult:
    """Solve the spec's optimization and return the chosen design."""
    outcome = exhaustive_search(spec, resource_model, power_model)
    return SynthesisResult(
        config=outcome.config,
        spec=spec,
        latency_s=outcome.latency_s,
        power_w=outcome.power_w,
        utilization=resource_model.utilization(outcome.config, spec.platform),
        solve_seconds=outcome.solve_seconds,
        evaluated_points=outcome.evaluated_points,
    )


def high_perf_design(platform: FpgaPlatform = ZC706, **spec_overrides) -> SynthesisResult:
    """The Tbl. 2 High-Perf design: min power under a 20 ms budget."""
    spec = DesignSpec(latency_budget_s=0.020, platform=platform, **spec_overrides)
    return synthesize(spec)


def low_power_design(platform: FpgaPlatform = ZC706, **spec_overrides) -> SynthesisResult:
    """The Tbl. 2 Low-Power design: min power under a 33 ms budget."""
    spec = DesignSpec(latency_budget_s=0.033, platform=platform, **spec_overrides)
    return synthesize(spec)


def biggest_fit_design(platform: FpgaPlatform, **spec_overrides) -> SynthesisResult:
    """Sec. 7.7: the fastest design that fits the given board (Equ. 12)."""
    spec = DesignSpec(platform=platform, objective=Objective.LATENCY, **spec_overrides)
    outcome = minimize_latency(spec)
    return SynthesisResult(
        config=outcome.config,
        spec=spec,
        latency_s=outcome.latency_s,
        power_w=outcome.power_w,
        utilization=DEFAULT_RESOURCE_MODEL.utilization(outcome.config, platform),
        solve_seconds=outcome.solve_seconds,
        evaluated_points=outcome.evaluated_points,
    )
