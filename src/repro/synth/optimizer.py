"""Exact solvers for the synthesis optimization (Equ. 11 / Equ. 12).

The latency model is separable in the three knobs — the nd term, the nm
term and the s term contribute additively (with a max against the fixed
Jacobian latency) — so the full 90,000-point grid can be evaluated with
three small vectors and broadcasting. ``exhaustive_search`` does exactly
that in milliseconds and is provably optimal; ``pruned_search`` is a
coordinate sweep with monotonicity pruning that reaches the same answer
while touching a fraction of the space (kept for comparison and as the
analogue of the paper's convex solve).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import InfeasibleDesignError
from repro.hw.config import HardwareConfig, ND_RANGE, NM_RANGE, S_RANGE
from repro.hw.fpga import RESOURCE_KINDS
from repro.hw.latency import (
    backsub_latency,
    cholesky_latency,
    dschur_feature_latency,
    jacobian_feature_latency,
    mschur_latency,
)
from repro.hw.power import DEFAULT_POWER_MODEL, PowerModel
from repro.hw.resources import DEFAULT_RESOURCE_MODEL, ResourceModel
from repro.obs.tracer import global_trace
from repro.synth.spec import DesignSpec, Objective

# Shared tie-breaking semantics for both solvers: every feasible point
# whose score lies within this relative band of the global minimum is a
# candidate, and the candidate with the smallest tiebreak metric wins
# (first in lexicographic (nd, nm, s) order on a tiebreak tie). The
# pruned sweep previously used an absolute 1e-15 window with
# first-seen-wins, which could disagree with the exhaustive grid on
# plateaus of the latency surface.
_TIE_RTOL = 1e-12


@dataclass(frozen=True)
class SearchOutcome:
    """Result of one optimization solve."""

    config: HardwareConfig
    power_w: float
    latency_s: float
    solve_seconds: float
    evaluated_points: int


def _latency_grid(
    spec: DesignSpec, upper_bound: HardwareConfig | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized latency over the (possibly bounded) design space.

    Returns (nd_values, nm_values, s_values, latency_seconds) where the
    latency array has shape (len(nd), len(nm), len(s)). ``upper_bound``
    clips each knob's range — the Equ. 18 constraint that a run-time
    reconfiguration must fit inside the static design.
    """
    stats = spec.workload
    nd_max = upper_bound.nd if upper_bound else ND_RANGE[1]
    nm_max = upper_bound.nm if upper_bound else NM_RANGE[1]
    s_max = upper_bound.s if upper_bound else S_RANGE[1]
    nd_values = np.arange(ND_RANGE[0], nd_max + 1)
    nm_values = np.arange(NM_RANGE[0], nm_max + 1)
    s_values = np.arange(S_RANGE[0], s_max + 1)

    a = max(stats.num_features, 1)
    am = max(stats.num_marginalized, 1)
    q = stats.state_size * max(stats.num_keyframes, 1)
    jac = jacobian_feature_latency(stats.avg_observations)
    sub = backsub_latency(stats)

    dschur = np.array(
        [dschur_feature_latency(stats.avg_observations, int(nd)) for nd in nd_values]
    )
    chol = np.array([cholesky_latency(q, int(s)) for s in s_values])
    mschur = np.array([mschur_latency(stats, int(nm)) for nm in nm_values])
    per_feature = np.maximum(jac, dschur)  # (nd,)

    # Equ. 13: Iter * L_NLS + L_marg, broadcast over the three axes.
    nls = (
        spec.iterations * (a * per_feature[:, None] + chol[None, :] + sub)
    )  # (nd, s)
    marg_nd = am * jac + am * dschur  # (nd,)
    cycles = (
        nls[:, None, :]
        + marg_nd[:, None, None]
        + chol[None, None, :]
        + mschur[None, :, None]
    )  # (nd, nm, s)
    return nd_values, nm_values, s_values, cycles / spec.platform.frequency_hz


def _feasibility_grid(
    spec: DesignSpec,
    nd_values: np.ndarray,
    nm_values: np.ndarray,
    s_values: np.ndarray,
    resource_model: ResourceModel,
) -> np.ndarray:
    """Boolean (nd, nm, s) grid of resource feasibility (Equ. 16)."""
    feasible = np.ones(
        (nd_values.size, nm_values.size, s_values.size), dtype=bool
    )
    for kind in RESOURCE_KINDS:
        linear = getattr(resource_model, kind)
        usage = (
            linear.base
            + linear.per_nd * nd_values[:, None, None]
            + linear.per_nm * nm_values[None, :, None]
            + linear.per_s * s_values[None, None, :]
        )
        feasible &= usage <= spec.resource_budget * spec.platform.capacity(kind)
    return feasible


def _power_grid(
    nd_values: np.ndarray,
    nm_values: np.ndarray,
    s_values: np.ndarray,
    power_model: PowerModel,
) -> np.ndarray:
    return (
        power_model.base
        + power_model.per_nd * nd_values[:, None, None]
        + power_model.per_nm * nm_values[None, :, None]
        + power_model.per_s * s_values[None, None, :]
    )


def exhaustive_search(
    spec: DesignSpec,
    resource_model: ResourceModel = DEFAULT_RESOURCE_MODEL,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
    upper_bound: HardwareConfig | None = None,
) -> SearchOutcome:
    """Evaluate the entire (possibly bounded) space; return the optimum."""
    with global_trace().span(
        "exhaustive_search", category="synth", objective=spec.objective.value
    ) as span:
        nd_values, nm_values, s_values, latency = _latency_grid(spec, upper_bound)
        feasible = _feasibility_grid(
            spec, nd_values, nm_values, s_values, resource_model
        )
        power = _power_grid(nd_values, nm_values, s_values, power_model)

        if spec.objective is Objective.POWER:
            feasible &= latency <= spec.latency_budget_s
            score = np.where(feasible, power, np.inf)
            tiebreak = latency
        else:
            score = np.where(feasible, latency, np.inf)
            tiebreak = power

        if not np.isfinite(score).any():
            raise InfeasibleDesignError(
                f"no (nd, nm, s) meets latency <= "
                f"{spec.latency_budget_s * 1e3:.1f} ms "
                f"within the resources of {spec.platform.name}"
            )
        # Among in-band points prefer the smallest tiebreak metric; the
        # stable sort makes the lexicographically first (nd, nm, s) win
        # on exact tiebreak ties — the same total order pruned_search
        # maintains incrementally.
        best = np.min(score)
        candidates = np.argwhere(score <= best * (1 + _TIE_RTOL))
        order = np.argsort(
            [tiebreak[tuple(c)] for c in candidates], kind="stable"
        )
        i, j, k = candidates[order[0]]
        config = HardwareConfig(
            int(nd_values[i]), int(nm_values[j]), int(s_values[k])
        )
        span.attributes["points"] = int(score.size)
    return SearchOutcome(
        config=config,
        power_w=float(power[i, j, k]),
        latency_s=float(latency[i, j, k]),
        solve_seconds=span.duration_s,
        evaluated_points=int(score.size),
    )


def pruned_search(
    spec: DesignSpec,
    resource_model: ResourceModel = DEFAULT_RESOURCE_MODEL,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
) -> SearchOutcome:
    """Monotonicity-pruned search reaching the same optimum.

    For the POWER objective: power is strictly increasing in every knob,
    so knobs are swept in increasing-power order and a (nd, nm) pair is
    abandoned as soon as its cheapest completion already exceeds the
    incumbent band.

    Tie-breaking matches :func:`exhaustive_search` exactly: a running
    candidate set keeps every feasible point within ``_TIE_RTOL`` of the
    current best score (filtered whenever the minimum drops), and the
    winner is the candidate with the smallest tiebreak metric,
    lexicographically first (nd, nm, s) on a tie — the incremental form
    of the exhaustive band + stable argsort.
    """
    with global_trace().span(
        "pruned_search", category="synth", objective=spec.objective.value
    ) as span:
        nd_values, nm_values, s_values, latency = _latency_grid(spec)
        feasible = _feasibility_grid(
            spec, nd_values, nm_values, s_values, resource_model
        )

        min_score = np.inf
        # In-band (score, tiebreak, power, latency, config) tuples in
        # sweep (= lexicographic) order.
        candidates: list[tuple[float, float, float, float, HardwareConfig]] = []
        touched = 0
        minimize_power_objective = spec.objective is Objective.POWER

        def band() -> float:
            return min_score * (1 + _TIE_RTOL)

        for i, nd in enumerate(nd_values):
            # Cheapest possible completion of this nd.
            floor = power_model.power(
                HardwareConfig(int(nd), int(nm_values[0]), int(s_values[0]))
            )
            if minimize_power_objective and floor > band():
                break  # nd only grows from here; all further power floors do too
            for j, nm in enumerate(nm_values):
                floor = power_model.power(
                    HardwareConfig(int(nd), int(nm), int(s_values[0]))
                )
                if minimize_power_objective and floor > band():
                    break
                for k, s in enumerate(s_values):
                    touched += 1
                    config = HardwareConfig(int(nd), int(nm), int(s))
                    power = power_model.power(config)
                    if minimize_power_objective and power > band():
                        break  # s only grows power further
                    if not feasible[i, j, k]:
                        continue
                    lat = latency[i, j, k]
                    if minimize_power_objective:
                        if lat > spec.latency_budget_s:
                            continue
                        score, tiebreak = power, lat
                    else:
                        score, tiebreak = lat, power
                    if score < min_score:
                        min_score = score
                        candidates = [
                            c for c in candidates if c[0] <= band()
                        ]
                    if score <= band():
                        candidates.append((score, tiebreak, power, lat, config))

        if not candidates:
            raise InfeasibleDesignError(
                f"no (nd, nm, s) meets the constraints on {spec.platform.name}"
            )
        winner = candidates[0]
        for candidate in candidates[1:]:
            if candidate[1] < winner[1]:  # strict: first-seen wins ties
                winner = candidate
        span.attributes["points"] = touched
    return SearchOutcome(
        config=winner[4],
        power_w=winner[2],
        latency_s=winner[3],
        solve_seconds=span.duration_s,
        evaluated_points=touched,
    )


def minimize_power(spec: DesignSpec, **kwargs) -> SearchOutcome:
    """Equ. 11: min power subject to latency and resource constraints."""
    # dataclasses.replace keeps every other field — the old hand-copied
    # constructor silently reset any field it didn't enumerate.
    if spec.objective is not Objective.POWER:
        spec = replace(spec, objective=Objective.POWER)
    return exhaustive_search(spec, **kwargs)


def minimize_latency(spec: DesignSpec, **kwargs) -> SearchOutcome:
    """Equ. 12: min latency subject to resource constraints only."""
    spec = replace(
        spec,
        latency_budget_s=max(spec.latency_budget_s, 1e-9),
        objective=Objective.LATENCY,
    )
    return exhaustive_search(spec, **kwargs)
