"""Design-space exploration bookkeeping (Sec. 7.3).

Quantifies the generator-efficiency claims: the ~90,000-point space, the
15-year cost of pushing every point through the FPGA synthesis/layout
flow, and the seconds our generator takes instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import design_space_size
from repro.obs.tracer import global_trace
from repro.synth.spec import DesignSpec
from repro.synth.synthesizer import synthesize

# The paper reports ~1.5 hours per Vivado synthesis + layout run.
FPGA_FLOW_HOURS_PER_DESIGN = 1.5


@dataclass(frozen=True)
class DesignSpaceMetrics:
    """Summary numbers for the Sec. 7.3 comparison."""

    num_designs: int
    exhaustive_flow_years: float
    generator_seconds: float
    speed_ratio: float


def exhaustive_flow_years(num_designs: int | None = None) -> float:
    """Wall-clock years to push every design through the FPGA flow."""
    n = num_designs if num_designs is not None else design_space_size()
    return n * FPGA_FLOW_HOURS_PER_DESIGN / (24 * 365)


def generator_seconds(spec: DesignSpec | None = None, repeats: int = 3) -> float:
    """Measured wall-clock seconds for one full synthesis solve.

    Each repeat records a ``synth``-category span on the global trace,
    so the timing is auditable in the trace rollup.
    """
    spec = spec or DesignSpec()
    best = float("inf")
    for repeat in range(repeats):
        with global_trace().span(
            "generator_solve", category="synth", repeat=repeat
        ) as span:
            synthesize(spec)
        best = min(best, span.duration_s)
    return best


def design_space_metrics(spec: DesignSpec | None = None) -> DesignSpaceMetrics:
    """The full Sec. 7.3 comparison in one call."""
    n = design_space_size()
    years = exhaustive_flow_years(n)
    seconds = generator_seconds(spec)
    return DesignSpaceMetrics(
        num_designs=n,
        exhaustive_flow_years=years,
        generator_seconds=seconds,
        speed_ratio=years * 365 * 24 * 3600 / max(seconds, 1e-9),
    )
