"""Latency-vs-power Pareto frontier exploration (Fig. 14).

``pareto_frontier`` sweeps the latency constraint and keeps the
non-dominated (latency, power) designs. ``perturb_and_validate``
reproduces the paper's best-effort optimality check: slightly vary the
parameters of every frontier design and verify the perturbed points are
Pareto-dominated by the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError, InfeasibleDesignError
from repro.hw.config import HardwareConfig, ND_RANGE, NM_RANGE, S_RANGE
from repro.hw.latency import LatencyModel
from repro.hw.power import DEFAULT_POWER_MODEL, PowerModel
from repro.synth.spec import DesignSpec
from repro.synth.synthesizer import SynthesisResult, synthesize


@dataclass(frozen=True)
class ParetoPoint:
    """One frontier design."""

    config: HardwareConfig
    latency_s: float
    power_w: float


def pareto_frontier(
    spec: DesignSpec | None = None,
    latency_budgets_ms: np.ndarray | None = None,
) -> list[ParetoPoint]:
    """Sweep latency budgets and return the non-dominated designs."""
    spec = spec or DesignSpec()
    if latency_budgets_ms is None:
        latency_budgets_ms = np.linspace(18.0, 100.0, 24)
    points: list[ParetoPoint] = []
    for budget_ms in latency_budgets_ms:
        try:
            result = synthesize(replace(spec, latency_budget_s=budget_ms / 1e3))
        except InfeasibleDesignError:
            continue
        points.append(
            ParetoPoint(result.config, result.latency_s, result.power_w)
        )
    return _non_dominated(points)


def _non_dominated(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """Filter to the Pareto-optimal subset (lower latency, lower power)."""
    unique = {p.config.as_tuple(): p for p in points}
    frontier = []
    for p in unique.values():
        dominated = any(
            (q.latency_s <= p.latency_s and q.power_w < p.power_w)
            or (q.latency_s < p.latency_s and q.power_w <= p.power_w)
            for q in unique.values()
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.latency_s)


def perturb_and_validate(
    frontier: list[ParetoPoint],
    spec: DesignSpec | None = None,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
    perturbations: int = 6,
    seed: int = 0,
) -> tuple[list[ParetoPoint], bool]:
    """Fig. 14's validation: perturb each frontier design's knobs and
    check every perturbed design is Pareto-dominated by the frontier.

    Returns (perturbed_points, all_dominated).
    """
    if not frontier:
        raise ConfigurationError("frontier must not be empty")
    spec = spec or DesignSpec()
    latency_model = LatencyModel(spec.workload, spec.iterations, spec.platform)
    rng = np.random.default_rng(seed)

    perturbed: list[ParetoPoint] = []
    for point in frontier:
        for _ in range(perturbations):
            delta = rng.integers(-3, 4, size=3)
            candidate = HardwareConfig(
                int(np.clip(point.config.nd + delta[0], *ND_RANGE)),
                int(np.clip(point.config.nm + delta[1], *NM_RANGE)),
                int(np.clip(point.config.s + delta[2], *S_RANGE)),
            )
            if candidate.as_tuple() == point.config.as_tuple():
                continue
            perturbed.append(
                ParetoPoint(
                    candidate,
                    latency_model.seconds(candidate),
                    power_model.power(candidate),
                )
            )

    def dominated(p: ParetoPoint) -> bool:
        # Dominated by a sampled frontier point, or (because the frontier
        # is sampled at discrete budgets) by the optimal design the
        # generator produces when asked for exactly p's latency.
        if any(
            q.latency_s <= p.latency_s + 1e-12 and q.power_w <= p.power_w + 1e-12
            for q in frontier
        ):
            return True
        optimal = synthesize(replace(spec, latency_budget_s=p.latency_s + 1e-12))
        return optimal.power_w <= p.power_w + 1e-12

    return perturbed, all(dominated(p) for p in perturbed)
