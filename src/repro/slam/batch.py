"""Batched (structure-of-arrays) linearization of the visual factors.

The paper's central observation (Sec. 3.2, Fig. 5) is that the VJac and
Schur work is embarrassingly data-parallel across feature observations.
The per-factor reference path in :mod:`repro.slam.problem` evaluates
thousands of tiny (2x6) matmuls per Gauss-Newton iteration from Python;
this module evaluates the same quantities for a whole window in a
handful of einsum/broadcast calls over a structure-of-arrays layout —
the software analogue of the accelerator's SoA data feed (Sec. 3.3).

Layout: one row per <feature, observation> pair. Static per-window data
(bearings, pixels, weights, index arrays) lives in
:class:`VisualFactorBatch` and is gathered once per window; per-iteration
data (pose stacks, inverse depths) is gathered per call because the
estimates move every accepted LM step.

Numerical contract: every kernel performs the same elementwise
contractions in the same per-cell accumulation order as the per-factor
loop, so the two backends agree to floating-point rounding (the
equivalence tests in ``tests/test_slam_batch.py`` pin this down).
Behind-camera culling is a boolean mask instead of an early ``continue``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import transform_points_batch, transform_to_body_batch
from repro.geometry.so3 import hat_batch

POSE_DOF = 6
STATE_DIM = 15


@dataclass
class VisualFactorBatch:
    """All visual factors of one window in structure-of-arrays form.

    Attributes:
        bearings: ``(n, 3)`` anchor-frame un-normalized rays.
        pixels: ``(n, 2)`` observed pixels in the target frames.
        weights: ``(n,)`` measurement information (1 / sigma^2).
        anchor_index / target_index: ``(n,)`` positions of each factor's
            anchor / target keyframe in the window's sorted frame list.
        feature_index: ``(n,)`` position of each factor's feature in the
            window's sorted feature list.
        num_frames / num_features: window dimensions the index arrays
            refer to.
    """

    bearings: np.ndarray
    pixels: np.ndarray
    weights: np.ndarray
    anchor_index: np.ndarray
    target_index: np.ndarray
    feature_index: np.ndarray
    num_frames: int
    num_features: int

    @property
    def num_observations(self) -> int:
        return int(self.bearings.shape[0])

    @staticmethod
    def from_factors(
        factors, frame_index: dict[int, int], feature_index: dict[int, int]
    ) -> "VisualFactorBatch":
        """Gather a factor list into SoA arrays (one row per factor)."""
        n = len(factors)
        if n == 0:
            return VisualFactorBatch(
                bearings=np.zeros((0, 3)),
                pixels=np.zeros((0, 2)),
                weights=np.zeros(0),
                anchor_index=np.zeros(0, dtype=np.int64),
                target_index=np.zeros(0, dtype=np.int64),
                feature_index=np.zeros(0, dtype=np.int64),
                num_frames=len(frame_index),
                num_features=len(feature_index),
            )
        return VisualFactorBatch(
            bearings=np.stack([f.bearing for f in factors]),
            pixels=np.stack([f.pixel for f in factors]),
            weights=np.fromiter((f.weight for f in factors), dtype=float, count=n),
            anchor_index=np.fromiter(
                (frame_index[f.anchor] for f in factors), dtype=np.int64, count=n
            ),
            target_index=np.fromiter(
                (frame_index[f.target] for f in factors), dtype=np.int64, count=n
            ),
            feature_index=np.fromiter(
                (feature_index[f.feature_id] for f in factors), dtype=np.int64, count=n
            ),
            num_frames=len(frame_index),
            num_features=len(feature_index),
        )


@dataclass
class BatchedVisualLinearization:
    """Vectorized VJac output for a whole window (rows where ``valid``)."""

    valid: np.ndarray  # (n,) in-front-of-camera mask
    residuals: np.ndarray  # (n, 2)
    jac_inv_depth: np.ndarray  # (n, 2)
    jac_pose_anchor: np.ndarray  # (n, 2, 6)
    jac_pose_target: np.ndarray  # (n, 2, 6)
    weights: np.ndarray  # (n,) measurement weight * Huber IRLS scale


def visual_residuals_batch(
    camera: PinholeCamera,
    batch: VisualFactorBatch,
    rotations: np.ndarray,
    translations: np.ndarray,
    inv_depths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """All reprojection residuals of a window in one shot.

    Args:
        rotations / translations: ``(b, 3, 3)`` / ``(b, 3)`` pose stacks
            indexed by the batch's frame index arrays.
        inv_depths: ``(p,)`` inverse depths indexed by ``feature_index``.

    Returns:
        ``(valid, residuals)``: the ``(n,)`` behind-camera mask and the
        ``(n, 2)`` residuals (garbage on invalid rows).
    """
    lam = inv_depths[batch.feature_index]
    point_anchor = batch.bearings / lam[:, None]
    point_w = transform_points_batch(
        rotations[batch.anchor_index],
        translations[batch.anchor_index],
        point_anchor,
    )
    point_c = transform_to_body_batch(
        rotations[batch.target_index],
        translations[batch.target_index],
        point_w,
    )
    valid = point_c[:, 2] >= camera.min_depth
    residuals = camera.project_camera_points_batch(point_c) - batch.pixels
    return valid, residuals


def huber_scales_batch(residuals: np.ndarray, huber_delta: float | None) -> np.ndarray:
    """IRLS weight multipliers of the Huber kernel, one per row."""
    n = residuals.shape[0]
    if huber_delta is None:
        return np.ones(n)
    norms = np.sqrt((residuals * residuals).sum(axis=1))
    beyond = norms > huber_delta
    return np.where(beyond, huber_delta / np.where(beyond, norms, 1.0), 1.0)


def visual_costs_batch(
    residuals: np.ndarray, weights: np.ndarray, huber_delta: float | None
) -> np.ndarray:
    """Per-row quadratic or Huber cost (rows assumed already culled)."""
    squared = (residuals * residuals).sum(axis=1)
    if huber_delta is None:
        return 0.5 * weights * squared
    norms = np.sqrt(squared)
    return np.where(
        norms <= huber_delta,
        0.5 * weights * squared,
        weights * huber_delta * (norms - 0.5 * huber_delta),
    )


def linearize_visual_batch(
    camera: PinholeCamera,
    batch: VisualFactorBatch,
    rotations: np.ndarray,
    translations: np.ndarray,
    inv_depths: np.ndarray,
    huber_delta: float | None = None,
) -> BatchedVisualLinearization:
    """Vectorized counterpart of :meth:`VisualFactor.linearize` over a window.

    Computes residuals, inverse-depth Jacobians and anchor/target pose
    Jacobians for every <feature, observation> row, plus the effective
    IRLS weights. Rows behind the camera are flagged through ``valid``
    rather than skipped.
    """
    lam = inv_depths[batch.feature_index]
    point_anchor = batch.bearings / lam[:, None]
    rot_anchor = rotations[batch.anchor_index]
    point_w = transform_points_batch(
        rot_anchor, translations[batch.anchor_index], point_anchor
    )
    rot_target = rotations[batch.target_index]
    point_c = transform_to_body_batch(
        rot_target, translations[batch.target_index], point_w
    )
    valid, jac_pose_target, d_uv_d_pw = camera.projection_jacobians_batch(
        rot_target, point_c
    )
    residuals = camera.project_camera_points_batch(point_c) - batch.pixels

    # d p_w / d pose_anchor = [I | -R_h hat(p_h)]; the identity block makes
    # the first three anchor columns equal d(uv)/d(p_w) itself.
    n = batch.num_observations
    jac_pose_anchor = np.empty((n, 2, POSE_DOF))
    jac_pose_anchor[:, :, 0:3] = d_uv_d_pw
    jac_pose_anchor[:, :, 3:6] = np.einsum(
        "nij,njk->nik",
        d_uv_d_pw,
        np.einsum("nij,njk->nik", -rot_anchor, hat_batch(point_anchor)),
    )
    # d p_h / d lambda = -bearing / lambda^2, rotated into the world frame.
    d_pw_d_lambda = np.einsum(
        "nij,nj->ni", rot_anchor, -batch.bearings / (lam * lam)[:, None]
    )
    jac_inv_depth = np.einsum("nij,nj->ni", d_uv_d_pw, d_pw_d_lambda)

    weights = batch.weights * huber_scales_batch(residuals, huber_delta)
    return BatchedVisualLinearization(
        valid=valid,
        residuals=residuals,
        jac_inv_depth=jac_inv_depth,
        jac_pose_anchor=jac_pose_anchor,
        jac_pose_target=jac_pose_target,
        weights=weights,
    )


def _bincount_blocks(
    indices: np.ndarray, values: np.ndarray, minlength: int
) -> np.ndarray:
    """Sum ``values`` rows into ``minlength`` bins keyed by ``indices``.

    ``values`` may be ``(m,)``, ``(m, r)`` or ``(m, r, c)``; the result is
    ``(minlength, ...)``. ``np.bincount`` accumulates each bin in input
    row order, which is what keeps the scatter order-identical to the
    per-factor reference loop.
    """
    if values.ndim == 1:
        return np.bincount(indices, weights=values, minlength=minlength)
    m = values.shape[0]
    flat = values.reshape(m, -1)
    k = flat.shape[1]
    cell = (indices[:, None] * k + np.arange(k)[None, :]).ravel()
    out = np.bincount(cell, weights=flat.ravel(), minlength=minlength * k)
    return out.reshape((minlength,) + values.shape[1:])


def accumulate_visual_batch(
    lin: BatchedVisualLinearization,
    batch: VisualFactorBatch,
    u_diag: np.ndarray,
    w_block: np.ndarray,
    v_block: np.ndarray,
    b_x: np.ndarray,
    b_y: np.ndarray,
) -> None:
    """Scatter-accumulate the batched linearization into the arrow system.

    The anchor/target contributions of each row are interleaved before
    the bincount scatter so every accumulator cell receives its terms in
    exactly the order the per-factor loop would add them.
    """
    mask = lin.valid
    if not mask.any():
        return
    r = lin.residuals[mask]
    jl = lin.jac_inv_depth[mask]
    jh = lin.jac_pose_anchor[mask]
    jt = lin.jac_pose_target[mask]
    w = lin.weights[mask]
    fi = batch.feature_index[mask]
    ai = batch.anchor_index[mask]
    ti = batch.target_index[mask]
    n = r.shape[0]
    p = batch.num_features
    b = batch.num_frames

    # Landmark diagonal and rhs: one scalar per row.
    u_diag += _bincount_blocks(fi, w * (jl * jl).sum(axis=1), p)
    b_x -= _bincount_blocks(fi, w * (jl * r).sum(axis=1), p)

    # Coupling block W: a 6-vector per (frame, feature) cell.
    wh = w[:, None] * np.einsum("nkj,nk->nj", jh, jl)
    wt = w[:, None] * np.einsum("nkj,nk->nj", jt, jl)
    w_vals = np.stack([wh, wt], axis=1).reshape(2 * n, POSE_DOF)
    w_cells = (np.stack([ai, ti], axis=1) * p + fi[:, None]).reshape(2 * n)
    w_acc = _bincount_blocks(w_cells, w_vals, b * p).reshape(b, p, POSE_DOF)

    # Keyframe block V: 6x6 blocks on the pose rows/cols of each frame.
    hh = w[:, None, None] * np.einsum("nki,nkj->nij", jh, jh)
    tt = w[:, None, None] * np.einsum("nki,nkj->nij", jt, jt)
    diag_vals = np.stack([hh, tt], axis=1).reshape(2 * n, POSE_DOF, POSE_DOF)
    diag_idx = np.stack([ai, ti], axis=1).reshape(2 * n)
    diag_acc = _bincount_blocks(diag_idx, diag_vals, b)

    cross = w[:, None, None] * np.einsum("nki,nkj->nij", jh, jt)
    cross_vals = np.stack(
        [cross, cross.transpose(0, 2, 1)], axis=1
    ).reshape(2 * n, POSE_DOF, POSE_DOF)
    cross_idx = np.stack([ai * b + ti, ti * b + ai], axis=1).reshape(2 * n)
    cross_acc = _bincount_blocks(cross_idx, cross_vals, b * b).reshape(
        b, b, POSE_DOF, POSE_DOF
    )

    # Keyframe rhs: a 6-vector per frame.
    gh = w[:, None] * np.einsum("nki,nk->ni", jh, r)
    gt = w[:, None] * np.einsum("nki,nk->ni", jt, r)
    by_vals = np.stack([gh, gt], axis=1).reshape(2 * n, POSE_DOF)
    by_acc = _bincount_blocks(diag_idx, by_vals, b)

    # Place the per-frame accumulators into the (15 b)-dim layout; the
    # frame count is small (<= window size), so these loops are cheap.
    touched = np.zeros((b, b), dtype=bool)
    touched[ai, ti] = True
    touched[ti, ai] = True
    for i in range(b):
        base = STATE_DIM * i
        pose = slice(base, base + POSE_DOF)
        w_block[pose, :] += w_acc[i].T
        v_block[pose, pose] += diag_acc[i]
        b_y[pose] -= by_acc[i]
        for j in range(b):
            if i != j and touched[i, j]:
                base_j = STATE_DIM * j
                v_block[pose, base_j : base_j + POSE_DOF] += cross_acc[i, j]
