"""Assembly of the windowed MAP problem into the structured linear system.

The normal equations of one Gauss-Newton/LM iteration have the arrow
structure the paper's M-DFG exploits (Sec. 3.2.2):

    [[ U, W^T ],   [ d_lambda ]   =  [ b_x ]
     [ W, V   ]]   [ d_state  ]      [ b_y ]

with ``U`` *diagonal* (one inverse-depth scalar per feature point),
``W`` the feature-to-keyframe coupling, and ``V`` the dense keyframe
block of size ``15 b``. :class:`WindowProblem` owns the factors and the
current estimates; :meth:`WindowProblem.build_linear_system` performs the
linearization (the VJac/IJac work) and block accumulation ("Logics to
Prepare A, b" in Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.errors import SolverError
from repro.geometry.camera import PinholeCamera
from repro.geometry.navstate import NavState, STATE_DIM
from repro.linalg.plan import SolverPlan, default_plan_cache
from repro.slam.batch import (
    VisualFactorBatch,
    accumulate_visual_batch,
    linearize_visual_batch,
    visual_costs_batch,
    visual_residuals_batch,
)
from repro.slam.residuals import ImuFactor, PriorFactor, VisualFactor

POSE_DOF = 6
MIN_INV_DEPTH = 1e-4
MAX_INV_DEPTH = 1e2
_U_FLOOR = 1e-8
BACKENDS = ("batched", "loop")


@dataclass
class LinearSystem:
    """The structured normal equations of one iteration."""

    u_diag: np.ndarray  # (p,) diagonal landmark block
    w_block: np.ndarray  # (q, p) coupling
    v_block: np.ndarray  # (q, q) keyframe block
    b_x: np.ndarray  # (p,)
    b_y: np.ndarray  # (q,)
    feature_ids: list[int]
    frame_ids: list[int]
    # Wall-clock split of the build that produced this system (seconds):
    # Jacobian/residual evaluation vs block accumulation. Fed into the
    # per-window StageTimings breakdown by the NLS solver.
    linearize_seconds: float = 0.0
    assemble_seconds: float = 0.0

    def solve(
        self,
        damping: float = 0.0,
        plan: SolverPlan | None = None,
        copy: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Schur-eliminate the landmarks and solve for all unknowns.

        This is the exact computation the accelerator's NLS data path
        performs: D-type Schur -> Cholesky -> forward/backward
        substitution -> landmark back-substitution — executed through a
        :class:`repro.linalg.plan.SolverPlan` whose workspace arenas make
        the whole solve allocation-free. Damping is an in-place diagonal
        add inside the plan (no ``np.eye`` materialization), and jitter
        is applied only if the factorization fails.

        Args:
            damping: LM damping added to both diagonal blocks.
            plan: a prebuilt plan matching this system's structure; when
                None the process-wide plan cache supplies one (reused
                across iterations and across windows of identical
                structure).
            copy: return owned arrays (default). ``copy=False`` returns
                views into the plan's arenas — valid only until the next
                solve on the same plan; the NLS hot loop uses this.

        Returns:
            (d_lambda, d_state): landmark and keyframe tangent updates.
        """
        if plan is None:
            plan = default_plan_cache().get(self.num_features, self.b_y.shape[0])
        d_lambda, d_state, _ = plan.execute(
            self.u_diag, self.w_block, self.v_block, self.b_x, self.b_y,
            damping=damping,
        )
        if copy:
            return d_lambda.copy(), d_state.copy()
        return d_lambda, d_state

    def solve_dense(self, damping: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Solve the full arrow system densely — the conformance oracle.

        Materializes ``[[diag(u), W^T], [W, V]]`` (with the same diagonal
        floor and damping as the structured path) and solves it with
        ``numpy.linalg.solve``. Deliberately independent of the
        plan/Schur machinery so the ``plan_solve`` differential oracle in
        :mod:`repro.testing` compares two genuinely distinct
        implementations.
        """
        p = self.num_features
        u_damped = np.maximum(self.u_diag, _U_FLOOR) + damping
        v_damped = self.v_block + damping * np.eye(self.v_block.shape[0])
        full = np.block([[np.diag(u_damped), self.w_block.T], [self.w_block, v_damped]])
        try:
            solution = np.linalg.solve(full, np.concatenate([self.b_x, self.b_y]))
        except np.linalg.LinAlgError as error:
            raise SolverError(f"dense solve failed: {error}") from error
        return solution[:p], solution[p:]

    @property
    def num_features(self) -> int:
        return len(self.feature_ids)

    @property
    def num_frames(self) -> int:
        return len(self.frame_ids)


@dataclass
class WindowProblem:
    """The MAP problem of one sliding window.

    Attributes:
        camera: shared camera intrinsics.
        states: keyframe id -> current 15-DoF state estimate.
        inv_depths: feature id -> current inverse-depth estimate.
        visual_factors / imu_factors / priors: the factor graph.
    """

    camera: PinholeCamera
    states: dict[int, NavState]
    inv_depths: dict[int, float]
    visual_factors: list[VisualFactor] = field(default_factory=list)
    imu_factors: list[ImuFactor] = field(default_factory=list)
    priors: list[PriorFactor] = field(default_factory=list)
    # Optional Huber robust kernel on the visual residuals [px]; None
    # disables it. Implemented as iteratively-reweighted least squares:
    # residuals beyond huber_delta get their weight scaled down by
    # delta / |r|, bounding any single mismatched track's influence.
    huber_delta: float | None = None
    # Linearization backend: "batched" evaluates all visual factors
    # through the structure-of-arrays kernels of repro.slam.batch;
    # "loop" is the per-factor reference oracle.
    backend: str = "batched"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise SolverError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        for factor in self.visual_factors:
            if factor.anchor not in self.states or factor.target not in self.states:
                raise SolverError(
                    f"visual factor {factor.feature_id} references unknown keyframes"
                )
            if factor.feature_id not in self.inv_depths:
                raise SolverError(f"no inverse depth for feature {factor.feature_id}")
        for factor in self.imu_factors:
            if factor.frame_i not in self.states or factor.frame_j not in self.states:
                raise SolverError("IMU factor references unknown keyframes")

    # ------------------------------------------------------------------
    # Structure-of-arrays gathers (batched backend)
    # ------------------------------------------------------------------

    def _sorted_ids(self) -> tuple[list[int], list[int]]:
        return sorted(self.states), sorted(self.inv_depths)

    def _visual_batch(self) -> VisualFactorBatch:
        """The window's SoA factor gather, built once and reused.

        The gathered arrays depend only on the factor list and the sorted
        frame/feature id sets, all of which :meth:`stepped` preserves, so
        the cache is carried across LM iterations.
        """
        batch = self.__dict__.get("_batch_cache")
        if batch is None:
            frame_ids, feature_ids = self._sorted_ids()
            batch = VisualFactorBatch.from_factors(
                self.visual_factors,
                {fid: i for i, fid in enumerate(frame_ids)},
                {fid: i for i, fid in enumerate(feature_ids)},
            )
            self.__dict__["_batch_cache"] = batch
        return batch

    def _pose_stacks(self, frame_ids: list[int]) -> tuple[np.ndarray, np.ndarray]:
        """Stack the current keyframe poses as (b, 3, 3) / (b, 3) arrays."""
        if not frame_ids:
            return np.zeros((0, 3, 3)), np.zeros((0, 3))
        rotations = np.stack([self.states[fid].rotation for fid in frame_ids])
        translations = np.stack([self.states[fid].position for fid in frame_ids])
        return rotations, translations

    def _inv_depth_vector(self, feature_ids: list[int]) -> np.ndarray:
        return np.fromiter(
            (self.inv_depths[fid] for fid in feature_ids),
            dtype=float,
            count=len(feature_ids),
        )

    # ------------------------------------------------------------------
    # Cost evaluation
    # ------------------------------------------------------------------

    def _huber_scale(self, residual: np.ndarray) -> float:
        """IRLS weight multiplier of the Huber kernel (1 inside delta)."""
        if self.huber_delta is None:
            return 1.0
        norm = float(np.linalg.norm(residual))
        return 1.0 if norm <= self.huber_delta else self.huber_delta / norm

    def _visual_cost(self, residual: np.ndarray, weight: float) -> float:
        """Quadratic or Huber cost of one visual residual."""
        squared = float(residual @ residual)
        if self.huber_delta is None:
            return 0.5 * weight * squared
        norm = np.sqrt(squared)
        delta = self.huber_delta
        if norm <= delta:
            return 0.5 * weight * squared
        return weight * delta * (norm - 0.5 * delta)

    def _visual_cost_total(self) -> float:
        """Summed visual cost under the active backend."""
        if self.backend == "loop":
            total = 0.0
            for factor in self.visual_factors:
                residual = factor.residual_only(
                    self.camera,
                    self.states[factor.anchor],
                    self.states[factor.target],
                    self.inv_depths[factor.feature_id],
                )
                if residual is not None:
                    total += self._visual_cost(residual, factor.weight)
            return total
        batch = self._visual_batch()
        if batch.num_observations == 0:
            return 0.0
        frame_ids, feature_ids = self._sorted_ids()
        rotations, translations = self._pose_stacks(frame_ids)
        valid, residuals = visual_residuals_batch(
            self.camera, batch, rotations, translations,
            self._inv_depth_vector(feature_ids),
        )
        costs = visual_costs_batch(
            residuals[valid], batch.weights[valid], self.huber_delta
        )
        return float(costs.sum())

    def cost(self) -> float:
        """Total MAP objective at the current estimates."""
        total = self._visual_cost_total()
        for factor in self.imu_factors:
            residual = factor.residual_only(
                self.states[factor.frame_i], self.states[factor.frame_j]
            )
            information = factor.information()
            total += 0.5 * float(residual @ information @ residual)
        for prior in self.priors:
            total += prior.cost(self.states)
        return total

    # ------------------------------------------------------------------
    # Linearization and assembly
    # ------------------------------------------------------------------

    def build_linear_system(self) -> LinearSystem:
        """Linearize every factor and accumulate the arrow system.

        The visual factors go through the backend selected at
        construction; IMU and prior factors are few per window and stay
        on the per-factor path under either backend. The returned system
        carries the linearize/assemble wall-clock split.
        """
        frame_ids, feature_ids = self._sorted_ids()
        frame_index = {fid: i for i, fid in enumerate(frame_ids)}
        p = len(feature_ids)
        q = STATE_DIM * len(frame_ids)

        u_diag = np.zeros(p)
        w_block = np.zeros((q, p))
        v_block = np.zeros((q, q))
        b_x = np.zeros(p)
        b_y = np.zeros(q)
        linearize_s = 0.0
        assemble_s = 0.0

        if self.backend == "batched":
            tic = perf_counter()
            batch = self._visual_batch()
            rotations, translations = self._pose_stacks(frame_ids)
            lin = linearize_visual_batch(
                self.camera,
                batch,
                rotations,
                translations,
                self._inv_depth_vector(feature_ids),
                self.huber_delta,
            )
            toc = perf_counter()
            accumulate_visual_batch(lin, batch, u_diag, w_block, v_block, b_x, b_y)
            linearize_s += toc - tic
            assemble_s += perf_counter() - toc
        else:
            feature_index = {fid: i for i, fid in enumerate(feature_ids)}
            for factor in self.visual_factors:
                tic = perf_counter()
                lin = factor.linearize(
                    self.camera,
                    self.states[factor.anchor],
                    self.states[factor.target],
                    self.inv_depths[factor.feature_id],
                )
                toc = perf_counter()
                linearize_s += toc - tic
                if lin is None:
                    continue
                f = feature_index[factor.feature_id]
                h = STATE_DIM * frame_index[factor.anchor]
                j = STATE_DIM * frame_index[factor.target]
                w = lin.weight * self._huber_scale(lin.residual)
                jl = lin.jac_inv_depth  # (2, 1)
                jh = lin.jac_pose_anchor  # (2, 6)
                jt = lin.jac_pose_target  # (2, 6)
                r = lin.residual

                u_diag[f] += w * float((jl.T @ jl).item())
                b_x[f] -= w * float((jl.T @ r).item())

                w_block[h : h + POSE_DOF, f] += w * (jh.T @ jl).ravel()
                w_block[j : j + POSE_DOF, f] += w * (jt.T @ jl).ravel()

                v_block[h : h + POSE_DOF, h : h + POSE_DOF] += w * (jh.T @ jh)
                v_block[j : j + POSE_DOF, j : j + POSE_DOF] += w * (jt.T @ jt)
                cross = w * (jh.T @ jt)
                v_block[h : h + POSE_DOF, j : j + POSE_DOF] += cross
                v_block[j : j + POSE_DOF, h : h + POSE_DOF] += cross.T

                b_y[h : h + POSE_DOF] -= w * (jh.T @ r)
                b_y[j : j + POSE_DOF] -= w * (jt.T @ r)
                assemble_s += perf_counter() - toc

        for factor in self.imu_factors:
            tic = perf_counter()
            lin = factor.linearize(self.states[factor.frame_i], self.states[factor.frame_j])
            toc = perf_counter()
            linearize_s += toc - tic
            i = STATE_DIM * frame_index[factor.frame_i]
            j = STATE_DIM * frame_index[factor.frame_j]
            info = lin.information
            ji, jj, r = lin.jac_i, lin.jac_j, lin.residual
            ji_w = ji.T @ info
            jj_w = jj.T @ info
            v_block[i : i + STATE_DIM, i : i + STATE_DIM] += ji_w @ ji
            v_block[j : j + STATE_DIM, j : j + STATE_DIM] += jj_w @ jj
            cross = ji_w @ jj
            v_block[i : i + STATE_DIM, j : j + STATE_DIM] += cross
            v_block[j : j + STATE_DIM, i : i + STATE_DIM] += cross.T
            b_y[i : i + STATE_DIM] -= ji_w @ r
            b_y[j : j + STATE_DIM] -= jj_w @ r
            assemble_s += perf_counter() - toc

        tic = perf_counter()
        for prior in self.priors:
            h_prior, g_prior = prior.contribution(self.states)
            idx = np.concatenate(
                [
                    STATE_DIM * frame_index[fid] + np.arange(STATE_DIM)
                    for fid in prior.frame_ids
                ]
            )
            v_block[np.ix_(idx, idx)] += h_prior
            b_y[idx] += g_prior
        assemble_s += perf_counter() - tic

        return LinearSystem(
            u_diag=u_diag,
            w_block=w_block,
            v_block=v_block,
            b_x=b_x,
            b_y=b_y,
            feature_ids=feature_ids,
            frame_ids=frame_ids,
            linearize_seconds=linearize_s,
            assemble_seconds=assemble_s,
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def stepped(
        self, d_lambda: np.ndarray, d_state: np.ndarray, system: LinearSystem
    ) -> "WindowProblem":
        """Return a copy of the problem with the solution step applied."""
        new_states = dict(self.states)
        for i, fid in enumerate(system.frame_ids):
            delta = d_state[STATE_DIM * i : STATE_DIM * (i + 1)]
            new_states[fid] = new_states[fid].retract(delta)
        new_depths = dict(self.inv_depths)
        for i, fid in enumerate(system.feature_ids):
            new_depths[fid] = float(
                np.clip(new_depths[fid] + d_lambda[i], MIN_INV_DEPTH, MAX_INV_DEPTH)
            )
        stepped = WindowProblem(
            camera=self.camera,
            states=new_states,
            inv_depths=new_depths,
            visual_factors=self.visual_factors,
            imu_factors=self.imu_factors,
            priors=self.priors,
            huber_delta=self.huber_delta,
            backend=self.backend,
        )
        # The factor list and the frame/feature id sets are unchanged, so
        # the SoA gather can be carried over to the stepped problem.
        cached = self.__dict__.get("_batch_cache")
        if cached is not None:
            stepped.__dict__["_batch_cache"] = cached
        return stepped
