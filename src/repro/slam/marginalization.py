"""Marginalization: fold departing variables into a prior (Sec. 3.1/3.2.3).

When the window slides, the oldest keyframe's 15-DoF state and every
feature *anchored* at it are marginalized. The joint information of the
participating factors is blocked as ``[[M, Lambda^T], [Lambda, A]]`` with
the marginalized variables ordered landmarks-first, which makes the
leading sub-block of ``M`` diagonal — the cost-optimal blocking of
Sec. 3.2.3 that lets the hardware reuse the D-type Schur unit inside the
M-type Schur computation. The Schur complement ``Hp = A - Lambda M^-1
Lambda^T`` and ``rp = br - Lambda M^-1 bm`` become the next window's
:class:`~repro.slam.residuals.PriorFactor`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.navstate import NavState, STATE_DIM
from repro.linalg.schur import m_type_schur
from repro.slam.problem import POSE_DOF, WindowProblem, _U_FLOOR
from repro.slam.residuals import PriorFactor


@dataclass
class MarginalizationResult:
    """The new prior plus bookkeeping for the estimator."""

    prior: PriorFactor | None
    marginalized_features: list[int]
    removed_visual_factors: int
    removed_imu_factors: int


def marginalize_window(problem: WindowProblem, marg_frame_id: int) -> MarginalizationResult:
    """Marginalize one keyframe (and its anchored features) out of ``problem``.

    Args:
        problem: the optimized window problem (linearized at its current
            estimates — we use the same estimates as linearization point).
        marg_frame_id: keyframe to remove; must be in ``problem.states``.

    Returns:
        A :class:`MarginalizationResult` whose ``prior`` constrains the
        remaining keyframes that shared factors with the departing
        variables (None when nothing couples to them).
    """
    if marg_frame_id not in problem.states:
        raise ValueError(f"keyframe {marg_frame_id} is not in the window")

    marg_features = sorted(
        {f.feature_id for f in problem.visual_factors if f.anchor == marg_frame_id}
    )
    visual = [f for f in problem.visual_factors if f.anchor == marg_frame_id]
    imu = [
        f
        for f in problem.imu_factors
        if marg_frame_id in (f.frame_i, f.frame_j)
    ]
    priors = [p for p in problem.priors if marg_frame_id in p.frame_ids]

    involved_frames = {marg_frame_id}
    for f in visual:
        involved_frames.add(f.target)
    for f in imu:
        involved_frames.update((f.frame_i, f.frame_j))
    for p in priors:
        involved_frames.update(p.frame_ids)
    keep_frames = sorted(involved_frames - {marg_frame_id})

    num_marg_feat = len(marg_features)
    marg_dim = num_marg_feat + STATE_DIM
    keep_dim = STATE_DIM * len(keep_frames)
    total = marg_dim + keep_dim

    if keep_dim == 0:
        # Nothing couples to the departing variables; their information
        # simply leaves the problem.
        return MarginalizationResult(None, marg_features, len(visual), len(imu))

    # Variable layout: [marg features | marg keyframe | keep keyframes].
    feature_index = {fid: i for i, fid in enumerate(marg_features)}
    frame_offset = {marg_frame_id: num_marg_feat}
    for i, fid in enumerate(keep_frames):
        frame_offset[fid] = marg_dim + STATE_DIM * i

    h_full = np.zeros((total, total))
    g_full = np.zeros(total)

    for factor in visual:
        lin = factor.linearize(
            problem.camera,
            problem.states[factor.anchor],
            problem.states[factor.target],
            problem.inv_depths[factor.feature_id],
        )
        if lin is None:
            continue
        # Respect the problem's robust kernel: an outlier track must not
        # enter the prior at full quadratic weight (the prior is never
        # re-evaluated, so baked-in outliers poison every later window).
        robust_scale = problem._huber_scale(lin.residual)
        if problem.huber_delta is not None and robust_scale < 0.2:
            continue  # gross outlier: exclude from the prior entirely
        cols_f = [feature_index[factor.feature_id]]
        cols_h = list(range(frame_offset[factor.anchor], frame_offset[factor.anchor] + POSE_DOF))
        cols_t = list(range(frame_offset[factor.target], frame_offset[factor.target] + POSE_DOF))
        jacobian = np.zeros((2, total))
        jacobian[:, cols_f] = lin.jac_inv_depth
        jacobian[:, cols_h] += lin.jac_pose_anchor
        jacobian[:, cols_t] += lin.jac_pose_target
        weight = lin.weight * robust_scale
        h_full += weight * (jacobian.T @ jacobian)
        g_full -= weight * (jacobian.T @ lin.residual)

    for factor in imu:
        lin = factor.linearize(problem.states[factor.frame_i], problem.states[factor.frame_j])
        jacobian = np.zeros((15, total))
        oi, oj = frame_offset[factor.frame_i], frame_offset[factor.frame_j]
        jacobian[:, oi : oi + STATE_DIM] = lin.jac_i
        jacobian[:, oj : oj + STATE_DIM] = lin.jac_j
        weighted = jacobian.T @ lin.information
        h_full += weighted @ jacobian
        g_full -= weighted @ lin.residual

    for prior in priors:
        h_prior, g_prior = prior.contribution(problem.states)
        idx = np.concatenate(
            [frame_offset[fid] + np.arange(STATE_DIM) for fid in prior.frame_ids]
        )
        h_full[np.ix_(idx, idx)] += h_prior
        g_full[idx] += g_prior

    # Regularize the landmark diagonal so weakly-observed features do not
    # make M singular.
    for i in range(num_marg_feat):
        if h_full[i, i] < _U_FLOOR:
            h_full[i, i] = _U_FLOOR

    m_block = h_full[:marg_dim, :marg_dim]
    lam = h_full[marg_dim:, :marg_dim]
    a_block = h_full[marg_dim:, marg_dim:]
    hp, rp = m_type_schur(
        a_block,
        lam,
        m_block,
        b_m=g_full[:marg_dim],
        b_r=g_full[marg_dim:],
        m_diagonal_split=num_marg_feat if num_marg_feat else None,
    )

    # Guard against negative eigenvalues from floating-point cancellation
    # (they would make later windows indefinite).
    eigvals = np.linalg.eigvalsh(hp)
    if eigvals[0] < 0.0:
        hp = hp + (1e-9 - eigvals[0]) * np.eye(hp.shape[0])

    prior = PriorFactor(
        frame_ids=keep_frames,
        hp=hp,
        rp=rp,
        lin_states=[problem.states[fid] for fid in keep_frames],
    )
    return MarginalizationResult(prior, marg_features, len(visual), len(imu))
