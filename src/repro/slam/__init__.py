"""The MAP sliding-window estimator — the algorithm Archytas accelerates.

Implements the full pipeline of Fig. 2: a Levenberg-Marquardt nonlinear
least-squares solver over the windowed visual-inertial MAP objective
(Equ. 2), with Schur elimination of the (inverse-depth) landmark block —
the D-type Schur of Sec. 3.2.2 — and marginalization of departing
variables into a prior via the M-type Schur of Sec. 3.2.3.

Landmarks use the inverse-depth parameterization (one scalar per
feature, anchored at its first observing keyframe), which is exactly why
the eliminated ``U`` block is *diagonal* and the paper's D-type Schur
applies.
"""

from repro.slam.problem import WindowProblem, LinearSystem
from repro.slam.batch import VisualFactorBatch
from repro.slam.residuals import VisualFactor, ImuFactor, PriorFactor
from repro.slam.nls import LMConfig, LMResult, levenberg_marquardt
from repro.slam.marginalization import marginalize_window
from repro.slam.estimator import EstimatorConfig, SlidingWindowEstimator, WindowResult
from repro.slam.metrics import (
    absolute_trajectory_error,
    rmse,
    relative_errors,
    translational_error_cm,
)

__all__ = [
    "WindowProblem",
    "LinearSystem",
    "VisualFactorBatch",
    "VisualFactor",
    "ImuFactor",
    "PriorFactor",
    "LMConfig",
    "LMResult",
    "levenberg_marquardt",
    "marginalize_window",
    "EstimatorConfig",
    "SlidingWindowEstimator",
    "WindowResult",
    "absolute_trajectory_error",
    "rmse",
    "relative_errors",
    "translational_error_cm",
]
