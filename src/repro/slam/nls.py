"""The Levenberg-Marquardt NLS solver (Sec. 3.1, "NLS Solver" phase).

Classic LM with a multiplicative damping schedule: each iteration
linearizes the window problem, solves the damped arrow system through
the D-type Schur path, and accepts the step only if the true cost
decreased. The iteration count is externally capped — that cap is the
``Iter`` knob of Equ. 13 the run-time system tunes (Sec. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SolverError
from repro.linalg.plan import default_plan_cache
from repro.obs.tracer import Trace
from repro.runtime.profiler import StageTimings
from repro.slam.problem import WindowProblem
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class LMConfig:
    """Levenberg-Marquardt tuning.

    Attributes:
        max_iterations: the ``Iter`` cap (paper default: at most 6).
        initial_damping: starting LM damping mu.
        damping_up / damping_down: multiplicative schedule on reject/accept.
        cost_tolerance: relative cost decrease below which we stop early.
        step_tolerance: infinity-norm of the state step below which we stop.
    """

    max_iterations: int = 6
    initial_damping: float = 1e-4
    damping_up: float = 10.0
    damping_down: float = 0.3
    cost_tolerance: float = 1e-6
    step_tolerance: float = 1e-8

    def __post_init__(self) -> None:
        check_positive_int("max_iterations", self.max_iterations)
        check_positive("initial_damping", self.initial_damping)
        if self.damping_up <= 1.0 or not 0.0 < self.damping_down < 1.0:
            raise ValueError("need damping_up > 1 and 0 < damping_down < 1")


@dataclass
class LMResult:
    """Outcome of one window optimization."""

    problem: WindowProblem  # the optimized problem (updated estimates)
    initial_cost: float
    final_cost: float
    iterations: int  # linearizations performed (accepted + rejected)
    accepted_steps: int
    cost_history: list[float] = field(default_factory=list)
    converged: bool = False
    # Per-stage wall-clock breakdown summed over all iterations — a
    # StageTimings view computed from the window's span trace.
    timings: StageTimings = field(default_factory=StageTimings)


def levenberg_marquardt(
    problem: WindowProblem,
    config: LMConfig | None = None,
    trace: Trace | None = None,
    span_attributes: dict | None = None,
) -> LMResult:
    """Minimize the window's MAP objective with LM.

    Returns the optimized problem; the input problem is not mutated.

    Every stage (linearize / assemble / solve / update) is recorded as a
    span on a private per-window trace; ``LMResult.timings`` is the
    :class:`StageTimings` view over those spans. When ``trace`` is
    supplied, the window's spans are folded into it under one ``window``
    parent span (carrying ``span_attributes``) in a single atomic
    append, so concurrent windows from different threads never
    interleave.
    """
    config = config or LMConfig()
    damping = config.initial_damping
    window_trace = Trace(clock="wall", name="lm-window")
    with window_trace.span("update", category="nls"):
        cost = problem.cost()
    result = LMResult(
        problem=problem,
        initial_cost=cost,
        final_cost=cost,
        iterations=0,
        accepted_steps=0,
        cost_history=[cost],
    )

    plan = None  # built from the first system's structure, reused after
    for _ in range(config.max_iterations):
        system = problem.build_linear_system()
        # The build measures its own linearize/assemble split; record
        # the two phases as already-measured spans.
        window_trace.add_measured(
            "linearize", category="nls", duration_s=system.linearize_seconds
        )
        window_trace.add_measured(
            "assemble", category="nls", duration_s=system.assemble_seconds
        )
        result.iterations += 1
        if plan is None or not plan.matches(system.num_features, system.b_y.shape[0]):
            # The process-wide cache makes this a hit whenever any prior
            # window (on this thread) had the same structure.
            plan = default_plan_cache().get(system.num_features, system.b_y.shape[0])
        solved = False
        with window_trace.span("solve", category="nls", damping=damping):
            try:
                # copy=False: the arena views are consumed by stepped()
                # below, before the next execute on this plan.
                d_lambda, d_state = system.solve(
                    damping=damping, plan=plan, copy=False
                )
                solved = True
            except SolverError:
                pass
        if solved:
            # Surface the plan's phase split as already-measured child
            # stages next to the enclosing solve span. StageTimings
            # routes these to dedicated fields (never into total_s).
            stats = plan.last_stats
            window_trace.add_measured(
                "schur", category="nls", duration_s=stats.schur_seconds
            )
            window_trace.add_measured(
                "chol", category="nls", duration_s=stats.chol_seconds,
                jitter_applied=stats.jitter_applied,
            )
            window_trace.add_measured(
                "backsub", category="nls", duration_s=stats.backsub_seconds
            )
        else:
            damping *= config.damping_up
            result.cost_history.append(cost)
            continue

        with window_trace.span("update", category="nls"):
            candidate = problem.stepped(d_lambda, d_state, system)
            candidate_cost = candidate.cost()
        if np.isfinite(candidate_cost) and candidate_cost < cost:
            relative_drop = (cost - candidate_cost) / max(cost, 1e-12)
            step_norm = max(
                np.abs(d_state).max(initial=0.0), np.abs(d_lambda).max(initial=0.0)
            )
            problem = candidate
            cost = candidate_cost
            damping = max(damping * config.damping_down, 1e-12)
            result.accepted_steps += 1
            result.cost_history.append(cost)
            if relative_drop < config.cost_tolerance or step_norm < config.step_tolerance:
                result.converged = True
                break
        else:
            damping *= config.damping_up
            result.cost_history.append(cost)
            if damping > 1e12:
                break

    result.problem = problem
    result.final_cost = cost
    result.timings = StageTimings.from_trace(window_trace)
    if trace is not None:
        attributes = dict(span_attributes or {})
        attributes.update(
            iterations=result.iterations, converged=result.converged
        )
        trace.absorb(
            window_trace, name="window", category="nls", attributes=attributes
        )
    return result
