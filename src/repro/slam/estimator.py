"""The sliding-window estimator: the full host-side SLAM loop.

Consumes a :class:`repro.data.sequences.Sequence` keyframe by keyframe,
maintaining the persistent factor graph: IMU preintegration factors
between consecutive keyframes, inverse-depth visual factors anchored at
each feature's first observation, and the marginalization prior. Each
new keyframe triggers one window optimization (the work the accelerator
executes) followed by marginalization once the window is full.

The per-window NLS iteration cap can be supplied by a policy callable —
this is the hook the run-time system of Sec. 6 uses to trade iterations
(and therefore accelerator energy) against accuracy.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.data.sequences import Sequence
from repro.data.stats import WindowStats
from repro.errors import DataError
from repro.geometry.navstate import NavState
from repro.geometry.se3 import SE3
from repro.imu.preintegration import GRAVITY, ImuPreintegration
from repro.obs.tracer import Trace
from repro.slam.marginalization import marginalize_window
from repro.slam.nls import LMConfig, levenberg_marquardt
from repro.slam.problem import MAX_INV_DEPTH, MIN_INV_DEPTH, WindowProblem
from repro.slam.residuals import (
    ImuFactor,
    PriorFactor,
    VisualFactor,
    make_pose_anchor_prior,
)
from repro.runtime.profiler import StageTimings
from repro.utils.rng import rng_from_seed, split_seed

DEFAULT_INV_DEPTH = 0.2  # 5 m, the fallback when triangulation fails


@dataclass(frozen=True)
class EstimatorConfig:
    """Estimator tuning.

    Attributes:
        window_size: keyframes kept in the window (the paper's ``b``).
        lm: NLS solver configuration; ``lm.max_iterations`` is the
            static ``Iter`` used when no policy is installed.
        iteration_policy: optional callable mapping the current tracked
            feature count to an iteration cap (the Sec. 6 run-time knob).
        window_probe: optional callable invoked with (problem, frame_id)
            just before each window optimization — the hook the offline
            profiler uses to measure per-window convergence behaviour
            (accuracy after k iterations from the dead-reckoned
            initialization) without disturbing the run.
        bootstrap_position_sigma / bootstrap_rotation_sigma: noise
            injected into the first keyframe's initialization, emulating
            an imperfect initializer.
        seed: RNG seed for the bootstrap noise.
        trace: optional shared :class:`repro.obs.tracer.Trace`; every
            window optimization folds its per-stage spans into it under
            a ``window`` parent span tagged with the frame id.
    """

    window_size: int = 10
    lm: LMConfig = field(default_factory=LMConfig)
    iteration_policy: Callable[[int], int] | None = None
    window_probe: Callable[..., None] | None = None
    huber_delta: float | None = None  # robust kernel on visual residuals [px]
    # Linearization backend for every window problem: "batched" (SoA
    # kernels, the default) or "loop" (per-factor reference oracle).
    backend: str = "batched"
    # After each window optimization, permanently drop visual factors
    # whose residual exceeds this many pixels (chi-square-style gating;
    # None disables). Outlier tracks then cannot poison later windows.
    outlier_gate_px: float | None = None
    bootstrap_position_sigma: float = 0.02
    bootstrap_rotation_sigma: float = 0.01
    seed: int = 0
    trace: Trace | None = None


@dataclass
class _FeatureRecord:
    """Registry entry for one active (non-marginalized) feature."""

    feature_id: int
    anchor: int
    bearing: np.ndarray  # anchor-frame un-normalized ray
    inv_depth: float | None = None  # set at second observation


@dataclass
class WindowResult:
    """Per-window record used by every experiment."""

    window_index: int
    frame_ids: list[int]
    stats: WindowStats
    iterations: int
    accepted_steps: int
    initial_cost: float
    final_cost: float
    newest_position_error: float  # |p_est - p_true| of the newest keyframe
    relative_error: float  # window-relative displacement error
    # Per-stage wall-clock breakdown of this window's optimization.
    timings: StageTimings = field(default_factory=StageTimings)


@dataclass
class RunResult:
    """Aggregate output of a full sequence run."""

    windows: list[WindowResult] = field(default_factory=list)
    estimated_positions: list[np.ndarray] = field(default_factory=list)
    true_positions: list[np.ndarray] = field(default_factory=list)
    feature_counts: list[int] = field(default_factory=list)
    iterations_used: list[int] = field(default_factory=list)

    @property
    def num_windows(self) -> int:
        return len(self.windows)

    def timing_summary(self) -> dict[str, float]:
        """Per-stage wall-clock totals (seconds) across all windows.

        Keys: ``linearize_s`` / ``assemble_s`` / ``solve_s`` /
        ``update_s`` / ``total_s`` — the stage breakdown recorded by the
        NLS solver, plus ``windows_per_second`` over the summed
        optimization time (0.0 for an empty run).
        """
        total = StageTimings()
        for window in self.windows:
            total.accumulate(window.timings)
        summary = total.as_dict()
        summary["windows_per_second"] = (
            len(self.windows) / total.total_s if total.total_s > 0 else 0.0
        )
        return summary


class SlidingWindowEstimator:
    """Runs the MAP estimator over a synthetic sequence."""

    def __init__(self, config: EstimatorConfig | None = None) -> None:
        self.config = config or EstimatorConfig()
        self._rng = rng_from_seed(split_seed(self.config.seed, "estimator"))
        self.reset()

    def reset(self) -> None:
        self.states: dict[int, NavState] = {}
        self.features: dict[int, _FeatureRecord] = {}
        self.visual_factors: list[VisualFactor] = []
        self.imu_factors: list[ImuFactor] = []
        self.priors: list[PriorFactor] = []
        self._frame_order: list[int] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, sequence: Sequence, max_keyframes: int | None = None) -> RunResult:
        """Process a sequence end to end and return per-window records."""
        result = self.start(sequence)
        limit = min(
            sequence.num_keyframes,
            max_keyframes if max_keyframes is not None else sequence.num_keyframes,
        )
        for frame_id in range(limit):
            self.step(sequence, frame_id, result)
        return result

    def start(self, sequence: Sequence) -> RunResult:
        """Reset state and return a fresh :class:`RunResult` for stepping.

        The incremental counterpart of :meth:`run`: callers that feed the
        estimator window by window (the serving tier's sessions) call
        ``start`` once, then :meth:`step` for each keyframe in order.
        """
        del sequence  # reserved for future per-sequence initialization
        self.reset()
        return RunResult()

    def step(
        self,
        sequence: Sequence,
        frame_id: int,
        result: RunResult,
        iteration_cap: int | None = None,
        skip_optimize: bool = False,
    ) -> WindowResult | None:
        """Ingest one keyframe and (normally) optimize its window.

        Keyframes must be stepped in order starting from 0. Returns the
        new :class:`WindowResult`, or ``None`` for the bootstrap frame
        and for shed windows (``skip_optimize=True`` ingests the
        keyframe and its observations — the dead-reckoned state still
        propagates — but skips the accelerator's optimization, which is
        the serving tier's load-shedding path). ``iteration_cap``
        overrides the config's policy/static cap for this window only.
        """
        camera = sequence.config.camera
        self._add_keyframe(sequence, frame_id)
        self._register_observations(sequence, frame_id, camera)
        window = None
        if frame_id >= 1 and not skip_optimize:
            self._optimize_and_record(
                sequence, frame_id, camera, result, cap_override=iteration_cap
            )
            window = result.windows[-1]
        if len(self._frame_order) > self.config.window_size:
            self._slide(camera)
        return window

    # ------------------------------------------------------------------
    # Keyframe lifecycle
    # ------------------------------------------------------------------

    def _add_keyframe(self, sequence: Sequence, frame_id: int) -> None:
        if frame_id == 0:
            true0 = sequence.true_states[0]
            noisy_pose = SE3(
                true0.rotation,
                true0.position + self._rng.normal(
                    scale=self.config.bootstrap_position_sigma, size=3
                ),
            ).retract(
                np.concatenate(
                    [
                        np.zeros(3),
                        self._rng.normal(
                            scale=self.config.bootstrap_rotation_sigma, size=3
                        ),
                    ]
                )
            )
            state = NavState(pose=noisy_pose, velocity=true0.velocity)
            self.states[0] = state
            self._frame_order.append(0)
            self.priors.append(make_pose_anchor_prior(0, state))
            return

        segment = sequence.imu_segments[frame_id - 1]
        if len(segment.gyro) == 0 or len(segment.accel) == 0:
            raise DataError(
                f"IMU gap: no samples between keyframes {frame_id - 1} and "
                f"{frame_id} (sequence {sequence.config.name!r})"
            )
        noise = sequence.config.imu_noise
        prev = self.states[frame_id - 1]
        pre = ImuPreintegration(
            bias_gyro_ref=prev.bias_gyro.copy(),
            bias_accel_ref=prev.bias_accel.copy(),
        )
        gyro_sigma = noise.discrete_gyro_sigma(segment.dt) if noise.gyro_noise else 1e-4
        accel_sigma = noise.discrete_accel_sigma(segment.dt) if noise.accel_noise else 1e-3
        for gyro, accel in zip(segment.gyro, segment.accel):
            pre.integrate(gyro, accel, segment.dt, gyro_sigma, accel_sigma)

        # Dead-reckoning initialization of the new keyframe.
        dt = pre.dt_total
        rot_prev = prev.rotation
        position = (
            prev.position
            + prev.velocity * dt
            + 0.5 * GRAVITY * dt * dt
            + rot_prev @ pre.alpha
        )
        velocity = prev.velocity + GRAVITY * dt + rot_prev @ pre.beta
        rotation = rot_prev @ pre.gamma
        self.states[frame_id] = NavState(
            pose=SE3(rotation, position),
            velocity=velocity,
            bias_gyro=prev.bias_gyro.copy(),
            bias_accel=prev.bias_accel.copy(),
        )
        self._frame_order.append(frame_id)
        self.imu_factors.append(
            ImuFactor(frame_i=frame_id - 1, frame_j=frame_id, preintegration=pre)
        )

    def _register_observations(self, sequence: Sequence, frame_id: int, camera) -> None:
        pixel_sigma = max(sequence.config.tracker.pixel_sigma, 1e-3)
        weight = 1.0 / (pixel_sigma * pixel_sigma)
        for fid, pixel in sequence.observations[frame_id].pixels.items():
            if not np.all(np.isfinite(pixel)):
                # A dead tracker output (NaN/inf pixel) constrains
                # nothing; dropping it keeps the window solvable instead
                # of poisoning every block it touches.
                continue
            record = self.features.get(fid)
            if record is None:
                bearing = np.array(
                    [
                        (pixel[0] - camera.cx) / camera.fx,
                        (pixel[1] - camera.cy) / camera.fy,
                        1.0,
                    ]
                )
                self.features[fid] = _FeatureRecord(fid, frame_id, bearing)
                continue
            if record.anchor not in self.states:
                # Anchor already left the window (feature was marginalized
                # or dropped); re-anchor at this frame.
                bearing = np.array(
                    [
                        (pixel[0] - camera.cx) / camera.fx,
                        (pixel[1] - camera.cy) / camera.fy,
                        1.0,
                    ]
                )
                self.features[fid] = _FeatureRecord(fid, frame_id, bearing)
                continue
            factor = VisualFactor(
                feature_id=fid,
                anchor=record.anchor,
                target=frame_id,
                bearing=record.bearing,
                pixel=pixel,
                weight=weight,
            )
            if record.inv_depth is None:
                record.inv_depth = self._triangulate(record, factor, camera)
            self.visual_factors.append(factor)

    def _triangulate(self, record: _FeatureRecord, factor: VisualFactor, camera) -> float:
        """Two-view midpoint triangulation for the initial inverse depth."""
        pose_h = self.states[record.anchor].pose
        pose_t = self.states[factor.target].pose
        ray_h = pose_h.rotation @ record.bearing
        bearing_t = np.array(
            [
                (factor.pixel[0] - camera.cx) / camera.fx,
                (factor.pixel[1] - camera.cy) / camera.fy,
                1.0,
            ]
        )
        ray_t = pose_t.rotation @ bearing_t
        baseline = pose_t.translation - pose_h.translation
        design = np.column_stack([ray_h, -ray_t])
        solution, *_ = np.linalg.lstsq(design, baseline, rcond=None)
        depth = float(solution[0])
        if not np.isfinite(depth) or depth <= 1.0 / MAX_INV_DEPTH:
            return DEFAULT_INV_DEPTH
        return float(np.clip(1.0 / depth, MIN_INV_DEPTH, MAX_INV_DEPTH))

    # ------------------------------------------------------------------
    # Optimization
    # ------------------------------------------------------------------

    def _active_problem(self, camera) -> WindowProblem:
        active_features = {f.feature_id for f in self.visual_factors}
        inv_depths = {}
        for fid in active_features:
            record = self.features[fid]
            inv_depths[fid] = (
                record.inv_depth if record.inv_depth is not None else DEFAULT_INV_DEPTH
            )
        return WindowProblem(
            camera=camera,
            states=dict(self.states),
            inv_depths=inv_depths,
            visual_factors=list(self.visual_factors),
            imu_factors=list(self.imu_factors),
            priors=list(self.priors),
            huber_delta=self.config.huber_delta,
            backend=self.config.backend,
        )

    def _iteration_cap(self, feature_count: int) -> int:
        if self.config.iteration_policy is not None:
            return max(1, int(self.config.iteration_policy(feature_count)))
        return self.config.lm.max_iterations

    def _optimize_and_record(
        self,
        sequence: Sequence,
        frame_id: int,
        camera,
        result: RunResult,
        cap_override: int | None = None,
    ) -> None:
        problem = self._active_problem(camera)
        if self.config.window_probe is not None:
            self.config.window_probe(problem, frame_id)
        feature_count = len(problem.inv_depths)
        cap = (
            max(1, int(cap_override))
            if cap_override is not None
            else self._iteration_cap(feature_count)
        )
        lm_config = LMConfig(
            max_iterations=cap,
            initial_damping=self.config.lm.initial_damping,
            damping_up=self.config.lm.damping_up,
            damping_down=self.config.lm.damping_down,
            cost_tolerance=self.config.lm.cost_tolerance,
            step_tolerance=self.config.lm.step_tolerance,
        )
        lm_result = levenberg_marquardt(
            problem,
            lm_config,
            trace=self.config.trace,
            span_attributes={"frame_id": frame_id, "features": feature_count},
        )
        optimized = lm_result.problem

        # Write the estimates back into the persistent graph.
        self.states.update(optimized.states)
        for fid, value in optimized.inv_depths.items():
            self.features[fid].inv_depth = value

        if self.config.outlier_gate_px is not None:
            self._reject_outlier_factors(optimized, self.config.outlier_gate_px)

        stats = self._window_stats()
        true_state = sequence.true_states[frame_id]
        est_position = self.states[frame_id].position
        newest_error = float(np.linalg.norm(est_position - true_state.position))

        oldest = self._frame_order[0]
        d_est = est_position - self.states[oldest].position
        d_true = true_state.position - sequence.true_states[oldest].position
        relative = float(np.linalg.norm(d_est - d_true))

        result.windows.append(
            WindowResult(
                window_index=len(result.windows),
                frame_ids=list(self._frame_order),
                stats=stats,
                iterations=lm_result.iterations,
                accepted_steps=lm_result.accepted_steps,
                initial_cost=lm_result.initial_cost,
                final_cost=lm_result.final_cost,
                newest_position_error=newest_error,
                relative_error=relative,
                timings=lm_result.timings,
            )
        )
        result.estimated_positions.append(est_position.copy())
        result.true_positions.append(true_state.position.copy())
        result.feature_counts.append(feature_count)
        result.iterations_used.append(lm_result.iterations)

    def _reject_outlier_factors(self, optimized: WindowProblem, gate_px: float) -> None:
        """Chi-square-style gating: drop factors whose post-optimization
        residual exceeds the gate (mismatched tracks)."""
        survivors = []
        for factor in self.visual_factors:
            residual = factor.residual_only(
                optimized.camera,
                optimized.states[factor.anchor],
                optimized.states[factor.target],
                optimized.inv_depths.get(factor.feature_id, DEFAULT_INV_DEPTH),
            )
            if residual is not None and float(np.linalg.norm(residual)) > gate_px:
                continue
            survivors.append(factor)
        self.visual_factors = survivors

    def _window_stats(self) -> WindowStats:
        active = {}
        for factor in self.visual_factors:
            active.setdefault(factor.feature_id, 0)
            active[factor.feature_id] += 1
        num_features = len(active)
        num_obs = sum(active.values())
        oldest = self._frame_order[0]
        num_marginalized = len(
            {f.feature_id for f in self.visual_factors if f.anchor == oldest}
        )
        return WindowStats(
            num_features=num_features,
            avg_observations=num_obs / num_features if num_features else 0.0,
            num_keyframes=len(self._frame_order),
            num_marginalized=num_marginalized,
            num_observations=num_obs,
        )

    # ------------------------------------------------------------------
    # Sliding / marginalization
    # ------------------------------------------------------------------

    def _slide(self, camera) -> None:
        oldest = self._frame_order[0]
        problem = self._active_problem(camera)
        marg = marginalize_window(problem, oldest)

        self.visual_factors = [f for f in self.visual_factors if f.anchor != oldest]
        self.imu_factors = [
            f for f in self.imu_factors if oldest not in (f.frame_i, f.frame_j)
        ]
        self.priors = [p for p in self.priors if oldest not in p.frame_ids]
        if marg.prior is not None:
            self.priors.append(marg.prior)
        for fid in marg.marginalized_features:
            self.features.pop(fid, None)
        self.states.pop(oldest)
        self._frame_order.pop(0)
