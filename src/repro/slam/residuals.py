"""Residual factors of the MAP objective (Equ. 2) with analytic Jacobians.

Three factor types:

* :class:`VisualFactor` — reprojection error of one <feature,
  observation> pair under the inverse-depth parameterization. Its
  linearization is what the Visual Jacobian (VJac) hardware unit
  computes (Sec. 4.2).
* :class:`ImuFactor` — the 15-dim preintegrated IMU residual between
  consecutive keyframes (the IJac node).
* :class:`PriorFactor` — the quadratic prior ``|rp - Hp p|^2`` carried
  over from marginalization (Sec. 3.1).

All pose Jacobians use the tangent convention of
:meth:`repro.geometry.navstate.NavState.retract`:
(dp, dtheta, dv, dbg, dba), with dp additive in the world frame and
dtheta right-multiplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.camera import PinholeCamera
from repro.geometry.navstate import NavState
from repro.geometry.so3 import hat, so3_log, right_jacobian, right_jacobian_inverse
from repro.imu.preintegration import GRAVITY, ImuPreintegration


@dataclass
class VisualLinearization:
    """Output of one VJac evaluation."""

    residual: np.ndarray  # (2,)
    jac_inv_depth: np.ndarray  # (2, 1)
    jac_pose_anchor: np.ndarray  # (2, 6)
    jac_pose_target: np.ndarray  # (2, 6)
    weight: float  # scalar information (1 / sigma^2) per pixel axis


@dataclass
class VisualFactor:
    """Reprojection factor: feature anchored at ``anchor`` seen in ``target``.

    Attributes:
        feature_id: landmark identity (indexes the inverse-depth vector).
        anchor: keyframe id where the feature is anchored (first view).
        target: keyframe id of this observation; must differ from anchor
            (the anchor's own observation defines the bearing and has
            zero residual by construction).
        bearing: un-normalized anchor-frame ray [(u-cx)/fx, (v-cy)/fy, 1].
        pixel: the observed pixel in the target frame (2,).
        weight: measurement information, 1 / pixel_sigma^2.
    """

    feature_id: int
    anchor: int
    target: int
    bearing: np.ndarray
    pixel: np.ndarray
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.anchor == self.target:
            raise ValueError("visual factor must link two distinct keyframes")
        self.bearing = np.asarray(self.bearing, dtype=float).reshape(3)
        self.pixel = np.asarray(self.pixel, dtype=float).reshape(2)

    def point_world(self, state_anchor: NavState, inv_depth: float) -> np.ndarray:
        """Landmark world position implied by the current estimates."""
        point_anchor = self.bearing / inv_depth
        return state_anchor.pose.transform(point_anchor)

    def residual_only(
        self,
        camera: PinholeCamera,
        state_anchor: NavState,
        state_target: NavState,
        inv_depth: float,
    ) -> np.ndarray | None:
        """The 2-dim reprojection residual, or None if the point is behind."""
        point_w = self.point_world(state_anchor, inv_depth)
        point_t = state_target.pose.transform_to_body(point_w)
        if point_t[2] < camera.min_depth:
            return None
        predicted = camera.project_camera_point(point_t)
        return predicted - self.pixel

    def linearize(
        self,
        camera: PinholeCamera,
        state_anchor: NavState,
        state_target: NavState,
        inv_depth: float,
    ) -> VisualLinearization | None:
        """Evaluate residual and Jacobians; None if the point left the FoV."""
        point_anchor = self.bearing / inv_depth
        point_w = state_anchor.pose.transform(point_anchor)
        try:
            point_t, d_uv_d_pose_t, d_uv_d_pw = camera.projection_jacobians(
                state_target.pose, point_w
            )
        except ValueError:
            return None
        predicted = camera.project_camera_point(point_t)
        residual = predicted - self.pixel

        rot_anchor = state_anchor.pose.rotation
        # d p_w / d pose_anchor = [I | -R_h hat(p_h)] (right-mult update).
        d_pw_d_pose_h = np.hstack([np.eye(3), -rot_anchor @ hat(point_anchor)])
        jac_pose_anchor = d_uv_d_pw @ d_pw_d_pose_h
        # d p_h / d lambda = -bearing / lambda^2.
        d_pw_d_lambda = rot_anchor @ (-self.bearing / (inv_depth * inv_depth))
        jac_inv_depth = (d_uv_d_pw @ d_pw_d_lambda).reshape(2, 1)

        return VisualLinearization(
            residual=residual,
            jac_inv_depth=jac_inv_depth,
            jac_pose_anchor=jac_pose_anchor,
            jac_pose_target=d_uv_d_pose_t,
            weight=self.weight,
        )


@dataclass
class ImuLinearization:
    """Output of one IJac evaluation: 15-dim residual and two 15x15 blocks."""

    residual: np.ndarray  # (15,)
    jac_i: np.ndarray  # (15, 15)
    jac_j: np.ndarray  # (15, 15)
    information: np.ndarray  # (15, 15)


@dataclass
class ImuFactor:
    """Preintegrated IMU factor between keyframes ``frame_i`` -> ``frame_j``.

    Residual ordering: (r_alpha, r_theta, r_beta, r_bg, r_ba); the first
    nine components are weighted by the inverse of the propagated
    preintegration covariance, the bias components by the random-walk
    information over the integration interval.
    """

    frame_i: int
    frame_j: int
    preintegration: ImuPreintegration
    bias_walk_info: np.ndarray = field(
        default_factory=lambda: np.concatenate([np.full(3, 1e6), np.full(3, 1e4)])
    )

    def _residual_terms(
        self, state_i: NavState, state_j: NavState
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Residual plus the intermediates the Jacobians reuse.

        Returns ``(residual, rot_i_t, p_term, v_term, r_theta)``.
        """
        pre = self.preintegration
        dt = pre.dt_total
        alpha, beta, gamma = pre.corrected_deltas(state_i.bias_gyro, state_i.bias_accel)

        rot_i_t = state_i.rotation.T
        p_term = (
            state_j.position
            - state_i.position
            - state_i.velocity * dt
            - 0.5 * GRAVITY * dt * dt
        )
        v_term = state_j.velocity - state_i.velocity - GRAVITY * dt

        r_alpha = rot_i_t @ p_term - alpha
        r_theta = so3_log(gamma.T @ rot_i_t @ state_j.rotation)
        r_beta = rot_i_t @ v_term - beta
        r_bg = state_j.bias_gyro - state_i.bias_gyro
        r_ba = state_j.bias_accel - state_i.bias_accel
        residual = np.concatenate([r_alpha, r_theta, r_beta, r_bg, r_ba])
        return residual, rot_i_t, p_term, v_term, r_theta

    def residual_only(self, state_i: NavState, state_j: NavState) -> np.ndarray:
        """The 15-dim residual without the two 15x15 Jacobians.

        Cost evaluation only needs the residual and the information
        matrix; skipping the Jacobian assembly roughly halves the
        per-factor work of :meth:`WindowProblem.cost`.
        """
        return self._residual_terms(state_i, state_j)[0]

    def information(self) -> np.ndarray:
        """The 15x15 residual information (preintegration + bias walk)."""
        pre = self.preintegration
        information = np.zeros((15, 15))
        information[0:9, 0:9] = pre.information_matrix()
        information[9:15, 9:15] = np.diag(
            self.bias_walk_info / max(pre.dt_total, 1e-6)
        )
        return information

    def linearize(self, state_i: NavState, state_j: NavState) -> ImuLinearization:
        pre = self.preintegration
        dt = pre.dt_total
        residual, rot_i_t, p_term, v_term, r_theta = self._residual_terms(
            state_i, state_j
        )

        jr_inv = right_jacobian_inverse(r_theta)

        jac_i = np.zeros((15, 15))
        jac_j = np.zeros((15, 15))
        # r_alpha rows (0:3).
        jac_i[0:3, 0:3] = -rot_i_t
        jac_i[0:3, 3:6] = hat(rot_i_t @ p_term)
        jac_i[0:3, 6:9] = -rot_i_t * dt
        jac_i[0:3, 9:12] = -pre.jac_alpha_bg
        jac_i[0:3, 12:15] = -pre.jac_alpha_ba
        jac_j[0:3, 0:3] = rot_i_t
        # r_theta rows (3:6).
        jac_i[3:6, 3:6] = -jr_inv @ state_j.rotation.T @ state_i.rotation
        # d r_theta / d bg_i: gamma(bg) = gamma_hat Exp(J_gamma_bg dbg), so
        # a bias perturbation left-multiplies Exp(r_theta) by
        # Exp(-Jr(J dbg) J eps); pulling it through the log gives
        # -Jl^-1(r) Jr(J dbg) J with Jl^-1(r) = Jr^-1(-r).
        d_bg = state_i.bias_gyro - pre.bias_gyro_ref
        jac_i[3:6, 9:12] = (
            -right_jacobian_inverse(-r_theta)
            @ right_jacobian(pre.jac_gamma_bg @ d_bg)
            @ pre.jac_gamma_bg
        )
        jac_j[3:6, 3:6] = jr_inv
        # r_beta rows (6:9).
        jac_i[6:9, 3:6] = hat(rot_i_t @ v_term)
        jac_i[6:9, 6:9] = -rot_i_t
        jac_i[6:9, 9:12] = -pre.jac_beta_bg
        jac_i[6:9, 12:15] = -pre.jac_beta_ba
        jac_j[6:9, 6:9] = rot_i_t
        # Bias rows (9:15).
        jac_i[9:12, 9:12] = -np.eye(3)
        jac_j[9:12, 9:12] = np.eye(3)
        jac_i[12:15, 12:15] = -np.eye(3)
        jac_j[12:15, 12:15] = np.eye(3)

        return ImuLinearization(residual, jac_i, jac_j, self.information())


@dataclass
class PriorFactor:
    """Marginalization prior over the states of specific keyframes.

    Stores the prior information matrix ``Hp`` and vector ``rp``
    (Sec. 3.1) together with the linearization states. The factor's
    contribution at the current estimate ``x`` with tangent offset
    ``d = x (-) x_lin`` is ``H += Hp`` and ``g += rp - Hp d``, where
    ``g`` is the negative gradient of the MAP objective.
    """

    frame_ids: list[int]
    hp: np.ndarray  # (15 * len(frame_ids), 15 * len(frame_ids))
    rp: np.ndarray  # (15 * len(frame_ids),)
    lin_states: list[NavState]

    def __post_init__(self) -> None:
        dim = 15 * len(self.frame_ids)
        self.hp = np.asarray(self.hp, dtype=float).reshape(dim, dim)
        self.rp = np.asarray(self.rp, dtype=float).reshape(dim)
        if len(self.lin_states) != len(self.frame_ids):
            raise ValueError("one linearization state required per frame id")

    def tangent_offset(self, states: dict[int, NavState]) -> np.ndarray:
        """Stacked tangent from linearization states to current states."""
        parts = [
            lin.local(states[fid]) for fid, lin in zip(self.frame_ids, self.lin_states)
        ]
        return np.concatenate(parts) if parts else np.zeros(0)

    def contribution(self, states: dict[int, NavState]) -> tuple[np.ndarray, np.ndarray]:
        """Return (H, g) contributions at the given current states."""
        offset = self.tangent_offset(states)
        return self.hp, self.rp - self.hp @ offset

    def cost(self, states: dict[int, NavState]) -> float:
        """Quadratic-model cost (up to the constant dropped at marginalization)."""
        offset = self.tangent_offset(states)
        return float(0.5 * offset @ self.hp @ offset - self.rp @ offset)


def make_pose_anchor_prior(frame_id: int, state: NavState, sigma_scale: float = 1.0) -> PriorFactor:
    """A gauge-fixing prior that pins one keyframe's full state.

    Used on the very first window, where the MAP problem would otherwise
    have unconstrained global position and yaw.
    """
    weights = np.concatenate(
        [
            np.full(3, 1e4),  # position [1 cm]
            np.full(3, 1e4),  # orientation [10 mrad]
            np.full(3, 1e4),  # velocity [0.01 m/s]
            np.full(3, 1e6),  # gyro bias [1 mrad/s]
            np.full(3, 1e3),  # accel bias [0.03 m/s^2]
        ]
    ) / (sigma_scale * sigma_scale)
    return PriorFactor(
        frame_ids=[frame_id],
        hp=np.diag(weights),
        rp=np.zeros(15),
        lin_states=[state],
    )
