"""Accuracy metrics: RMSE / ATE / relative error (Figs. 11-12, Sec. 7.6)."""

from __future__ import annotations

import numpy as np


def rmse(errors: np.ndarray) -> float:
    """Root mean square of a vector of scalar errors."""
    errors = np.asarray(errors, dtype=float).ravel()
    if errors.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(errors * errors)))


def umeyama_alignment(
    estimated: np.ndarray, reference: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares rigid alignment (rotation, translation) est -> ref.

    The standard trajectory-evaluation preprocessing: SLAM estimates are
    defined up to a global rigid transform (the gauge), so ATE is
    measured after the best SE(3) alignment.
    """
    estimated = np.asarray(estimated, dtype=float).reshape(-1, 3)
    reference = np.asarray(reference, dtype=float).reshape(-1, 3)
    if estimated.shape != reference.shape or len(estimated) < 3:
        raise ValueError("need matching position arrays with >= 3 points")
    mu_e = estimated.mean(axis=0)
    mu_r = reference.mean(axis=0)
    cov = (reference - mu_r).T @ (estimated - mu_e) / len(estimated)
    u, _, vt = np.linalg.svd(cov)
    sign = np.sign(np.linalg.det(u @ vt))
    d = np.diag([1.0, 1.0, sign])
    rotation = u @ d @ vt
    translation = mu_r - rotation @ mu_e
    return rotation, translation


def absolute_trajectory_error(
    estimated: np.ndarray, reference: np.ndarray, align: bool = True
) -> float:
    """ATE RMSE [m] between estimated and reference position sequences."""
    estimated = np.asarray(estimated, dtype=float).reshape(-1, 3)
    reference = np.asarray(reference, dtype=float).reshape(-1, 3)
    if align and len(estimated) >= 3:
        rotation, translation = umeyama_alignment(estimated, reference)
        estimated = estimated @ rotation.T + translation
    return rmse(np.linalg.norm(estimated - reference, axis=1))


def relative_errors(
    estimated: np.ndarray, reference: np.ndarray, stride: int = 1
) -> np.ndarray:
    """Per-step relative translation errors [m].

    Compares the estimated displacement over ``stride`` keyframes to the
    true displacement — drift-free, so it isolates per-window quality
    (the "relative error" of Fig. 11).
    """
    estimated = np.asarray(estimated, dtype=float).reshape(-1, 3)
    reference = np.asarray(reference, dtype=float).reshape(-1, 3)
    if len(estimated) <= stride:
        return np.zeros(0)
    d_est = estimated[stride:] - estimated[:-stride]
    d_ref = reference[stride:] - reference[:-stride]
    return np.linalg.norm(d_est - d_ref, axis=1)


def translational_error_cm(estimated: np.ndarray, reference: np.ndarray) -> float:
    """Mean translational error in centimeters (Sec. 7.6 reports cm)."""
    estimated = np.asarray(estimated, dtype=float).reshape(-1, 3)
    reference = np.asarray(reference, dtype=float).reshape(-1, 3)
    return float(np.mean(np.linalg.norm(estimated - reference, axis=1)) * 100.0)
