"""CLI: ``python -m repro.experiments [ids...|all]`` prints the tables."""

from __future__ import annotations

import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str]) -> int:
    requested = argv or ["all"]
    ids = sorted(EXPERIMENTS) if requested == ["all"] else requested
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
