"""CLI: ``python -m repro.experiments [ids...|all]`` prints the tables.

The heavy lifting runs through the :mod:`repro.engine` execution
engine: ``--jobs`` runs independent experiments concurrently,
``--cache-dir`` relocates the on-disk artifact cache, and ``--no-cache``
bypasses the disk entirely (results are identical either way — the
cache stores bit-exact artifacts). A cache summary line is printed at
the end of every invocation, so a second run of the same experiments
visibly hits the cache.
"""

from __future__ import annotations

import argparse
import sys

from repro.engine import DEFAULT_CACHE_DIR, configure
from repro.errors import ConfigurationError
from repro.experiments.registry import available_experiments, run_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=[],
        metavar="id",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print registered experiment ids and exit"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N experiments concurrently (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=str(DEFAULT_CACHE_DIR),
        metavar="PATH",
        help=f"artifact cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk artifact cache (in-process memo stays on)",
    )
    return parser


def main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    engine = configure(
        cache_dir=args.cache_dir, use_disk=not args.no_cache, jobs=args.jobs
    )
    requested = args.ids or ["all"]
    ids = available_experiments() if requested == ["all"] else requested
    try:
        results = run_experiments(ids, engine=engine)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for result in results:
        print(result.render())
        print()
    print(engine.stats_line())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
