"""Extension experiments beyond the paper's evaluation.

* ``ext-learned-policy`` — the paper's future-work suggestion (Sec. 6.2):
  a trained model tuning the Iter knob, compared against the lookup
  table on the same offline profile.
* ``ext-robustness`` — failure injection: the robust MAP pipeline vs the
  plain one under gross feature mismatches.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    KITTI_DURATION_S,
    get_sequence,
)
from repro.runtime import (
    build_iteration_table,
    profile_accuracy_vs_iterations,
    train_iteration_policy,
)


def run_ext_learned_policy(trace: str = "00") -> ExperimentResult:
    """Lookup table vs learned regressor on the same profiling data."""
    sequence = get_sequence("kitti", trace, KITTI_DURATION_S)
    profile = profile_accuracy_vs_iterations(sequence)
    table = build_iteration_table(
        profile, bucket_edges=(25, 45, 70, 110, 180)
    )
    learned = train_iteration_policy(profile)

    counts = sorted({count for samples in profile.values() for count, _ in samples})
    result = ExperimentResult(
        experiment_id="ext-learned-policy",
        title="Iteration knob: lookup table vs learned model (Sec. 6.2 future work)",
        columns=["feature_count", "table_iter", "learned_iter"],
    )
    for count in counts:
        result.rows.append([count, table.lookup(count), learned.predict(count)])

    table_mean = float(np.mean(result.column("table_iter")))
    learned_mean = float(np.mean(result.column("learned_iter")))
    agreement = float(
        np.mean(
            np.abs(
                np.array(result.column("table_iter"))
                - np.array(result.column("learned_iter"))
            )
            <= 1
        )
    )
    result.notes = (
        f"Mean iterations: table {table_mean:.2f}, learned {learned_mean:.2f}; "
        f"within-one agreement on {100 * agreement:.0f}% of window shapes. The "
        "learned policy varies smoothly between the table's bucket edges."
    )
    return result


def run_ext_accuracy_table() -> ExperimentResult:
    """Paper-style per-sequence accuracy table over the full catalog.

    Runs the estimator on every EuRoC-MH-like and KITTI-like sequence
    (short cuts, for harness runtime) and reports ATE plus workload
    statistics — the dataset-characterization table evaluations lead
    with.
    """
    from repro.data import EUROC_SEQUENCES, KITTI_SEQUENCES, make_sequence
    from repro.data.stats import sequence_stats
    from repro.slam import (
        EstimatorConfig,
        SlidingWindowEstimator,
        absolute_trajectory_error,
    )
    from dataclasses import replace

    result = ExperimentResult(
        experiment_id="ext-accuracy",
        title="Per-sequence accuracy and workload statistics (full catalog)",
        columns=[
            "sequence",
            "ate_cm",
            "mean_rel_err_cm",
            "mean_features",
            "mean_obs_per_feature",
            "mean_marginalized",
        ],
    )
    catalog = [("euroc", name, cfg, 10.0) for name, cfg in EUROC_SEQUENCES.items()]
    catalog += [
        ("kitti", name, cfg, 12.0) for name, cfg in sorted(KITTI_SEQUENCES.items())
    ]
    for kind, name, config, duration in catalog:
        sequence = make_sequence(replace(config, duration=duration))
        run = SlidingWindowEstimator(EstimatorConfig(window_size=8)).run(sequence)
        ate = absolute_trajectory_error(
            np.array(run.estimated_positions), np.array(run.true_positions)
        )
        stats = sequence_stats([w.stats for w in run.windows])
        result.rows.append(
            [
                f"{kind}:{name}",
                100 * ate,
                100 * float(np.mean([w.relative_error for w in run.windows[3:]])),
                round(stats["mean_features"], 1),
                round(stats["mean_observations_per_feature"], 2),
                round(stats["mean_marginalized"], 1),
            ]
        )
    ates = result.column("ate_cm")
    result.notes = (
        f"ATE across the catalog: median {np.median(ates):.1f} cm, "
        f"max {max(ates):.1f} cm. Drone sequences stay at centimeters; car "
        "sequences accumulate ~1%-of-distance drift, as real VIO does."
    )
    return result


def run_ext_wordlength() -> ExperimentResult:
    """Fixed-point wordlength study on a real window's linear system."""
    from repro.hw.fixedpoint import wordlength_study
    from repro.slam.estimator import EstimatorConfig, SlidingWindowEstimator

    sequence = get_sequence("kitti", "00", KITTI_DURATION_S)
    captured = []

    def probe(problem, frame_id):
        if frame_id == 20:
            captured.append(problem)

    SlidingWindowEstimator(
        EstimatorConfig(window_size=8, window_probe=probe)
    ).run(sequence, max_keyframes=22)
    system = captured[0].build_linear_system()
    errors = wordlength_study(
        np.maximum(system.u_diag, 1e-6),
        system.w_block,
        system.v_block,
        system.b_x,
        system.b_y,
    )
    result = ExperimentResult(
        experiment_id="ext-wordlength",
        title="Fixed-point wordlength vs solve error (real KITTI window)",
        columns=["fraction_bits", "relative_error"],
    )
    for bits in sorted(errors):
        result.rows.append([bits, errors[bits]])
    result.notes = (
        "Solution error falls with fraction bits and reaches the useful "
        "floor by Q15.16 — the RTL's 32-bit words are numerically safe."
    )
    return result


def run_ext_realtime_margin() -> ExperimentResult:
    """Real-time margin: worst-case window latency vs the keyframe period
    for the two named designs over actual traces (trace co-simulation,
    cached per design/trace by the engine's trace stage)."""
    from repro.engine import TRACE, TraceRequest, get_engine, named_design
    from repro.experiments.common import estimator_request

    result = ExperimentResult(
        experiment_id="ext-realtime",
        title="Real-time margin over actual traces (5 Hz keyframes = 200 ms budget)",
        columns=["design", "trace", "mean_ms", "worst_ms", "margin_x"],
    )
    period_s = 0.200
    engine = get_engine()
    for name in ("High-Perf", "Low-Power"):
        design = named_design(name, engine)
        for kind, trace_name, duration in (
            ("euroc", "MH_01", 14.0),
            ("kitti", "00", KITTI_DURATION_S),
        ):
            trace = engine.run(
                TRACE,
                TraceRequest(
                    run=estimator_request(kind, trace_name, duration),
                    hardware=design.config,
                ),
            )
            mean_s = trace.total_seconds / max(len(trace.seconds), 1)
            result.rows.append(
                [
                    name,
                    f"{kind}:{trace_name}",
                    mean_s * 1e3,
                    trace.worst_case_seconds * 1e3,
                    period_s / trace.worst_case_seconds,
                ]
            )
    result.notes = (
        "Every window finishes far inside the 200 ms keyframe period — the "
        "headroom the run-time system converts into energy savings."
    )
    return result


def run_ext_window_size() -> ExperimentResult:
    """Window-size sensitivity: accuracy vs hardware cost as b varies.

    The algorithm parameter b (keyframes in the window) sets the
    Cholesky dimension q = 15 b and the S-matrix buffer; this study ties
    the algorithm choice to the hardware bill — more window buys accuracy
    with diminishing returns while the Cholesky/buffer cost grows
    quadratically.
    """
    from repro.hw.latency import cholesky_latency
    from repro.linalg.smatrix import SMatrixLayout
    from repro.slam import (
        EstimatorConfig,
        SlidingWindowEstimator,
        absolute_trajectory_error,
    )

    sequence = get_sequence("euroc", "MH_03", 10.0)
    result = ExperimentResult(
        experiment_id="ext-window-size",
        title="Window size b: accuracy vs hardware cost",
        columns=["window_size", "ate_cm", "cholesky_kcycles", "s_matrix_kwords"],
    )
    for b in (4, 6, 8, 12):
        run = SlidingWindowEstimator(EstimatorConfig(window_size=b)).run(sequence)
        ate = absolute_trajectory_error(
            np.array(run.estimated_positions), np.array(run.true_positions)
        )
        result.rows.append(
            [
                b,
                100 * ate,
                cholesky_latency(15 * b, 45) / 1e3,
                SMatrixLayout(15, b).compact_words / 1e3,
            ]
        )
    result.notes = (
        "Accuracy improves with the window then saturates; the Cholesky "
        "latency and the compact S-matrix buffer grow superlinearly — the "
        "trade the synthesizer's workload statistics encode."
    )
    return result


def run_ext_robustness() -> ExperimentResult:
    """Failure injection: plain vs robust MAP under 10% mismatches."""
    from dataclasses import replace

    from repro.data.sequences import EUROC_SEQUENCES, make_sequence
    from repro.data.tracks import TrackerConfig
    from repro.slam import EstimatorConfig, SlidingWindowEstimator

    result = ExperimentResult(
        experiment_id="ext-robustness",
        title="Outlier injection: plain vs robust (Huber + gating) MAP pipeline",
        columns=["outlier_pct", "plain_rel_err_m", "robust_rel_err_m"],
    )
    for probability in (0.0, 0.05, 0.10):
        config = replace(
            EUROC_SEQUENCES["MH_01"],
            duration=6.0,
            tracker=TrackerConfig(outlier_probability=probability),
        )
        sequence = make_sequence(config)
        plain = SlidingWindowEstimator(EstimatorConfig(window_size=8)).run(sequence)
        robust = SlidingWindowEstimator(
            EstimatorConfig(window_size=8, huber_delta=2.5, outlier_gate_px=8.0)
        ).run(sequence)
        result.rows.append(
            [
                100 * probability,
                float(np.mean([w.relative_error for w in plain.windows[5:]])),
                float(np.mean([w.relative_error for w in robust.windows[5:]])),
            ]
        )
    result.notes = (
        "The robust pipeline holds centimeter-level error under mismatches "
        "that collapse the quadratic pipeline."
    )
    return result
