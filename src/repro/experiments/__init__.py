"""Experiment registry: one entry per table/figure of the paper.

Each experiment module exposes a ``run()`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows are the
series the paper plots or tabulates. ``python -m repro.experiments
<id>`` prints any of them; the benchmark harness under ``benchmarks/``
regenerates and shape-checks every one.
"""

from repro.experiments.common import ExperimentResult, format_table
from repro.experiments.registry import (
    EXPERIMENTS,
    available_experiments,
    run_experiment,
    run_experiments,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
    "run_experiments",
]
