"""Fig. 11 and Fig. 12: the run-time opportunity.

* Fig. 11 — on a KITTI trace, windows with fewer feature points have
  higher relative error.
* Fig. 12 — more NLS iterations lower the overall RMSE (saturating
  around the paper's cap of 6).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    KITTI_DURATION_S,
    get_run,
    get_sequence,
)
from repro.slam.metrics import rmse


def run_fig11(trace: str = "00") -> ExperimentResult:
    """Per-window feature count vs relative error (Fig. 11's two series)."""
    run = get_run("kitti", trace, KITTI_DURATION_S)
    result = ExperimentResult(
        experiment_id="fig11",
        title="Fewer feature points -> higher relative error (KITTI trace)",
        columns=["window", "features", "relative_error_m"],
    )
    for window in run.windows:
        result.rows.append(
            [window.window_index, window.stats.num_features, window.relative_error]
        )
    counts = np.array(result.column("features"), dtype=float)
    errors = np.array(result.column("relative_error_m"))
    correlation = float(np.corrcoef(counts, errors)[0, 1]) if len(counts) > 2 else 0.0
    result.notes = (
        f"Pearson correlation(features, relative error) = {correlation:.3f} "
        "(paper shows a clear negative relationship)."
    )
    return result


def run_fig12(trace: str = "00", caps: tuple[int, ...] = (1, 2, 3, 4, 6)) -> ExperimentResult:
    """RMSE vs NLS iteration cap (Fig. 12).

    Profiled per window from front-end-grade initialization (see
    :func:`repro.runtime.profiler.profile_accuracy_vs_iterations`): the
    warm-started estimator converges in 1-2 steps, so iteration demand
    is measured where the run-time knob must guard against it.
    """
    from repro.runtime.profiler import profile_accuracy_vs_iterations

    sequence = get_sequence("kitti", trace, KITTI_DURATION_S)
    profile = profile_accuracy_vs_iterations(sequence, iteration_caps=caps)
    result = ExperimentResult(
        experiment_id="fig12",
        title="More NLS iterations lower the RMSE (KITTI trace, per-window profiling)",
        columns=["iteration_cap", "rmse_m", "mean_error_m"],
    )
    for cap in caps:
        errors = np.array([err for _, err in profile[cap]])
        result.rows.append([cap, rmse(errors), float(errors.mean())])
    first, last = result.rows[0][1], result.rows[-1][1]
    result.notes = (
        f"RMSE falls from {first:.3f} m at 1 iteration to {last:.3f} m at "
        f"{result.rows[-1][0]} iterations (paper: decreasing, saturating trend)."
    )
    return result
