"""Fig. 13 (knob sweeps) and Fig. 14 (Pareto frontier + validation)."""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hw import (
    DEFAULT_POWER_MODEL,
    DEFAULT_RESOURCE_MODEL,
    HardwareConfig,
    LatencyModel,
    ZC706,
)
from repro.hw.config import ND_RANGE, NM_RANGE, S_RANGE
from repro.synth import pareto_frontier, perturb_and_validate

# The fixed values the other two knobs hold during a sweep (mid-range,
# like the paper's per-knob studies).
_SWEEP_BASE = HardwareConfig(nd=15, nm=12, s=40)


def _sweep(knob: str, values: list[int]) -> ExperimentResult:
    latency = LatencyModel()
    result = ExperimentResult(
        experiment_id=f"fig13{knob}",
        title=f"Impact of {knob} on resources and execution time",
        columns=[knob, "time_ms", "lut_pct", "ff_pct", "bram_pct", "dsp_pct"],
    )
    for value in values:
        config = HardwareConfig(
            nd=value if knob == "nd" else _SWEEP_BASE.nd,
            nm=value if knob == "nm" else _SWEEP_BASE.nm,
            s=value if knob == "s" else _SWEEP_BASE.s,
        )
        utilization = DEFAULT_RESOURCE_MODEL.utilization(config, ZC706)
        result.rows.append(
            [
                value,
                latency.seconds(config) * 1e3,
                100 * utilization["lut"],
                100 * utilization["ff"],
                100 * utilization["bram"],
                100 * utilization["dsp"],
            ]
        )
    return result


def run_fig13a() -> ExperimentResult:
    return _sweep("nd", list(range(ND_RANGE[0], ND_RANGE[1] + 1, 2)))


def run_fig13b() -> ExperimentResult:
    return _sweep("nm", list(range(NM_RANGE[0], NM_RANGE[1] + 1, 2)))


def run_fig13c() -> ExperimentResult:
    return _sweep("s", list(range(S_RANGE[0], S_RANGE[1] + 1, 8)))


def run_fig14() -> ExperimentResult:
    """The latency-vs-power Pareto frontier plus perturbation check."""
    frontier = pareto_frontier()
    result = ExperimentResult(
        experiment_id="fig14",
        title="Latency-vs-power Pareto-optimal designs (power objective)",
        columns=["latency_ms", "power_w", "nd", "nm", "s"],
    )
    for point in frontier:
        result.rows.append(
            [
                point.latency_s * 1e3,
                point.power_w,
                point.config.nd,
                point.config.nm,
                point.config.s,
            ]
        )
    perturbed, all_dominated = perturb_and_validate(frontier)
    result.notes = (
        f"{len(perturbed)} perturbed designs generated; all Pareto-dominated "
        f"by generator output: {all_dominated} (paper's validity check)."
    )
    return result
