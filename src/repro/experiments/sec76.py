"""Sec. 7.6: dynamic optimization — energy savings and accuracy impact.

For each trace we run the estimator twice: once with the static
iteration cap of 6 and once with the run-time controller's iteration
policy (feature-count lookup + 2-bit saturating counter). Both runs and
the controller replay flow through the execution engine
(:mod:`repro.engine`), so the estimator work is computed once per
configuration and shared across sec76/sec76b and repeated invocations.
The replay's memoized reconfiguration table gives per-window gated
energy, compared against the static design running its full
provisioning. Accuracy is compared as mean translational error in cm,
the unit the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ARM_A57, INTEL_COMET_LAKE
from repro.experiments.common import (
    EUROC_DURATION_S,
    EUROC_TRACES,
    ExperimentResult,
    KITTI_DURATION_S,
    KITTI_TRACES,
    get_dynamic_run,
    get_run,
)


def run_sec76(design_name: str = "High-Perf") -> ExperimentResult:
    """Energy saving and accuracy impact of the dynamic optimization."""
    result = ExperimentResult(
        experiment_id="sec76",
        title=f"Dynamic optimization on {design_name} (Sec. 7.6)",
        columns=[
            "trace",
            "energy_saving_pct",
            "static_err_cm",
            "dynamic_err_cm",
            "accuracy_delta_cm",
            "reconfigs",
            "mean_iter",
        ],
    )
    traces = [("euroc", n, EUROC_DURATION_S) for n in EUROC_TRACES]
    traces += [("kitti", n, KITTI_DURATION_S) for n in KITTI_TRACES]
    for kind, name, duration in traces:
        static_run = get_run(kind, name, duration)
        dynamic_run, replay = get_dynamic_run(kind, name, duration, design_name)
        static_err = 100 * float(
            np.mean([w.newest_position_error for w in static_run.windows[5:]])
        )
        dynamic_err = 100 * float(
            np.mean([w.newest_position_error for w in dynamic_run.windows[5:]])
        )
        result.rows.append(
            [
                f"{kind}:{name}",
                100 * replay.energy_saving,
                static_err,
                dynamic_err,
                dynamic_err - static_err,
                replay.num_reconfigurations,
                float(np.mean([d.applied_iterations for d in replay.decisions])),
            ]
        )
    savings = result.column("energy_saving_pct")
    deltas = result.column("accuracy_delta_cm")
    result.notes = (
        f"Mean energy saving {np.mean(savings):.1f}% with accuracy delta "
        f"{np.mean(deltas):+.2f} cm. Paper: High-Perf saves 21.6% (KITTI) / "
        "20.8% (EuRoC), Low-Power 7.7% / 6.8%, accuracy degraded by at most "
        "0.01 cm (sometimes improved)."
    )
    return result


def run_sec76_combined() -> ExperimentResult:
    """Fig. 16 revisited with the dynamic optimization enabled on both
    sides (the paper's closing Sec. 7.6 numbers)."""
    from repro.hw.latency import window_latency_seconds

    result = ExperimentResult(
        experiment_id="sec76b",
        title="Speedups / energy reductions with dynamic optimization on",
        columns=[
            "design",
            "speedup_intel",
            "energy_red_intel",
            "speedup_arm",
            "energy_red_arm",
        ],
    )
    traces = [("euroc", n, EUROC_DURATION_S) for n in EUROC_TRACES]
    traces += [("kitti", n, KITTI_DURATION_S) for n in KITTI_TRACES]
    for design_name in ("High-Perf", "Low-Power"):
        speedups = {"intel": [], "arm": []}
        energies = {"intel": [], "arm": []}
        for kind, name, duration in traces:
            run, replay = get_dynamic_run(kind, name, duration, design_name)
            for window, decision in zip(run.windows, replay.decisions):
                stats = window.stats
                if stats.num_features < 5:
                    continue
                iters = decision.applied_iterations
                t_acc = window_latency_seconds(stats, decision.config, iters)
                e_acc = t_acc * replay.gated_power(iters)
                for tag, platform in (("intel", INTEL_COMET_LAKE), ("arm", ARM_A57)):
                    t_cpu = platform.window_time(stats, iters)
                    speedups[tag].append(t_cpu / t_acc)
                    energies[tag].append(t_cpu * platform.power_w / e_acc)
        result.rows.append(
            [
                design_name,
                float(np.mean(speedups["intel"])),
                float(np.mean(energies["intel"])),
                float(np.mean(speedups["arm"])),
                float(np.mean(energies["arm"])),
            ]
        )
    result.notes = (
        "Paper: High-Perf 5.1x / 89.8x (Intel) and 30.4x / 41.3x (Arm); "
        "Low-Power 2.8x / 62.2x and 16.7x / 28.5x. Shape: speedups dip "
        "slightly vs static (gated hardware), energy reductions grow."
    )
    return result
