"""Shared experiment infrastructure: result containers, run caching,
and table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.data.sequences import make_euroc_sequence, make_kitti_sequence
from repro.data.stats import WindowStats
from repro.slam.estimator import EstimatorConfig, RunResult, SlidingWindowEstimator
from repro.slam.nls import LMConfig

# Trace lengths used by the experiments: long enough for stable
# statistics, short enough that the full harness runs in minutes.
EUROC_DURATION_S = 14.0
KITTI_DURATION_S = 24.0
EUROC_TRACES = ("MH_01", "MH_03")
KITTI_TRACES = ("00", "05")


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        table = format_table(self.columns, self.rows)
        parts = [f"== {self.experiment_id}: {self.title} ==", table]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def format_table(columns: list[str], rows: list[list]) -> str:
    """Plain-text aligned table."""

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(w) for col, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells]
    return "\n".join(lines)


@lru_cache(maxsize=8)
def cached_sequence(kind: str, name: str, duration: float):
    """Deterministic sequences, built once per process."""
    if kind == "euroc":
        return make_euroc_sequence(name, duration=duration)
    if kind == "kitti":
        return make_kitti_sequence(name, duration=duration)
    raise ValueError(f"unknown dataset kind {kind!r}")


@lru_cache(maxsize=32)
def cached_run(
    kind: str,
    name: str,
    duration: float,
    window_size: int = 8,
    iteration_cap: int = 6,
) -> RunResult:
    """Estimator runs, cached per process (they dominate wall clock)."""
    sequence = cached_sequence(kind, name, duration)
    estimator = SlidingWindowEstimator(
        EstimatorConfig(
            window_size=window_size,
            lm=LMConfig(max_iterations=iteration_cap),
        )
    )
    return estimator.run(sequence)


def run_window_stats(run: RunResult) -> list[WindowStats]:
    """Per-window workload statistics of a cached run."""
    return [w.stats for w in run.windows]
