"""Shared experiment infrastructure: result containers, engine-backed
run access, and table formatting.

All heavy artifacts (sequences, estimator runs, runtime replays) flow
through the :mod:`repro.engine` execution engine, so repeated experiment
and benchmark invocations hit the in-process memo or the on-disk
artifact cache instead of re-running the estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.sequences import Sequence
from repro.data.stats import WindowStats
from repro.engine import (
    ESTIMATOR,
    REPLAY,
    SEQUENCE,
    EstimatorRequest,
    PolicySpec,
    ReplayRequest,
    get_engine,
    sequence_config,
)
from repro.runtime.controller import ReplayResult
from repro.slam.estimator import EstimatorConfig, RunResult
from repro.slam.nls import LMConfig

# Trace lengths used by the experiments: long enough for stable
# statistics, short enough that the full harness runs in minutes.
EUROC_DURATION_S = 14.0
KITTI_DURATION_S = 24.0
EUROC_TRACES = ("MH_01", "MH_03")
KITTI_TRACES = ("00", "05")


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        table = format_table(self.columns, self.rows)
        parts = [f"== {self.experiment_id}: {self.title} ==", table]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def format_table(columns: list[str], rows: list[list]) -> str:
    """Plain-text aligned table."""

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(w) for col, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells]
    return "\n".join(lines)


def estimator_request(
    kind: str,
    name: str,
    duration: float,
    window_size: int = 8,
    iteration_cap: int = 6,
    policy: PolicySpec | None = None,
) -> EstimatorRequest:
    """The engine request for one of the harness's standard runs."""
    return EstimatorRequest(
        sequence=sequence_config(kind, name, duration),
        estimator=EstimatorConfig(
            window_size=window_size,
            lm=LMConfig(max_iterations=iteration_cap),
        ),
        policy=policy,
    )


def get_sequence(kind: str, name: str, duration: float) -> Sequence:
    """Deterministic catalog sequence, via the engine cache."""
    return get_engine().run(SEQUENCE, sequence_config(kind, name, duration))


def get_run(
    kind: str,
    name: str,
    duration: float,
    window_size: int = 8,
    iteration_cap: int = 6,
) -> RunResult:
    """Static-cap estimator run, via the engine cache (these dominate
    the harness's wall clock)."""
    return get_engine().run(
        ESTIMATOR, estimator_request(kind, name, duration, window_size, iteration_cap)
    )


def get_dynamic_run(
    kind: str, name: str, duration: float, design_name: str
) -> tuple[RunResult, ReplayResult]:
    """Estimator run with the run-time iteration policy installed, plus
    the controller replay for the energy bookkeeping (identical
    decisions: same feature counts, same table)."""
    engine = get_engine()
    request = estimator_request(
        kind, name, duration, policy=PolicySpec(design=design_name)
    )
    run = engine.run(ESTIMATOR, request)
    replay = engine.run(REPLAY, ReplayRequest(run=request, design=design_name))
    return run, replay


def run_window_stats(run: RunResult) -> list[WindowStats]:
    """Per-window workload statistics of a cached run."""
    return [w.stats for w in run.windows]
