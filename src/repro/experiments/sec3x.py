"""Sec. 3.2 / 3.3 design-choice experiments (M-DFG ablations)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.mdfg import (
    choose_s_matrix_layout,
    optimal_linear_solver_blocking,
    optimal_marginalization_blocking,
)


def run_sec32() -> ExperimentResult:
    """Blocking-strategy cost model: the D-type Schur ablation."""
    choice = optimal_linear_solver_blocking(250, 15, observations_per_feature=10.0)
    result = ExperimentResult(
        experiment_id="sec32",
        title="Linear-solver blocking strategies (cost model, a=250, b=15)",
        columns=["strategy", "modeled_ops", "relative_to_best"],
    )
    best = min(choice.alternatives.values())
    for name, cost in sorted(choice.alternatives.items(), key=lambda kv: kv[1]):
        result.rows.append([name, cost, cost / best])
    marg = optimal_marginalization_blocking(25)
    result.notes = (
        f"Chosen: split={choice.split}, diagonal={choice.diagonal} (the "
        "paper's D-type Schur). Marginalization blocking likewise picks "
        f"the diagonal feature block (split={marg.split}, "
        f"diagonal={marg.diagonal})."
    )
    return result


def run_sec33() -> ExperimentResult:
    """S-matrix storage layouts at the paper's k = 15, b = 15."""
    decision = choose_s_matrix_layout(15, 15)
    result = ExperimentResult(
        experiment_id="sec33",
        title="S-matrix storage encodings (words, k=15, b=15)",
        columns=["encoding", "words", "saving_vs_dense_pct"],
    )
    dense = decision.candidates["dense"]
    for name, words in sorted(decision.candidates.items(), key=lambda kv: kv[1]):
        result.rows.append([name, words, 100 * (1 - words / dense)])
    result.notes = (
        f"Chosen: {decision.chosen} — {100 * decision.saving_vs_dense:.1f}% below "
        f"dense (paper: 78%) and {100 * decision.saving_vs_csr:.1f}% below "
        "symmetric CSR (paper: 17.8%)."
    )
    return result
