"""The experiment registry and CLI entry point."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.experiments.fig11_12 import run_fig11, run_fig12
from repro.experiments.fig13_14 import run_fig13a, run_fig13b, run_fig13c, run_fig14
from repro.experiments.fig15_16 import run_fig15, run_fig16, run_tbl2
from repro.experiments.sec3x import run_sec32, run_sec33
from repro.experiments.extensions import (
    run_ext_accuracy_table,
    run_ext_learned_policy,
    run_ext_realtime_margin,
    run_ext_robustness,
    run_ext_window_size,
    run_ext_wordlength,
)
from repro.experiments.sec76 import run_sec76, run_sec76_combined
from repro.experiments.sec7x import (
    run_sec73,
    run_sec75,
    run_sec77_apps,
    run_sec77_fpgas,
)

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13a": run_fig13a,
    "fig13b": run_fig13b,
    "fig13c": run_fig13c,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "tbl2": run_tbl2,
    "sec32": run_sec32,
    "sec33": run_sec33,
    "sec73": run_sec73,
    "sec75": run_sec75,
    "sec76": run_sec76,
    "sec76b": run_sec76_combined,
    "sec77a": run_sec77_fpgas,
    "sec77b": run_sec77_apps,
    "ext-learned-policy": run_ext_learned_policy,
    "ext-robustness": run_ext_robustness,
    "ext-wordlength": run_ext_wordlength,
    "ext-realtime": run_ext_realtime_margin,
    "ext-accuracy": run_ext_accuracy_table,
    "ext-window-size": run_ext_window_size,
}


def available_experiments() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one registered experiment by id."""
    if experiment_id not in EXPERIMENTS:
        import difflib

        close = difflib.get_close_matches(
            experiment_id, EXPERIMENTS, n=3, cutoff=0.4
        )
        hint = (
            f"; did you mean {' or '.join(repr(c) for c in close)}?"
            if close
            else f"; choose from {available_experiments()}"
        )
        raise ConfigurationError(f"unknown experiment {experiment_id!r}{hint}")
    return EXPERIMENTS[experiment_id]()


def run_experiments(
    experiment_ids: list[str], engine=None
) -> list[ExperimentResult]:
    """Run several experiments, in parallel when the engine has workers.

    Unknown ids are rejected up front (before any work is spent), and
    results come back in the requested order regardless of worker count.
    """
    for experiment_id in experiment_ids:
        if experiment_id not in EXPERIMENTS:
            run_experiment(experiment_id)  # raises with suggestions
    if engine is None:
        from repro.engine import get_engine

        engine = get_engine()
    return engine.parallel(run_experiment, experiment_ids)
