"""Fig. 15 / Fig. 16 and Tbl. 2: speedups, energy reductions, resources.

Speedups and energy reductions are computed window-by-window on the
actual workload statistics the estimator produced on each trace, then
averaged — mirroring the paper's per-benchmark evaluation. Absolute
milliseconds come from our calibrated models; the reproduced quantities
are the ratios.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ARM_A57, INTEL_COMET_LAKE
from repro.experiments.common import (
    EUROC_DURATION_S,
    EUROC_TRACES,
    ExperimentResult,
    KITTI_DURATION_S,
    KITTI_TRACES,
    get_run,
    run_window_stats,
)
from repro.hw import window_latency_seconds
from repro.synth import high_perf_design, low_power_design, pareto_frontier


def _trace_ratios(design_config, design_power, stats_list, iterations=6):
    """Mean speedup / energy-reduction ratios over a trace's windows."""
    speedups, energies = {"intel": [], "arm": []}, {"intel": [], "arm": []}
    for stats in stats_list:
        if stats.num_features < 5:
            continue  # warm-up windows
        t_acc = window_latency_seconds(stats, design_config, iterations)
        e_acc = t_acc * design_power
        for tag, platform in (("intel", INTEL_COMET_LAKE), ("arm", ARM_A57)):
            t_cpu = platform.window_time(stats, iterations)
            speedups[tag].append(t_cpu / t_acc)
            energies[tag].append(t_cpu * platform.power_w / e_acc)
    return speedups, energies


def _all_trace_stats():
    traces = []
    for name in EUROC_TRACES:
        run = get_run("euroc", name, EUROC_DURATION_S)
        traces.append((f"EuRoC {name}", run_window_stats(run)))
    for name in KITTI_TRACES:
        run = get_run("kitti", name, KITTI_DURATION_S)
        traces.append((f"KITTI {name}", run_window_stats(run)))
    return traces


def run_fig15() -> ExperimentResult:
    """Speedup and energy reduction of the Pareto designs on one KITTI
    trace (Fig. 15's scatter)."""
    frontier = pareto_frontier()
    run = get_run("kitti", KITTI_TRACES[0], KITTI_DURATION_S)
    stats_list = run_window_stats(run)
    result = ExperimentResult(
        experiment_id="fig15",
        title="Pareto designs: speedup vs energy reduction (KITTI trace)",
        columns=[
            "design_latency_ms",
            "power_w",
            "speedup_vs_intel",
            "energy_red_vs_intel",
            "speedup_vs_arm",
            "energy_red_vs_arm",
        ],
    )
    for point in frontier:
        speedups, energies = _trace_ratios(point.config, point.power_w, stats_list)
        result.rows.append(
            [
                point.latency_s * 1e3,
                point.power_w,
                float(np.mean(speedups["intel"])),
                float(np.mean(energies["intel"])),
                float(np.mean(speedups["arm"])),
                float(np.mean(energies["arm"])),
            ]
        )
    result.notes = (
        "Higher speedup -> higher energy reduction, tapering for the most "
        "power-hungry designs (the paper's Fig. 15 trend)."
    )
    return result


def run_fig16() -> ExperimentResult:
    """High-Perf and Low-Power average speedup / energy reduction over
    both CPU baselines across EuRoC + KITTI traces (Fig. 16)."""
    designs = {"High-Perf": high_perf_design(), "Low-Power": low_power_design()}
    result = ExperimentResult(
        experiment_id="fig16",
        title="Variant speedups / energy reductions over Intel and Arm",
        columns=[
            "design",
            "speedup_intel",
            "std",
            "energy_red_intel",
            "speedup_arm",
            "energy_red_arm",
        ],
    )
    for name, design in designs.items():
        per_trace_speedup_intel, per_trace_energy_intel = [], []
        per_trace_speedup_arm, per_trace_energy_arm = [], []
        for _, stats_list in _all_trace_stats():
            speedups, energies = _trace_ratios(design.config, design.power_w, stats_list)
            per_trace_speedup_intel.append(np.mean(speedups["intel"]))
            per_trace_energy_intel.append(np.mean(energies["intel"]))
            per_trace_speedup_arm.append(np.mean(speedups["arm"]))
            per_trace_energy_arm.append(np.mean(energies["arm"]))
        result.rows.append(
            [
                name,
                float(np.mean(per_trace_speedup_intel)),
                float(np.std(per_trace_speedup_intel)),
                float(np.mean(per_trace_energy_intel)),
                float(np.mean(per_trace_speedup_arm)),
                float(np.mean(per_trace_energy_arm)),
            ]
        )
    result.notes = (
        "Paper headline (full-scale windows): High-Perf 6.2x / 74x over "
        "Intel and 39.7x / 14.6x over Arm; Low-Power 3.7x / 68.6x and "
        "23.6x / 13.6x. Shapes to check: High-Perf > Low-Power in speed, "
        "both far ahead of the CPUs, Arm speedup >> Intel speedup, Intel "
        "energy gap >> Arm energy gap."
    )
    return result


def run_tbl2() -> ExperimentResult:
    """Tbl. 2: resource consumption and knob values of both variants."""
    result = ExperimentResult(
        experiment_id="tbl2",
        title="FPGA resource consumption of High-Perf / Low-Power (ZC706)",
        columns=["design", "lut_pct", "ff_pct", "bram_pct", "dsp_pct", "nd", "nm", "s"],
    )
    for name, design in (
        ("High-Perf", high_perf_design()),
        ("Low-Power", low_power_design()),
    ):
        result.rows.append(
            [
                name,
                100 * design.utilization["lut"],
                100 * design.utilization["ff"],
                100 * design.utilization["bram"],
                100 * design.utilization["dsp"],
                design.config.nd,
                design.config.nm,
                design.config.s,
            ]
        )
    result.notes = (
        "Paper: High-Perf (nd=28, nm=19, s=97) at LUT 62%/FF 37%/BRAM 47%/"
        "DSP 94%; Low-Power (21, 8, 34) at 44/29/27/49. Our optimizer picks "
        "the same-budget designs under our calibrated models."
    )
    return result
