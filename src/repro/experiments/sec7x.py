"""Sec. 7.3 / 7.5 / 7.7 experiments: generator efficiency, prior
accelerators, other FPGAs and other algorithms."""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import (
    ARM_A57,
    HLS_CHOLESKY,
    INTEL_COMET_LAKE,
    PRIOR_ACCELERATORS,
)
from repro.apps import curve_fitting_workload, pose_estimation_workload
from repro.experiments.common import ExperimentResult
from repro.hw import REFERENCE_WORKLOAD, window_latency_seconds
from repro.hw.fpga import KINTEX7_160T, VIRTEX7_690T, ZC706
from repro.hw.latency import cholesky_latency, nls_iteration_latency
from repro.synth import (
    DesignSpec,
    Objective,
    biggest_fit_design,
    design_space_metrics,
    high_perf_design,
    minimize_latency,
    synthesize,
)


def run_sec73() -> ExperimentResult:
    """Generator efficiency: seconds against the 15-year exhaustive flow."""
    metrics = design_space_metrics()
    result = ExperimentResult(
        experiment_id="sec73",
        title="Hardware generator efficiency (Sec. 7.3)",
        columns=["quantity", "value"],
    )
    result.rows = [
        ["design space points", metrics.num_designs],
        ["exhaustive FPGA-flow estimate (years)", round(metrics.exhaustive_flow_years, 1)],
        ["our generator (seconds)", round(metrics.generator_seconds, 4)],
        ["speed ratio", f"{metrics.speed_ratio:.2e}"],
    ]
    result.notes = "Paper: ~90,000 designs, ~15 years exhaustive, ~3 s generator."
    return result


def run_sec75() -> ExperimentResult:
    """Comparison with prior accelerators and the HLS Cholesky."""
    hp = high_perf_design()
    t_iter = nls_iteration_latency(REFERENCE_WORKLOAD, hp.config) / ZC706.frequency_hz
    e_iter = t_iter * hp.power_w
    result = ExperimentResult(
        experiment_id="sec75",
        title="High-Perf vs prior localization accelerators (per NLS iteration)",
        columns=["system", "speedup_x", "energy_ratio_x", "marginalization"],
    )
    for accel in PRIOR_ACCELERATORS.values():
        result.rows.append(
            [
                accel.name,
                round(accel.speedup_of(t_iter), 1),
                round(accel.energy_reduction_of(e_iter), 2),
                "yes" if accel.supports_marginalization else "no",
            ]
        )
    m = 225
    hls_slowdown = HLS_CHOLESKY.slowdown_vs(
        cholesky_latency(m, hp.config.s), ZC706.frequency_hz, m
    )
    result.rows.append(
        [
            "hand-HLS Cholesky (module-level)",
            round(hls_slowdown, 1),
            round(1.0 / HLS_CHOLESKY.resource_factor, 2),
            "n/a",
        ]
    )
    result.notes = (
        "energy_ratio < 1 means the comparator uses less energy (PISCES is "
        "a low-power design; Archytas is 5.4x faster at ~3x its energy). "
        "Paper: pi-BA 137x/132x, BAX 9x/44% less energy, Zhang >20x, "
        "PISCES 5.4x faster/3x energy, HLS 16.4x slower."
    )
    return result


def run_sec77_fpgas() -> ExperimentResult:
    """Other FPGA boards: biggest-fit designs and their CPU ratios."""
    result = ExperimentResult(
        experiment_id="sec77a",
        title="Biggest-fit designs on other FPGAs (EuRoC-scale workload)",
        columns=[
            "board",
            "nd",
            "nm",
            "s",
            "latency_ms",
            "speedup_intel",
            "energy_red_intel",
            "speedup_arm",
            "energy_red_arm",
        ],
    )
    t_intel = INTEL_COMET_LAKE.window_time(REFERENCE_WORKLOAD)
    t_arm = ARM_A57.window_time(REFERENCE_WORKLOAD)
    for board in (KINTEX7_160T, ZC706, VIRTEX7_690T):
        design = biggest_fit_design(board)
        e_acc = design.latency_s * design.power_w
        result.rows.append(
            [
                board.name.split()[1],
                design.config.nd,
                design.config.nm,
                design.config.s,
                design.latency_s * 1e3,
                round(t_intel / design.latency_s, 1),
                round(t_intel * INTEL_COMET_LAKE.power_w / e_acc, 1),
                round(t_arm / design.latency_s, 1),
                round(t_arm * ARM_A57.power_w / e_acc, 1),
            ]
        )
    result.notes = (
        "Bigger boards admit faster designs (paper: Kintex 6.6x, Virtex "
        "10.2x over Intel; energy reductions grow with board size)."
    )
    return result


def run_sec77_apps() -> ExperimentResult:
    """Other MAP algorithms: curve fitting (planning) and pose estimation
    (AR), each with a generated accelerator vs the Intel baseline."""
    result = ExperimentResult(
        experiment_id="sec77b",
        title="Archytas on non-SLAM MAP workloads (vs Intel)",
        columns=["application", "nd", "nm", "s", "latency_ms", "speedup_x", "energy_red_x"],
    )
    for name, (stats, iterations) in (
        ("curve fitting (planning)", curve_fitting_workload()),
        ("pose estimation (AR)", pose_estimation_workload()),
    ):
        spec = DesignSpec(workload=stats, iterations=iterations, objective=Objective.LATENCY)
        fastest = minimize_latency(spec)
        # Report the knee design: for these small workloads the latency-
        # resource curve is flat past small configurations, so the
        # fastest-within-5% point is the meaningful design.
        knee = synthesize(
            DesignSpec(
                workload=stats,
                iterations=iterations,
                latency_budget_s=fastest.latency_s * 1.05,
            )
        )
        t_cpu = INTEL_COMET_LAKE.window_time(stats, iterations)
        result.rows.append(
            [
                name,
                knee.config.nd,
                knee.config.nm,
                knee.config.s,
                knee.latency_s * 1e3,
                round(t_cpu / knee.latency_s, 1),
                round(t_cpu * INTEL_COMET_LAKE.power_w / (knee.latency_s * knee.power_w), 1),
            ]
        )
    result.notes = (
        "Paper: curve fitting 8.5x / 257x, pose estimation 7.0x / 124.8x. "
        "Shape to check: both accelerate well; curve fitting gains more."
    )
    return result
