"""6-DoF pose estimation for Augmented Reality (Sec. 7.7).

The classic PnP refinement workload [52]: given a known 3D model (the
anchor map) and noisy 2D detections in the current camera frame, refine
the camera pose by minimizing reprojection error — again a MAP/NLS
problem, reusing the camera Jacobians of the SLAM substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3
from repro.geometry.so3 import random_rotation, so3_exp
from repro.apps.nls import NlsSolution
from repro.utils.rng import rng_from_seed


@dataclass
class PoseEstimationProblem:
    """One AR frame: model points, detections, and the initial pose."""

    camera: PinholeCamera
    model_points: np.ndarray  # (N, 3) world-frame anchor points
    detections: np.ndarray  # (N, 2) observed pixels
    initial_pose: SE3
    true_pose: SE3 | None = None

    def __post_init__(self) -> None:
        self.model_points = np.asarray(self.model_points, dtype=float).reshape(-1, 3)
        self.detections = np.asarray(self.detections, dtype=float).reshape(-1, 2)
        if len(self.model_points) != len(self.detections):
            raise ConfigurationError("one detection per model point required")
        if len(self.model_points) < 4:
            raise ConfigurationError("PnP needs at least 4 correspondences")


def make_pose_estimation_problem(
    num_points: int = 80,
    pixel_noise: float = 1.0,
    pose_perturbation: float = 0.08,
    seed: int = 0,
) -> PoseEstimationProblem:
    """Synthesize an AR anchor-tracking frame."""
    rng = rng_from_seed(seed)
    camera = PinholeCamera()
    true_pose = SE3(random_rotation(rng), rng.normal(scale=0.5, size=3))
    # Scatter model points in the camera's viewing frustum.
    points_c = np.column_stack(
        [
            rng.uniform(-1.5, 1.5, num_points),
            rng.uniform(-1.0, 1.0, num_points),
            rng.uniform(2.0, 8.0, num_points),
        ]
    )
    points_w = true_pose.transform(points_c)
    detections = np.array(
        [camera.project(true_pose, p) for p in points_w]
    ) + rng.normal(scale=pixel_noise, size=(num_points, 2))
    initial = true_pose.retract(
        np.concatenate(
            [
                rng.normal(scale=pose_perturbation, size=3),
                rng.normal(scale=pose_perturbation, size=3),
            ]
        )
    )
    return PoseEstimationProblem(
        camera=camera,
        model_points=points_w,
        detections=detections,
        initial_pose=initial,
        true_pose=true_pose,
    )


def solve_pose_estimation(
    problem: PoseEstimationProblem, max_iterations: int = 20
) -> tuple[SE3, NlsSolution]:
    """LM over the 6-DoF pose tangent with analytic Jacobians."""
    pose = problem.initial_pose
    damping = 1e-4
    history = []
    iterations = 0
    converged = False

    def cost_of(p: SE3) -> float:
        total = 0.0
        for point, pixel in zip(problem.model_points, problem.detections):
            try:
                r = problem.camera.project(p, point) - pixel
            except ValueError:
                continue
            total += 0.5 * float(r @ r)
        return total

    cost = cost_of(pose)
    history.append(cost)
    for _ in range(max_iterations):
        iterations += 1
        hessian = np.zeros((6, 6))
        gradient = np.zeros(6)
        for point, pixel in zip(problem.model_points, problem.detections):
            try:
                _, jac_pose, _ = problem.camera.projection_jacobians(pose, point)
                r = problem.camera.project(pose, point) - pixel
            except ValueError:
                continue
            hessian += jac_pose.T @ jac_pose
            gradient -= jac_pose.T @ r
        step = np.linalg.solve(hessian + damping * np.eye(6), gradient)
        candidate = pose.retract(step)
        cost_new = cost_of(candidate)
        if cost_new < cost:
            relative = (cost - cost_new) / max(cost, 1e-300)
            pose, cost = candidate, cost_new
            damping = max(damping * 0.3, 1e-12)
            history.append(cost)
            if relative < 1e-10:
                converged = True
                break
        else:
            damping *= 10.0
            history.append(cost)
            if damping > 1e14:
                break
    solution = NlsSolution(
        x=pose.log(), cost=cost, iterations=iterations,
        cost_history=history, converged=converged,
    )
    return pose, solution


def pose_estimation_workload() -> tuple[WindowStats, int]:
    """Workload adapter: one pose, many observations, no landmarks to
    eliminate — so the Jacobian/Schur pipeline dominates."""
    stats = WindowStats(
        num_features=80,
        avg_observations=4.0,
        num_keyframes=3,
        num_marginalized=6,
        num_observations=320,
    )
    return stats, 6
