"""A generic dense Levenberg-Marquardt solver for the non-SLAM apps.

The SLAM estimator has its own structured solver; the Sec. 7.7 apps are
small enough that a dense LM over a user-supplied residual/Jacobian pair
suffices — and it reuses the same Cholesky kernel the hardware mirrors.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SolverError
from repro.linalg.cholesky import cholesky_evaluate_update, solve_cholesky


@dataclass
class GenericNlsProblem:
    """min_x 0.5 ||r(x)||^2 with analytic or numeric Jacobian.

    Attributes:
        residual: x -> r(x), any output dimension.
        jacobian: x -> dr/dx; if None, central differences are used.
        x0: initial estimate.
    """

    residual: Callable[[np.ndarray], np.ndarray]
    x0: np.ndarray
    jacobian: Callable[[np.ndarray], np.ndarray] | None = None

    def __post_init__(self) -> None:
        self.x0 = np.asarray(self.x0, dtype=float).ravel()

    def numeric_jacobian(self, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
        r0 = self.residual(x)
        jac = np.zeros((r0.size, x.size))
        for i in range(x.size):
            dx = np.zeros_like(x)
            dx[i] = eps
            jac[:, i] = (self.residual(x + dx) - self.residual(x - dx)) / (2 * eps)
        return jac


@dataclass
class NlsSolution:
    x: np.ndarray
    cost: float
    iterations: int
    cost_history: list[float] = field(default_factory=list)
    converged: bool = False


def gauss_newton_lm(
    problem: GenericNlsProblem,
    max_iterations: int = 30,
    initial_damping: float = 1e-4,
    cost_tolerance: float = 1e-10,
) -> NlsSolution:
    """Dense LM with the standard multiplicative damping schedule."""
    x = problem.x0.copy()
    damping = initial_damping
    r = problem.residual(x)
    cost = 0.5 * float(r @ r)
    history = [cost]
    iterations = 0
    converged = False
    for _ in range(max_iterations):
        iterations += 1
        jac = (
            problem.jacobian(x) if problem.jacobian is not None
            else problem.numeric_jacobian(x)
        )
        hessian = jac.T @ jac
        gradient = -jac.T @ r
        try:
            factor, _ = cholesky_evaluate_update(
                hessian + damping * np.eye(x.size), jitter=1e-12
            )
            step = solve_cholesky(factor, gradient)
        except SolverError:
            damping *= 10.0
            history.append(cost)
            continue
        candidate = x + step
        r_new = problem.residual(candidate)
        cost_new = 0.5 * float(r_new @ r_new)
        if np.isfinite(cost_new) and cost_new < cost:
            relative_drop = (cost - cost_new) / max(cost, 1e-300)
            x, r, cost = candidate, r_new, cost_new
            damping = max(damping * 0.3, 1e-12)
            history.append(cost)
            if relative_drop < cost_tolerance:
                converged = True
                break
        else:
            damping *= 10.0
            history.append(cost)
            if damping > 1e14:
                break
    return NlsSolution(
        x=x, cost=cost, iterations=iterations, cost_history=history, converged=converged
    )
