"""Smooth curve fitting for motion planning (Sec. 7.7).

The planner workload of [18, 30]: smooth a noisy waypoint sequence into
a dynamically-feasible 2D path. The decision variables are the control
points of a uniform cubic B-spline; the NLS objective balances waypoint
attachment against curvature (smoothness) penalties — structurally the
same MAP estimation Archytas accelerates, with a different residual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.apps.nls import GenericNlsProblem, NlsSolution, gauss_newton_lm
from repro.utils.rng import rng_from_seed


def _bspline_basis(t: float) -> np.ndarray:
    """Uniform cubic B-spline basis weights for local parameter t in [0,1)."""
    return np.array(
        [
            (1 - t) ** 3,
            3 * t**3 - 6 * t**2 + 4,
            -3 * t**3 + 3 * t**2 + 3 * t + 1,
            t**3,
        ]
    ) / 6.0


@dataclass
class CurveFittingProblem:
    """One planning instance: waypoints to smooth.

    Attributes:
        waypoints: (N, 2) noisy waypoints along the intended path.
        times: (N,) spline parameters of the waypoints (in control-point
            units; waypoint i attaches at spline position times[i]).
        num_control_points: decision-variable count (x and y each).
        smoothness_weight: curvature penalty weight.
    """

    waypoints: np.ndarray
    times: np.ndarray
    num_control_points: int
    smoothness_weight: float = 2.0
    true_path: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.waypoints = np.asarray(self.waypoints, dtype=float).reshape(-1, 2)
        self.times = np.asarray(self.times, dtype=float).ravel()
        if self.times.size != len(self.waypoints):
            raise ConfigurationError("one time per waypoint required")
        if self.num_control_points < 6:
            raise ConfigurationError("need at least 6 control points")

    def evaluate(self, control: np.ndarray, t: float) -> np.ndarray:
        """Point on the spline at parameter t given flat control vector."""
        control = control.reshape(self.num_control_points, 2)
        segment = min(int(t), self.num_control_points - 4)
        local = t - segment
        return _bspline_basis(local) @ control[segment : segment + 4]

    def residual(self, control: np.ndarray) -> np.ndarray:
        """Waypoint attachment + second-difference smoothness residuals."""
        points = control.reshape(self.num_control_points, 2)
        attach = np.concatenate(
            [self.evaluate(control, t) - w for t, w in zip(self.times, self.waypoints)]
        )
        curvature = np.sqrt(self.smoothness_weight) * (
            points[2:] - 2 * points[1:-1] + points[:-2]
        )
        return np.concatenate([attach, curvature.ravel()])

    def initial_guess(self) -> np.ndarray:
        """Linear interpolation of the waypoints onto the control grid."""
        grid = np.linspace(0.0, self.times[-1], self.num_control_points)
        x = np.interp(grid, self.times, self.waypoints[:, 0])
        y = np.interp(grid, self.times, self.waypoints[:, 1])
        return np.column_stack([x, y]).ravel()


def make_curve_fitting_problem(
    num_waypoints: int = 60,
    num_control_points: int = 24,
    noise: float = 0.15,
    seed: int = 0,
) -> CurveFittingProblem:
    """Synthesize a planning instance along a smooth reference path."""
    rng = rng_from_seed(seed)
    span = num_control_points - 3.0  # valid spline parameter range
    times = np.linspace(0.1, span - 0.1, num_waypoints)
    phase = rng.uniform(0, 2 * np.pi)
    reference = np.column_stack(
        [
            2.0 * times,
            4.0 * np.sin(0.35 * times + phase) + 1.5 * np.sin(0.11 * times),
        ]
    )
    noisy = reference + rng.normal(scale=noise, size=reference.shape)
    return CurveFittingProblem(
        waypoints=noisy,
        times=times,
        num_control_points=num_control_points,
        true_path=reference,
    )


def solve_curve_fitting(
    problem: CurveFittingProblem, max_iterations: int = 25
) -> NlsSolution:
    """Fit the spline with the generic LM solver (numeric Jacobian)."""
    nls = GenericNlsProblem(residual=problem.residual, x0=problem.initial_guess())
    return gauss_newton_lm(nls, max_iterations=max_iterations)


def curve_fitting_workload() -> tuple[WindowStats, int]:
    """The workload adapter for the synthesizer (Sec. 7.7).

    The spline problem maps onto the template as: "features" are the
    waypoint attachment residuals (each couples a handful of control
    points, like an observation couples poses), the retained dense block
    is the control-point system. Returns (stats, iterations).
    """
    stats = WindowStats(
        num_features=240,
        avg_observations=2.0,
        num_keyframes=4,
        num_marginalized=8,
        num_observations=480,
    )
    return stats, 5
