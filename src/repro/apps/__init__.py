"""Non-SLAM MAP applications (Sec. 7.7).

MAP/NLS estimation is not SLAM-specific: the paper demonstrates
Archytas on two more robotic workloads, and so do we — each implemented
as a real solver on synthetic data plus a workload adapter that lets the
synthesizer generate an accelerator for it:

* :mod:`curve_fitting` — smooth trajectory fitting for motion planning
  (timed-elastic-band style waypoint smoothing);
* :mod:`pose_estimation` — 6-DoF camera pose from 2D-3D
  correspondences (the AR anchor-tracking workload).
"""

from repro.apps.nls import GenericNlsProblem, gauss_newton_lm
from repro.apps.curve_fitting import (
    CurveFittingProblem,
    make_curve_fitting_problem,
    solve_curve_fitting,
    curve_fitting_workload,
)
from repro.apps.pose_estimation import (
    PoseEstimationProblem,
    make_pose_estimation_problem,
    solve_pose_estimation,
    pose_estimation_workload,
)

__all__ = [
    "GenericNlsProblem",
    "gauss_newton_lm",
    "CurveFittingProblem",
    "make_curve_fitting_problem",
    "solve_curve_fitting",
    "curve_fitting_workload",
    "PoseEstimationProblem",
    "make_pose_estimation_problem",
    "solve_pose_estimation",
    "pose_estimation_workload",
]
