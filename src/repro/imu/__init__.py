"""Inertial measurement unit models.

Provides the IMU noise specification, raw-sample synthesis, and the
preintegration of gyro/accel samples between consecutive keyframes.
Preintegrated deltas are what the IMU Jacobian (IJac) primitive node
linearizes, and they give each keyframe its 15-dimensional state
(position, orientation, velocity, gyro bias, accel bias) — the ``k = 15``
of the paper's S-matrix layout analysis (Sec. 3.3).
"""

from repro.imu.noise import ImuNoise
from repro.imu.preintegration import ImuPreintegration, GRAVITY

__all__ = ["ImuNoise", "ImuPreintegration", "GRAVITY"]
