"""IMU noise specification.

Continuous-time white-noise densities for the gyroscope and
accelerometer plus the random-walk densities of their biases, in the
units conventionally quoted on IMU datasheets. The EuRoC default matches
the ADIS16448 figures shipped with the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ImuNoise:
    """Continuous-time IMU noise densities.

    Attributes:
        gyro_noise: gyroscope white noise density [rad / s / sqrt(Hz)].
        accel_noise: accelerometer white noise density [m / s^2 / sqrt(Hz)].
        gyro_walk: gyroscope bias random walk [rad / s^2 / sqrt(Hz)].
        accel_walk: accelerometer bias random walk [m / s^3 / sqrt(Hz)].
    """

    gyro_noise: float = 1.7e-4
    accel_noise: float = 2.0e-3
    gyro_walk: float = 2.0e-5
    accel_walk: float = 3.0e-3

    def __post_init__(self) -> None:
        for name in ("gyro_noise", "accel_noise", "gyro_walk", "accel_walk"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def discrete_gyro_sigma(self, dt: float) -> float:
        """Per-sample gyro noise std for sample interval ``dt``."""
        return self.gyro_noise / np.sqrt(dt)

    def discrete_accel_sigma(self, dt: float) -> float:
        """Per-sample accel noise std for sample interval ``dt``."""
        return self.accel_noise / np.sqrt(dt)

    def discrete_gyro_walk_sigma(self, dt: float) -> float:
        """Per-sample gyro-bias random-walk std for interval ``dt``."""
        return self.gyro_walk * np.sqrt(dt)

    def discrete_accel_walk_sigma(self, dt: float) -> float:
        """Per-sample accel-bias random-walk std for interval ``dt``."""
        return self.accel_walk * np.sqrt(dt)

    @staticmethod
    def ideal() -> "ImuNoise":
        """A noiseless IMU, useful for unit tests of the integrators."""
        return ImuNoise(0.0, 0.0, 0.0, 0.0)
