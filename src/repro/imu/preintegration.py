"""IMU preintegration between consecutive keyframes.

Implements the standard on-manifold preintegration of Forster et al. /
VINS-Mono: raw gyro/accel samples between keyframe ``i`` and keyframe
``j`` are folded into delta position ``alpha``, delta velocity ``beta``
and delta rotation ``gamma`` expressed in frame ``i``, together with
first-order Jacobians of the deltas with respect to the gyro/accel biases
so the NLS solver can correct for bias updates without re-integrating.

The 15-dimensional residual against two keyframe states (and its analytic
Jacobians) lives in :mod:`repro.slam.residuals`; this module only owns the
integration itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError
from repro.geometry.so3 import hat, so3_exp

GRAVITY = np.array([0.0, 0.0, -9.81])


@dataclass
class ImuPreintegration:
    """Accumulated IMU deltas between two keyframes.

    All quantities are expressed in the body frame of the first keyframe.

    Attributes:
        alpha: preintegrated position delta (3,).
        beta: preintegrated velocity delta (3,).
        gamma: preintegrated rotation delta, a 3x3 rotation matrix.
        dt_total: total integration time [s].
        jac_alpha_bg / jac_alpha_ba: d(alpha)/d(gyro bias), d(alpha)/d(accel bias).
        jac_beta_bg / jac_beta_ba: analogous for beta.
        jac_gamma_bg: d(Log gamma)/d(gyro bias).
        covariance: 9x9 covariance of (alpha, theta, beta) accumulated
            from the per-sample noise densities.
        bias_gyro_ref / bias_accel_ref: bias values the integration was
            carried out with (the linearization point for corrections).
    """

    bias_gyro_ref: np.ndarray = field(default_factory=lambda: np.zeros(3))
    bias_accel_ref: np.ndarray = field(default_factory=lambda: np.zeros(3))
    alpha: np.ndarray = field(default_factory=lambda: np.zeros(3))
    beta: np.ndarray = field(default_factory=lambda: np.zeros(3))
    gamma: np.ndarray = field(default_factory=lambda: np.eye(3))
    dt_total: float = 0.0
    jac_alpha_bg: np.ndarray = field(default_factory=lambda: np.zeros((3, 3)))
    jac_alpha_ba: np.ndarray = field(default_factory=lambda: np.zeros((3, 3)))
    jac_beta_bg: np.ndarray = field(default_factory=lambda: np.zeros((3, 3)))
    jac_beta_ba: np.ndarray = field(default_factory=lambda: np.zeros((3, 3)))
    jac_gamma_bg: np.ndarray = field(default_factory=lambda: np.zeros((3, 3)))
    covariance: np.ndarray = field(default_factory=lambda: np.zeros((9, 9)))
    num_samples: int = 0

    def integrate(
        self,
        gyro: np.ndarray,
        accel: np.ndarray,
        dt: float,
        gyro_sigma: float = 0.0,
        accel_sigma: float = 0.0,
    ) -> None:
        """Fold one (gyro, accel) sample of duration ``dt`` into the deltas.

        Args:
            gyro: measured angular velocity (3,) [rad/s].
            accel: measured specific force (3,) [m/s^2], gravity included.
            dt: sample interval [s]; must be positive.
            gyro_sigma / accel_sigma: discrete per-sample noise stds used
                for covariance propagation (0 disables propagation).
        """
        if dt <= 0.0:
            raise DataError(f"IMU sample interval must be positive, got {dt}")
        gyro = np.asarray(gyro, dtype=float).reshape(3) - self.bias_gyro_ref
        accel = np.asarray(accel, dtype=float).reshape(3) - self.bias_accel_ref

        gamma_old = self.gamma
        rotated_accel = gamma_old @ accel
        delta_rot = so3_exp(gyro * dt)

        # First-order state propagation (Euler step on the deltas).
        self.alpha = self.alpha + self.beta * dt + 0.5 * rotated_accel * dt * dt
        self.beta = self.beta + rotated_accel * dt
        self.gamma = gamma_old @ delta_rot
        self.dt_total += dt
        self.num_samples += 1

        # Bias Jacobian propagation (first order, same discretization).
        accel_skew = hat(accel)
        self.jac_alpha_bg = (
            self.jac_alpha_bg
            + self.jac_beta_bg * dt
            - 0.5 * dt * dt * gamma_old @ accel_skew @ self.jac_gamma_bg
        )
        self.jac_alpha_ba = self.jac_alpha_ba + self.jac_beta_ba * dt - 0.5 * dt * dt * gamma_old
        self.jac_beta_bg = self.jac_beta_bg - dt * gamma_old @ accel_skew @ self.jac_gamma_bg
        self.jac_beta_ba = self.jac_beta_ba - dt * gamma_old
        self.jac_gamma_bg = delta_rot.T @ self.jac_gamma_bg - dt * np.eye(3)

        if gyro_sigma > 0.0 or accel_sigma > 0.0:
            self._propagate_covariance(
                gamma_old, accel_skew, delta_rot, dt, gyro_sigma, accel_sigma
            )

    def _propagate_covariance(
        self,
        gamma_old: np.ndarray,
        accel_skew: np.ndarray,
        delta_rot: np.ndarray,
        dt: float,
        gyro_sigma: float,
        accel_sigma: float,
    ) -> None:
        """Propagate the 9x9 (alpha, theta, beta) covariance one step."""
        transition = np.eye(9)
        transition[0:3, 3:6] = -0.5 * dt * dt * gamma_old @ accel_skew
        transition[0:3, 6:9] = dt * np.eye(3)
        transition[3:6, 3:6] = delta_rot.T
        transition[6:9, 3:6] = -dt * gamma_old @ accel_skew

        noise_map = np.zeros((9, 6))
        noise_map[0:3, 3:6] = 0.5 * dt * dt * gamma_old
        noise_map[3:6, 0:3] = dt * np.eye(3)
        noise_map[6:9, 3:6] = dt * gamma_old

        noise_cov = np.diag(
            [gyro_sigma**2] * 3 + [accel_sigma**2] * 3
        )
        self.covariance = (
            transition @ self.covariance @ transition.T
            + noise_map @ noise_cov @ noise_map.T
        )

    def corrected_deltas(
        self, bias_gyro: np.ndarray, bias_accel: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (alpha, beta, gamma) corrected for updated bias estimates.

        Applies the first-order bias Jacobians so the solver can move the
        bias away from the integration reference without re-running the
        integration.
        """
        d_bg = np.asarray(bias_gyro, dtype=float).reshape(3) - self.bias_gyro_ref
        d_ba = np.asarray(bias_accel, dtype=float).reshape(3) - self.bias_accel_ref
        alpha = self.alpha + self.jac_alpha_bg @ d_bg + self.jac_alpha_ba @ d_ba
        beta = self.beta + self.jac_beta_bg @ d_bg + self.jac_beta_ba @ d_ba
        gamma = self.gamma @ so3_exp(self.jac_gamma_bg @ d_bg)
        return alpha, beta, gamma

    def information_matrix(self, regularization: float = 1e-8) -> np.ndarray:
        """Inverse of the propagated covariance, regularized for stability."""
        if self.covariance.any():
            cov = self.covariance + regularization * np.eye(9)
            return np.linalg.inv(cov)
        return np.eye(9) / max(regularization, 1e-12)
