"""The 2-bit saturating counter that smooths iteration-count changes.

Sec. 6.2: "Iter is adjusted when the number of feature points maps to a
different Iter in two consecutive sliding windows." A classic 2-bit
hysteresis: a single noisy window does not trigger a reconfiguration,
two consecutive agreeing windows do.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class TwoBitSaturatingCounter:
    """Hysteresis filter over proposed iteration counts.

    State: the currently-applied value plus a pending proposal with a
    confidence counter. A new proposal replaces the pending one and
    resets confidence; a repeated proposal increments it; at
    ``threshold`` consecutive agreements the proposal is applied.
    """

    def __init__(self, initial: int, threshold: int = 2) -> None:
        if threshold < 1:
            raise ConfigurationError("threshold must be >= 1")
        self.current = initial
        self.threshold = threshold
        self._pending: int | None = None
        self._confidence = 0
        self.transitions = 0

    def update(self, proposal: int) -> int:
        """Feed one window's proposed value; returns the applied value."""
        if proposal == self.current:
            self._pending = None
            self._confidence = 0
            return self.current
        if proposal == self._pending:
            self._confidence += 1
        else:
            self._pending = proposal
            self._confidence = 1
        if self._confidence >= self.threshold:
            self.current = proposal
            self._pending = None
            self._confidence = 0
            self.transitions += 1
        return self.current
