"""The memoized per-Iter reconfiguration table (Equ. 18).

For each possible iteration count the run-time system needs a hardware
configuration that (a) still meets the latency budget at that Iter and
(b) fits inside the static design (componentwise smaller knobs), so it
can be reached by clock gating alone — no FPGA reprogramming. Since
there are only six Iter values, Equ. 18 is solved exhaustively offline
and the results memoized; at run time selecting a configuration is a
table lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import InfeasibleDesignError
from repro.hw.config import HardwareConfig
from repro.hw.power import DEFAULT_POWER_MODEL, PowerModel
from repro.hw.resources import DEFAULT_RESOURCE_MODEL, ResourceModel
from repro.runtime.profiler import MAX_ITERATIONS
from repro.synth.optimizer import exhaustive_search
from repro.synth.spec import DesignSpec, Objective


@dataclass(frozen=True)
class ReconfigurationTable:
    """Iter -> (gated hardware configuration, gated power)."""

    static_config: HardwareConfig
    entries: dict[int, HardwareConfig]
    powers: dict[int, float]

    def lookup(self, iterations: int) -> HardwareConfig:
        """The configuration to clock-gate down to for this Iter."""
        capped = max(1, min(iterations, max(self.entries)))
        return self.entries[capped]

    def gated_power(self, iterations: int) -> float:
        capped = max(1, min(iterations, max(self.powers)))
        return self.powers[capped]


def build_reconfiguration_table(
    static_config: HardwareConfig,
    spec: DesignSpec,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
    resource_model: ResourceModel = DEFAULT_RESOURCE_MODEL,
    max_iterations: int = MAX_ITERATIONS,
) -> ReconfigurationTable:
    """Solve Equ. 18 for every Iter value and memoize the results.

    min Power(nd, nm, s)
    s.t. Lat(nd, nm, s; Iter) <= L*,  nd <= nd*, nm <= nm*, s <= s*.
    """
    entries: dict[int, HardwareConfig] = {}
    powers: dict[int, float] = {}
    for iterations in range(1, max_iterations + 1):
        iter_spec = replace(spec, iterations=iterations, objective=Objective.POWER)
        try:
            outcome = exhaustive_search(
                iter_spec, resource_model, power_model, upper_bound=static_config
            )
            config = outcome.config
        except InfeasibleDesignError:
            # Even the full static design misses the budget at this Iter
            # (can happen for Iter == max on a tight budget): fall back
            # to the static configuration, i.e. no gating.
            config = static_config
        entries[iterations] = config
        powers[iterations] = power_model.gated_power(static_config, config)
    return ReconfigurationTable(
        static_config=static_config, entries=entries, powers=powers
    )
