"""The host-side run-time controller (Sec. 6.2).

Per sliding window: read the tracked-feature count from the sensing
front-end, map it to an iteration count through the offline table,
smooth with the 2-bit saturating counter, look up the memoized gated
configuration, and (if it changed) pass the three numbers to the FPGA.
The controller also does the energy bookkeeping every Sec. 7.6
experiment reports: per-window energy with and without the dynamic
optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.stats import WindowStats
from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform, ZC706
from repro.hw.latency import window_latency_seconds
from repro.hw.power import DEFAULT_POWER_MODEL, PowerModel
from repro.runtime.counter import TwoBitSaturatingCounter
from repro.runtime.profiler import IterationTable, MAX_ITERATIONS
from repro.runtime.reconfig import ReconfigurationTable


@dataclass(frozen=True)
class WindowDecision:
    """What the controller decided for one window.

    (Frozen but deliberately not ``slots=True``: frozen+slots dataclasses
    cannot be pickled on Python 3.10, and decisions ride inside pickled
    controllers across the serve tier's process boundary.)
    """

    feature_count: int
    proposed_iterations: int
    applied_iterations: int
    config: HardwareConfig
    reconfigured: bool
    energy_j: float
    static_energy_j: float  # what the static design would have burned


@dataclass(slots=True)
class RuntimeController:
    """Drives the accelerator's dynamic re-optimization.

    ``slots=True`` + picklable: a serving session (controller included)
    crosses the process-backend fork boundary, and a fleet serves one
    controller per session — slots keep the per-session footprint flat
    and catch stray attribute writes.

    Concurrency contract (the multi-session serving tier relies on it):
    the lookup tables — ``table`` (:class:`IterationTable`) and
    ``reconfig`` (:class:`ReconfigurationTable`) — are frozen dataclasses
    solved offline, so one memoized instance of each is safely **shared
    read-only** across every concurrent session. The *mutable* state —
    the 2-bit saturating counter, the active gated configuration, and
    the decision log — is per-controller, so each session must own its
    own ``RuntimeController`` (see :meth:`for_session`). A controller
    instance itself is single-session: it is not internally locked, and
    interleaving two robots' feature streams through one counter would
    cross-contaminate their hysteresis state.
    """

    table: IterationTable
    reconfig: ReconfigurationTable
    platform: FpgaPlatform = ZC706
    power_model: PowerModel = DEFAULT_POWER_MODEL
    # The learned-control seam: a frozen ControllerPolicy
    # (repro.runtime.policy) replaces table lookup + counter smoothing
    # with its per-cap contextual-bandit heads. None keeps the paper's
    # counter path bit-identical — the differential oracle the learned
    # path is gated against. The policy object is frozen/shared-safe,
    # so for_session() passes it through by reference.
    policy: object | None = None
    decisions: list[WindowDecision] = field(default_factory=list)
    _counter: TwoBitSaturatingCounter = field(init=False, repr=False)
    _active: HardwareConfig = field(init=False, repr=False)
    _drift_ewma: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._counter = TwoBitSaturatingCounter(initial=MAX_ITERATIONS)
        self._active = self.reconfig.static_config
        self._drift_ewma = 0.0

    def for_session(self) -> "RuntimeController":
        """A fresh controller sharing this one's read-only tables.

        The returned instance has its own saturating counter, active
        configuration, drift estimate, and decision log — the pattern
        for serving many robots against one offline-solved memo.
        """
        return RuntimeController(
            table=self.table,
            reconfig=self.reconfig,
            platform=self.platform,
            power_model=self.power_model,
            policy=self.policy,
        )

    @property
    def drift_estimate(self) -> float:
        """EWMA of the session's observed per-window drift [m] — the
        learned policy's context feature. 0.0 until first observation."""
        return self._drift_ewma

    def observe_drift(self, drift_m: float) -> None:
        """Feed one served window's drift back into the EWMA.

        Called by the serving tier at completion-accounting time, which
        is a deterministic point in virtual time — so the feature stream
        (hence every learned decision) is identical across execution
        backends and repeats.
        """
        alpha = getattr(self.policy, "drift_alpha", 0.2)
        self._drift_ewma += alpha * (drift_m - self._drift_ewma)

    def iteration_policy(self, feature_count: int) -> int:
        """Adapter for the estimator's ``iteration_policy`` hook: applies
        table lookup + saturating-counter smoothing."""
        proposal = self.table.lookup(feature_count)
        return self._counter.update(proposal)

    def decide(
        self, feature_count: int, degrade: int = 0
    ) -> tuple[int, HardwareConfig, bool]:
        """Pre-optimization decision for one window.

        Returns ``(applied_iterations, gated_config, reconfigured)``.
        ``degrade`` drops that many NLS iterations off the applied count
        (floored at 1) — the serving tier's backpressure knob. The
        saturating counter is always fed the *undegraded* proposal, so a
        transient overload does not pollute the hysteresis state.

        With a learned ``policy`` attached, the proposal comes from the
        policy's contextual iteration head (feature count + this
        session's drift EWMA) and the counter is bypassed: the policy's
        continuous heads do their own smoothing, and feeding its output
        through the counter would re-introduce the very lag the learned
        path exists to remove.
        """
        if self.policy is not None:
            applied = self.policy.iteration_cap(feature_count, self._drift_ewma)
        else:
            proposal = self.table.lookup(feature_count)
            applied = self._counter.update(proposal)
        if degrade > 0:
            applied = max(1, applied - degrade)
        config = self.reconfig.lookup(applied)
        reconfigured = config != self._active
        self._active = config
        return applied, config, reconfigured

    def process_window(self, stats: WindowStats) -> WindowDecision:
        """Full per-window decision + energy accounting."""
        proposal = self.table.lookup(stats.num_features)
        applied, config, reconfigured = self.decide(stats.num_features)

        seconds = window_latency_seconds(stats, config, applied, self.platform)
        power = self.reconfig.gated_power(applied)
        energy = seconds * power

        static_config = self.reconfig.static_config
        static_seconds = window_latency_seconds(
            stats, static_config, MAX_ITERATIONS, self.platform
        )
        static_energy = static_seconds * self.power_model.power(static_config)

        decision = WindowDecision(
            feature_count=stats.num_features,
            proposed_iterations=proposal,
            applied_iterations=applied,
            config=config,
            reconfigured=reconfigured,
            energy_j=energy,
            static_energy_j=static_energy,
        )
        self.decisions.append(decision)
        return decision

    @property
    def total_energy_j(self) -> float:
        return sum(d.energy_j for d in self.decisions)

    @property
    def total_static_energy_j(self) -> float:
        return sum(d.static_energy_j for d in self.decisions)

    @property
    def energy_saving(self) -> float:
        """Fractional energy saved vs the static design (Sec. 7.6)."""
        static = self.total_static_energy_j
        return 1.0 - self.total_energy_j / static if static > 0 else 0.0

    @property
    def num_reconfigurations(self) -> int:
        return sum(1 for d in self.decisions if d.reconfigured)


@dataclass(frozen=True)
class ReplayResult:
    """The serializable outcome of replaying a run through the controller.

    This is the controller's stage-level product: everything the Sec. 7.6
    experiments read — per-window decisions, the per-Iter gated power of
    the design's reconfiguration table, and the derived energy totals —
    without holding on to the live controller (whose table of
    :class:`~repro.hw.config.HardwareConfig` solves is rebuilt offline).
    """

    decisions: tuple[WindowDecision, ...]
    gated_power_by_iter: dict[int, float]

    def gated_power(self, iterations: int) -> float:
        capped = max(1, min(iterations, max(self.gated_power_by_iter)))
        return self.gated_power_by_iter[capped]

    @property
    def total_energy_j(self) -> float:
        return sum(d.energy_j for d in self.decisions)

    @property
    def total_static_energy_j(self) -> float:
        return sum(d.static_energy_j for d in self.decisions)

    @property
    def energy_saving(self) -> float:
        """Fractional energy saved vs the static design (Sec. 7.6)."""
        static = self.total_static_energy_j
        return 1.0 - self.total_energy_j / static if static > 0 else 0.0

    @property
    def num_reconfigurations(self) -> int:
        return sum(1 for d in self.decisions if d.reconfigured)


def replay_windows(
    stats_list: list[WindowStats],
    table: IterationTable,
    reconfig: ReconfigurationTable,
    platform: FpgaPlatform = ZC706,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
) -> ReplayResult:
    """Replay per-window workload statistics through a fresh controller.

    This is the stage adapter the execution engine (and the examples)
    use instead of hand-rolling the process-every-window loop: a fresh
    controller sees the same feature counts the live run saw, so its
    decisions — and therefore the energy bookkeeping — are identical.
    """
    controller = RuntimeController(
        table=table, reconfig=reconfig, platform=platform, power_model=power_model
    )
    for stats in stats_list:
        controller.process_window(stats)
    gated = {
        iterations: reconfig.gated_power(iterations)
        for iterations in range(1, max(reconfig.powers) + 1)
    }
    return ReplayResult(
        decisions=tuple(controller.decisions), gated_power_by_iter=gated
    )
