"""Offline profiling: the feature-count -> Iter lookup table (Sec. 6.2),
plus the per-stage wall-clock breakdown of the software estimator.

The paper's mechanism: profile datasets of interest offline, measure how
many NLS iterations each feature-count regime needs to sustain the
target accuracy, and memoize the mapping. Fewer tracked features mean
less information per window, so more iterations are required to hold
accuracy (Figs. 11-12); the table is therefore monotone non-increasing
in the feature count, capped at 6.

:class:`StageTimings` mirrors the accelerator's pipeline phases on the
software side: linearize (VJac/IJac evaluation), assemble ("Logics to
Prepare A, b"), solve (D-type Schur + Cholesky + substitutions) and
update (retract + cost re-evaluation). The NLS solver fills one instance
per window; :class:`~repro.slam.estimator.RunResult` aggregates them so
backend speedups are measurable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

MAX_ITERATIONS = 6  # the paper's cap: >6 iterations buys ~no accuracy


@dataclass
class StageTimings:
    """Wall-clock seconds spent in each estimator pipeline stage.

    Since the unified observability layer (``repro.obs``), this is a
    thin *view* over the spans the NLS solver records — the solver no
    longer does bespoke stage arithmetic; :meth:`from_trace` sums the
    per-stage spans back into this shape so ``RunResult.timing_summary``
    and the engine codecs keep their exact contract.

    Attributes:
        linearize_s: residual/Jacobian evaluation (VJac + IJac work).
        assemble_s: scatter-accumulation of the arrow system blocks.
        solve_s: Schur elimination, Cholesky and back-substitution.
        update_s: state retraction and cost (re-)evaluation.
        schur_s / chol_s / backsub_s: the SolverPlan's phase split of
            ``solve_s`` — *child* measurements already contained in
            ``solve_s``, so they are excluded from :attr:`total_s`.
    """

    linearize_s: float = 0.0
    assemble_s: float = 0.0
    solve_s: float = 0.0
    update_s: float = 0.0
    schur_s: float = 0.0
    chol_s: float = 0.0
    backsub_s: float = 0.0

    STAGES = ("linearize", "assemble", "solve", "update")
    # Sub-phases of the solve stage (SolverPlan split): summed into their
    # own fields, never into total_s — solve_s already contains them.
    SOLVE_SUBSTAGES = ("schur", "chol", "backsub")

    @classmethod
    def from_spans(cls, spans) -> "StageTimings":
        """Sum stage-named spans (``linearize``/``assemble``/``solve``/
        ``update``, plus the ``schur``/``chol``/``backsub`` solve
        sub-phases) into the aggregate view. Spans with other names are
        ignored, so a trace holding parent ``window`` spans folds down
        without double counting."""
        timings = cls()
        for span in spans:
            if span.name in cls.STAGES or span.name in cls.SOLVE_SUBSTAGES:
                attr = f"{span.name}_s"
                setattr(timings, attr, getattr(timings, attr) + span.duration_s)
        return timings

    @classmethod
    def from_trace(cls, trace) -> "StageTimings":
        """The :meth:`from_spans` view over a whole ``repro.obs`` trace."""
        return cls.from_spans(trace.spans)

    @property
    def total_s(self) -> float:
        return self.linearize_s + self.assemble_s + self.solve_s + self.update_s

    def accumulate(self, other: "StageTimings") -> None:
        """Fold another breakdown into this one (in place)."""
        self.linearize_s += other.linearize_s
        self.assemble_s += other.assemble_s
        self.solve_s += other.solve_s
        self.update_s += other.update_s
        self.schur_s += other.schur_s
        self.chol_s += other.chol_s
        self.backsub_s += other.backsub_s

    def as_dict(self) -> dict[str, float]:
        return {
            "linearize_s": self.linearize_s,
            "assemble_s": self.assemble_s,
            "solve_s": self.solve_s,
            "update_s": self.update_s,
            "schur_s": self.schur_s,
            "chol_s": self.chol_s,
            "backsub_s": self.backsub_s,
            "total_s": self.total_s,
        }


@dataclass(frozen=True)
class IterationTable:
    """Feature-count thresholds -> iteration counts.

    ``thresholds`` are ascending feature counts; a window whose feature
    count is below ``thresholds[i]`` (and >= the previous threshold)
    uses ``iterations[i]``; counts >= the last threshold use
    ``iterations[-1]``.
    """

    thresholds: tuple[int, ...] = (25, 45, 70, 110, 180)
    iterations: tuple[int, ...] = (6, 5, 4, 3, 2, 2)

    def __post_init__(self) -> None:
        if len(self.iterations) != len(self.thresholds) + 1:
            raise ConfigurationError("need len(iterations) == len(thresholds) + 1")
        if list(self.thresholds) != sorted(set(self.thresholds)):
            raise ConfigurationError("thresholds must be strictly ascending")
        if any(not 1 <= it <= MAX_ITERATIONS for it in self.iterations):
            raise ConfigurationError(f"iterations must lie in [1, {MAX_ITERATIONS}]")
        if any(b > a for a, b in zip(self.iterations, self.iterations[1:])):
            raise ConfigurationError(
                "iterations must be non-increasing in the feature count"
            )

    def lookup(self, feature_count: int) -> int:
        """Iterations needed for a window with this many features."""
        if feature_count < 0:
            raise ConfigurationError("feature_count must be non-negative")
        index = int(np.searchsorted(np.asarray(self.thresholds), feature_count, side="right"))
        return self.iterations[index]

    @property
    def distinct_iterations(self) -> list[int]:
        return sorted(set(self.iterations))


def perturb_window_problem(problem, rng: np.random.Generator, scale: float = 1.0):
    """Reset a window problem to front-end-grade initialization quality.

    The live estimator warm-starts every window from the previous
    window's solution and converges in one or two LM steps, which hides
    the iteration demand the run-time knob must provision for: the
    demand appears exactly when the linearization point is front-end
    grade (dead-reckoned poses, freshly triangulated depths) -- after
    tracking loss, aggressive motion, or relocalization. The profiler
    therefore perturbs each probed window back to that quality: pose
    error grows along the window like dead-reckoning drift, and inverse
    depths get triangulation-grade lognormal noise.
    """
    from repro.slam.problem import MAX_INV_DEPTH, MIN_INV_DEPTH, WindowProblem

    states = dict(problem.states)
    for j, fid in enumerate(sorted(states)):
        if j < 1:
            continue  # the oldest frame is pinned by the prior
        delta = np.zeros(15)
        delta[0:3] = rng.normal(scale=scale * 0.05 * j, size=3)
        delta[3:6] = rng.normal(scale=scale * 0.008 * j, size=3)
        delta[6:9] = rng.normal(scale=scale * 0.05, size=3)
        states[fid] = states[fid].retract(delta)
    depths = {
        fid: float(
            np.clip(
                value * np.exp(rng.normal(scale=scale * 0.3)),
                MIN_INV_DEPTH,
                MAX_INV_DEPTH,
            )
        )
        for fid, value in problem.inv_depths.items()
    }
    return WindowProblem(
        problem.camera,
        states,
        depths,
        problem.visual_factors,
        problem.imu_factors,
        problem.priors,
        huber_delta=problem.huber_delta,
        backend=problem.backend,
    )


def profile_accuracy_vs_iterations(
    sequence,
    iteration_caps: tuple[int, ...] = (1, 2, 3, 4, 6),
    window_size: int = 8,
    max_keyframes: int | None = None,
    probe_stride: int = 3,
    seed: int = 0,
    perturb_scale: float = 1.0,
) -> dict[int, list[tuple[int, float]]]:
    """Measure per-window convergence against the iteration cap.

    Runs the estimator once, captures every ``probe_stride``-th window
    problem, resets each to front-end initialization quality
    (:func:`perturb_window_problem`), and optimizes independently at
    each cap. Returns cap -> [(feature_count, window_relative_error),
    ...] -- the offline profiling data of Sec. 6.2.

    ``perturb_scale`` dials the reset: 1.0 is front-end grade (the
    table-building default -- provision for tracking loss), 0.0 keeps
    the warm-started linearization point the live estimator actually
    sees, which is what a serving-time policy must price.
    """
    from repro.slam.estimator import EstimatorConfig, SlidingWindowEstimator
    from repro.slam.nls import LMConfig, levenberg_marquardt

    probes = []

    def probe(problem, frame_id):
        if frame_id % probe_stride == 0 and frame_id > window_size:
            probes.append((problem, frame_id))

    estimator = SlidingWindowEstimator(
        EstimatorConfig(window_size=window_size, window_probe=probe)
    )
    estimator.run(sequence, max_keyframes=max_keyframes)

    rng = np.random.default_rng(seed)
    profile: dict[int, list[tuple[int, float]]] = {cap: [] for cap in iteration_caps}
    for problem, frame_id in probes:
        perturbed = perturb_window_problem(problem, rng, scale=perturb_scale)
        truth = sequence.true_states[frame_id]
        oldest = min(perturbed.states)
        d_true = truth.position - sequence.true_states[oldest].position
        for cap in iteration_caps:
            result = levenberg_marquardt(perturbed, LMConfig(max_iterations=cap))
            d_est = (
                result.problem.states[frame_id].position
                - result.problem.states[oldest].position
            )
            error = float(np.linalg.norm(d_est - d_true))
            profile[cap].append((len(problem.inv_depths), error))
    return profile


def build_iteration_table(
    profile: dict[int, list[tuple[int, float]]],
    accuracy_target: float | None = None,
    bucket_edges: tuple[int, ...] = (40, 80, 130, 190, 260),
) -> IterationTable:
    """Construct the lookup table from profiling data.

    For each feature-count bucket, picks the smallest iteration cap
    whose mean relative error stays within ``accuracy_target`` (default:
    the error the maximum cap achieves, plus 10% slack — "sustain the
    accuracy of the full-effort configuration").
    """
    if not profile:
        raise ConfigurationError("profile must not be empty")
    caps = sorted(profile)
    max_cap = caps[-1]

    edges = (0,) + tuple(bucket_edges) + (10**9,)
    iterations: list[int] = []
    for low, high in zip(edges[:-1], edges[1:]):
        reference = _bucket_error(profile[max_cap], low, high)
        target = (
            accuracy_target
            if accuracy_target is not None
            else (reference * 1.10 if reference is not None else None)
        )
        chosen = max_cap
        if target is not None:
            for cap in caps:
                error = _bucket_error(profile[cap], low, high)
                if error is not None and error <= target:
                    chosen = cap
                    break
        iterations.append(min(chosen, MAX_ITERATIONS))

    # Enforce monotonicity (more features never needs more iterations):
    # sweep from the sparse end and clamp.
    for i in range(1, len(iterations)):
        iterations[i] = min(iterations[i], iterations[i - 1])
    return IterationTable(thresholds=tuple(bucket_edges), iterations=tuple(iterations))


def _bucket_error(
    samples: list[tuple[int, float]], low: int, high: int
) -> float | None:
    errors = [err for count, err in samples if low <= count < high]
    return float(np.mean(errors)) if errors else None
