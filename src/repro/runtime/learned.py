"""A learned iteration policy (the paper's future-work extension).

Sec. 6.2 closes: "We leave it to future work to explore other mechanisms
to tune the knob (e.g., training a machine learning model)." This module
implements that extension: a ridge-regression model over simple window
features (feature count and its reciprocal) trained on the same offline
profiling data the lookup table uses. The model predicts the iteration
count needed to reach the accuracy target, produces a *continuous*
estimate (then conservatively ceiled), and generalizes between the
lookup table's bucket edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.profiler import MAX_ITERATIONS


def _features(count: float) -> np.ndarray:
    """Feature map for the regressor: [1, n, 1/n, log n]."""
    n = max(float(count), 1.0)
    return np.array([1.0, n / 100.0, 10.0 / n, np.log(n)])


@dataclass(frozen=True)
class LearnedIterationPolicy:
    """Ridge regression from window features to required iterations.

    ``fallback_windows`` counts the training windows where *no* profiled
    cap met the accuracy target — windows whose label was clamped to
    ``MAX_ITERATIONS`` instead of silently mislabeled (see
    :func:`train_iteration_policy`'s ``on_unreachable``).
    """

    weights: np.ndarray
    accuracy_target: float
    fallback_windows: int = 0

    def predict(self, feature_count: int) -> int:
        """Conservatively ceiled, clamped prediction."""
        raw = float(self.weights @ _features(feature_count))
        return int(np.clip(np.ceil(raw), 1, MAX_ITERATIONS))

    def __call__(self, feature_count: int) -> int:
        return self.predict(feature_count)


def train_iteration_policy(
    profile: dict[int, list[tuple[int, float]]],
    accuracy_target: float | None = None,
    ridge: float = 1e-3,
    on_unreachable: str = "clamp",
) -> LearnedIterationPolicy:
    """Fit the policy from profiling data.

    Training pairs: for every profiled window, the label is the smallest
    iteration cap whose error meets the accuracy target (default: 110%
    of the error the maximum cap achieves on that window).

    A window where *no* profiled cap meets the target has no honest
    label. ``on_unreachable`` makes the fallback explicit:

    * ``"clamp"`` (default) — label the window ``MAX_ITERATIONS`` (ask
      for everything the hardware has) and count it in the returned
      policy's ``fallback_windows``;
    * ``"raise"`` — refuse to train, with a typed
      :class:`~repro.errors.ConfigurationError` naming how many windows
      were unreachable (for callers that treat an unreachable target as
      a profiling bug).

    Args:
        profile: cap -> [(feature_count, error), ...] as produced by
            :func:`repro.runtime.profiler.profile_accuracy_vs_iterations`.
        accuracy_target: absolute error target [m]; None derives a
            per-window relative target.
        ridge: L2 regularization strength.
        on_unreachable: ``"clamp"`` or ``"raise"`` (see above).
    """
    if not profile:
        raise ConfigurationError("profile must not be empty")
    if on_unreachable not in ("clamp", "raise"):
        raise ConfigurationError(
            f"on_unreachable must be 'clamp' or 'raise', got {on_unreachable!r}"
        )
    caps = sorted(profile)
    max_cap = caps[-1]
    num_windows = len(profile[max_cap])
    if any(len(samples) != num_windows for samples in profile.values()):
        raise ConfigurationError("profile caps cover different window sets")

    rows, labels = [], []
    fallback_windows = 0
    for w in range(num_windows):
        count, reference_error = profile[max_cap][w]
        target = (
            accuracy_target if accuracy_target is not None else reference_error * 1.10
        )
        needed = None
        for cap in caps:
            if profile[cap][w][1] <= target:
                needed = cap
                break
        if needed is None:
            fallback_windows += 1
            needed = MAX_ITERATIONS
        rows.append(_features(count))
        labels.append(float(needed))
    if fallback_windows and on_unreachable == "raise":
        raise ConfigurationError(
            f"{fallback_windows} of {num_windows} profiled windows meet the "
            f"accuracy target at no cap in {tuple(caps)}; loosen the target "
            "or profile higher caps"
        )
    design = np.vstack(rows)
    target_vec = np.asarray(labels)
    gram = design.T @ design + ridge * np.eye(design.shape[1])
    weights = np.linalg.solve(gram, design.T @ target_vec)
    return LearnedIterationPolicy(
        weights=weights,
        accuracy_target=accuracy_target if accuracy_target is not None else -1.0,
        fallback_windows=fallback_windows,
    )
