"""The run-time system (Sec. 6): dynamic accelerator re-optimization.

The static design is provisioned for the worst case (Iter capped at 6).
At run time, the sensing front-end's feature count is mapped to the
iteration count actually needed (an offline-profiled lookup table), a
2-bit saturating counter smooths the decision, and a memoized table of
per-Iter hardware configurations (each solved offline via Equ. 18)
selects how much of the fabric to clock-gate. The host passes exactly
three numbers to the FPGA per window, so the mechanism has effectively
zero run-time overhead.
"""

from repro.runtime.profiler import IterationTable, build_iteration_table, profile_accuracy_vs_iterations
from repro.runtime.counter import TwoBitSaturatingCounter
from repro.runtime.reconfig import ReconfigurationTable, build_reconfiguration_table
from repro.runtime.controller import (
    ReplayResult,
    RuntimeController,
    WindowDecision,
    replay_windows,
)
from repro.runtime.learned import LearnedIterationPolicy, train_iteration_policy

__all__ = [
    "IterationTable",
    "build_iteration_table",
    "profile_accuracy_vs_iterations",
    "TwoBitSaturatingCounter",
    "ReconfigurationTable",
    "build_reconfiguration_table",
    "ReplayResult",
    "RuntimeController",
    "WindowDecision",
    "replay_windows",
    "LearnedIterationPolicy",
    "train_iteration_policy",
]
