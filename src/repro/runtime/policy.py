"""Learned runtime control: contextual-bandit iteration caps + admission.

The paper's Sec. 6.2 run-time optimizer is a 2-bit saturating counter
over an offline lookup table, and the serving tier's admission control
is three fixed queue-depth regimes; both explicitly leave "training a
machine learning model" to future work. This module is that extension,
grown from the ridge-regression scaffold in
:mod:`repro.runtime.learned`:

* an **iteration head** — one ridge-regression *excess-error* model
  per profiled iteration cap (error beyond what the maximum cap
  achieves on the same window), over window features (tracked-feature
  count transforms plus the session's drift-estimate EWMA). At serve
  time the controller picks the cap minimizing ``predicted_excess +
  energy_weight * cap`` — the contextual bandit's *direct method*:
  model each arm's cost, act greedily. Because the LM solver
  early-stops on convergence while the accelerator charges
  latency/energy by the *cap*, a cap sized to the predicted need cuts
  energy with identical numerics wherever the cap still covers the
  need, and cuts drift where the fixed table under-provisions;
* an **admission head** — one linear score per accept/degrade/shed
  action over (queue fraction, latency-SLO headroom, drift EWMA),
  trained by cloning the fixed-regime teacher's decisions across the
  seeded load profiles. The scheduler takes the argmax inside the
  ``[0, max_queue)`` band; the hard queue bound stays rule-based.

Everything is frozen into a :class:`ControllerPolicy` of pure-Python
``tuple`` weights: pickling is exact (the process execution backend
ships controllers across the fork boundary), JSON round-trips are exact
(``repr``-based float serialization), and a sha256 digest
content-addresses the artifact (``POLICY.json``, schema
``repro.policy/v1``, validated by ``python -m repro.obs validate``).
Training (:func:`train_controller_policy`) is deterministic — seeded
profiling data, fixed iteration order, a pure-Python ridge solve with
no BLAS in the loop — so one :class:`PolicyTrainSpec` always freezes
the same weights.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.runtime.profiler import MAX_ITERATIONS

POLICY_SCHEMA = "repro.policy/v1"

#: Admission actions in head order; argmax index maps to this tuple.
ADMISSION_ACTIONS = ("accept", "degrade", "shed")


def iteration_features(feature_count: float, drift_m: float) -> tuple[float, ...]:
    """Feature map of the iteration head: the learned scaffold's
    ``[1, n/100, 10/n, log n]`` plus the drift-estimate EWMA (clipped —
    a diverged session must not extrapolate the linear model)."""
    n = max(float(feature_count), 1.0)
    return (1.0, n / 100.0, 10.0 / n, math.log(n), min(max(drift_m, 0.0), 1.0))


def admission_features(
    queue_frac: float, band_frac: float, headroom: float, drift_m: float
) -> tuple[float, ...]:
    """Feature map of the admission head: queue depth as a fraction of
    the hard bound (plus its square — the teacher's DEGRADE regime is a
    *band* in queue depth, and one-vs-all linear scores need the
    quadratic to let a middle class peak mid-range), the depth's margin
    over the backpressure threshold, latency-SLO headroom (1 = idle,
    <= 0 = the recent service-time EWMA already eats the whole
    deadline), drift EWMA.

    ``band_frac`` is the scheduler's backpressure threshold as a
    fraction of the hard bound — where the teacher's DEGRADE band
    *starts*. Profiles place the band at different fractions (overload
    runs a tight queue with the band at 0.5, steady a deep one at
    0.19); without the margin feature a clone pooled across profiles
    smears the boundary and degrades windows the teacher accepts."""
    q = min(max(queue_frac, 0.0), 1.0)
    margin = min(max(q - band_frac, -1.0), 1.0)
    return (
        1.0,
        q,
        q * q,
        margin,
        min(max(headroom, -1.0), 1.0),
        min(max(drift_m, 0.0), 1.0),
    )


def _dot(weights: tuple[float, ...], features: tuple[float, ...]) -> float:
    total = 0.0
    for w, x in zip(weights, features):
        total += w * x
    return total


def ridge_fit(
    rows: list[tuple[float, ...]],
    targets: list[float],
    ridge: float,
    weights: list[float] | None = None,
) -> tuple[float, ...]:
    """Pure-Python (weighted) ridge regression (normal equations +
    Gaussian elimination with partial pivoting).

    Deliberately BLAS-free: ``np.linalg.solve`` routes through whatever
    LAPACK the host ships, and the frozen policy artifact must
    reproduce bit-identically wherever the training data does.
    """
    if not rows:
        raise ConfigurationError("ridge_fit needs at least one sample")
    if weights is not None and len(weights) != len(rows):
        raise ConfigurationError("one weight per sample required")
    dim = len(rows[0])
    gram = [[ridge if i == j else 0.0 for j in range(dim)] for i in range(dim)]
    rhs = [0.0] * dim
    for k, (x, y) in enumerate(zip(rows, targets)):
        w = 1.0 if weights is None else weights[k]
        for i in range(dim):
            for j in range(dim):
                gram[i][j] += w * x[i] * x[j]
            rhs[i] += w * x[i] * y
    # Gaussian elimination with partial pivoting on [gram | rhs].
    for col in range(dim):
        pivot = max(range(col, dim), key=lambda r: abs(gram[r][col]))
        if abs(gram[pivot][col]) < 1e-12:
            raise ConfigurationError("ridge system is singular; raise ridge")
        if pivot != col:
            gram[col], gram[pivot] = gram[pivot], gram[col]
            rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
        for row in range(col + 1, dim):
            factor = gram[row][col] / gram[col][col]
            if factor == 0.0:
                continue
            for j in range(col, dim):
                gram[row][j] -= factor * gram[col][j]
            rhs[row] -= factor * rhs[col]
    weights = [0.0] * dim
    for row in range(dim - 1, -1, -1):
        acc = rhs[row]
        for j in range(row + 1, dim):
            acc -= gram[row][j] * weights[j]
        weights[row] = acc / gram[row][row]
    return tuple(weights)


@dataclass(frozen=True)
class ControllerPolicy:
    """A frozen learned controller: per-cap error heads + admission heads.

    Frozen (but not ``slots=True`` — frozen+slots dataclasses cannot be
    pickled on Python 3.10, and the policy rides inside pickled
    controllers across the serve tier's process boundary, mirroring
    :class:`~repro.runtime.controller.WindowDecision`). All weights are
    plain ``tuple`` of ``float``: decisions are pure functions of
    (features, weights) with no hidden state, which is what makes the
    serve metrics byte-identical across repeats, execution backends,
    and shard counts given the same artifact.
    """

    name: str
    caps: tuple[int, ...]
    error_heads: tuple[tuple[float, ...], ...]  # per cap, iteration features
    admission_heads: tuple[tuple[float, ...], ...]  # per ADMISSION_ACTIONS
    energy_weight: float  # [m/iteration] price of one extra NLS iteration
    drift_alpha: float = 0.2  # drift-estimate EWMA smoothing
    trained_on: tuple[str, ...] = ()
    schema: str = POLICY_SCHEMA

    def __post_init__(self) -> None:
        if not self.caps:
            raise ConfigurationError("a policy needs at least one iteration cap")
        if list(self.caps) != sorted(set(self.caps)):
            raise ConfigurationError("caps must be strictly increasing")
        if any(cap < 1 or cap > MAX_ITERATIONS for cap in self.caps):
            raise ConfigurationError(
                f"caps must lie in [1, {MAX_ITERATIONS}], got {self.caps}"
            )
        if len(self.error_heads) != len(self.caps):
            raise ConfigurationError(
                f"{len(self.caps)} caps need {len(self.caps)} error heads, "
                f"got {len(self.error_heads)}"
            )
        if len(self.admission_heads) != len(ADMISSION_ACTIONS):
            raise ConfigurationError(
                f"admission needs one head per action {ADMISSION_ACTIONS}, "
                f"got {len(self.admission_heads)}"
            )
        error_width = len(iteration_features(1, 0.0))
        if any(len(head) != error_width for head in self.error_heads):
            raise ConfigurationError(
                f"error heads must match the {error_width}-wide iteration "
                "feature map (stale artifact from an older feature schema?)"
            )
        admission_width = len(admission_features(0.0, 0.0, 0.0, 0.0))
        if any(len(head) != admission_width for head in self.admission_heads):
            raise ConfigurationError(
                f"admission heads must match the {admission_width}-wide "
                "admission feature map (stale artifact from an older "
                "feature schema?)"
            )
        if self.energy_weight < 0:
            raise ConfigurationError("energy_weight must be >= 0")
        if not 0.0 < self.drift_alpha <= 1.0:
            raise ConfigurationError("drift_alpha must lie in (0, 1]")

    # ------------------------------------------------------------------
    # Decisions (pure functions of features and frozen weights)
    # ------------------------------------------------------------------

    def iteration_cap(self, feature_count: int, drift_m: float = 0.0) -> int:
        """The cap minimizing predicted excess error + energy price;
        ties break toward the smaller cap (deterministic, and cheaper)."""
        x = iteration_features(feature_count, drift_m)
        best_cap, best_cost = self.caps[0], math.inf
        for cap, head in zip(self.caps, self.error_heads):
            cost = max(_dot(head, x), 0.0) + self.energy_weight * cap
            if cost < best_cost:
                best_cap, best_cost = cap, cost
        return best_cap

    def admission(
        self, queue_frac: float, band_frac: float, headroom: float,
        drift_m: float,
    ) -> str:
        """The argmax admission action; ties break toward acceptance."""
        x = admission_features(queue_frac, band_frac, headroom, drift_m)
        best_action, best_score = ADMISSION_ACTIONS[0], -math.inf
        for action, head in zip(ADMISSION_ACTIONS, self.admission_heads):
            score = _dot(head, x)
            if score > best_score:
                best_action, best_score = action, score
        return best_action

    # ------------------------------------------------------------------
    # Artifact round-trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        body = {
            "schema": self.schema,
            "name": self.name,
            "caps": list(self.caps),
            "error_heads": [list(head) for head in self.error_heads],
            "admission_heads": [list(head) for head in self.admission_heads],
            "admission_actions": list(ADMISSION_ACTIONS),
            "energy_weight": self.energy_weight,
            "drift_alpha": self.drift_alpha,
            "trained_on": list(self.trained_on),
        }
        body["digest"] = _digest(body)
        return body

    @classmethod
    def from_dict(cls, data: dict) -> "ControllerPolicy":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"policy artifact must be a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema", "")
        if not str(schema).startswith("repro.policy/"):
            raise ConfigurationError(
                f"not a policy artifact (schema {schema!r})"
            )
        recorded = data.get("digest")
        if recorded is not None:
            expected = _digest({k: v for k, v in data.items() if k != "digest"})
            if recorded != expected:
                raise ConfigurationError(
                    "policy artifact digest mismatch: content was edited "
                    f"after freezing (recorded {recorded[:12]}..., "
                    f"recomputed {expected[:12]}...)"
                )
        try:
            return cls(
                name=str(data["name"]),
                caps=tuple(int(c) for c in data["caps"]),
                error_heads=tuple(
                    tuple(float(w) for w in head) for head in data["error_heads"]
                ),
                admission_heads=tuple(
                    tuple(float(w) for w in head)
                    for head in data["admission_heads"]
                ),
                energy_weight=float(data["energy_weight"]),
                drift_alpha=float(data["drift_alpha"]),
                trained_on=tuple(str(p) for p in data.get("trained_on", ())),
                schema=str(schema),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(f"malformed policy artifact: {error}")

    @property
    def digest(self) -> str:
        """Content digest of the frozen weights (sha256 hex)."""
        body = self.to_dict()
        return body["digest"]

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ControllerPolicy":
        path = Path(path)
        if not path.is_file():
            raise ConfigurationError(f"no policy artifact at {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"{path} is not valid JSON: {error}")
        return cls.from_dict(data)


def _digest(body: dict) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# Training
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyTrainSpec:
    """Everything that determines a trained policy, content-addressably.

    The spec is the engine key of the ``POLICY`` stage: profiles name
    seeded load shapes, so (spec -> weights) is a pure function and the
    artifact cache can serve a frozen policy to every shard of a fleet.
    """

    name: str = "default"
    profiles: tuple[str, ...] = (
        "smoke",
        "steady",
        "overload",
        "scenario-tunnel",
        "scenario-loop-closure",
        "scenario-aggressive",
        "scenario-highway",
    )
    caps: tuple[int, ...] = (1, 2, 3, 4, 6)
    probe_stride: int = 3
    #: Perturbation scales pooled into the error-head training set. 0.0
    #: probes the warm-started linearization point live serving actually
    #: sees (where high caps are pure waste); 1.0 resets windows to
    #: front-end grade (what the run-time knob must provision for after
    #: tracking loss). Training on both teaches the drift feature to
    #: separate the regimes.
    probe_scales: tuple[float, ...] = (0.0, 1.0)
    seed: int = 0
    ridge: float = 1e-3
    admission_ridge: float = 1e-3
    #: Tempering exponent on the inverse-frequency class weights of the
    #: admission clone: 0 = raw frequencies (over-accepts), 1 = fully
    #: balanced (over-degrades vs the teacher).
    admission_balance: float = 0.6
    energy_weight: float = 0.03  # [m/iteration]
    drift_alpha: float = 0.2

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ConfigurationError("a train spec needs at least one profile")
        if not self.caps or list(self.caps) != sorted(set(self.caps)):
            raise ConfigurationError("caps must be strictly increasing")
        if self.probe_stride < 1:
            raise ConfigurationError("probe_stride must be >= 1")
        if not self.probe_scales or any(s < 0 for s in self.probe_scales):
            raise ConfigurationError("probe_scales must be non-negative")
        if self.ridge <= 0 or self.admission_ridge <= 0:
            raise ConfigurationError("ridge strengths must be positive")
        if self.admission_balance < 0:
            raise ConfigurationError("admission_balance must be >= 0")


#: Registered specs, resolvable by name through a profile's ``policy``
#: field (anything not ending in ``.json`` resolves here).
POLICY_SPECS: dict[str, PolicyTrainSpec] = {
    "default": PolicyTrainSpec(),
}


def resolve_policy_spec(name: str) -> PolicyTrainSpec:
    """Look up a registered train spec, with did-you-mean on typos."""
    if name not in POLICY_SPECS:
        import difflib

        close = difflib.get_close_matches(name, POLICY_SPECS, n=3, cutoff=0.4)
        hint = (
            f"; did you mean {' or '.join(repr(c) for c in close)}?"
            if close
            else f"; choose from {sorted(POLICY_SPECS)} or a *.json artifact path"
        )
        raise ConfigurationError(f"unknown policy spec {name!r}{hint}")
    return POLICY_SPECS[name]


def fit_error_heads(
    samples: dict[int, list[tuple[tuple[float, ...], float]]],
    caps: tuple[int, ...],
    ridge: float,
) -> tuple[tuple[float, ...], ...]:
    """Per-cap ridge fits of (iteration features -> *excess* error [m]).

    Targets are each window's error at the cap **minus** its error at
    the maximum profiled cap — the accuracy actually at stake in the
    cap choice. The irreducible part is uninformative for the decision
    (every arm pays it) and would otherwise dominate the fit: absolute
    targets teach every head the drift level and almost nothing about
    which cap suffices.
    """
    heads = []
    for cap in caps:
        rows = [x for x, _ in samples[cap]]
        targets = [y for _, y in samples[cap]]
        heads.append(ridge_fit(rows, targets, ridge))
    return tuple(heads)


def fit_admission_heads(
    samples: list[dict], ridge: float, balance: float = 1.0
) -> tuple[tuple[float, ...], ...]:
    """One-vs-all ridge fits cloning logged admission decisions.

    Each sample is a decision-log row: ``queue_frac``, ``headroom``,
    ``drift`` features plus the teacher's ``action``. Samples are
    class-balanced (inverse-frequency weights, tempered by the
    ``balance`` exponent): uncongested profiles log thousands of
    ACCEPTs, and an unweighted fit (``balance=0``) would shrink the
    rare DEGRADE/SHED heads until the clone over-accepts under
    overload — serving more windows at full quality than the teacher
    and burning the energy budget the gate protects. Full balancing
    (``balance=1``) overshoots the other way, degrading windows the
    teacher accepted; the tempered exponent interpolates. An action
    absent from the log keeps a near-zero head and can never win the
    argmax — exactly right for a fleet that never saw pressure.
    """
    if not samples:
        raise ConfigurationError("admission training needs logged decisions")
    rows = [
        admission_features(
            s["queue_frac"], s["band_frac"], s["headroom"], s["drift"]
        )
        for s in samples
    ]
    counts = {action: 0 for action in ADMISSION_ACTIONS}
    for s in samples:
        if s["action"] in counts:
            counts[s["action"]] += 1
    weights = [
        (len(samples) / (len(ADMISSION_ACTIONS) * counts[s["action"]]))
        ** balance
        if counts.get(s["action"])
        else 1.0
        for s in samples
    ]
    heads = []
    for action in ADMISSION_ACTIONS:
        targets = [1.0 if s["action"] == action else 0.0 for s in samples]
        heads.append(ridge_fit(rows, targets, ridge, weights=weights))
    return tuple(heads)


def train_controller_policy(
    spec: PolicyTrainSpec, engine=None
) -> ControllerPolicy:
    """Train a :class:`ControllerPolicy` offline against seeded profiles.

    Two independent passes, both deterministic:

    1. **iteration head** — for every distinct sequence behind the
       spec's profiles, run the Sec. 6.2 offline profiler
       (:func:`~repro.runtime.profiler.profile_accuracy_vs_iterations`)
       at the spec's caps and fit one *excess-error* model per cap
       (error beyond the maximum cap's on the same window). The
       profiled window's error at the *maximum* cap doubles as the
       training-time stand-in for the drift-EWMA feature: it is the
       window's irreducible error, which is what the serving-time EWMA
       tracks.
    2. **admission head** — replay every profile through the baseline
       fixed-regime service with a decision log and clone the teacher's
       accept/degrade/shed choices one-vs-all.

    Heavy but cacheable: the ``POLICY`` engine stage keys this function
    by the spec, so fleets, tests, and CI share one frozen artifact.
    """
    if engine is None:
        from repro.engine import get_engine

        engine = get_engine()
    # Imported lazily: repro.serve imports repro.runtime.controller, and
    # this module must stay importable from the controller layer.
    from repro.engine import SEQUENCE
    from repro.engine.keys import artifact_key
    from repro.runtime.profiler import profile_accuracy_vs_iterations
    from repro.serve.loadgen import resolve_profile, session_sequence_config
    from repro.serve.service import LocalizationService

    profiles = [resolve_profile(name) for name in spec.profiles]

    error_samples: dict[int, list[tuple[tuple[float, ...], float]]] = {
        cap: [] for cap in spec.caps
    }
    for profile in profiles:
        configs = {
            artifact_key("policy-seq", "1", session_sequence_config(profile, sid)): (
                session_sequence_config(profile, sid)
            )
            for sid in range(profile.num_sessions)
        }
        for token in sorted(configs):
            sequence = engine.run(SEQUENCE, configs[token])
            for scale in spec.probe_scales:
                profiled = profile_accuracy_vs_iterations(
                    sequence,
                    iteration_caps=spec.caps,
                    window_size=profile.window_size,
                    probe_stride=spec.probe_stride,
                    seed=spec.seed,
                    perturb_scale=scale,
                )
                reference = profiled[max(spec.caps)]
                for cap in spec.caps:
                    for (count, error), (_, ref_error) in zip(
                        profiled[cap], reference
                    ):
                        x = iteration_features(count, ref_error)
                        error_samples[cap].append((x, error - ref_error))
    error_heads = fit_error_heads(error_samples, spec.caps, spec.ridge)

    decision_log: list[dict] = []
    for profile in profiles:
        LocalizationService(
            profile, engine=engine, decision_log=decision_log
        ).run()
    admission_heads = fit_admission_heads(
        decision_log, spec.admission_ridge, balance=spec.admission_balance
    )

    return ControllerPolicy(
        name=spec.name,
        caps=spec.caps,
        error_heads=error_heads,
        admission_heads=admission_heads,
        energy_weight=spec.energy_weight,
        drift_alpha=spec.drift_alpha,
        trained_on=spec.profiles,
    )


def load_policy(source: str, engine=None) -> ControllerPolicy:
    """Resolve a profile's ``policy`` field to a frozen policy.

    ``*.json`` is a frozen artifact path (digest-checked on load);
    anything else names a registered :class:`PolicyTrainSpec`, trained
    through the engine's content-addressed ``POLICY`` stage (cached:
    every shard and repeat gets byte-identical weights).
    """
    if source.endswith(".json"):
        return ControllerPolicy.load(source)
    if os.sep in source:
        raise ConfigurationError(
            f"policy artifact paths must end in .json, got {source!r}"
        )
    spec = resolve_policy_spec(source)
    if engine is None:
        from repro.engine import get_engine

        engine = get_engine()
    from repro.engine import POLICY

    return engine.run(POLICY, spec)
