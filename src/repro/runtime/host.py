"""The host-FPGA interface model (Sec. 6.2's zero-overhead claim).

Each sliding window the host transfers: the visual features from the
sensing front-end (bearing + pixel per observation), the IMU
preintegration summaries, the prior from the previous marginalization —
and, when the run-time system changed its decision, exactly three
configuration bytes (nd, nm, s). This module sizes those transfers over
an AXI-style link and shows the claim quantitatively: the transfer plus
the table lookups are a negligible fraction of the window's compute
time, and the *re-optimization itself costs nothing at run time* because
every decision was memoized offline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError

WORD_BYTES = 4
# Per-item payload sizes (bytes).
FEATURE_BEARING_BYTES = 3 * WORD_BYTES  # anchor ray
OBSERVATION_BYTES = 2 * WORD_BYTES + 2  # pixel + keyframe index
PRIOR_BYTES_PER_STATE = 15 * WORD_BYTES  # rp slice; Hp streamed once per slide
CONFIG_BYTES = 3  # the three numbers of Sec. 6.2


@dataclass(frozen=True)
class HostLink:
    """An AXI-style host-to-fabric link.

    Attributes:
        bandwidth_bytes_per_s: sustained DMA throughput (a modest
            AXI4 HP port on Zynq-7000 sustains ~1.2-1.6 GB/s).
        setup_latency_s: per-transfer setup (descriptor + interrupt).
    """

    bandwidth_bytes_per_s: float = 1.2e9
    setup_latency_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0 or self.setup_latency_s < 0:
            raise ConfigurationError("invalid link parameters")

    def transfer_seconds(self, payload_bytes: float) -> float:
        return self.setup_latency_s + payload_bytes / self.bandwidth_bytes_per_s


def window_payload_bytes(stats: WindowStats, reconfigured: bool = False) -> float:
    """Bytes the host ships to the FPGA for one sliding window."""
    observations = stats.num_observations or int(
        round(stats.num_features * stats.avg_observations)
    )
    prior_states = stats.state_size * max(stats.num_keyframes - 1, 1)
    payload = (
        stats.num_features * FEATURE_BEARING_BYTES
        + observations * OBSERVATION_BYTES
        + prior_states * WORD_BYTES  # rp vector
        + prior_states * prior_states * WORD_BYTES / 2  # Hp upper triangle
    )
    if reconfigured:
        payload += CONFIG_BYTES
    return payload


def interface_overhead_fraction(
    stats: WindowStats,
    compute_seconds: float,
    link: HostLink | None = None,
    reconfigured: bool = False,
) -> float:
    """Transfer time as a fraction of the window's compute time."""
    if compute_seconds <= 0:
        raise ConfigurationError("compute_seconds must be positive")
    link = link or HostLink()
    transfer = link.transfer_seconds(window_payload_bytes(stats, reconfigured))
    return transfer / compute_seconds
