"""Baselines: CPU software, prior accelerators, and HLS comparators.

* :mod:`cpu` — calibrated execution/power models of the paper's two
  software baselines (12-core Intel Comet Lake, quad-core Arm
  Cortex-A57 on Jetson TX1) running the multithreaded, vectorized
  ceres-style implementation.
* :mod:`ceres` — a dense-normal-equations LM solver used as a
  functional reference (the "generic solver" our structured path must
  numerically match).
* :mod:`accelerators` — comparator models of the prior localization
  accelerators of Sec. 7.5 (pi-BA, BAX, Zhang et al., PISCES).
* :mod:`hls` — the hand-written Vivado-HLS Cholesky comparator.
"""

from repro.baselines.cpu import (
    CpuPlatform,
    INTEL_COMET_LAKE,
    ARM_A57,
    cpu_window_time,
    cpu_window_energy,
)
from repro.baselines.ceres import dense_lm_solve
from repro.baselines.accelerators import (
    PriorAccelerator,
    PI_BA,
    BAX,
    ZHANG_RSS17,
    PISCES,
    PRIOR_ACCELERATORS,
)
from repro.baselines.hls import HlsCholesky, HLS_CHOLESKY

__all__ = [
    "CpuPlatform",
    "INTEL_COMET_LAKE",
    "ARM_A57",
    "cpu_window_time",
    "cpu_window_energy",
    "dense_lm_solve",
    "PriorAccelerator",
    "PI_BA",
    "BAX",
    "ZHANG_RSS17",
    "PISCES",
    "PRIOR_ACCELERATORS",
    "HlsCholesky",
    "HLS_CHOLESKY",
]
