"""An MSCKF-style filtering baseline (the Sec. 2.1/2.2 comparison).

The paper targets MAP estimation because, compared to non-linear
filtering, it "is more robust in long-term localization and is more
efficient, as quantified by accuracy per unit of computing time" [72].
To make that comparison runnable we implement the classic Multi-State
Constraint Kalman Filter (Mourikis & Roumeliotis 2007): an error-state
EKF over the current inertial state plus a sliding window of stochastic
pose clones, with visual updates from completed feature tracks after
projecting out the landmark through the left nullspace of its Jacobian.

Error-state conventions match :class:`repro.geometry.navstate.NavState`:
(dp, dtheta, dv, dbg, dba) with dtheta right-multiplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.sequences import Sequence
from repro.errors import ConfigurationError
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3
from repro.geometry.so3 import hat, so3_exp
from repro.imu.preintegration import GRAVITY

_IMU_DIM = 15
_CLONE_DIM = 6


@dataclass(frozen=True)
class MsckfConfig:
    """Filter tuning.

    Attributes:
        max_clones: sliding window of stochastic pose clones.
        pixel_sigma: measurement noise std [px].
        chi2_gate: per-track gating threshold multiplier (on the
            normalized innovation); tracks failing it are discarded.
        min_track_length: tracks shorter than this give no update.
    """

    max_clones: int = 8
    pixel_sigma: float = 1.0
    chi2_gate: float = 12.0
    min_track_length: int = 3

    def __post_init__(self) -> None:
        if self.max_clones < 2:
            raise ConfigurationError("need at least 2 clones")
        if self.pixel_sigma <= 0:
            raise ConfigurationError("pixel_sigma must be positive")


@dataclass
class MsckfResult:
    """Per-keyframe outputs of a filter run."""

    estimated_positions: list[np.ndarray] = field(default_factory=list)
    true_positions: list[np.ndarray] = field(default_factory=list)
    position_errors: list[float] = field(default_factory=list)
    updates_applied: int = 0
    tracks_rejected: int = 0
    # Rough arithmetic-operation count, comparable with the MAP
    # estimator's M-DFG cost (covariance propagation + updates).
    operation_count: float = 0.0


class MsckfFilter:
    """The filtering pipeline over a synthetic sequence."""

    def __init__(self, config: MsckfConfig | None = None) -> None:
        self.config = config or MsckfConfig()

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, sequence: Sequence, max_keyframes: int | None = None) -> MsckfResult:
        camera = sequence.config.camera
        limit = min(
            sequence.num_keyframes,
            max_keyframes if max_keyframes is not None else sequence.num_keyframes,
        )
        result = MsckfResult()

        # Initialize from the (noisy-bootstrap-free) true initial state;
        # like the MAP estimator's bootstrap but with the filter's own
        # initial covariance.
        state0 = sequence.true_states[0]
        position = state0.position.copy()
        rotation = state0.rotation.copy()
        velocity = state0.velocity.copy()
        bias_gyro = np.zeros(3)
        bias_accel = np.zeros(3)
        covariance = np.diag(
            [1e-4] * 3 + [1e-4] * 3 + [1e-4] * 3 + [1e-5] * 3 + [1e-3] * 3
        )

        clones: list[tuple[int, np.ndarray, np.ndarray]] = []  # (frame, p, R)
        # Track store: feature id -> list of (clone frame id, pixel).
        tracks: dict[int, list[tuple[int, np.ndarray]]] = {}

        noise = sequence.config.imu_noise

        for frame_id in range(limit):
            if frame_id > 0:
                segment = sequence.imu_segments[frame_id - 1]
                sg = max(noise.discrete_gyro_sigma(segment.dt), 1e-5)
                sa = max(noise.discrete_accel_sigma(segment.dt), 1e-4)
                swg = max(noise.discrete_gyro_walk_sigma(segment.dt), 1e-8)
                swa = max(noise.discrete_accel_walk_sigma(segment.dt), 1e-7)
                for gyro, accel in zip(segment.gyro, segment.accel):
                    position, rotation, velocity, covariance = self._propagate(
                        position, rotation, velocity, bias_gyro, bias_accel,
                        covariance, len(clones), gyro, accel, segment.dt,
                        sg, sa, swg, swa,
                    )
                    result.operation_count += (
                        2 * (_IMU_DIM + _CLONE_DIM * len(clones)) ** 2 + 500
                    )

            # Clone the current pose.
            clones.append((frame_id, position.copy(), rotation.copy()))
            covariance = self._augment(covariance, len(clones) - 1)
            result.operation_count += covariance.size

            # Register observations; fire updates for tracks that ended.
            current = set(sequence.observations[frame_id].pixels)
            ended = [fid for fid in tracks if fid not in current]
            for fid, pixel in sequence.observations[frame_id].pixels.items():
                tracks.setdefault(fid, []).append((frame_id, pixel))

            updates = []
            for fid in ended:
                track = tracks.pop(fid)
                if len(track) >= self.config.min_track_length:
                    updates.append(track)
            if len(clones) > self.config.max_clones:
                # Tracks still alive but anchored entirely on the oldest
                # clone's era must be used before the clone is dropped.
                oldest = clones[0][0]
                for fid in [f for f, t in tracks.items() if t[0][0] == oldest]:
                    track = tracks.pop(fid)
                    if len(track) >= self.config.min_track_length:
                        updates.append(track)

            for track in updates:
                delta, covariance, ops, accepted = self._update(
                    track, clones, covariance, camera
                )
                result.operation_count += ops
                if not accepted:
                    result.tracks_rejected += 1
                    continue
                result.updates_applied += 1
                position, rotation, velocity, bias_gyro, bias_accel, clones = (
                    self._apply_correction(
                        delta, position, rotation, velocity, bias_gyro,
                        bias_accel, clones,
                    )
                )

            # Marginalize the oldest clone once over budget.
            if len(clones) > self.config.max_clones:
                covariance = self._drop_clone(covariance, 0)
                dropped = clones.pop(0)[0]
                tracks = {
                    fid: [(f, z) for f, z in track if f != dropped]
                    for fid, track in tracks.items()
                }

            truth = sequence.true_states[frame_id]
            result.estimated_positions.append(position.copy())
            result.true_positions.append(truth.position.copy())
            result.position_errors.append(
                float(np.linalg.norm(position - truth.position))
            )
        return result

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(
        self, position, rotation, velocity, bias_gyro, bias_accel, covariance,
        num_clones, gyro, accel, dt, sigma_g, sigma_a, walk_g, walk_a,
    ):
        omega = gyro - bias_gyro
        specific = accel - bias_accel
        accel_world = rotation @ specific + GRAVITY

        new_position = position + velocity * dt + 0.5 * accel_world * dt * dt
        new_velocity = velocity + accel_world * dt
        new_rotation = rotation @ so3_exp(omega * dt)

        # Error-state transition (right-multiplicative dtheta).
        transition = np.eye(_IMU_DIM)
        transition[0:3, 6:9] = dt * np.eye(3)
        transition[0:3, 3:6] = -0.5 * dt * dt * rotation @ hat(specific)
        transition[0:3, 12:15] = -0.5 * dt * dt * rotation
        transition[6:9, 3:6] = -dt * rotation @ hat(specific)
        transition[6:9, 12:15] = -dt * rotation
        transition[3:6, 3:6] = so3_exp(-omega * dt)
        transition[3:6, 9:12] = -dt * np.eye(3)

        noise = np.zeros((_IMU_DIM, _IMU_DIM))
        noise[0:3, 0:3] = (0.5 * dt * dt * sigma_a) ** 2 * np.eye(3)
        noise[3:6, 3:6] = (dt * sigma_g) ** 2 * np.eye(3)
        noise[6:9, 6:9] = (dt * sigma_a) ** 2 * np.eye(3)
        noise[9:12, 9:12] = walk_g**2 * np.eye(3)
        noise[12:15, 12:15] = walk_a**2 * np.eye(3)

        total = _IMU_DIM + _CLONE_DIM * num_clones
        full = np.eye(total)
        full[:_IMU_DIM, :_IMU_DIM] = transition
        covariance = full @ covariance @ full.T
        covariance[:_IMU_DIM, :_IMU_DIM] += noise
        return new_position, new_rotation, new_velocity, covariance

    def _augment(self, covariance: np.ndarray, clone_index: int) -> np.ndarray:
        """Stochastic cloning: append the current pose's error sub-state."""
        old = covariance.shape[0]
        jac = np.zeros((_CLONE_DIM, old))
        jac[0:3, 0:3] = np.eye(3)
        jac[3:6, 3:6] = np.eye(3)
        out = np.zeros((old + _CLONE_DIM, old + _CLONE_DIM))
        out[:old, :old] = covariance
        cross = jac @ covariance
        out[old:, :old] = cross
        out[:old, old:] = cross.T
        out[old:, old:] = jac @ covariance @ jac.T
        return out

    def _drop_clone(self, covariance: np.ndarray, clone_index: int) -> np.ndarray:
        start = _IMU_DIM + _CLONE_DIM * clone_index
        keep = np.r_[0:start, start + _CLONE_DIM : covariance.shape[0]]
        return covariance[np.ix_(keep, keep)]

    # ------------------------------------------------------------------
    # Visual update
    # ------------------------------------------------------------------

    def _triangulate(self, track, clone_poses, camera):
        """Linear multi-view triangulation from the clone estimates."""
        rows_a, rows_b = [], []
        for frame_id, pixel in track:
            pose = clone_poses.get(frame_id)
            if pose is None:
                continue
            p_c, r_c = pose
            bearing = np.array(
                [
                    (pixel[0] - camera.cx) / camera.fx,
                    (pixel[1] - camera.cy) / camera.fy,
                    1.0,
                ]
            )
            direction = r_c @ bearing
            skew = hat(direction / np.linalg.norm(direction))
            rows_a.append(skew)
            rows_b.append(skew @ p_c)
        if len(rows_a) < 2:
            return None
        design = np.vstack(rows_a)
        target = np.concatenate(rows_b)
        point, *_ = np.linalg.lstsq(design, target, rcond=None)
        return point

    def _update(self, track, clones, covariance, camera):
        clone_poses = {f: (p, r) for f, p, r in clones}
        clone_order = {f: i for i, (f, _, _) in enumerate(clones)}
        point = self._triangulate(track, clone_poses, camera)
        total = covariance.shape[0]
        if point is None:
            return None, covariance, 100.0, False

        residuals, h_x_rows, h_f_rows = [], [], []
        for frame_id, pixel in track:
            if frame_id not in clone_poses:
                continue
            p_c, r_c = clone_poses[frame_id]
            pose = SE3(r_c, p_c)
            try:
                _, d_pose, d_point = camera.projection_jacobians(pose, point)
                predicted = camera.project(pose, point)
            except ValueError:
                continue
            residuals.append(pixel - predicted)
            row = np.zeros((2, total))
            offset = _IMU_DIM + _CLONE_DIM * clone_order[frame_id]
            row[:, offset : offset + _CLONE_DIM] = d_pose
            h_x_rows.append(row)
            h_f_rows.append(d_point)
        if len(residuals) < 2:
            return None, covariance, 100.0, False

        r = -np.concatenate(residuals)  # residual = h(x) - z convention
        h_x = np.vstack(h_x_rows)
        h_f = np.vstack(h_f_rows)

        # Project out the landmark: left nullspace of H_f via full QR.
        q, _ = np.linalg.qr(h_f, mode="complete")
        nullspace = q[:, 3:]
        r0 = nullspace.T @ r
        h0 = nullspace.T @ h_x
        ops = float(h_x.size * 4 + total * total)

        sigma2 = self.config.pixel_sigma**2
        innovation_cov = h0 @ covariance @ h0.T + sigma2 * np.eye(h0.shape[0])
        try:
            inv_innovation = np.linalg.inv(innovation_cov)
        except np.linalg.LinAlgError:
            return None, covariance, ops, False
        # Chi-square gate (normalized innovation squared per DOF).
        nis = float(r0 @ inv_innovation @ r0) / max(len(r0), 1)
        if nis > self.config.chi2_gate:
            return None, covariance, ops, False

        gain = covariance @ h0.T @ inv_innovation
        delta = gain @ (-r0)
        covariance = (np.eye(total) - gain @ h0) @ covariance
        covariance = 0.5 * (covariance + covariance.T)
        ops += float(gain.size * h0.shape[0] * 2)
        return delta, covariance, ops, True

    def _apply_correction(
        self, delta, position, rotation, velocity, bias_gyro, bias_accel, clones
    ):
        position = position + delta[0:3]
        rotation = rotation @ so3_exp(delta[3:6])
        velocity = velocity + delta[6:9]
        bias_gyro = bias_gyro + delta[9:12]
        bias_accel = bias_accel + delta[12:15]
        new_clones = []
        for i, (frame_id, p_c, r_c) in enumerate(clones):
            offset = _IMU_DIM + _CLONE_DIM * i
            new_clones.append(
                (
                    frame_id,
                    p_c + delta[offset : offset + 3],
                    r_c @ so3_exp(delta[offset + 3 : offset + 6]),
                )
            )
        return position, rotation, velocity, bias_gyro, bias_accel, new_clones
