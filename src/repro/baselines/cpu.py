"""CPU baseline execution and power models (Sec. 7.1 / 7.4).

The paper's software baseline is a multithreaded, vectorized ceres-based
bundle adjustment. We model each platform by its *effective macro-op
throughput*: how many M-DFG cost-model operations per second the tuned
software sustains end to end. The number folds together SIMD width,
achieved IPC, parallel efficiency, and the heavy constant factors of a
dynamic sparse solver (double-precision autodiff, allocation, indexing),
and is calibrated so the High-Perf accelerator's speedup/energy factors
land at the paper's headline numbers (6.2x / 74x over Intel, 39.7x /
14.6x over Arm with the ~20 ms accelerator window).

Power is the measured package/board power under load (wall meter for
Comet Lake, TX1 sensing circuitry for the A57 cluster).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.mdfg.builder import build_window_mdfg


@dataclass(frozen=True)
class CpuPlatform:
    """One software baseline platform."""

    name: str
    cores: int
    frequency_hz: float
    effective_ops_per_second: float  # calibrated end-to-end throughput
    power_w: float  # package/board power under load

    def __post_init__(self) -> None:
        if self.cores < 1 or self.frequency_hz <= 0:
            raise ConfigurationError("cores and frequency must be positive")
        if self.effective_ops_per_second <= 0 or self.power_w <= 0:
            raise ConfigurationError("throughput and power must be positive")

    def window_time(self, stats: WindowStats, iterations: int = 6) -> float:
        """Seconds to process one sliding window in software."""
        ops = _window_ops(
            stats.num_features,
            round(stats.avg_observations, 2),
            stats.num_keyframes,
            stats.num_marginalized,
            stats.num_observations,
            iterations,
        )
        return ops / self.effective_ops_per_second

    def window_energy(self, stats: WindowStats, iterations: int = 6) -> float:
        """Joules to process one sliding window in software."""
        return self.window_time(stats, iterations) * self.power_w


@lru_cache(maxsize=4096)
def _window_ops(
    num_features: int,
    avg_observations: float,
    num_keyframes: int,
    num_marginalized: int,
    num_observations: int,
    iterations: int,
) -> float:
    stats = WindowStats(
        num_features=num_features,
        avg_observations=avg_observations,
        num_keyframes=num_keyframes,
        num_marginalized=num_marginalized,
        num_observations=num_observations,
    )
    return build_window_mdfg(stats, iterations).total_cost()


# Calibration (reference workload, 29.8M macro-ops/window):
#   Intel: 6.2x slower than the ~20 ms High-Perf design -> ~124 ms/window
#   Arm:   39.7x slower -> ~794 ms/window
INTEL_COMET_LAKE = CpuPlatform(
    name="Intel Comet Lake (12 cores, 2.9 GHz)",
    cores=12,
    frequency_hz=2.9e9,
    effective_ops_per_second=240e6,
    power_w=65.0,
)

ARM_A57 = CpuPlatform(
    name="Arm Cortex-A57 (4 cores, 1.9 GHz, Jetson TX1)",
    cores=4,
    frequency_hz=1.9e9,
    effective_ops_per_second=37.5e6,
    power_w=1.85,
)


def cpu_window_time(
    platform: CpuPlatform, stats: WindowStats, iterations: int = 6
) -> float:
    return platform.window_time(stats, iterations)


def cpu_window_energy(
    platform: CpuPlatform, stats: WindowStats, iterations: int = 6
) -> float:
    return platform.window_energy(stats, iterations)
