"""The hand-optimized Vivado-HLS Cholesky comparator (Sec. 7.5).

The paper reports a week of expert HLS tuning still lands 16.4x slower
than the hand-designed Cholesky block, at ~30% lower clock and ~2x the
resources — because HLS cannot expose the Evaluate/Update pipeline
parallelism and the cross-iteration Update independence of Fig. 10.

The comparator models the HLS design as an *unpipelined* Evaluate/
Update schedule (each iteration's Evaluate waits for the full previous
Update; no Update-unit parallelism), which is structurally what the HLS
scheduler produces, at its achieved clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.latency import EVALUATE_LATENCY


@dataclass(frozen=True)
class HlsCholesky:
    """The HLS-generated Cholesky design's characteristics."""

    frequency_hz: float = 100e6  # ~30% below the 143 MHz hand design
    resource_factor: float = 2.0  # ~2x the hand design's resources
    evaluate_latency: float = EVALUATE_LATENCY
    # HLS serialization overhead per iteration beyond the dependency
    # chain (interface handshakes, conservatively scheduled loops).
    per_iteration_overhead: float = 260.0
    # The HLS inner update loop is pragma-unrolled, but the achievable
    # factor is bounded by the BRAM port count (2 read + 1 write per
    # partition) -- nowhere near the hand design's s-way Update array.
    update_unroll: float = 3.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")

    def factorization_cycles(self, m: int) -> float:
        """Cycles for an m x m factorization: fully serialized
        Evaluate -> Update per iteration, no overlap."""
        if m < 1:
            raise ConfigurationError("m must be >= 1")
        total = 0.0
        for i in range(m):
            trailing = m - i - 1
            update = trailing * (trailing + 1) / 2.0 / self.update_unroll
            total += self.evaluate_latency + update + self.per_iteration_overhead
        return total

    def factorization_seconds(self, m: int) -> float:
        return self.factorization_cycles(m) / self.frequency_hz

    def slowdown_vs(self, hand_cycles: float, hand_frequency_hz: float, m: int) -> float:
        """How many times slower the HLS design is than the hand design."""
        hand_seconds = hand_cycles / hand_frequency_hz
        return self.factorization_seconds(m) / hand_seconds


HLS_CHOLESKY = HlsCholesky()
