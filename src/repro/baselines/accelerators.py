"""Comparator models of prior localization accelerators (Sec. 7.5).

None of these systems is open source, so — following the paper's own
"best-effort comparison" methodology — each comparator is modeled by its
published operating point, normalized per NLS-solver iteration to factor
out dataset differences (pi-BA and BAX were evaluated on BAL, Zhang et
al. and PISCES on EuRoC). The constants below are the absolute
per-iteration time/energy each system's publication implies for a
reference full-scale window; benchmarks recompute the ratios against
whatever Archytas design is under test, so the comparison shape is live
even though the comparators are static.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PriorAccelerator:
    """Published operating point of one prior accelerator.

    Attributes:
        name: system name.
        per_iteration_s: seconds per NLS iteration on the reference
            full-scale window (normalized as in Sec. 7.5).
        per_iteration_j: energy per NLS iteration [J].
        supports_marginalization: whether the system implements the
            marginalization phase at all (pi-BA and BAX do not — one of
            Archytas's qualitative advantages).
        relative_resources: FPGA resource footprint relative to the
            Archytas High-Perf design (Zhang et al. use ~0.5x, i.e.
            Archytas uses ~2x more).
        notes: provenance of the constants.
    """

    name: str
    per_iteration_s: float
    per_iteration_j: float
    supports_marginalization: bool = False
    relative_resources: float = 1.0
    notes: str = ""

    def __post_init__(self) -> None:
        if self.per_iteration_s <= 0 or self.per_iteration_j <= 0:
            raise ConfigurationError("per-iteration metrics must be positive")

    def speedup_of(self, archytas_per_iteration_s: float) -> float:
        """How much faster the given Archytas design is."""
        return self.per_iteration_s / archytas_per_iteration_s

    def energy_reduction_of(self, archytas_per_iteration_j: float) -> float:
        return self.per_iteration_j / archytas_per_iteration_j


# Constants derived from each publication's reported gap to a design at
# the Archytas High-Perf operating point (~2.8 ms / ~13.5 mJ per
# iteration on the reference window).
PI_BA = PriorAccelerator(
    name="pi-BA (FPGA, Jacobian + Schur only)",
    per_iteration_s=0.386,
    per_iteration_j=1.78,
    supports_marginalization=False,
    relative_resources=0.6,
    notes="IEEE TC'20; BAL dataset, normalized per NLS iteration "
    "(paper reports 137x speedup / 132x energy for High-Perf).",
)

BAX = PriorAccelerator(
    name="BAX (decoupled access/execute BA accelerator)",
    per_iteration_s=0.0254,
    per_iteration_j=0.0240,
    supports_marginalization=False,
    relative_resources=0.9,
    notes="IEEE Access'20; generic vector units vs our optimized "
    "datapath (paper: 9x faster, 44% less energy).",
)

ZHANG_RSS17 = PriorAccelerator(
    name="Zhang et al. (on-manifold GN co-design)",
    per_iteration_s=0.0565,
    per_iteration_j=0.085,
    supports_marginalization=True,
    relative_resources=0.5,
    notes="RSS'17 + supplementary; fixed NLS configuration vs our "
    "cost-optimal M-DFG (paper: >20x speedup on EuRoC with ~2x "
    "our resources... Archytas uses ~2x theirs).",
)

PISCES = PriorAccelerator(
    name="PISCES (HLS full-SLAM pipeline, BA part)",
    per_iteration_s=0.01525,
    per_iteration_j=0.00449,
    supports_marginalization=True,
    relative_resources=0.8,
    notes="DAC'20; power-aware sparse algebra via HLS (paper: BA part "
    "5.4x slower than High-Perf at ~1/3 the power -> ~3x less energy "
    "for PISCES, i.e. Archytas spends ~3x more energy but finishes "
    "5.4x sooner).",
)

PRIOR_ACCELERATORS = {
    "pi-ba": PI_BA,
    "bax": BAX,
    "zhang-rss17": ZHANG_RSS17,
    "pisces": PISCES,
}
