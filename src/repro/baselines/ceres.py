"""A ceres-style dense LM reference solver.

ceres solves the same normal equations our structured path solves, just
without exploiting the arrow structure. ``dense_lm_solve`` runs LM on a
:class:`~repro.slam.problem.WindowProblem` but solves each damped system
densely (one Cholesky over the full (a + 15b) matrix). Tests use it to
certify that the D-type Schur path is numerically equivalent to the
generic solver — the correctness contract behind every speedup claim.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.linalg.cholesky import cholesky_evaluate_update, solve_cholesky
from repro.slam.nls import LMConfig, LMResult
from repro.slam.problem import WindowProblem, _U_FLOOR


def _dense_solve(system, damping: float) -> tuple[np.ndarray, np.ndarray]:
    """Solve the full arrow system densely (no Schur elimination)."""
    p = len(system.feature_ids)
    u = np.maximum(system.u_diag, _U_FLOOR) + damping
    full = np.block(
        [
            [np.diag(u), system.w_block.T],
            [system.w_block, system.v_block + damping * np.eye(system.v_block.shape[0])],
        ]
    )
    rhs = np.concatenate([system.b_x, system.b_y])
    factor, _ = cholesky_evaluate_update(full, jitter=1e-9)
    solution = solve_cholesky(factor, rhs)
    return solution[:p], solution[p:]


def dense_lm_solve(problem: WindowProblem, config: LMConfig | None = None) -> LMResult:
    """Levenberg-Marquardt with a dense linear solver (ceres-style)."""
    config = config or LMConfig()
    damping = config.initial_damping
    cost = problem.cost()
    result = LMResult(
        problem=problem,
        initial_cost=cost,
        final_cost=cost,
        iterations=0,
        accepted_steps=0,
        cost_history=[cost],
    )
    for _ in range(config.max_iterations):
        system = problem.build_linear_system()
        result.iterations += 1
        try:
            d_lambda, d_state = _dense_solve(system, damping)
        except SolverError:
            damping *= config.damping_up
            result.cost_history.append(cost)
            continue
        candidate = problem.stepped(d_lambda, d_state, system)
        candidate_cost = candidate.cost()
        if np.isfinite(candidate_cost) and candidate_cost < cost:
            problem = candidate
            cost = candidate_cost
            damping = max(damping * config.damping_down, 1e-12)
            result.accepted_steps += 1
            result.cost_history.append(cost)
            if (result.cost_history[-2] - cost) / max(cost, 1e-12) < config.cost_tolerance:
                result.converged = True
                break
        else:
            damping *= config.damping_up
            result.cost_history.append(cost)
            if damping > 1e12:
                break
    result.problem = problem
    result.final_cost = cost
    return result
