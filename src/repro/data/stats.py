"""Workload statistics extracted from sliding windows.

The hardware latency models (Equ. 6, 9, 10, 13–15) are parameterized by
the per-window workload: number of feature points ``a``, average
observations per feature ``No``, keyframe count ``b``, features about to
be marginalized ``am``, and the per-keyframe state size ``k`` (fixed at
15). This module is the single place those numbers are computed, so the
analytical models, the cycle simulator, and the CPU baselines all agree
on the work being measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.window import SlidingWindow
from repro.geometry.navstate import STATE_DIM


@dataclass(frozen=True)
class WindowStats:
    """Per-window workload statistics (the paper's a, No, b, am, k)."""

    num_features: int  # a
    avg_observations: float  # No
    num_keyframes: int  # b
    num_marginalized: int  # am
    state_size: int = STATE_DIM  # k
    num_observations: int = 0

    def __post_init__(self) -> None:
        if self.num_features < 0 or self.num_keyframes < 0 or self.num_marginalized < 0:
            raise ValueError("window statistics must be non-negative")

    @property
    def a(self) -> int:
        return self.num_features

    @property
    def no(self) -> float:
        return self.avg_observations

    @property
    def b(self) -> int:
        return self.num_keyframes

    @property
    def am(self) -> int:
        return self.num_marginalized

    @property
    def k(self) -> int:
        return self.state_size


def window_stats(window: SlidingWindow, num_marginalized: int | None = None) -> WindowStats:
    """Compute the workload statistics of one sliding window.

    Args:
        window: the window to measure.
        num_marginalized: features that will leave the window when it
            slides; if omitted, counts features observed only by the
            oldest keyframe (the marginalization rule of the estimator).
    """
    num_obs = window.num_observations
    num_feats = window.num_features
    avg_obs = num_obs / num_feats if num_feats else 0.0
    if num_marginalized is None:
        if window.keyframes:
            oldest = window.keyframes[0].frame_id
            num_marginalized = len(window.features_seen_only_by(oldest))
        else:
            num_marginalized = 0
    return WindowStats(
        num_features=num_feats,
        avg_observations=avg_obs,
        num_keyframes=window.num_keyframes,
        num_marginalized=num_marginalized,
        num_observations=num_obs,
    )


def sequence_stats(per_window: list[WindowStats]) -> dict[str, float]:
    """Aggregate statistics over a run: means used to size static designs."""
    if not per_window:
        return {
            "mean_features": 0.0,
            "mean_observations_per_feature": 0.0,
            "mean_keyframes": 0.0,
            "mean_marginalized": 0.0,
            "max_features": 0.0,
        }
    features = np.array([w.num_features for w in per_window], dtype=float)
    avg_obs = np.array([w.avg_observations for w in per_window])
    keyframes = np.array([w.num_keyframes for w in per_window], dtype=float)
    marginalized = np.array([w.num_marginalized for w in per_window], dtype=float)
    return {
        "mean_features": float(features.mean()),
        "mean_observations_per_feature": float(avg_obs.mean()),
        "mean_keyframes": float(keyframes.mean()),
        "mean_marginalized": float(marginalized.mean()),
        "max_features": float(features.max()),
    }
