"""Sliding-window data structures.

A :class:`SlidingWindow` is the unit of work the accelerator processes:
``b`` keyframes with 15-DoF states, the feature tracks observed inside the
window, and the IMU preintegrations linking consecutive keyframes. The
estimator mutates the states in place as the NLS solver iterates; the
hardware models read only the window's counts via
:mod:`repro.data.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError
from repro.geometry.navstate import NavState
from repro.imu.preintegration import ImuPreintegration


@dataclass
class Keyframe:
    """One keyframe: an id, a timestamp, the estimated and true states."""

    frame_id: int
    timestamp: float
    state: NavState
    true_state: NavState | None = None


@dataclass
class FeatureTrack:
    """One landmark track inside a window.

    Attributes:
        feature_id: stable id across windows.
        position: current 3D estimate in world coordinates.
        observations: mapping keyframe id -> observed pixel (2,).
        true_position: ground-truth landmark position, if known.
    """

    feature_id: int
    position: np.ndarray
    observations: dict[int, np.ndarray] = field(default_factory=dict)
    true_position: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float).reshape(3)

    @property
    def num_observations(self) -> int:
        return len(self.observations)


@dataclass
class SlidingWindow:
    """The optimization window: keyframes, features, IMU links, prior."""

    keyframes: list[Keyframe] = field(default_factory=list)
    features: dict[int, FeatureTrack] = field(default_factory=dict)
    # preintegrations[i] links keyframes[i] -> keyframes[i + 1].
    preintegrations: list[ImuPreintegration] = field(default_factory=list)

    def validate(self) -> None:
        """Raise :class:`DataError` if the window is structurally broken."""
        if len(self.preintegrations) != max(len(self.keyframes) - 1, 0):
            raise DataError(
                f"window has {len(self.keyframes)} keyframes but "
                f"{len(self.preintegrations)} preintegrations"
            )
        frame_ids = {kf.frame_id for kf in self.keyframes}
        if len(frame_ids) != len(self.keyframes):
            raise DataError("duplicate keyframe ids in window")
        for track in self.features.values():
            unknown = set(track.observations) - frame_ids
            if unknown:
                raise DataError(
                    f"feature {track.feature_id} observes unknown keyframes {sorted(unknown)}"
                )

    @property
    def num_keyframes(self) -> int:
        return len(self.keyframes)

    @property
    def num_features(self) -> int:
        return len(self.features)

    @property
    def num_observations(self) -> int:
        return sum(t.num_observations for t in self.features.values())

    def keyframe_index(self) -> dict[int, int]:
        """Map keyframe id -> position in ``self.keyframes``."""
        return {kf.frame_id: i for i, kf in enumerate(self.keyframes)}

    def features_seen_only_by(self, frame_id: int) -> list[int]:
        """Feature ids whose every observation is in keyframe ``frame_id``."""
        return [
            fid
            for fid, track in self.features.items()
            if set(track.observations) == {frame_id}
        ]
