"""Smooth synthetic 6-DoF trajectories with analytic world-frame motion.

Two families mirror the paper's datasets:

* :class:`DroneTrajectory` — EuRoC Machine-Hall style: aggressive 3D
  sum-of-sinusoid motion inside a room-sized volume with continuous yaw
  changes.
* :class:`CarTrajectory` — KITTI Odometry style: near-planar driving at
  ~10 m/s along a path whose heading follows the velocity, with gentle
  elevation changes.

Each trajectory exposes position/velocity/acceleration in closed form and
body-frame angular velocity via centered differencing of the rotation log,
which is everything needed to synthesize ideal IMU samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.se3 import SE3
from repro.geometry.so3 import so3_exp, so3_log

_DIFF_EPS = 1e-4


class _SmoothTrajectory:
    """Shared machinery: rotation differencing and pose assembly."""

    def position(self, t: float) -> np.ndarray:
        raise NotImplementedError

    def rotation(self, t: float) -> np.ndarray:
        raise NotImplementedError

    def velocity(self, t: float) -> np.ndarray:
        h = _DIFF_EPS
        return (self.position(t + h) - self.position(t - h)) / (2.0 * h)

    def acceleration(self, t: float) -> np.ndarray:
        h = _DIFF_EPS
        return (
            self.position(t + h) - 2.0 * self.position(t) + self.position(t - h)
        ) / (h * h)

    def angular_velocity_body(self, t: float) -> np.ndarray:
        """Body-frame angular velocity from centered rotation differencing."""
        h = _DIFF_EPS
        r_minus = self.rotation(t - h)
        r_plus = self.rotation(t + h)
        return so3_log(r_minus.T @ r_plus) / (2.0 * h)

    def pose(self, t: float) -> SE3:
        return SE3(self.rotation(t), self.position(t))


@dataclass
class DroneTrajectory(_SmoothTrajectory):
    """EuRoC-MH-style aggressive indoor drone motion.

    Position is a sum of incommensurate sinusoids inside a box of size
    ``extent``; yaw sweeps continuously and roll/pitch wobble slightly,
    emulating a hand-flown micro aerial vehicle.

    Attributes:
        extent: half-sizes of the flight volume (x, y, z) [m].
        base_height: mean flight height [m].
        speed_scale: multiplies all temporal frequencies; higher values
            mean more aggressive motion (MH_03..05 vs MH_01/02).
        phases: per-axis phase offsets; randomized per sequence.
    """

    extent: np.ndarray = field(default_factory=lambda: np.array([4.0, 3.0, 1.0]))
    base_height: float = 1.5
    speed_scale: float = 1.0
    phases: np.ndarray = field(default_factory=lambda: np.zeros(6))

    def __post_init__(self) -> None:
        self.extent = np.asarray(self.extent, dtype=float).reshape(3)
        self.phases = np.asarray(self.phases, dtype=float).reshape(6)
        if np.any(self.extent <= 0):
            raise ConfigurationError("trajectory extent must be positive")
        if self.speed_scale <= 0:
            raise ConfigurationError("speed_scale must be positive")

    def position(self, t: float) -> np.ndarray:
        w = 2.0 * np.pi * self.speed_scale
        px, py, pz, *_ = self.phases
        # Frequencies chosen so peak accelerations reach the 1-4 m/s^2
        # range of a hand-flown MAV (EuRoC MH), which is what gives the
        # accelerometer bias its observability.
        x = self.extent[0] * np.sin(w * 0.150 * t + px) * np.cos(w * 0.041 * t)
        y = self.extent[1] * np.sin(w * 0.122 * t + py)
        z = self.base_height + self.extent[2] * np.sin(w * 0.197 * t + pz)
        return np.array([x, y, z])

    def rotation(self, t: float) -> np.ndarray:
        w = 2.0 * np.pi * self.speed_scale
        _, _, _, qa, qb, qc = self.phases
        yaw = 0.8 * np.sin(w * 0.071 * t + qa) + 0.3 * np.sin(w * 0.183 * t + qb)
        pitch = 0.12 * np.sin(w * 0.253 * t + qc)
        roll = 0.10 * np.sin(w * 0.211 * t + qa + qb)
        return so3_exp([0.0, 0.0, yaw]) @ so3_exp([0.0, pitch, 0.0]) @ so3_exp([roll, 0.0, 0.0])


@dataclass
class CarTrajectory(_SmoothTrajectory):
    """KITTI-style near-planar driving.

    The car drives forward at roughly ``speed`` m/s; heading is an
    integrated smooth curvature signal (closed form as a sum of
    sinusoids), so the path contains straights and turns like an urban
    KITTI sequence. Small elevation changes and body roll/pitch are added
    for realism.
    """

    speed: float = 10.0
    turn_scale: float = 1.0
    phases: np.ndarray = field(default_factory=lambda: np.zeros(4))

    def __post_init__(self) -> None:
        self.phases = np.asarray(self.phases, dtype=float).reshape(4)
        if self.speed <= 0:
            raise ConfigurationError("speed must be positive")

    def _heading(self, t: float) -> float:
        """Closed-form heading angle at time t."""
        p0, p1, _, _ = self.phases
        return self.turn_scale * (
            0.9 * np.sin(0.05 * t + p0) + 0.5 * np.sin(0.021 * t + p1)
        )

    def _heading_rate(self, t: float) -> float:
        """Analytic time derivative of the heading."""
        p0, p1, _, _ = self.phases
        return self.turn_scale * (
            0.9 * 0.05 * np.cos(0.05 * t + p0) + 0.5 * 0.021 * np.cos(0.021 * t + p1)
        )

    def position(self, t: float) -> np.ndarray:
        # Integrate dx = v cos(heading), dy = v sin(heading) in closed
        # form is impossible for our heading; use a fine fixed-step
        # cached quadrature instead.
        return self._integrated_position(t)

    # Quadrature cache: heading integrals evaluated on a fine grid once.
    _grid_dt: float = 0.01
    _cache: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def _integrated_position(self, t: float) -> np.ndarray:
        _, _, p2, _ = self.phases
        n = int(np.floor(t / self._grid_dt))
        base = self._position_at_grid(n)
        # Midpoint-rule completion within the last partial step.
        remainder = t - n * self._grid_dt
        heading = self._heading(n * self._grid_dt + 0.5 * remainder)
        step = self.speed * remainder * np.array([np.cos(heading), np.sin(heading), 0.0])
        z = 1.2 + 0.8 * np.sin(0.017 * t + p2)
        out = base + step
        out[2] = z
        return out

    def _position_at_grid(self, n: int) -> np.ndarray:
        if n <= 0:
            return np.zeros(3)
        if n in self._cache:
            return self._cache[n].copy()
        # Build forward from the largest cached index using the midpoint
        # rule, which keeps the quadrature error at O(dt^3) per step so
        # the path stays consistent with the analytic IMU acceleration.
        start = max((k for k in self._cache if k < n), default=0)
        pos = self._cache.get(start, np.zeros(3)).copy()
        for k in range(start, n):
            heading = self._heading((k + 0.5) * self._grid_dt)
            pos += (
                self.speed
                * self._grid_dt
                * np.array([np.cos(heading), np.sin(heading), 0.0])
            )
            if (k + 1) % 100 == 0:
                self._cache[k + 1] = pos.copy()
        self._cache[n] = pos.copy()
        return pos.copy()

    def velocity(self, t: float) -> np.ndarray:
        _, _, p2, _ = self.phases
        heading = self._heading(t)
        vz = 0.8 * 0.017 * np.cos(0.017 * t + p2)
        return np.array(
            [self.speed * np.cos(heading), self.speed * np.sin(heading), vz]
        )

    def acceleration(self, t: float) -> np.ndarray:
        _, _, p2, _ = self.phases
        heading = self._heading(t)
        rate = self._heading_rate(t)
        az = -0.8 * 0.017 * 0.017 * np.sin(0.017 * t + p2)
        return np.array(
            [
                -self.speed * rate * np.sin(heading),
                self.speed * rate * np.cos(heading),
                az,
            ]
        )

    def rotation(self, t: float) -> np.ndarray:
        _, _, _, p3 = self.phases
        yaw = self._heading(t)
        pitch = 0.02 * np.sin(0.05 * t + p3)
        roll = 0.015 * np.sin(0.073 * t + p3)
        return so3_exp([0.0, 0.0, yaw]) @ so3_exp([0.0, pitch, 0.0]) @ so3_exp([roll, 0.0, 0.0])
