"""Synthetic visual-inertial datasets.

The paper evaluates on EuRoC (drone, Machine Hall sequences) and KITTI
Odometry (car). We cannot ship those recordings, so this package
synthesizes sequences with the same *structure*: smooth 6-DoF
trajectories, 3D landmarks, pixel-noise feature tracks with realistic
track lengths, and raw IMU streams — all deterministic given a seed.
The estimator, hardware models and every experiment consume only this
structure (sliding-window workload statistics and residual/Jacobian
shapes), which is what makes the substitution faithful; see DESIGN.md.
"""

from repro.data.window import Keyframe, FeatureTrack, SlidingWindow
from repro.data.stats import WindowStats, sequence_stats
from repro.data.trajectory import DroneTrajectory, CarTrajectory
from repro.data.io import save_sequence, load_sequence
from repro.data.sequences import (
    Sequence,
    SequenceConfig,
    make_sequence,
    make_euroc_sequence,
    make_kitti_sequence,
    EUROC_SEQUENCES,
    KITTI_SEQUENCES,
)

__all__ = [
    "Keyframe",
    "FeatureTrack",
    "SlidingWindow",
    "WindowStats",
    "sequence_stats",
    "DroneTrajectory",
    "CarTrajectory",
    "Sequence",
    "save_sequence",
    "load_sequence",
    "SequenceConfig",
    "make_sequence",
    "make_euroc_sequence",
    "make_kitti_sequence",
    "EUROC_SEQUENCES",
    "KITTI_SEQUENCES",
]
