"""Landmark field generation.

Landmarks are scattered around the trajectory with a *density profile*
that varies smoothly along the path. The sparse stretches are what drive
the feature-count dynamics of Fig. 11 and the run-time knob of Sec. 6:
when the agent crosses a texture-poor region the tracker finds fewer
points, accuracy degrades, and the NLS solver needs more iterations.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.data.trajectory import _SmoothTrajectory


def density_profile(period: float = 40.0, floor: float = 0.15) -> Callable[[float], float]:
    """A smooth [floor, 1] density along path time with feature-poor dips.

    Args:
        period: approximate seconds between successive density dips.
        floor: minimum density (relative to the rich regions).
    """
    if not 0.0 < floor <= 1.0:
        raise ConfigurationError("floor must be in (0, 1]")
    w1 = 2.0 * np.pi / period
    w2 = 2.0 * np.pi / (period * 2.7)

    def profile(t: float) -> float:
        raw = 0.55 + 0.35 * np.sin(w1 * t) + 0.25 * np.sin(w2 * t + 1.3)
        return float(np.clip(raw, floor, 1.0))

    return profile


def make_landmarks(
    trajectory: _SmoothTrajectory,
    duration: float,
    rng: np.random.Generator,
    count: int = 4000,
    lateral_spread: float = 12.0,
    vertical_spread: float = 4.0,
    forward_spread: float = 4.0,
    density: Callable[[float], float] | None = None,
) -> np.ndarray:
    """Scatter ``count`` candidate landmarks around the trajectory tube.

    Each landmark is anchored at a random time along the path and offset
    by a random displacement, then accepted with probability given by the
    density profile at its anchor time. Returns an (M, 3) array with
    M <= count.
    """
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    density = density or density_profile()

    anchor_times = rng.uniform(0.0, duration, size=count)
    keep = rng.uniform(size=count) < np.array([density(t) for t in anchor_times])
    anchor_times = anchor_times[keep]

    points = np.empty((anchor_times.size, 3))
    for i, t in enumerate(anchor_times):
        anchor = trajectory.position(float(t))
        offset = np.array(
            [
                rng.normal(scale=forward_spread),
                rng.normal(scale=lateral_spread),
                rng.normal(scale=vertical_spread),
            ]
        )
        # Rotate the offset into the local heading so the cloud follows
        # the path (lateral offsets stay lateral through turns).
        rotation = trajectory.rotation(float(t))
        points[i] = anchor + rotation @ offset
    return points
