"""Sequence factories: EuRoC-MH-like and KITTI-like synthetic recordings.

A :class:`Sequence` is the full sensor recording the estimator consumes:
keyframe timestamps with ground-truth navigation states, per-keyframe
feature observations from the simulated tracker, raw IMU sample streams
between consecutive keyframes, and the landmark field (kept for
evaluation only — the estimator never reads ground truth).

``EUROC_SEQUENCES`` mirrors the five Machine Hall difficulty levels
(MH_01 easy ... MH_05 difficult — increasing flight aggressiveness) and
``KITTI_SEQUENCES`` the eleven odometry training sequences (varying turn
statistics and texture-density profiles).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.camera import PinholeCamera
from repro.geometry.navstate import NavState
from repro.geometry.se3 import SE3
from repro.imu.noise import ImuNoise
from repro.imu.preintegration import GRAVITY
from repro.data.landmarks import density_profile, make_landmarks
from repro.data.tracks import FeatureTracker, FrameObservations, TrackerConfig
from repro.data.trajectory import CarTrajectory, DroneTrajectory
from repro.utils.rng import rng_from_seed, split_seed


@dataclass(frozen=True)
class SequenceConfig:
    """Everything needed to deterministically synthesize one sequence."""

    name: str = "MH_01"
    kind: str = "drone"  # "drone" (EuRoC-like) or "car" (KITTI-like)
    seed: int = 0
    duration: float = 60.0
    keyframe_rate: float = 5.0
    imu_rate: float = 200.0
    landmark_count: int = 4000
    density_period: float = 40.0
    density_floor: float = 0.15
    motion_scale: float = 1.0  # speed_scale (drone) / turn_scale (car)
    camera: PinholeCamera = field(default_factory=PinholeCamera)
    imu_noise: ImuNoise = field(default_factory=ImuNoise)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)

    def __post_init__(self) -> None:
        if self.kind not in ("drone", "car"):
            raise ConfigurationError(f"kind must be 'drone' or 'car', got {self.kind!r}")
        if self.duration <= 0 or self.keyframe_rate <= 0 or self.imu_rate <= 0:
            raise ConfigurationError("duration and rates must be positive")
        if self.imu_rate < 2 * self.keyframe_rate:
            raise ConfigurationError("imu_rate must be well above keyframe_rate")


@dataclass
class ImuSegment:
    """Raw IMU samples covering one keyframe interval."""

    timestamps: np.ndarray  # (N,)
    gyro: np.ndarray  # (N, 3), bias + noise included
    accel: np.ndarray  # (N, 3), specific force, bias + noise included
    dt: float  # uniform sample interval


@dataclass
class Sequence:
    """A complete synthetic visual-inertial recording."""

    config: SequenceConfig
    timestamps: np.ndarray  # (B,) keyframe times
    true_states: list[NavState]
    observations: list[FrameObservations]
    imu_segments: list[ImuSegment]  # B - 1 segments
    landmarks: np.ndarray  # (M, 3)
    true_bias_gyro: np.ndarray
    true_bias_accel: np.ndarray

    @property
    def num_keyframes(self) -> int:
        return len(self.timestamps)

    def feature_counts(self) -> np.ndarray:
        """Tracked-feature count per keyframe (the run-time load signal)."""
        return np.array([obs.num_features for obs in self.observations])


def _make_trajectory(config: SequenceConfig, rng: np.random.Generator):
    if config.kind == "drone":
        return DroneTrajectory(
            speed_scale=config.motion_scale,
            phases=rng.uniform(0.0, 2.0 * np.pi, size=6),
        )
    return CarTrajectory(
        turn_scale=config.motion_scale,
        phases=rng.uniform(0.0, 2.0 * np.pi, size=4),
    )


def make_sequence(config: SequenceConfig) -> Sequence:
    """Synthesize a sequence from its configuration (bit-deterministic)."""
    traj_rng = rng_from_seed(split_seed(config.seed, f"{config.name}:trajectory"))
    land_rng = rng_from_seed(split_seed(config.seed, f"{config.name}:landmarks"))
    track_rng = rng_from_seed(split_seed(config.seed, f"{config.name}:tracks"))
    imu_rng = rng_from_seed(split_seed(config.seed, f"{config.name}:imu"))

    trajectory = _make_trajectory(config, traj_rng)
    spread = (
        dict(lateral_spread=4.0, vertical_spread=2.0, forward_spread=4.0)
        if config.kind == "drone"
        else dict(lateral_spread=14.0, vertical_spread=4.0, forward_spread=6.0)
    )
    landmarks = make_landmarks(
        trajectory,
        config.duration,
        land_rng,
        count=config.landmark_count,
        density=density_profile(config.density_period, config.density_floor),
        **spread,
    )

    num_keyframes = int(np.floor(config.duration * config.keyframe_rate)) + 1
    timestamps = np.arange(num_keyframes) / config.keyframe_rate

    true_bias_gyro = imu_rng.normal(scale=2e-3, size=3)
    true_bias_accel = imu_rng.normal(scale=2e-2, size=3)

    true_states = [
        NavState(
            pose=trajectory.pose(float(t)),
            velocity=trajectory.velocity(float(t)),
            bias_gyro=true_bias_gyro,
            bias_accel=true_bias_accel,
        )
        for t in timestamps
    ]

    tracker = FeatureTracker(config.camera, landmarks, config.tracker, track_rng)
    observations = [
        tracker.observe(frame_id, state.pose)
        for frame_id, state in enumerate(true_states)
    ]

    imu_segments = [
        _synthesize_imu_segment(
            trajectory,
            float(timestamps[i]),
            float(timestamps[i + 1]),
            config,
            true_bias_gyro,
            true_bias_accel,
            imu_rng,
        )
        for i in range(num_keyframes - 1)
    ]

    return Sequence(
        config=config,
        timestamps=timestamps,
        true_states=true_states,
        observations=observations,
        imu_segments=imu_segments,
        landmarks=landmarks,
        true_bias_gyro=true_bias_gyro,
        true_bias_accel=true_bias_accel,
    )


def _synthesize_imu_segment(
    trajectory,
    t_start: float,
    t_end: float,
    config: SequenceConfig,
    bias_gyro: np.ndarray,
    bias_accel: np.ndarray,
    rng: np.random.Generator,
) -> ImuSegment:
    """Sample ideal body-frame IMU readings and corrupt them."""
    dt = 1.0 / config.imu_rate
    count = max(int(round((t_end - t_start) * config.imu_rate)), 1)
    times = t_start + np.arange(count) * dt
    gyro = np.empty((count, 3))
    accel = np.empty((count, 3))
    noise = config.imu_noise
    gyro_sigma = noise.discrete_gyro_sigma(dt) if noise.gyro_noise > 0 else 0.0
    accel_sigma = noise.discrete_accel_sigma(dt) if noise.accel_noise > 0 else 0.0
    for i, t in enumerate(times):
        # Sample at the interval midpoint so a single Euler step of the
        # preintegrator stays second-order accurate.
        tm = float(t) + 0.5 * dt
        rotation = trajectory.rotation(tm)
        gyro[i] = trajectory.angular_velocity_body(tm) + bias_gyro
        accel[i] = rotation.T @ (trajectory.acceleration(tm) - GRAVITY) + bias_accel
        if gyro_sigma > 0.0:
            gyro[i] += rng.normal(scale=gyro_sigma, size=3)
        if accel_sigma > 0.0:
            accel[i] += rng.normal(scale=accel_sigma, size=3)
    return ImuSegment(timestamps=times, gyro=gyro, accel=accel, dt=dt)


def _euroc_config(name: str, seed: int, motion_scale: float) -> SequenceConfig:
    return SequenceConfig(
        name=name,
        kind="drone",
        seed=seed,
        duration=60.0,
        keyframe_rate=5.0,
        imu_rate=200.0,
        landmark_count=3500,
        density_period=25.0,
        motion_scale=motion_scale,
    )


def _kitti_config(name: str, seed: int, turn_scale: float, period: float) -> SequenceConfig:
    return SequenceConfig(
        name=name,
        kind="car",
        seed=seed,
        duration=120.0,
        keyframe_rate=5.0,
        imu_rate=100.0,
        landmark_count=22000,
        density_period=period,
        density_floor=0.12,
        motion_scale=turn_scale,
    )


EUROC_SEQUENCES: dict[str, SequenceConfig] = {
    "MH_01": _euroc_config("MH_01", 101, 0.6),
    "MH_02": _euroc_config("MH_02", 102, 0.7),
    "MH_03": _euroc_config("MH_03", 103, 1.0),
    "MH_04": _euroc_config("MH_04", 104, 1.2),
    "MH_05": _euroc_config("MH_05", 105, 1.3),
}

KITTI_SEQUENCES: dict[str, SequenceConfig] = {
    f"{i:02d}": _kitti_config(f"{i:02d}", 200 + i, scale, period)
    for i, (scale, period) in enumerate(
        [
            (1.0, 45.0),
            (0.3, 60.0),
            (0.8, 40.0),
            (0.6, 35.0),
            (0.4, 55.0),
            (0.9, 42.0),
            (1.1, 38.0),
            (0.7, 50.0),
            (0.5, 47.0),
            (1.0, 33.0),
            (0.8, 44.0),
        ]
    )
}


def make_euroc_sequence(name: str = "MH_01", duration: float | None = None) -> Sequence:
    """Build a EuRoC-Machine-Hall-like sequence by name (MH_01..MH_05)."""
    if name not in EUROC_SEQUENCES:
        raise ConfigurationError(
            f"unknown EuRoC sequence {name!r}; choose from {sorted(EUROC_SEQUENCES)}"
        )
    config = EUROC_SEQUENCES[name]
    if duration is not None:
        config = replace(config, duration=duration)
    return make_sequence(config)


def make_kitti_sequence(name: str = "00", duration: float | None = None) -> Sequence:
    """Build a KITTI-Odometry-like sequence by name ('00'..'10')."""
    if name not in KITTI_SEQUENCES:
        raise ConfigurationError(
            f"unknown KITTI sequence {name!r}; choose from {sorted(KITTI_SEQUENCES)}"
        )
    config = KITTI_SEQUENCES[name]
    if duration is not None:
        config = replace(config, duration=duration)
    return make_sequence(config)
