"""Feature-tracking simulation.

Emulates the sensing front-end the paper's host runs: at every keyframe
the tracker keeps following landmarks it already tracks (when still
visible), tops the set up to ``max_features`` with new detections, and
reports pixel observations corrupted by white measurement noise. Track
continuity is what gives the window its characteristic statistics —
roughly 10x more feature points than keyframes and several observations
per feature (the paper's ``No``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3


@dataclass
class TrackerConfig:
    """Front-end tuning knobs.

    Attributes:
        max_features: feature budget per keyframe (detector cap).
        pixel_sigma: measurement noise std [px].
        drop_probability: chance an existing track is lost per frame
            even while visible (occlusion / matching failure).
        min_track_length: tracks observed fewer times are discarded when
            a window is assembled (they carry too little constraint).
        outlier_probability: chance an observation is a gross mismatch
            (the pixel is replaced by a uniformly random image location)
            — the failure mode robust kernels must survive.
    """

    max_features: int = 200
    pixel_sigma: float = 1.0
    drop_probability: float = 0.05
    min_track_length: int = 2
    outlier_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.max_features < 1:
            raise ConfigurationError("max_features must be >= 1")
        if self.pixel_sigma < 0:
            raise ConfigurationError("pixel_sigma must be non-negative")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigurationError("drop_probability must be in [0, 1)")
        if not 0.0 <= self.outlier_probability < 1.0:
            raise ConfigurationError("outlier_probability must be in [0, 1)")


@dataclass
class FrameObservations:
    """All feature observations of one keyframe: feature id -> pixel."""

    frame_id: int
    pixels: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def num_features(self) -> int:
        return len(self.pixels)


def visible_landmark_indices(
    camera: PinholeCamera, pose: SE3, landmarks: np.ndarray
) -> np.ndarray:
    """Vectorized visibility test: indices of landmarks inside the image."""
    points_c = (landmarks - pose.translation) @ pose.rotation
    z = points_c[:, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        u = camera.fx * points_c[:, 0] / z + camera.cx
        v = camera.fy * points_c[:, 1] / z + camera.cy
    ok = (
        (z >= camera.min_depth)
        & (u >= 0.0)
        & (u < camera.width)
        & (v >= 0.0)
        & (v < camera.height)
    )
    return np.flatnonzero(ok)


class FeatureTracker:
    """Stateful simulated tracker over a fixed landmark field."""

    def __init__(
        self,
        camera: PinholeCamera,
        landmarks: np.ndarray,
        config: TrackerConfig,
        rng: np.random.Generator,
    ) -> None:
        self.camera = camera
        self.landmarks = np.asarray(landmarks, dtype=float).reshape(-1, 3)
        self.config = config
        self._rng = rng
        self._active: set[int] = set()

    def observe(self, frame_id: int, true_pose: SE3) -> FrameObservations:
        """Produce the noisy observations of one keyframe and update tracks."""
        visible = set(visible_landmark_indices(self.camera, true_pose, self.landmarks).tolist())

        # Continue existing tracks that remain visible (modulo drops).
        survivors = set()
        for fid in self._active & visible:
            if self._rng.uniform() >= self.config.drop_probability:
                survivors.add(fid)

        # Top up with fresh detections, preferring untracked landmarks.
        budget = self.config.max_features - len(survivors)
        if budget > 0:
            candidates = np.array(sorted(visible - survivors), dtype=int)
            if candidates.size > budget:
                candidates = self._rng.choice(candidates, size=budget, replace=False)
            survivors.update(int(c) for c in candidates)

        observations = FrameObservations(frame_id)
        for fid in sorted(survivors):
            if (
                self.config.outlier_probability > 0.0
                and self._rng.uniform() < self.config.outlier_probability
            ):
                # Gross mismatch: the tracker latched onto the wrong
                # image patch somewhere in the frame.
                pixel = np.array(
                    [
                        self._rng.uniform(0.0, self.camera.width),
                        self._rng.uniform(0.0, self.camera.height),
                    ]
                )
            else:
                pixel = np.array(
                    self.camera.project(true_pose, self.landmarks[fid]), dtype=float
                )
                pixel += self._rng.normal(scale=self.config.pixel_sigma, size=2)
            observations.pixels[fid] = pixel
        self._active = survivors
        return observations
