"""Sequence serialization: save/load synthetic recordings as ``.npz``.

Lets expensive sequences be generated once and shared between
experiment runs or exported for external tools. Everything needed to
reproduce the run is stored — configuration, ground truth, observations,
IMU streams, landmarks — in a single compressed archive.

The array-level codec (:func:`sequence_to_arrays` /
:func:`sequence_from_arrays`) is exposed separately from the file I/O so
other storage layers — notably the artifact cache of
:mod:`repro.engine` — can embed a sequence inside their own blobs
without a second format.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.data.sequences import ImuSegment, Sequence, SequenceConfig
from repro.data.tracks import FrameObservations, TrackerConfig
from repro.errors import DataError
from repro.geometry.camera import PinholeCamera
from repro.geometry.navstate import NavState
from repro.geometry.se3 import SE3
from repro.imu.noise import ImuNoise

_FORMAT_VERSION = 1


def sequence_to_arrays(sequence: Sequence) -> dict[str, np.ndarray]:
    """Encode a sequence as a flat ``{name: array}`` mapping."""
    config = sequence.config
    meta = {
        "version": _FORMAT_VERSION,
        "config": {
            **{
                k: v
                for k, v in asdict(config).items()
                if k not in ("camera", "imu_noise", "tracker")
            },
            "camera": asdict(config.camera),
            "imu_noise": asdict(config.imu_noise),
            "tracker": asdict(config.tracker),
        },
    }

    arrays: dict[str, np.ndarray] = {
        "timestamps": sequence.timestamps,
        "landmarks": sequence.landmarks,
        "true_bias_gyro": sequence.true_bias_gyro,
        "true_bias_accel": sequence.true_bias_accel,
        "meta_json": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    }
    states = np.stack(
        [
            np.concatenate(
                [s.position, s.rotation.ravel(), s.velocity, s.bias_gyro, s.bias_accel]
            )
            for s in sequence.true_states
        ]
    )
    arrays["true_states"] = states
    for i, segment in enumerate(sequence.imu_segments):
        arrays[f"imu_{i}_t"] = segment.timestamps
        arrays[f"imu_{i}_g"] = segment.gyro
        arrays[f"imu_{i}_a"] = segment.accel
        arrays[f"imu_{i}_dt"] = np.array([segment.dt])
    for i, obs in enumerate(sequence.observations):
        if obs.pixels:
            ids = np.array(sorted(obs.pixels), dtype=np.int64)
            pix = np.stack([obs.pixels[j] for j in ids])
        else:
            ids = np.zeros(0, dtype=np.int64)
            pix = np.zeros((0, 2))
        arrays[f"obs_{i}_ids"] = ids
        arrays[f"obs_{i}_px"] = pix
    return arrays


def sequence_from_arrays(data: Mapping[str, np.ndarray]) -> Sequence:
    """Decode a sequence from the mapping produced by
    :func:`sequence_to_arrays` (or an open ``.npz`` archive)."""
    meta = json.loads(bytes(np.asarray(data["meta_json"])).decode())
    if meta.get("version") != _FORMAT_VERSION:
        raise DataError(
            f"unsupported sequence format version {meta.get('version')!r}"
        )
    raw = dict(meta["config"])
    config = SequenceConfig(
        **{
            k: v
            for k, v in raw.items()
            if k not in ("camera", "imu_noise", "tracker")
        },
        camera=PinholeCamera(**raw["camera"]),
        imu_noise=ImuNoise(**raw["imu_noise"]),
        tracker=TrackerConfig(**raw["tracker"]),
    )
    timestamps = data["timestamps"]
    states = []
    for row in data["true_states"]:
        states.append(
            NavState(
                pose=SE3(row[3:12].reshape(3, 3), row[0:3]),
                velocity=row[12:15],
                bias_gyro=row[15:18],
                bias_accel=row[18:21],
            )
        )
    segments = []
    for i in range(len(timestamps) - 1):
        segments.append(
            ImuSegment(
                timestamps=data[f"imu_{i}_t"],
                gyro=data[f"imu_{i}_g"],
                accel=data[f"imu_{i}_a"],
                dt=float(data[f"imu_{i}_dt"][0]),
            )
        )
    observations = []
    for i in range(len(timestamps)):
        ids = data[f"obs_{i}_ids"]
        pix = data[f"obs_{i}_px"]
        frame = FrameObservations(i)
        for fid, pixel in zip(ids, pix):
            frame.pixels[int(fid)] = np.asarray(pixel, dtype=float)
        observations.append(frame)
    return Sequence(
        config=config,
        timestamps=timestamps,
        true_states=states,
        observations=observations,
        imu_segments=segments,
        landmarks=data["landmarks"],
        true_bias_gyro=data["true_bias_gyro"],
        true_bias_accel=data["true_bias_accel"],
    )


def save_sequence(sequence: Sequence, path: str | Path) -> Path:
    """Write a sequence to a compressed ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(path, **sequence_to_arrays(sequence))
    return path


def load_sequence(path: str | Path) -> Sequence:
    """Load a sequence written by :func:`save_sequence`."""
    path = Path(path)
    with np.load(path) as data:
        return sequence_from_arrays(data)
