"""Compact storage of the linear-system parameter matrix S (Sec. 3.3).

``S`` is the ``kb x kb`` symmetric matrix of the NLS linear system, with
``b`` IMU observations (keyframes) of ``k = 15`` states each. It is the
sum of two structured matrices:

* ``Si`` — the IMU contribution: non-zero only in the diagonal and
  sub/super-diagonal ``k x k`` blocks (an IMU factor links only adjacent
  keyframes);
* ``Sc`` — the camera contribution: non-zero only in the leading
  ``6 x 6`` (pose) corner of every ``k x k`` block (vision constrains
  only the 6-DoF pose).

Archytas stores the two separately: the three block diagonals of ``Si``
and a compacted ``6b x 6b`` symmetric matrix for ``Sc``, shrinking the
requirement from ``k^2 b^2`` to ``18 b^2 + 2 b k^2`` words — a 78%
saving at the typical ``k = 15, b = 15``, and less space than a
symmetric CSR encoding of the same sparsity pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DataError

POSE_DOF = 6


@dataclass(frozen=True)
class SMatrixLayout:
    """Storage cost model for the S matrix under different encodings.

    All costs are in *words* (one matrix element = one word; index words
    are scaled by ``index_ratio`` since indices are narrower than
    values).
    """

    k: int = 15
    b: int = 15
    index_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.k < POSE_DOF:
            raise ConfigurationError(f"k must be >= {POSE_DOF}, got {self.k}")
        if self.b < 1:
            raise ConfigurationError(f"b must be >= 1, got {self.b}")
        if self.index_ratio <= 0:
            raise ConfigurationError("index_ratio must be positive")

    @property
    def size(self) -> int:
        return self.k * self.b

    @property
    def dense_words(self) -> int:
        """Naive dense storage: k^2 b^2."""
        return self.size * self.size

    @property
    def symmetric_words(self) -> int:
        """Dense but exploiting symmetry only: n(n+1)/2."""
        return self.size * (self.size + 1) // 2

    @property
    def compact_words(self) -> int:
        """The paper's layout: 18 b^2 + 2 b k^2 (Sec. 3.3).

        ``18 b^2``: the compacted camera matrix is ``6b x 6b`` symmetric,
        6b(6b+1)/2 ~= 18 b^2 words. ``2 b k^2``: the ``b`` diagonal plus
        ``b - 1`` sub-diagonal blocks of Si, ~= 2b blocks of k^2 words.
        """
        return 18 * self.b * self.b + 2 * self.b * self.k * self.k

    @property
    def pattern_nnz(self) -> int:
        """Non-zeros of the union sparsity pattern of Si and Sc."""
        si = (3 * self.b - 2) * self.k * self.k
        sc = POSE_DOF * POSE_DOF * self.b * self.b
        overlap = POSE_DOF * POSE_DOF * (3 * self.b - 2)
        return si + sc - overlap

    def csr_words(self, symmetric: bool = True) -> float:
        """CSR storage of the union pattern: values + col idx + row ptr.

        With ``symmetric=True`` only the upper triangle (plus diagonal)
        is encoded, the fair comparison for a symmetric matrix.
        """
        nnz = self.pattern_nnz
        if symmetric:
            diagonal_nnz = self.size  # every diagonal entry is in Si
            nnz = (nnz + diagonal_nnz) // 2
        return nnz + self.index_ratio * (nnz + self.size + 1)

    @property
    def saving_vs_dense(self) -> float:
        """Fractional saving of the compact layout over dense storage."""
        return 1.0 - self.compact_words / self.dense_words

    @property
    def saving_vs_csr(self) -> float:
        """Fractional saving of the compact layout over symmetric CSR."""
        return 1.0 - self.compact_words / self.csr_words(symmetric=True)


class CompactSMatrix:
    """Functional compact storage: Si block diagonals + compacted Sc.

    Losslessly represents any matrix with the Sec. 3.3 structure; used by
    the tests to show the layout is exact, and by the hardware model to
    size the Linear System Parameter Buffer.
    """

    def __init__(self, k: int = 15, b: int = 15) -> None:
        if k < POSE_DOF or b < 1:
            raise ConfigurationError(f"need k >= {POSE_DOF} and b >= 1, got k={k}, b={b}")
        self.k = k
        self.b = b
        # Si: b diagonal blocks and b-1 sub-diagonal blocks, each k x k.
        self.si_diag = np.zeros((b, k, k))
        self.si_sub = np.zeros((max(b - 1, 0), k, k))
        # Sc: compacted 6b x 6b symmetric camera matrix.
        self.sc_compact = np.zeros((POSE_DOF * b, POSE_DOF * b))

    @property
    def stored_words(self) -> int:
        """Words actually held by this container (paper's formula)."""
        layout = SMatrixLayout(self.k, self.b)
        return layout.compact_words

    @classmethod
    def from_contributions(cls, si_dense: np.ndarray, sc_dense: np.ndarray) -> "CompactSMatrix":
        """Build from the dense IMU and camera contribution matrices.

        Raises :class:`DataError` if either input violates its claimed
        sparsity structure (non-zeros outside the allowed blocks).
        """
        si_dense = np.asarray(si_dense, dtype=float)
        sc_dense = np.asarray(sc_dense, dtype=float)
        if si_dense.shape != sc_dense.shape or si_dense.ndim != 2:
            raise DataError("Si and Sc must be square matrices of equal shape")
        size = si_dense.shape[0]
        # Infer b from the camera pattern is ambiguous; require k = 15.
        k = 15
        if size % k:
            raise DataError(f"matrix size {size} is not a multiple of k={k}")
        b = size // k
        out = cls(k, b)

        for i in range(b):
            out.si_diag[i] = si_dense[i * k : (i + 1) * k, i * k : (i + 1) * k]
            if i + 1 < b:
                out.si_sub[i] = si_dense[(i + 1) * k : (i + 2) * k, i * k : (i + 1) * k]
        reconstructed_si = out._assemble_si()
        if not np.allclose(reconstructed_si, si_dense, atol=1e-12):
            raise DataError("Si has non-zeros outside its tri-block-diagonal structure")

        for i in range(b):
            for j in range(b):
                block = sc_dense[i * k : i * k + k, j * k : j * k + k]
                if not np.allclose(block[POSE_DOF:, :], 0.0, atol=1e-12) or not np.allclose(
                    block[:, POSE_DOF:], 0.0, atol=1e-12
                ):
                    raise DataError("Sc has non-zeros outside the 6x6 pose sub-blocks")
                out.sc_compact[
                    i * POSE_DOF : (i + 1) * POSE_DOF, j * POSE_DOF : (j + 1) * POSE_DOF
                ] = block[:POSE_DOF, :POSE_DOF]
        return out

    def _assemble_si(self) -> np.ndarray:
        k, b = self.k, self.b
        si = np.zeros((k * b, k * b))
        for i in range(b):
            si[i * k : (i + 1) * k, i * k : (i + 1) * k] = self.si_diag[i]
            if i + 1 < b:
                si[(i + 1) * k : (i + 2) * k, i * k : (i + 1) * k] = self.si_sub[i]
                si[i * k : (i + 1) * k, (i + 1) * k : (i + 2) * k] = self.si_sub[i].T
        return si

    def _assemble_sc(self) -> np.ndarray:
        k, b = self.k, self.b
        sc = np.zeros((k * b, k * b))
        for i in range(b):
            for j in range(b):
                sc[i * k : i * k + POSE_DOF, j * k : j * k + POSE_DOF] = self.sc_compact[
                    i * POSE_DOF : (i + 1) * POSE_DOF, j * POSE_DOF : (j + 1) * POSE_DOF
                ]
        return sc

    def assemble(self) -> np.ndarray:
        """Reconstruct the full dense S = Si + Sc."""
        return self._assemble_si() + self._assemble_sc()
