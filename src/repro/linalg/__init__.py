"""Numerical kernels mirrored one-to-one by the hardware template.

Each function here is the software-reference semantics of a hardware
block: the Evaluate/Update Cholesky (Sec. 4.3), forward/backward
substitution (FBSub), the D-type and M-type Schur complements (Sec. 4.4),
the blocked matrix inverse of Equ. 5, and the compact S-matrix storage of
Sec. 3.3. The cycle-level simulator executes these kernels while it
counts cycles, so functional results and timing come from the same code.
"""

from repro.linalg.cholesky import (
    cholesky_evaluate_update,
    forward_substitution,
    backward_substitution,
    solve_cholesky,
    solve_spd,
)
from repro.linalg.schur import d_type_schur, m_type_schur, schur_condense
from repro.linalg.blocked import blocked_inverse
from repro.linalg.smatrix import SMatrixLayout, CompactSMatrix

__all__ = [
    "cholesky_evaluate_update",
    "forward_substitution",
    "backward_substitution",
    "solve_cholesky",
    "solve_spd",
    "d_type_schur",
    "m_type_schur",
    "schur_condense",
    "blocked_inverse",
    "SMatrixLayout",
    "CompactSMatrix",
]
