"""Numerical kernels mirrored one-to-one by the hardware template.

Each function here is the software-reference semantics of a hardware
block: the Evaluate/Update Cholesky (Sec. 4.3), forward/backward
substitution (FBSub), the D-type and M-type Schur complements (Sec. 4.4),
the blocked matrix inverse of Equ. 5, and the compact S-matrix storage of
Sec. 3.3. The cycle-level simulator executes these kernels while it
counts cycles, so functional results and timing come from the same code.

:mod:`repro.linalg.plan` composes the allocation-free variants of these
kernels into the :class:`~repro.linalg.plan.SolverPlan` every solve path
(estimator, functional HW sim, serving tier) executes.
"""

from repro.linalg.cholesky import (
    backward_substitution,
    backward_substitution_transposed_into,
    cholesky_evaluate_update,
    cholesky_inplace,
    forward_substitution,
    forward_substitution_into,
    solve_cholesky,
    solve_spd,
)
from repro.linalg.schur import (
    d_type_back_substitute,
    d_type_back_substitute_into,
    d_type_schur,
    d_type_schur_into,
    m_type_schur,
    schur_condense,
)
from repro.linalg.blocked import blocked_inverse
from repro.linalg.plan import (
    PlanSolveStats,
    SolverPlan,
    SolverPlanCache,
    default_plan_cache,
    reset_default_plan_cache,
)
from repro.linalg.smatrix import SMatrixLayout, CompactSMatrix

__all__ = [
    "cholesky_evaluate_update",
    "cholesky_inplace",
    "forward_substitution",
    "forward_substitution_into",
    "backward_substitution",
    "backward_substitution_transposed_into",
    "solve_cholesky",
    "solve_spd",
    "d_type_schur",
    "d_type_schur_into",
    "d_type_back_substitute",
    "d_type_back_substitute_into",
    "m_type_schur",
    "schur_condense",
    "blocked_inverse",
    "PlanSolveStats",
    "SolverPlan",
    "SolverPlanCache",
    "default_plan_cache",
    "reset_default_plan_cache",
    "SMatrixLayout",
    "CompactSMatrix",
]
