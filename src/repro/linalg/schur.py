"""Schur complement kernels: the D-type and M-type blocks of Sec. 4.4.

* ``d_type_schur`` — the NLS solver's ``V - W U^-1 W^T`` with diagonal
  ``U`` (landmark block); O(n) inversion, exploited per feature point.
* ``m_type_schur`` — marginalization's ``A - Lambda M^-1 Lambda^T`` with a
  generic ``M``, inverted through the blocked formula of Equ. 5.
* ``schur_condense`` — convenience wrapper that reduces a full
  ``[[U, W^T], [W, V]]`` system onto the keyframe block and provides the
  back-substitution that recovers the eliminated (landmark) unknowns.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.linalg.blocked import blocked_inverse
from repro.utils.validation import check_square


def d_type_schur(
    v_block: np.ndarray,
    w_block: np.ndarray,
    u_diagonal: np.ndarray,
    b_x: np.ndarray | None = None,
    b_y: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Compute ``V - W diag(u)^-1 W^T`` (and the reduced RHS if given).

    Args:
        v_block: (q, q) keyframe block.
        w_block: (q, p) coupling block (the paper's W; X = W^T because U
            is diagonal, Sec. 3.2.2).
        u_diagonal: (p,) diagonal entries of U (landmark block).
        b_x: (p,) RHS entries of the eliminated unknowns.
        b_y: (q,) RHS entries of the retained unknowns.

    Returns:
        (reduced_matrix, reduced_rhs); ``reduced_rhs`` is None unless
        both RHS pieces were provided.
    """
    v_block = check_square("v_block", v_block)
    w_block = np.asarray(w_block, dtype=float)
    u_diagonal = np.asarray(u_diagonal, dtype=float).reshape(-1)
    if w_block.shape != (v_block.shape[0], u_diagonal.size):
        raise ValueError(
            f"w_block must be {(v_block.shape[0], u_diagonal.size)}, got {w_block.shape}"
        )
    if np.any(u_diagonal == 0.0):
        raise SolverError("U has zero diagonal entries; cannot eliminate")

    w_scaled = w_block / u_diagonal  # W U^-1, O(pq) thanks to diagonal U
    reduced = v_block - w_scaled @ w_block.T
    reduced_rhs = None
    if b_x is not None and b_y is not None:
        reduced_rhs = np.asarray(b_y, dtype=float) - w_scaled @ np.asarray(b_x, dtype=float)
    return reduced, reduced_rhs


def d_type_back_substitute(
    w_block: np.ndarray,
    u_diagonal: np.ndarray,
    b_x: np.ndarray,
    delta_y: np.ndarray,
) -> np.ndarray:
    """Recover the eliminated unknowns: ``dx = U^-1 (b_x - W^T dy)``."""
    u_diagonal = np.asarray(u_diagonal, dtype=float).reshape(-1)
    return (np.asarray(b_x, dtype=float) - np.asarray(w_block).T @ delta_y) / u_diagonal


def d_type_schur_into(
    v_block: np.ndarray,
    w_block: np.ndarray,
    u_inverse: np.ndarray,
    b_x: np.ndarray,
    b_y: np.ndarray,
    out_reduced: np.ndarray,
    out_rhs: np.ndarray,
    w_scaled: np.ndarray,
    scratch: np.ndarray,
) -> None:
    """Allocation-free :func:`d_type_schur` into caller-owned workspaces.

    Computes ``out_reduced = V - W diag(u)^-1 W^T`` and
    ``out_rhs = b_y - W diag(u)^-1 b_x`` given the *precomputed
    reciprocal* ``u_inverse = 1/u`` (p,), entirely through in-place
    matmuls/einsum: ``w_scaled`` (q, p) and ``scratch`` (q, q) are the
    :class:`repro.linalg.plan.SolverPlan` arenas. The row scaling goes
    through einsum rather than a broadcast ufunc because numpy's
    broadcast iterator allocates its 64 KiB transfer buffer per call —
    einsum's specialized loop does not. No validation — the plan checked
    the structure once at build time, and ``u_inverse`` comes from a
    diagonal already floored strictly positive by the caller.
    """
    np.einsum("ij,j->ij", w_block, u_inverse, out=w_scaled)
    np.matmul(w_scaled, w_block.T, out=scratch)
    np.subtract(v_block, scratch, out=out_reduced)
    np.matmul(w_scaled, b_x, out=out_rhs)
    np.subtract(b_y, out_rhs, out=out_rhs)


def d_type_back_substitute_into(
    w_block: np.ndarray,
    u_diagonal: np.ndarray,
    b_x: np.ndarray,
    delta_y: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Allocation-free ``dx = U^-1 (b_x - W^T dy)`` into ``out`` (p,)."""
    np.matmul(delta_y, w_block, out=out)  # dy @ W == W^T dy
    np.subtract(b_x, out, out=out)
    np.divide(out, u_diagonal, out=out)
    return out


def m_type_schur(
    a_block: np.ndarray,
    lambda_block: np.ndarray,
    m_block: np.ndarray,
    b_m: np.ndarray,
    b_r: np.ndarray,
    m_diagonal_split: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Marginalization prior: ``Hp = A - L M^-1 L^T``, ``rp = br - L M^-1 bm``.

    Args:
        a_block: (r, r) retained block.
        lambda_block: (r, m) coupling block Lambda.
        m_block: (m, m) marginalized block M (generic symmetric).
        b_m / b_r: information-vector pieces for marginalized / retained.
        m_diagonal_split: if given, invert M through the Equ. 5 blocked
            formula with a diagonal leading block of this size (the
            cost-optimal blocking the M-DFG builder chooses); otherwise
            invert M directly.

    Returns:
        (Hp, rp) — the new prior matrix and vector.
    """
    a_block = check_square("a_block", a_block)
    m_block = check_square("m_block", m_block)
    lambda_block = np.asarray(lambda_block, dtype=float)
    if lambda_block.shape != (a_block.shape[0], m_block.shape[0]):
        raise ValueError(
            f"lambda_block must be {(a_block.shape[0], m_block.shape[0])}, "
            f"got {lambda_block.shape}"
        )
    if m_diagonal_split is not None and 0 < m_diagonal_split < m_block.shape[0]:
        m_inv = blocked_inverse(m_block, m_diagonal_split, diagonal_11=True)
    else:
        m_inv = np.linalg.inv(m_block)
    coupling = lambda_block @ m_inv
    prior_matrix = a_block - coupling @ lambda_block.T
    prior_vector = np.asarray(b_r, dtype=float) - coupling @ np.asarray(b_m, dtype=float)
    # Symmetrize: floating-point asymmetry would otherwise accumulate
    # across windows through the prior.
    prior_matrix = 0.5 * (prior_matrix + prior_matrix.T)
    return prior_matrix, prior_vector


def schur_condense(
    u_diagonal: np.ndarray,
    w_block: np.ndarray,
    v_block: np.ndarray,
    b_x: np.ndarray,
    b_y: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce ``[[diag(u), W^T], [W, V]] [dx, dy] = [b_x, b_y]`` onto dy.

    Returns the reduced (matrix, rhs) for the keyframe unknowns; combine
    with :func:`d_type_back_substitute` to recover dx.
    """
    reduced, reduced_rhs = d_type_schur(v_block, w_block, u_diagonal, b_x=b_x, b_y=b_y)
    assert reduced_rhs is not None
    return reduced, reduced_rhs
