"""Blocked matrix inversion (Equ. 5 of the paper).

Inverts a symmetric matrix ``M`` partitioned as ``[[M11, M12], [M21,
M22]]`` via the Schur complement ``S' = M22 - M21 M11^-1 M12``. When
``M11`` is diagonal (the blocking the M-DFG builder always selects —
Sec. 3.2.3) the ``M11^-1`` term is O(n) and ``S'`` becomes a D-type
Schur, which is why the hardware can share the D-type Schur block between
the NLS solver and marginalization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.linalg.cholesky import cholesky_evaluate_update, solve_cholesky
from repro.utils.validation import check_square


def blocked_inverse(matrix: np.ndarray, split: int, diagonal_11: bool = False) -> np.ndarray:
    """Invert a symmetric matrix via the 2x2 block formula of Equ. 5.

    Args:
        matrix: symmetric invertible matrix.
        split: size ``p`` of the leading M11 block; 0 < split < n.
        diagonal_11: assert and exploit that M11 is diagonal (the optimal
            blocking); inversion of M11 is then elementwise.

    Returns:
        The full inverse, assembled from the four blocks of Equ. 5.
    """
    matrix = check_square("matrix", matrix)
    size = matrix.shape[0]
    if not 0 < split < size:
        raise ValueError(f"split must be in (0, {size}), got {split}")

    m11 = matrix[:split, :split]
    m12 = matrix[:split, split:]
    m21 = matrix[split:, :split]
    m22 = matrix[split:, split:]

    if diagonal_11:
        diag = np.diag(m11)
        off_diag = m11 - np.diag(diag)
        if np.abs(off_diag).max(initial=0.0) > 1e-12 * max(np.abs(diag).max(initial=1.0), 1.0):
            raise SolverError("M11 is not diagonal but diagonal_11 was requested")
        if np.any(diag == 0.0):
            raise SolverError("singular diagonal M11 block")
        m11_inv = np.diag(1.0 / diag)
    else:
        m11_inv = np.linalg.inv(m11)

    # S' = M22 - M21 M11^-1 M12, inverted with our Cholesky kernel when
    # it is SPD, falling back to a generic inverse otherwise.
    schur = m22 - m21 @ m11_inv @ m12
    schur_inv = _symmetric_inverse(schur)

    top_left = m11_inv + m11_inv @ m12 @ schur_inv @ m21 @ m11_inv
    top_right = -m11_inv @ m12 @ schur_inv
    bottom_left = -schur_inv @ m21 @ m11_inv
    return np.block([[top_left, top_right], [bottom_left, schur_inv]])


def _symmetric_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a (nearly) symmetric matrix, preferring the Cholesky path."""
    symmetric = 0.5 * (matrix + matrix.T)
    try:
        factor, _ = cholesky_evaluate_update(symmetric)
    except SolverError:
        return np.linalg.inv(matrix)
    identity = np.eye(matrix.shape[0])
    columns = [solve_cholesky(factor, identity[:, j]) for j in range(matrix.shape[0])]
    return np.column_stack(columns)
