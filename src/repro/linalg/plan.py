"""The reusable structured-solve plan: symbolic structure + workspace arenas.

The arrow system of one LM iteration has a *structure* (feature count
``p``, stacked keyframe dimension ``q``, the D-type Schur elimination
order) that is fixed for the whole window — and usually for many
consecutive windows, since the sliding-window estimator keeps the same
window shape frame after frame. The paper's accelerator exploits exactly
this: the datapath is configured once per structure and then streamed
(Sec. 3.1/5); the CICC 2022 follow-up reconfigures the *same* datapath
across precisions. :class:`SolverPlan` is the software mirror of that
idea:

* built once per structure, it preallocates every buffer the solve
  stage touches (Schur arenas, the Cholesky factor, substitution and
  back-substitution vectors), so :meth:`SolverPlan.execute` performs
  **zero per-iteration array allocation** — verified by a tracemalloc
  assertion in ``tests/test_linalg_plan.py``;
* it is reused across all LM iterations of a window and, through
  :class:`SolverPlanCache`, across windows of identical structure (the
  hit-rate counters surface in ``BENCH_estimator.json``);
* a ``precision="mixed"`` plan factors in float32 and recovers float64
  accuracy through iterative refinement behind the same seam;
* every layer that solves the arrow system — the NLS solver, the
  functional accelerator simulation, the serving tier's
  ``--fidelity functional`` path — executes the *same* plan object, so
  their agreement is by construction, and the dense float64 path
  (:meth:`repro.slam.problem.LinearSystem.solve_dense`) remains the
  independent conformance oracle.

When SciPy is importable the factorization/substitution run through the
in-place LAPACK wrappers (``potrf``/``trtrs`` on Fortran-ordered
workspaces — no copies); otherwise the allocation-free NumPy kernels in
:mod:`repro.linalg.cholesky` are used. Both paths share the retry
policy: **no jitter unless the factorization fails**, then escalating
diagonal jitter, with the applied value reported in
:class:`PlanSolveStats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.linalg.cholesky import (
    backward_substitution_transposed_into,
    cholesky_inplace,
    forward_substitution_into,
)
from repro.linalg.schur import d_type_back_substitute_into, d_type_schur_into

try:  # pragma: no cover - exercised through whichever backend is present
    from scipy.linalg import cholesky as _scipy_cholesky
    from scipy.linalg import solve_triangular as _scipy_solve_triangular

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _scipy_cholesky = None
    _scipy_solve_triangular = None
    HAVE_SCIPY = False

PRECISIONS = ("float64", "mixed")

#: Diagonal floor applied to the landmark block before elimination —
#: mirrors ``repro.slam.problem._U_FLOOR`` (kept local to avoid a
#: linalg -> slam dependency; the value is asserted equal in tests).
U_FLOOR = 1e-8

#: Jitter escalation schedule: nothing on the first attempt, then each
#: retry multiplies by JITTER_GROWTH starting from JITTER_INITIAL.
JITTER_INITIAL = 1e-9
JITTER_GROWTH = 100.0
MAX_FACTOR_ATTEMPTS = 6

#: Mixed-precision refinement: iterate until the float64 residual is
#: below RTOL relative to the RHS, or the iteration budget is spent.
REFINEMENT_RTOL = 1e-13
REFINEMENT_MAX_ITERATIONS = 8


@dataclass
class PlanSolveStats:
    """Per-execute measurements the observability layer consumes.

    Attributes:
        schur_seconds / chol_seconds / backsub_seconds: wall-clock split
            of the three solve phases (the ``schur``/``chol``/``backsub``
            child spans under the NLS ``solve`` span).
        jitter: diagonal jitter that made the factorization succeed
            (0.0 when the first, jitter-free attempt worked).
        jitter_applied: whether any jitter was needed.
        factor_attempts: factorization attempts including the final
            successful one.
        refinement_iterations: float64 refinement steps taken (mixed
            precision only; 0 on the float64 path).
    """

    schur_seconds: float = 0.0
    chol_seconds: float = 0.0
    backsub_seconds: float = 0.0
    jitter: float = 0.0
    jitter_applied: bool = False
    factor_attempts: int = 1
    refinement_iterations: int = 0


class SolverPlan:
    """One structure's solve schedule plus its preallocated arenas.

    Args:
        num_features: ``p``, the diagonal landmark block size.
        state_dim: ``q``, the stacked keyframe dimension.
        precision: ``"float64"`` (default) or ``"mixed"`` — float32
            factorization + float64 iterative refinement.
    """

    def __init__(
        self, num_features: int, state_dim: int, precision: str = "float64"
    ) -> None:
        if num_features < 0 or state_dim < 0:
            raise ConfigurationError("plan dimensions must be non-negative")
        if precision not in PRECISIONS:
            raise ConfigurationError(
                f"precision must be one of {PRECISIONS}, got {precision!r}"
            )
        self.num_features = int(num_features)
        self.state_dim = int(state_dim)
        self.precision = precision
        p, q = self.num_features, self.state_dim

        # Schur arenas. ``reduced`` stays intact after execute() — the
        # functional simulator feeds it to the cycle-level Cholesky
        # timeline, and mixed-precision refinement needs the true A.
        self.u_damped = np.empty(p)
        self.u_inv = np.empty(p)
        self.w_scaled = np.empty((q, p))
        self.scratch = np.empty((q, q))
        self.reduced = np.empty((q, q))
        self.reduced_rhs = np.empty(q)
        # Factor workspace: Fortran order so LAPACK potrf/trtrs run truly
        # in place; the NumPy fallback is layout-agnostic.
        self.factor = np.empty((q, q), order="F")
        self.solve_vec = np.empty(q)
        self.d_state = np.empty(q)
        self.d_lambda = np.empty(p)
        if precision == "mixed":
            self.factor32 = np.empty((q, q), dtype=np.float32, order="F")
            self.rhs32 = np.empty(q, dtype=np.float32)
            self.residual = np.empty(q)
        self.last_stats = PlanSolveStats()
        self.executions = 0

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def matches(self, num_features: int, state_dim: int) -> bool:
        """Whether this plan's symbolic structure fits the given system."""
        return self.num_features == num_features and self.state_dim == state_dim

    @property
    def key(self) -> tuple[int, int, str]:
        return (self.num_features, self.state_dim, self.precision)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        u_diag: np.ndarray,
        w_block: np.ndarray,
        v_block: np.ndarray,
        b_x: np.ndarray,
        b_y: np.ndarray,
        damping: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray, PlanSolveStats]:
        """Run the structured solve for one iteration's numbers.

        Returns ``(d_lambda, d_state, stats)``. The two update vectors
        are *views into the plan's arenas* — valid until the next
        ``execute`` on this plan; callers that keep them must copy
        (:meth:`repro.slam.problem.LinearSystem.solve` does by default).
        """
        if u_diag.shape[0] != self.num_features or b_y.shape[0] != self.state_dim:
            raise SolverError(
                f"system ({u_diag.shape[0]}, {b_y.shape[0]}) does not match "
                f"plan structure ({self.num_features}, {self.state_dim})"
            )
        stats = PlanSolveStats()

        tic = perf_counter()
        # Damped landmark diagonal: floor, then in-place damping add —
        # no np.eye materialization anywhere on this path.
        np.maximum(u_diag, U_FLOOR, out=self.u_damped)
        if damping:
            self.u_damped += damping
        np.divide(1.0, self.u_damped, out=self.u_inv)
        d_type_schur_into(
            v_block, w_block, self.u_inv, b_x, b_y,
            out_reduced=self.reduced, out_rhs=self.reduced_rhs,
            w_scaled=self.w_scaled, scratch=self.scratch,
        )
        if damping:
            # In-place diagonal add on the reduced keyframe block —
            # through a ravel view, not ``.flat`` (flatiter slicing
            # round-trips through a copy).
            self.reduced.reshape(-1)[:: self.state_dim + 1] += damping
        stats.schur_seconds = perf_counter() - tic

        tic = perf_counter()
        if self.precision == "mixed":
            self._factor_with_retry(self.factor32, stats)
        else:
            self._factor_with_retry(self.factor, stats)
        stats.chol_seconds = perf_counter() - tic

        tic = perf_counter()
        if self.precision == "mixed":
            self._solve_mixed(stats)
        else:
            self._triangular_solves(self.factor, self.reduced_rhs, self.d_state)
        d_type_back_substitute_into(
            w_block, self.u_damped, b_x, self.d_state, out=self.d_lambda
        )
        stats.backsub_seconds = perf_counter() - tic

        self.last_stats = stats
        self.executions += 1
        return self.d_lambda, self.d_state, stats

    # ------------------------------------------------------------------
    # Factorization with escalating-jitter retry
    # ------------------------------------------------------------------

    def _factor_with_retry(self, factor: np.ndarray, stats: PlanSolveStats) -> None:
        """Factor ``self.reduced`` into ``factor`` (lower triangle).

        The first attempt is jitter-free; each retry restores the
        workspace from ``self.reduced`` and escalates the diagonal
        jitter. ``self.reduced`` itself is never mutated.
        """
        jitter = 0.0
        for attempt in range(MAX_FACTOR_ATTEMPTS):
            np.copyto(factor, self.reduced)
            if jitter:
                # The factor workspaces are Fortran-ordered; their
                # transpose is a C-contiguous view with the same diagonal.
                factor.T.reshape(-1)[:: self.state_dim + 1] += jitter
            stats.factor_attempts = attempt + 1
            try:
                self._factor_inplace(factor)
            except (SolverError, np.linalg.LinAlgError):
                jitter = JITTER_INITIAL if jitter == 0.0 else jitter * JITTER_GROWTH
                continue
            stats.jitter = jitter
            stats.jitter_applied = jitter != 0.0
            return
        raise SolverError(
            f"Cholesky failed after {MAX_FACTOR_ATTEMPTS} attempts "
            f"(final jitter {jitter:.1e})"
        )

    def _factor_inplace(self, work: np.ndarray) -> None:
        if work.shape[0] == 0:
            return
        if HAVE_SCIPY:
            try:
                result = _scipy_cholesky(
                    work, lower=True, overwrite_a=True, check_finite=False
                )
            except np.linalg.LinAlgError as error:
                raise SolverError(str(error)) from error
            if result is not work and not np.shares_memory(result, work):
                np.copyto(work, result)  # LAPACK declined in-place; keep contract
            return
        if work.dtype == np.float64:
            cholesky_inplace(work, self.scratch)
        else:
            # float32 fallback: stage the downdates through a float32
            # view of the float64 scratch arena (same memory, no alloc).
            scratch32 = self.scratch.reshape(-1).view(np.float32)[
                : work.shape[0] * work.shape[0]
            ].reshape(work.shape)
            cholesky_inplace(work, scratch32)

    # ------------------------------------------------------------------
    # Triangular solves
    # ------------------------------------------------------------------

    @staticmethod
    def _triangular_solves(
        factor: np.ndarray, rhs: np.ndarray, out: np.ndarray
    ) -> None:
        """Solve ``L L^T out = rhs`` given the lower factor, in place."""
        if factor.shape[0] == 0:
            return
        if HAVE_SCIPY:
            if out is not rhs:
                np.copyto(out, rhs, casting="unsafe")
            lower = _scipy_solve_triangular(
                factor, out, lower=True, overwrite_b=True, check_finite=False
            )
            upper = _scipy_solve_triangular(
                factor, lower, lower=True, trans="T", overwrite_b=True,
                check_finite=False,
            )
            if upper is not out and not np.shares_memory(upper, out):
                np.copyto(out, upper)
            return
        forward_substitution_into(factor, rhs, out)
        backward_substitution_transposed_into(factor, out, out)

    def _solve_mixed(self, stats: PlanSolveStats) -> None:
        """Float32 solve + float64 iterative refinement into d_state."""
        np.copyto(self.rhs32, self.reduced_rhs, casting="unsafe")
        self._triangular_solves(self.factor32, self.rhs32, self.rhs32)
        np.copyto(self.d_state, self.rhs32, casting="unsafe")
        if self.state_dim == 0:
            return
        rhs_norm = float(np.linalg.norm(self.reduced_rhs))
        tolerance = REFINEMENT_RTOL * max(rhs_norm, 1e-300)
        for _ in range(REFINEMENT_MAX_ITERATIONS):
            # residual = rhs - A x, in float64 against the true reduced
            # system (with the jitter the factorization applied, so the
            # refinement converges to the factored operator's solution).
            np.matmul(self.reduced, self.d_state, out=self.residual)
            if stats.jitter:
                self.residual += stats.jitter * self.d_state
            np.subtract(self.reduced_rhs, self.residual, out=self.residual)
            if float(np.linalg.norm(self.residual)) <= tolerance:
                break
            np.copyto(self.rhs32, self.residual, casting="unsafe")
            self._triangular_solves(self.factor32, self.rhs32, self.rhs32)
            self.d_state += self.rhs32
            stats.refinement_iterations += 1


# ----------------------------------------------------------------------
# The plan cache: reuse across windows of identical structure
# ----------------------------------------------------------------------

class SolverPlanCache:
    """LRU cache of :class:`SolverPlan` keyed by structure and thread.

    Workspaces are mutable, so a plan must never be shared across
    threads; the cache keys on ``threading.get_ident()`` in addition to
    the symbolic structure. This keeps the serving tier's worker threads
    race-free while still giving every thread cross-window reuse. The
    ``hits``/``misses`` counters are the plan-reuse hit-rate surfaced in
    ``BENCH_estimator.json``.
    """

    def __init__(self, max_plans: int = 64) -> None:
        if max_plans < 1:
            raise ConfigurationError("max_plans must be >= 1")
        self.max_plans = max_plans
        self._plans: OrderedDict[tuple, SolverPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(
        self, num_features: int, state_dim: int, precision: str = "float64"
    ) -> SolverPlan:
        """The cached plan for this structure (built on first miss)."""
        key = (int(num_features), int(state_dim), precision, threading.get_ident())
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.misses += 1
        # Build outside the lock — allocation is the slow part.
        plan = SolverPlan(num_features, state_dim, precision=precision)
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
        return plan

    def stats(self) -> dict:
        """Counters for benchmarks and observability exports."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "plans": len(self._plans),
            }

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


_default_cache: SolverPlanCache | None = None
_default_cache_lock = threading.Lock()


def default_plan_cache() -> SolverPlanCache:
    """The process-wide plan cache every solve path shares by default."""
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = SolverPlanCache()
        return _default_cache


def reset_default_plan_cache() -> SolverPlanCache:
    """Swap in a fresh default cache (tests, benchmark isolation)."""
    global _default_cache
    with _default_cache_lock:
        _default_cache = SolverPlanCache()
        return _default_cache
