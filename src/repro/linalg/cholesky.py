"""Cholesky decomposition in the hardware's Evaluate/Update form.

The accelerator's Cholesky block (Sec. 4.3) iterates column by column:
the *Evaluate* phase produces column ``i`` of ``L`` (a square root and a
column scale), and the *Update* phase applies the rank-1 downdate to the
trailing submatrix. ``cholesky_evaluate_update`` implements exactly that
schedule so the cycle simulator can count Evaluate/Update operations
while computing the true factor, and tests can check it against
``numpy.linalg.cholesky``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.utils.validation import check_square


def cholesky_evaluate_update(
    matrix: np.ndarray, jitter: float = 0.0
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Factor a symmetric positive-definite matrix as ``L @ L.T``.

    Returns the lower-triangular factor and the per-iteration operation
    counts ``[(evaluate_ops_i, update_ops_i), ...]`` that the latency
    model of Equ. 7 is built from: at iteration ``i`` over an ``m x m``
    input the Evaluate phase touches ``m - i`` elements and the Update
    phase ``(m - i - 1)(m - i) / 2`` elements.

    Args:
        matrix: symmetric positive-definite input.
        jitter: value added to the diagonal before factoring (the
            Levenberg-Marquardt damping path reuses this kernel).

    Raises:
        SolverError: if a pivot is not strictly positive.
    """
    work = check_square("matrix", matrix).copy()
    size = work.shape[0]
    if jitter:
        work[np.diag_indices(size)] += jitter
    factor = np.zeros_like(work)
    op_counts: list[tuple[int, int]] = []
    for i in range(size):
        pivot = work[i, i]
        if pivot <= 0.0 or not np.isfinite(pivot):
            raise SolverError(f"non-positive pivot {pivot:.3e} at column {i}")
        # Evaluate phase: sqrt + scale the column below the pivot.
        diag = np.sqrt(pivot)
        factor[i, i] = diag
        column = work[i + 1 :, i] / diag
        factor[i + 1 :, i] = column
        evaluate_ops = size - i
        # Update phase: rank-1 downdate of the trailing block.
        if column.size:
            work[i + 1 :, i + 1 :] -= np.outer(column, column)
        update_ops = (size - i - 1) * (size - i) // 2
        op_counts.append((evaluate_ops, update_ops))
    return factor, op_counts


def cholesky_inplace(work: np.ndarray, outer_scratch: np.ndarray) -> None:
    """Factor SPD ``work`` in place: its lower triangle becomes ``L``.

    The allocation-free counterpart of :func:`cholesky_evaluate_update`
    for the :class:`repro.linalg.plan.SolverPlan` workspaces: the rank-1
    trailing downdates are staged through the caller-owned
    ``outer_scratch`` (at least the same shape as ``work``) instead of
    per-column temporaries. The strictly upper triangle of ``work`` is
    left untouched (stale input values); downstream substitutions only
    read the lower triangle. No operation counts are recorded — use
    :func:`cholesky_evaluate_update` when the Equ. 7 latency model needs
    them.

    Raises:
        SolverError: if a pivot is not strictly positive. ``work`` is
            left partially factored; callers retry from a fresh copy.
    """
    size = work.shape[0]
    for i in range(size):
        pivot = work[i, i]
        if not pivot > 0.0 or not np.isfinite(pivot):
            raise SolverError(f"non-positive pivot {pivot:.3e} at column {i}")
        diag = np.sqrt(pivot)
        work[i, i] = diag
        column = work[i + 1 :, i]
        if column.size:
            column /= diag
            buffer = outer_scratch[: column.size, : column.size]
            np.multiply(column[:, None], column[None, :], out=buffer)
            trailing = work[i + 1 :, i + 1 :]
            np.subtract(trailing, buffer, out=trailing)


def forward_substitution_into(
    lower: np.ndarray, rhs: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Solve ``L y = rhs`` into the preallocated ``out`` (no allocation).

    Reads only the lower triangle of ``lower``; assumes the strictly
    positive diagonal a successful Cholesky guarantees. ``out is rhs``
    is allowed (in-place solve).
    """
    size = lower.shape[0]
    for i in range(size):
        out[i] = (rhs[i] - lower[i, :i] @ out[:i]) / lower[i, i]
    return out


def backward_substitution_transposed_into(
    lower: np.ndarray, rhs: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Solve ``L^T x = rhs`` into ``out``, reading the *lower* factor.

    Column ``i`` of ``L`` is row ``i`` of ``L^T``, so the loop walks the
    factor's columns directly instead of materializing a transposed
    view. ``out is rhs`` is allowed.
    """
    size = lower.shape[0]
    for i in range(size - 1, -1, -1):
        out[i] = (rhs[i] - lower[i + 1 :, i] @ out[i + 1 :]) / lower[i, i]
    return out


def forward_substitution(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L y = rhs`` for lower-triangular ``L`` (the FBSub node)."""
    lower = check_square("lower", lower)
    rhs = np.asarray(rhs, dtype=float)
    size = lower.shape[0]
    y = np.zeros_like(rhs, dtype=float)
    for i in range(size):
        pivot = lower[i, i]
        if pivot == 0.0:
            raise SolverError(f"zero pivot at row {i} in forward substitution")
        y[i] = (rhs[i] - lower[i, :i] @ y[:i]) / pivot
    return y


def backward_substitution(upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``U x = rhs`` for upper-triangular ``U`` (the FBSub node)."""
    upper = check_square("upper", upper)
    rhs = np.asarray(rhs, dtype=float)
    size = upper.shape[0]
    x = np.zeros_like(rhs, dtype=float)
    for i in range(size - 1, -1, -1):
        pivot = upper[i, i]
        if pivot == 0.0:
            raise SolverError(f"zero pivot at row {i} in backward substitution")
        x[i] = (rhs[i] - upper[i, i + 1 :] @ x[i + 1 :]) / pivot
    return x


def solve_cholesky(factor: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = rhs`` given the lower factor ``L``."""
    y = forward_substitution(factor, rhs)
    return backward_substitution(factor.T, y)


def solve_spd(matrix: np.ndarray, rhs: np.ndarray, jitter: float = 0.0) -> np.ndarray:
    """Factor-and-solve for a symmetric positive-definite system."""
    factor, _ = cholesky_evaluate_update(matrix, jitter=jitter)
    return solve_cholesky(factor, rhs)
