"""Functional execution of M-DFG primitives and solver graphs.

The M-DFG is not just a cost/scheduling artifact — each primitive node
(Tbl. 1) has precise numerical semantics, implemented here on top of the
same :mod:`repro.linalg` kernels the hardware mirrors. The interpreter
serves two purposes:

* :func:`evaluate_primitive` defines what each node type *computes*,
  so tests can certify that graph-level execution equals the monolithic
  solver (the correctness contract behind mapping the graph onto
  hardware blocks);
* :func:`execute_linear_solver_graph` walks the builder's Fig. 3b graph
  node by node — the exact dataflow the accelerator's NLS path executes
  — and returns the same solution as
  :meth:`repro.slam.problem.LinearSystem.solve`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.linalg.cholesky import cholesky_evaluate_update, solve_cholesky
from repro.mdfg.graph import MDFG
from repro.mdfg.nodes import MDFGNode, NodeType


def evaluate_primitive(node_type: NodeType, *inputs: np.ndarray) -> np.ndarray:
    """Numerical semantics of one primitive node.

    Input conventions:
        DMATINV(d)          -> elementwise 1/d for a diagonal vector d.
        MATMUL(a, b)        -> a @ b.
        DMATMUL(d, m)       -> diag(d) @ m, i.e. row scaling.
        MATSUB(a, b)        -> a - b.
        MATTP(a)            -> a.T.
        CD(s)               -> lower Cholesky factor of SPD s.
        FBSUB(l, rhs)       -> solve (L L^T) x = rhs.

    VJAC/IJAC are not evaluable here: their semantics live in
    :mod:`repro.slam.residuals` (they produce factor linearizations, not
    matrix transforms).
    """
    if node_type is NodeType.DMATINV:
        (diag,) = inputs
        diag = np.asarray(diag, dtype=float)
        if np.any(diag == 0.0):
            raise GraphError("DMatInv input has zero diagonal entries")
        return 1.0 / diag
    if node_type is NodeType.MATMUL:
        a, b = inputs
        return np.asarray(a) @ np.asarray(b)
    if node_type is NodeType.DMATMUL:
        diag, matrix = inputs
        return np.asarray(matrix) * np.asarray(diag).reshape(-1, *([1] * (np.ndim(matrix) - 1)))
    if node_type is NodeType.MATSUB:
        a, b = inputs
        return np.asarray(a) - np.asarray(b)
    if node_type is NodeType.MATTP:
        (a,) = inputs
        return np.asarray(a).T
    if node_type is NodeType.CD:
        (s,) = inputs
        factor, _ = cholesky_evaluate_update(np.asarray(s, dtype=float))
        return factor
    if node_type is NodeType.FBSUB:
        factor, rhs = inputs
        return solve_cholesky(np.asarray(factor, dtype=float), np.asarray(rhs, dtype=float))
    raise GraphError(f"{node_type.value} has no matrix-transform semantics")


def execute_linear_solver_graph(
    graph: MDFG,
    u_diag: np.ndarray,
    w_block: np.ndarray,
    v_block: np.ndarray,
    b_x: np.ndarray,
    b_y: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Execute the Fig. 3b linear-solver M-DFG on concrete inputs.

    The graph must be one produced by
    :func:`repro.mdfg.builder.build_linear_solver_mdfg`; nodes are
    identified by their builder-assigned labels and executed in
    topological order with explicit value routing, exactly like the
    static schedule drives the hardware blocks.

    Returns:
        (d_lambda, d_state) solving
        [[diag(u), W^T], [W, V]] [d_lambda, d_state] = [b_x, b_y].
    """
    u_diag = np.asarray(u_diag, dtype=float)
    w_block = np.asarray(w_block, dtype=float)
    v_block = np.asarray(v_block, dtype=float)
    b_x = np.asarray(b_x, dtype=float)
    b_y = np.asarray(b_y, dtype=float)

    values: dict[str, np.ndarray] = {}
    by_label: dict[str, MDFGNode] = {}
    for node in graph.topological_order():
        if node.label in by_label:
            raise GraphError(f"duplicate node label {node.label!r}")
        by_label[node.label] = node

    expected = {
        "U^-1", "W^T", "W U^-1", "(W U^-1) W^T", "V - W U^-1 W^T",
        "(W U^-1) b_x", "b_y - W U^-1 b_x", "Cholesky", "solve d_state",
        "W^T d_state",
    }
    missing = expected - set(by_label)
    if missing:
        raise GraphError(f"not a linear-solver graph; missing nodes {sorted(missing)}")

    values["U^-1"] = evaluate_primitive(NodeType.DMATINV, u_diag)
    values["W^T"] = evaluate_primitive(NodeType.MATTP, w_block)
    # W U^-1 as column scaling of W (stored transposed: one row per feature).
    values["W U^-1"] = evaluate_primitive(
        NodeType.DMATMUL, values["U^-1"], values["W^T"]
    )  # (p, q): row f = u_f^-1 * W[:, f]^T
    values["(W U^-1) W^T"] = evaluate_primitive(
        NodeType.MATMUL, w_block, values["W U^-1"]
    )  # (q, q) = W @ (U^-1 W^T)
    values["V - W U^-1 W^T"] = evaluate_primitive(
        NodeType.MATSUB, v_block, values["(W U^-1) W^T"]
    )
    values["(W U^-1) b_x"] = evaluate_primitive(
        NodeType.MATMUL, values["W U^-1"].T, b_x
    )
    values["b_y - W U^-1 b_x"] = evaluate_primitive(
        NodeType.MATSUB, b_y, values["(W U^-1) b_x"]
    )
    values["Cholesky"] = evaluate_primitive(NodeType.CD, values["V - W U^-1 W^T"])
    values["solve d_state"] = evaluate_primitive(
        NodeType.FBSUB, values["Cholesky"], values["b_y - W U^-1 b_x"]
    )
    values["W^T d_state"] = evaluate_primitive(
        NodeType.MATMUL, values["W^T"], values["solve d_state"]
    )
    d_state = values["solve d_state"]
    d_lambda = values["U^-1"] * (b_x - values["W^T d_state"])
    return d_lambda, d_state
