"""The typed macro data-flow graph.

A thin wrapper over a :class:`networkx.DiGraph` whose vertices are
:class:`~repro.mdfg.nodes.MDFGNode` objects. Provides validation (the
graph must be a DAG), total/critical-path cost queries, and the
identical-subgraph search the static scheduler uses for hardware block
sharing (Sec. 4.1).
"""

from __future__ import annotations

from collections import defaultdict

import networkx as nx

from repro.errors import GraphError
from repro.mdfg.cost import CostModel, node_cost
from repro.mdfg.nodes import MDFGNode, NodeType


class MDFG:
    """A macro data-flow graph."""

    def __init__(self, name: str = "mdfg") -> None:
        self.name = name
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: MDFGNode) -> MDFGNode:
        self._graph.add_node(node)
        return node

    def add(self, node_type: NodeType, dims: tuple[int, ...], label: str = "",
            after: list[MDFGNode] | None = None) -> MDFGNode:
        """Create a node, add it, and wire edges from its producers."""
        node = MDFGNode(node_type, tuple(int(d) for d in dims), label)
        self._graph.add_node(node)
        for producer in after or []:
            self.add_edge(producer, node)
        return node

    def add_edge(self, producer: MDFGNode, consumer: MDFGNode) -> None:
        if producer not in self._graph or consumer not in self._graph:
            raise GraphError("both endpoints must be added before wiring an edge")
        self._graph.add_edge(producer, consumer)

    def merge(self, other: "MDFG") -> None:
        """Union another graph's nodes and edges into this one."""
        self._graph.add_nodes_from(other._graph.nodes)
        self._graph.add_edges_from(other._graph.edges)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> list[MDFGNode]:
        return list(self._graph.nodes)

    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def successors(self, node: MDFGNode) -> list[MDFGNode]:
        return list(self._graph.successors(node))

    def predecessors(self, node: MDFGNode) -> list[MDFGNode]:
        return list(self._graph.predecessors(node))

    def validate(self) -> None:
        """Raise :class:`GraphError` unless the graph is a non-empty DAG."""
        if self.num_nodes == 0:
            raise GraphError(f"M-DFG {self.name!r} is empty")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise GraphError(f"M-DFG {self.name!r} contains a cycle")

    def topological_order(self) -> list[MDFGNode]:
        self.validate()
        return list(nx.topological_sort(self._graph))

    def total_cost(self, model: CostModel | None = None) -> float:
        """Sum of all node costs: the work a serial executor performs."""
        return sum(node_cost(n, model) for n in self._graph.nodes)

    def critical_path_cost(self, model: CostModel | None = None) -> float:
        """Longest weighted path: a bound on fully-parallel latency."""
        self.validate()
        best: dict[MDFGNode, float] = {}
        for node in nx.topological_sort(self._graph):
            incoming = [best[p] for p in self._graph.predecessors(node)]
            best[node] = (max(incoming) if incoming else 0.0) + node_cost(node, model)
        return max(best.values())

    def count_by_type(self) -> dict[NodeType, int]:
        counts: dict[NodeType, int] = defaultdict(int)
        for node in self._graph.nodes:
            counts[node.node_type] += 1
        return dict(counts)

    # ------------------------------------------------------------------
    # Identical-subgraph search (hardware sharing)
    # ------------------------------------------------------------------

    def signature_groups(self) -> dict[tuple, list[MDFGNode]]:
        """Group nodes by structural signature (type + dims)."""
        groups: dict[tuple, list[MDFGNode]] = defaultdict(list)
        for node in self._graph.nodes:
            groups[node.signature()].append(node)
        return dict(groups)

    def shareable_signatures(self) -> list[tuple]:
        """Signatures that occur more than once: candidates for mapping
        multiple M-DFG nodes onto one physical hardware block."""
        return [sig for sig, nodes in self.signature_groups().items() if len(nodes) > 1]
