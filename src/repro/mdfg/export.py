"""M-DFG export: Graphviz DOT rendering for inspection and papers.

``to_dot`` produces a DOT document colored by the hardware block each
node is scheduled onto, which visualizes the Fig. 5 mapping directly
from a built graph.
"""

from __future__ import annotations

from repro.mdfg.graph import MDFG
from repro.mdfg.schedule import HardwareBlockType, schedule_mdfg

_BLOCK_COLORS = {
    HardwareBlockType.VISUAL_JACOBIAN: "lightblue",
    HardwareBlockType.IMU_JACOBIAN: "lightcyan",
    HardwareBlockType.PREPARE_LOGIC: "wheat",
    HardwareBlockType.DSCHUR: "lightgreen",
    HardwareBlockType.MSCHUR: "palegreen",
    HardwareBlockType.CHOLESKY: "salmon",
    HardwareBlockType.BACK_SUBSTITUTION: "lightpink",
    HardwareBlockType.FORM_INFO_LOGIC: "khaki",
    HardwareBlockType.UPDATE_LOGIC: "lavender",
}


def to_dot(graph: MDFG, name: str | None = None) -> str:
    """Render the graph as a Graphviz DOT document.

    Nodes are labeled ``TYPE dims\\nrole`` and filled with the color of
    their scheduled hardware block.
    """
    schedule = schedule_mdfg(graph)
    lines = [f'digraph "{name or graph.name}" {{', "  rankdir=TB;", "  node [shape=box, style=filled];"]
    ids = {node: f"n{node.uid}" for node in graph.nodes}
    for node in graph.topological_order():
        block = schedule.assignments[node]
        color = _BLOCK_COLORS.get(block, "white")
        label = f"{node.node_type.value} {node.dims}"
        if node.label:
            label += f"\\n{node.label}"
        lines.append(f'  {ids[node]} [label="{label}", fillcolor={color}];')
    for node in graph.nodes:
        for successor in graph.successors(node):
            lines.append(f"  {ids[node]} -> {ids[successor]};")
    lines.append("}")
    return "\n".join(lines)
