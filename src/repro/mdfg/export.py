"""M-DFG export: Graphviz DOT rendering and a JSON round-trip format.

``to_dot`` produces a DOT document colored by the hardware block each
node is scheduled onto, which visualizes the Fig. 5 mapping directly
from a built graph. ``to_json``/``from_json`` serialize a graph to a
self-contained document (nodes in topological order, edges as index
pairs) and rebuild it — the round-trip preserves node/edge structure
and the schedule, which is what lets a built M-DFG be archived next to
the design it parameterized.
"""

from __future__ import annotations

import json

from repro.errors import GraphError
from repro.mdfg.graph import MDFG
from repro.mdfg.nodes import MDFGNode, NodeType
from repro.mdfg.schedule import HardwareBlockType, schedule_mdfg

_BLOCK_COLORS = {
    HardwareBlockType.VISUAL_JACOBIAN: "lightblue",
    HardwareBlockType.IMU_JACOBIAN: "lightcyan",
    HardwareBlockType.PREPARE_LOGIC: "wheat",
    HardwareBlockType.DSCHUR: "lightgreen",
    HardwareBlockType.MSCHUR: "palegreen",
    HardwareBlockType.CHOLESKY: "salmon",
    HardwareBlockType.BACK_SUBSTITUTION: "lightpink",
    HardwareBlockType.FORM_INFO_LOGIC: "khaki",
    HardwareBlockType.UPDATE_LOGIC: "lavender",
}


def to_dot(graph: MDFG, name: str | None = None) -> str:
    """Render the graph as a Graphviz DOT document.

    Nodes are labeled ``TYPE dims\\nrole`` and filled with the color of
    their scheduled hardware block.
    """
    schedule = schedule_mdfg(graph)
    lines = [f'digraph "{name or graph.name}" {{', "  rankdir=TB;", "  node [shape=box, style=filled];"]
    ids = {node: f"n{node.uid}" for node in graph.nodes}
    for node in graph.topological_order():
        block = schedule.assignments[node]
        color = _BLOCK_COLORS.get(block, "white")
        label = f"{node.node_type.value} {node.dims}"
        if node.label:
            label += f"\\n{node.label}"
        lines.append(f'  {ids[node]} [label="{label}", fillcolor={color}];')
    for node in graph.nodes:
        for successor in graph.successors(node):
            lines.append(f"  {ids[node]} -> {ids[successor]};")
    lines.append("}")
    return "\n".join(lines)


JSON_SCHEMA_VERSION = 1


def to_json(graph: MDFG) -> str:
    """Serialize the graph to a self-contained JSON document.

    Nodes are listed in topological order (so the document doubles as a
    valid execution order) and edges reference node list indices; uids
    are deliberately not stored — they are process-local identity, not
    structure.
    """
    order = graph.topological_order()
    index = {node: i for i, node in enumerate(order)}
    document = {
        "schema": JSON_SCHEMA_VERSION,
        "name": graph.name,
        "nodes": [
            {"type": node.node_type.value, "dims": list(node.dims), "label": node.label}
            for node in order
        ],
        "edges": [
            [index[node], index[successor]]
            for node in order
            for successor in graph.successors(node)
        ],
    }
    return json.dumps(document, indent=2)


def from_json(document: str) -> MDFG:
    """Rebuild a graph from :func:`to_json` output.

    The reconstructed graph has fresh node uids but identical structure:
    same node signature multiset, same edge relation, same topological
    node sequence, and therefore the same schedule and costs.
    """
    try:
        data = json.loads(document)
    except json.JSONDecodeError as error:
        raise GraphError(f"malformed M-DFG JSON: {error}") from error
    if data.get("schema") != JSON_SCHEMA_VERSION:
        raise GraphError(
            f"unsupported M-DFG JSON schema {data.get('schema')!r} "
            f"(expected {JSON_SCHEMA_VERSION})"
        )
    graph = MDFG(name=data.get("name", "mdfg"))
    nodes: list[MDFGNode] = []
    try:
        for record in data["nodes"]:
            node = MDFGNode(
                NodeType(record["type"]),
                tuple(int(d) for d in record["dims"]),
                record.get("label", ""),
            )
            graph.add_node(node)
            nodes.append(node)
        for producer, consumer in data["edges"]:
            graph.add_edge(nodes[producer], nodes[consumer])
    except (KeyError, IndexError, ValueError, TypeError) as error:
        raise GraphError(f"malformed M-DFG JSON: {error}") from error
    return graph
