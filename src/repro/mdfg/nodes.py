"""Primitive M-DFG node types (Tbl. 1 of the paper).

The vocabulary is deliberately coarse: low-level enough to compose any of
the algorithm's blocks, high-level enough that each node maps onto one
well-optimized hardware structure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum


class NodeType(Enum):
    """The nine primitive node types of Tbl. 1."""

    DMATINV = "DMatInv"  # diagonal matrix inversion
    MATMUL = "MatMul"  # dense matrix multiplication
    DMATMUL = "DMatMul"  # diagonal x dense multiplication
    MATSUB = "MatSub"  # matrix subtraction (addition)
    MATTP = "MatTp"  # matrix transpose
    CD = "CD"  # Cholesky decomposition
    FBSUB = "FBSub"  # forward + backward substitution
    VJAC = "VJac"  # visual Jacobian evaluation
    IJAC = "IJac"  # IMU Jacobian evaluation


_node_counter = itertools.count()


@dataclass(frozen=True)
class MDFGNode:
    """One node of the macro data-flow graph.

    Attributes:
        node_type: the primitive operation.
        dims: operation-specific size tuple —
            MATMUL: (m, k, n) for an (m x k) @ (k x n) product;
            DMATMUL: (p, n) for diag(p) @ (p x n);
            DMATINV: (p,); MATSUB / MATTP: (m, n);
            CD / FBSUB: (m,) for an m x m system;
            VJAC: (num_observations,); IJAC: (num_links,).
        label: human-readable role in the graph (e.g. "W U^-1").
        uid: unique id, auto-assigned; makes nodes hashable for networkx.
    """

    node_type: NodeType
    dims: tuple[int, ...]
    label: str = ""
    uid: int = field(default_factory=lambda: next(_node_counter))

    def __post_init__(self) -> None:
        expected = {
            NodeType.MATMUL: 3,
            NodeType.DMATMUL: 2,
            NodeType.DMATINV: 1,
            NodeType.MATSUB: 2,
            NodeType.MATTP: 2,
            NodeType.CD: 1,
            NodeType.FBSUB: 1,
            NodeType.VJAC: 1,
            NodeType.IJAC: 1,
        }[self.node_type]
        if len(self.dims) != expected:
            raise ValueError(
                f"{self.node_type.value} expects {expected} dims, got {self.dims}"
            )
        if any(d < 0 for d in self.dims):
            raise ValueError(f"dims must be non-negative, got {self.dims}")

    def signature(self) -> tuple:
        """Structural identity ignoring the uid — used by the scheduler to
        find identical subgraphs that can share one hardware block."""
        return (self.node_type, self.dims)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" '{self.label}'" if self.label else ""
        return f"<{self.node_type.value}{self.dims}{tag}>"
