"""Static scheduling of the M-DFG onto the hardware template (Sec. 4.1).

The M-DFG is known offline, so the schedule is computed once: every node
is assigned to one of the template's physical blocks (Fig. 5), identical
subgraphs in the two serialized phases (NLS / marginalization) are mapped
to the *same* block, and producer-consumer block pairs that stream
feature-granular data are marked as pipelined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ScheduleError
from repro.mdfg.graph import MDFG
from repro.mdfg.nodes import MDFGNode, NodeType


class HardwareBlockType(Enum):
    """Physical blocks of the Fig. 5 template."""

    VISUAL_JACOBIAN = "visual-jacobian-unit"
    IMU_JACOBIAN = "imu-jacobian-unit"
    PREPARE_LOGIC = "prepare-ab-logic"
    DSCHUR = "d-type-schur"
    MSCHUR = "m-type-schur"
    CHOLESKY = "cholesky"
    BACK_SUBSTITUTION = "back-substitution"
    FORM_INFO_LOGIC = "form-information-logic"
    UPDATE_LOGIC = "update-logic"


# Node-type -> block-type routing. MATMUL/MATSUB/DMATMUL/DMATINV nodes are
# parts of larger Schur computations; they are assigned by subgraph role
# (the node label assigned by the builder) below.
_DIRECT_ROUTING = {
    NodeType.VJAC: HardwareBlockType.VISUAL_JACOBIAN,
    NodeType.IJAC: HardwareBlockType.IMU_JACOBIAN,
    NodeType.CD: HardwareBlockType.CHOLESKY,
    NodeType.FBSUB: HardwareBlockType.BACK_SUBSTITUTION,
}

_LABEL_ROUTING = {
    "prepare A, b": HardwareBlockType.PREPARE_LOGIC,
    "H = J^T J": HardwareBlockType.FORM_INFO_LOGIC,
    "b = J^T e": HardwareBlockType.FORM_INFO_LOGIC,
    "update p": HardwareBlockType.UPDATE_LOGIC,
}

_MSCHUR_LABELS = {
    "Lambda M^-1",
    "Lambda M^-1 Lambda^T",
    "Hp",
    "Lambda M^-1 b_m",
    "rp",
}


@dataclass
class Schedule:
    """The static mapping from M-DFG nodes to physical blocks."""

    assignments: dict[MDFGNode, HardwareBlockType] = field(default_factory=dict)
    shared_blocks: dict[HardwareBlockType, int] = field(default_factory=dict)
    pipelined_pairs: list[tuple[HardwareBlockType, HardwareBlockType]] = field(
        default_factory=list
    )

    def nodes_on(self, block: HardwareBlockType) -> list[MDFGNode]:
        return [n for n, b in self.assignments.items() if b is block]

    @property
    def num_physical_blocks(self) -> int:
        return len({b for b in self.assignments.values()})

    def sharing_factor(self, block: HardwareBlockType) -> int:
        """How many M-DFG nodes time-share this physical block."""
        return len(self.nodes_on(block))


def _route(node: MDFGNode) -> HardwareBlockType:
    if node.node_type in _DIRECT_ROUTING:
        return _DIRECT_ROUTING[node.node_type]
    if node.label in _LABEL_ROUTING:
        return _LABEL_ROUTING[node.label]
    if node.label in _MSCHUR_LABELS:
        return HardwareBlockType.MSCHUR
    # Everything else (DMatInv/DMatMul/MatMul/MatSub/MatTp inside the
    # arrow-system solve and the blocked M inverse) is D-type Schur work.
    if node.node_type in (
        NodeType.DMATINV,
        NodeType.DMATMUL,
        NodeType.MATMUL,
        NodeType.MATSUB,
        NodeType.MATTP,
    ):
        return HardwareBlockType.DSCHUR
    raise ScheduleError(f"no routing rule for node {node!r}")  # pragma: no cover


def schedule_mdfg(graph: MDFG) -> Schedule:
    """Statically schedule an M-DFG onto the Fig. 5 template.

    Sharing: because the NLS phase and marginalization are serialized,
    their identical-signature nodes (notably the D-type Schur work and
    Cholesky) map to the same physical block — the sharing the paper's
    scheduler performs by matching identical subgraphs.
    """
    graph.validate()
    schedule = Schedule()
    for node in graph.topological_order():
        schedule.assignments[node] = _route(node)

    for block in HardwareBlockType:
        count = schedule.sharing_factor(block)
        if count:
            schedule.shared_blocks[block] = count

    # Pipelining: Jacobian production streams feature-by-feature into the
    # D-type Schur (Sec. 4.4), and Feature->Observation inside the VJac
    # unit (Sec. 4.2) — recorded at block granularity for the simulator.
    if (
        HardwareBlockType.VISUAL_JACOBIAN in schedule.shared_blocks
        and HardwareBlockType.DSCHUR in schedule.shared_blocks
    ):
        schedule.pipelined_pairs.append(
            (HardwareBlockType.VISUAL_JACOBIAN, HardwareBlockType.DSCHUR)
        )
    return schedule
