"""Macro data-flow graph (M-DFG) construction and optimization (Sec. 3).

The M-DFG is Archytas's coarse-grained program representation: each node
is a well-optimized hardware-sized function (Tbl. 1) rather than a single
arithmetic operation. This package provides:

* the primitive node vocabulary and typed graph (:mod:`nodes`, :mod:`graph`);
* per-node arithmetic cost models (:mod:`cost`);
* the cost-driven builder that lowers the algorithm of Fig. 2 into a
  concrete M-DFG, choosing the blocking strategy for the linear solver
  and marginalization (:mod:`builder`);
* the data-layout optimizer of Sec. 3.3 (:mod:`layout`);
* the static scheduler that maps subgraphs onto shared hardware blocks
  and decides pipelining (:mod:`schedule`).
"""

from repro.mdfg.nodes import NodeType, MDFGNode
from repro.mdfg.graph import MDFG
from repro.mdfg.cost import node_cost, CostModel
from repro.mdfg.builder import (
    BlockingChoice,
    optimal_linear_solver_blocking,
    optimal_marginalization_blocking,
    build_linear_solver_mdfg,
    build_marginalization_mdfg,
    build_window_mdfg,
)
from repro.mdfg.export import from_json, to_dot, to_json
from repro.mdfg.layout import LayoutDecision, choose_s_matrix_layout
from repro.mdfg.schedule import HardwareBlockType, Schedule, schedule_mdfg

__all__ = [
    "NodeType",
    "MDFGNode",
    "MDFG",
    "node_cost",
    "CostModel",
    "BlockingChoice",
    "optimal_linear_solver_blocking",
    "optimal_marginalization_blocking",
    "build_linear_solver_mdfg",
    "build_marginalization_mdfg",
    "build_window_mdfg",
    "LayoutDecision",
    "choose_s_matrix_layout",
    "to_dot",
    "to_json",
    "from_json",
    "HardwareBlockType",
    "Schedule",
    "schedule_mdfg",
]
