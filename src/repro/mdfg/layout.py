"""Data-layout optimization (Sec. 3.3).

Alongside the M-DFG, Archytas chooses the storage layout of key data
structures. The dominant one is the S matrix (40-80% of total on-chip
storage); the optimizer compares the candidate encodings — dense,
symmetry-only, symmetric CSR, and the SLAM-specific compact split into
Si block-diagonals plus a compacted Sc — and picks the cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linalg.smatrix import SMatrixLayout


@dataclass(frozen=True)
class LayoutDecision:
    """Chosen S-matrix encoding and the full comparison table."""

    chosen: str
    words: float
    candidates: dict[str, float]
    saving_vs_dense: float
    saving_vs_csr: float


def choose_s_matrix_layout(k: int = 15, b: int = 15) -> LayoutDecision:
    """Pick the cheapest S-matrix encoding for the given window shape."""
    layout = SMatrixLayout(k=k, b=b)
    candidates = {
        "dense": float(layout.dense_words),
        "symmetric": float(layout.symmetric_words),
        "csr-symmetric": float(layout.csr_words(symmetric=True)),
        "compact-si-sc": float(layout.compact_words),
    }
    chosen = min(candidates, key=candidates.get)
    return LayoutDecision(
        chosen=chosen,
        words=candidates[chosen],
        candidates=candidates,
        saving_vs_dense=1.0 - candidates[chosen] / candidates["dense"],
        saving_vs_csr=1.0 - candidates[chosen] / candidates["csr-symmetric"],
    )


def s_matrix_buffer_words(k: int, b: int) -> int:
    """Words the hardware's Linear System Parameter Buffer must hold,
    under the compact layout (used by the resource model)."""
    return SMatrixLayout(k=k, b=b).compact_words
