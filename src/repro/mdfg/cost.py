"""Arithmetic cost models of the primitive M-DFG nodes.

These are the cost models the M-DFG builder minimizes when it chooses a
blocking strategy (Sec. 3.2.2): "the cost model is obtained by
accumulating the amount of arithmetic operations of each primitive node"
(e.g. matrix multiplication requires ~n^3 operations). Costs are counted
in multiply-accumulate-equivalent operations; square roots and divides
are weighted because they occupy much deeper hardware pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mdfg.nodes import MDFGNode, NodeType

# Per-observation arithmetic of one VJac evaluation: camera projection,
# the 2x3 projection Jacobian, two 2x6 pose Jacobians and the chain
# products (Sec. 4.2's Observation block).
VJAC_OPS_PER_OBSERVATION = 180
# One IJac evaluation: the 15-dim residual and two 15x15 Jacobian blocks.
IJAC_OPS_PER_LINK = 2600


@dataclass(frozen=True)
class CostModel:
    """Weights for operation classes (MAC = 1 by definition)."""

    mac: float = 1.0
    divide: float = 4.0
    sqrt: float = 8.0

    def matmul(self, m: int, k: int, n: int) -> float:
        return self.mac * m * k * n

    def dmatmul(self, p: int, n: int) -> float:
        return self.mac * p * n

    def dmatinv(self, p: int) -> float:
        return self.divide * p

    def matsub(self, m: int, n: int) -> float:
        return self.mac * m * n

    def mattp(self, m: int, n: int) -> float:
        # Pure data movement; free in the arithmetic model (the layout
        # cost is captured by the hardware model's buffers instead).
        return 0.0

    def cholesky(self, m: int) -> float:
        # m sqrt + m(m-1)/2 divides + ~m^3/6 MACs in the updates.
        return self.sqrt * m + self.divide * m * (m - 1) / 2 + self.mac * m**3 / 6.0

    def fbsub(self, m: int) -> float:
        # Forward + backward triangular solves: ~m^2 MACs + 2m divides.
        return self.mac * m * m + self.divide * 2 * m

    def vjac(self, observations: int) -> float:
        return self.mac * VJAC_OPS_PER_OBSERVATION * observations

    def ijac(self, links: int) -> float:
        return self.mac * IJAC_OPS_PER_LINK * links


DEFAULT_COST_MODEL = CostModel()


def node_cost(node: MDFGNode, model: CostModel | None = None) -> float:
    """Arithmetic cost of a single node under the given cost model."""
    model = model or DEFAULT_COST_MODEL
    kind, dims = node.node_type, node.dims
    if kind is NodeType.MATMUL:
        return model.matmul(*dims)
    if kind is NodeType.DMATMUL:
        return model.dmatmul(*dims)
    if kind is NodeType.DMATINV:
        return model.dmatinv(*dims)
    if kind is NodeType.MATSUB:
        return model.matsub(*dims)
    if kind is NodeType.MATTP:
        return model.mattp(*dims)
    if kind is NodeType.CD:
        return model.cholesky(*dims)
    if kind is NodeType.FBSUB:
        return model.fbsub(*dims)
    if kind is NodeType.VJAC:
        return model.vjac(*dims)
    if kind is NodeType.IJAC:
        return model.ijac(*dims)
    raise ValueError(f"unknown node type {kind}")  # pragma: no cover
