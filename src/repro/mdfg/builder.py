"""Cost-driven lowering of the MAP algorithm into a concrete M-DFG.

This is Sec. 3.2: the high-level algorithm (Fig. 2) leaves blocks like
"solve the linear system" and "invert M" unimplemented; the builder
chooses among implementations by minimizing the accumulated primitive-
node cost, which for the linear solver reduces to picking the blocking
split ``p`` of the arrow matrix. The optimum almost always puts the
(diagonal) landmark block in ``U`` — the D-type Schur — reproducing the
paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.mdfg.cost import CostModel, DEFAULT_COST_MODEL
from repro.mdfg.graph import MDFG
from repro.mdfg.nodes import NodeType


@dataclass(frozen=True)
class BlockingChoice:
    """Outcome of the blocking-strategy optimization.

    Attributes:
        split: the chosen ``p`` (size of the eliminated U / M11 block).
        diagonal: whether the eliminated block is diagonal at this split.
        cost: modeled arithmetic cost of the chosen implementation.
        alternatives: candidate description -> modeled cost, for
            inspection and for the Sec. 3.2 ablation benchmark.
    """

    split: int
    diagonal: bool
    cost: float
    alternatives: dict[str, float] = field(default_factory=dict)


def _schur_solve_cost(
    p: int,
    q: int,
    diagonal: bool,
    model: CostModel,
    coupling_width: float | None = None,
) -> float:
    """Cost of solving a (p+q) arrow system by eliminating the p block.

    ``coupling_width`` is the number of non-zero rows in each eliminated
    variable's coupling column (the paper's ``6 No`` per feature point —
    a feature touches only the poses that observe it). When the
    eliminated block is diagonal this sparsity survives the elimination
    and the Schur product is per-feature work; a dense split destroys it.
    """
    if diagonal:
        width = coupling_width if coupling_width is not None else q
        invert = model.dmatinv(p)  # U^-1 elementwise
        scale = model.mac * p * width  # W U^-1 via per-column scaling
        schur = model.mac * p * width * width  # sum of per-feature outer products
        rhs = model.mac * p * width + model.matsub(q, 1)
        recover = model.mac * p * width + model.dmatinv(p)
    else:
        invert = model.cholesky(p) + p * model.fbsub(p)  # dense U^-1
        scale = model.matmul(q, p, p)  # W U^-1
        schur = model.matmul(q, p, q)  # (W U^-1) W^T
        rhs = model.matmul(q, p, 1) + model.matsub(q, 1)
        recover = model.matmul(p, q, 1) + model.dmatinv(p)
    subtract = model.matsub(q, q)
    solve = model.cholesky(q) + model.fbsub(q)
    return invert + scale + schur + subtract + rhs + solve + recover


def optimal_linear_solver_blocking(
    num_features: int,
    num_keyframes: int,
    state_size: int = 15,
    observations_per_feature: float = 4.0,
    model: CostModel | None = None,
) -> BlockingChoice:
    """Choose the blocking of the NLS linear system (Sec. 3.2.2).

    Candidates: direct Cholesky of the whole (a + 15b) system; Schur
    elimination of the diagonal landmark block (D-type, which keeps the
    per-feature 6No-wide coupling sparsity); and Schur elimination of
    dense blocks of various sizes (landmarks plus some keyframes — these
    lose diagonality and with it both the O(n) inverse and the sparsity).
    """
    model = model or DEFAULT_COST_MODEL
    if num_features < 1 or num_keyframes < 1:
        raise ConfigurationError("need at least one feature and one keyframe")
    a = num_features
    q_states = state_size * num_keyframes
    n = a + q_states
    coupling = min(6.0 * observations_per_feature, float(q_states))

    alternatives: dict[str, float] = {
        "direct": model.cholesky(n) + model.fbsub(n),
        "schur-diagonal-landmarks": _schur_solve_cost(
            a, q_states, True, model, coupling_width=coupling
        ),
    }
    # Dense splits: eliminate the landmarks plus j keyframes (the
    # eliminated block is then no longer diagonal).
    for j in (1, num_keyframes // 2):
        if 0 < j < num_keyframes:
            p = a + state_size * j
            alternatives[f"schur-dense-p{p}"] = _schur_solve_cost(
                p, n - p, False, model
            )
    # A dense split strictly inside the landmark block (demonstrates that
    # forgetting the diagonal structure is costly).
    if a > 2:
        alternatives[f"schur-dense-p{a}"] = _schur_solve_cost(a, q_states, False, model)

    best_name = min(alternatives, key=alternatives.get)
    diagonal = best_name == "schur-diagonal-landmarks"
    split = a if best_name != "direct" else 0
    if best_name.startswith("schur-dense-p"):
        split = int(best_name.removeprefix("schur-dense-p"))
    return BlockingChoice(
        split=split,
        diagonal=diagonal,
        cost=alternatives[best_name],
        alternatives=alternatives,
    )


def optimal_marginalization_blocking(
    num_marginalized: int,
    state_size: int = 15,
    model: CostModel | None = None,
) -> BlockingChoice:
    """Choose the blocking of M in the M-type Schur (Sec. 3.2.3).

    ``M`` (size am + 15) is inverted via Equ. 5; putting the diagonal
    feature block in ``M11`` turns ``S'`` into a D-type Schur and makes
    ``M11^-1`` trivial.
    """
    model = model or DEFAULT_COST_MODEL
    if num_marginalized < 0:
        raise ConfigurationError("num_marginalized must be non-negative")
    am = max(num_marginalized, 1)
    m = am + state_size

    def blocked_inverse_cost(split: int, diagonal: bool) -> float:
        p, q = split, m - split
        if diagonal:
            invert11 = model.dmatinv(p)
            coupling = model.dmatmul(p, q)
        else:
            invert11 = model.cholesky(p) + p * model.fbsub(p)
            coupling = model.matmul(q, p, p)
        schur = model.matmul(q, p, q) + model.matsub(q, q)
        invert_schur = model.cholesky(q) + q * model.fbsub(q)
        corners = 2 * model.matmul(p, q, q) + model.matmul(p, q, p) + model.matsub(p, p)
        return invert11 + coupling + schur + invert_schur + corners

    alternatives = {
        "direct-inverse": model.cholesky(m) + m * model.fbsub(m),
        "blocked-diagonal-features": blocked_inverse_cost(am, True),
    }
    if am > 2:
        alternatives["blocked-dense-features"] = blocked_inverse_cost(am, False)
        alternatives[f"blocked-dense-p{am // 2}"] = blocked_inverse_cost(am // 2, False)

    best_name = min(alternatives, key=alternatives.get)
    return BlockingChoice(
        split=am if best_name != "direct-inverse" else 0,
        diagonal=best_name == "blocked-diagonal-features",
        cost=alternatives[best_name],
        alternatives=alternatives,
    )


def build_linear_solver_mdfg(
    num_features: int,
    num_keyframes: int,
    state_size: int = 15,
    observations_per_feature: float = 4.0,
) -> MDFG:
    """The Fig. 3b graph: D-type Schur + Cholesky + substitutions.

    Node dimensions encode the *sparse* per-feature structure: each
    feature's coupling column has only ``6 No`` non-zero rows, so the
    Schur product is ``a`` outer products of width ``6 No`` rather than
    a dense (q x a)(a x q) multiplication — this is exactly the work the
    D-type Schur hardware performs (Equ. 9) and what a sparsity-aware
    software implementation (ceres) performs too.
    """
    a = num_features
    q = state_size * num_keyframes
    width = max(int(round(6 * observations_per_feature)), 1)
    graph = MDFG("nls-linear-solver")
    u_inv = graph.add(NodeType.DMATINV, (a,), "U^-1")
    w_t = graph.add(NodeType.MATTP, (q, a), "W^T")
    w_u_inv = graph.add(NodeType.DMATMUL, (a, width), "W U^-1", after=[u_inv])
    schur_mul = graph.add(
        NodeType.MATMUL, (a, width, width), "(W U^-1) W^T", after=[w_u_inv, w_t]
    )
    schur_sub = graph.add(NodeType.MATSUB, (q, q), "V - W U^-1 W^T", after=[schur_mul])
    rhs_mul = graph.add(NodeType.MATMUL, (a, width, 1), "(W U^-1) b_x", after=[w_u_inv])
    rhs_sub = graph.add(NodeType.MATSUB, (q, 1), "b_y - W U^-1 b_x", after=[rhs_mul])
    chol = graph.add(NodeType.CD, (q,), "Cholesky", after=[schur_sub, rhs_sub])
    solve = graph.add(NodeType.FBSUB, (q,), "solve d_state", after=[chol])
    graph.add(NodeType.MATMUL, (a, width, 1), "W^T d_state", after=[solve, w_t])
    graph.validate()
    return graph


def build_marginalization_mdfg(stats: WindowStats) -> MDFG:
    """The marginalization graph (Sec. 3.1 right column + Sec. 3.2.3)."""
    am = max(stats.num_marginalized, 1)
    k = stats.state_size
    b = stats.num_keyframes
    keep = k * max(b - 1, 1)
    m = am + k  # marginalized block: features + one keyframe state
    obs = max(int(round(am * stats.avg_observations)), 1)

    graph = MDFG("marginalization")
    vjac = graph.add(NodeType.VJAC, (obs,), "marg Jacobians")
    ijac = graph.add(NodeType.IJAC, (1,), "marg IMU Jacobian")
    # H = J^T J accumulates one 13x13 block product per observation.
    form_h = graph.add(
        NodeType.MATMUL, (13 * obs, 2, 13), "H = J^T J", after=[vjac, ijac]
    )
    form_b = graph.add(NodeType.MATMUL, (13 * obs, 2, 1), "b = J^T e", after=[vjac, ijac])
    # Blocked inverse of M with diagonal M11 (the D-type inside M-type).
    m11_inv = graph.add(NodeType.DMATINV, (am,), "M11^-1", after=[form_h])
    coupling = graph.add(NodeType.DMATMUL, (am, k), "M21 M11^-1", after=[m11_inv])
    s_prime_mul = graph.add(NodeType.MATMUL, (k, am, k), "M21 M11^-1 M12", after=[coupling])
    s_prime = graph.add(NodeType.MATSUB, (k, k), "S' (D-type)", after=[s_prime_mul])
    s_chol = graph.add(NodeType.CD, (k,), "S' Cholesky", after=[s_prime])
    s_solve = graph.add(NodeType.FBSUB, (k,), "S'^-1 blocks", after=[s_chol])
    # The outer M-type Schur: Hp = A - Lambda M^-1 Lambda^T.
    lam_minv = graph.add(
        NodeType.MATMUL, (keep, m, m), "Lambda M^-1", after=[s_solve, form_h]
    )
    outer_mul = graph.add(
        NodeType.MATMUL, (keep, m, keep), "Lambda M^-1 Lambda^T", after=[lam_minv]
    )
    graph.add(NodeType.MATSUB, (keep, keep), "Hp", after=[outer_mul])
    rp_mul = graph.add(NodeType.MATMUL, (keep, m, 1), "Lambda M^-1 b_m", after=[lam_minv, form_b])
    graph.add(NodeType.MATSUB, (keep, 1), "rp", after=[rp_mul])
    graph.validate()
    return graph


def build_nls_iteration_mdfg(stats: WindowStats) -> MDFG:
    """One NLS iteration: Jacobians, prepare A/b, solve, update."""
    a = max(stats.num_features, 1)
    b = stats.num_keyframes
    obs = max(stats.num_observations or int(round(a * stats.avg_observations)), 1)
    q = stats.state_size * max(b, 1)

    graph = MDFG("nls-iteration")
    vjac = graph.add(NodeType.VJAC, (obs,), "visual Jacobians")
    ijac = graph.add(NodeType.IJAC, (max(b - 1, 1),), "IMU Jacobians")
    # Accumulating A and b is one 13x13 J^T J block product per
    # observation (13 = inverse depth + two 6-DoF poses).
    prepare = graph.add(
        NodeType.MATMUL, (13 * obs, 2, 13), "prepare A, b", after=[vjac, ijac]
    )
    solver = build_linear_solver_mdfg(
        a, max(b, 1), stats.state_size, stats.avg_observations
    )
    graph.merge(solver)
    for node in solver.nodes:
        if not solver.predecessors(node):
            graph.add_edge(prepare, node)
    sinks = [n for n in graph.nodes if not graph.successors(n)]
    graph.add(NodeType.MATSUB, (a + q, 1), "update p", after=sinks)
    graph.validate()
    return graph


def build_window_mdfg(stats: WindowStats, iterations: int = 6) -> MDFG:
    """The full per-window M-DFG: ``iterations`` serialized NLS passes
    followed by marginalization (the two phases of Fig. 2)."""
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    graph = MDFG("window")
    previous_sink = None
    for _ in range(iterations):
        iteration = build_nls_iteration_mdfg(stats)
        graph.merge(iteration)
        sources = [n for n in iteration.nodes if not iteration.predecessors(n)]
        if previous_sink is not None:
            for source in sources:
                graph.add_edge(previous_sink, source)
        sinks = [n for n in iteration.nodes if not iteration.successors(n)]
        previous_sink = sinks[0]
    marg = build_marginalization_mdfg(stats)
    graph.merge(marg)
    for source in (n for n in marg.nodes if not marg.predecessors(n)):
        graph.add_edge(previous_sink, source)
    graph.validate()
    return graph
