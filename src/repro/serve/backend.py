"""Execution backends: where a session step's numerics actually run.

The virtual-time event loop decides *when* everything happens; an
:class:`ExecutionBackend` decides *where* the NLS numerics run. Two
implementations share one seam:

* :class:`ThreadBackend` — the original in-process thread pool. Python's
  GIL serializes the NumPy-heavy solves onto roughly one core, which is
  exactly what makes it the cheap, always-available **oracle**: every
  other backend must reproduce its per-shard ``SERVE_METRICS.json``
  byte for byte.
* :class:`ProcessBackend` — persistent worker processes (``fork`` start
  method) with deterministic session affinity: session ``sid`` always
  executes on worker ``sid % workers``, and commands travel a FIFO pipe,
  so every session's estimator steps apply in exactly the event-loop
  order. Workers inherit the fully built sessions at fork time and own
  their estimator state from then on; the parent keeps only the
  state machines, controllers, and telemetry. This is what lets one
  shard — or a fleet of shards — use all host cores for real.

Determinism contract: batch composition, admission, and all virtual-time
accounting stay in the single-threaded event loop. A backend only
transports :class:`~repro.serve.session.WindowRequest` inputs and
returns :class:`~repro.serve.session.WindowOutcome` values, both plain
picklable value objects, so the metrics file is byte-identical across
backends and across worker counts.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ConfigurationError, ReproError, ServeError
from repro.serve.session import Session, WindowOutcome, WindowRequest

BACKENDS = ("thread", "process")

# Worker protocol message kinds (parent -> worker).
_CMD_SHED, _CMD_RUN, _CMD_STOP = "shed", "run", "stop"


def execute_session_step(session: Session, request: WindowRequest) -> WindowOutcome:
    """Run one window optimization and reduce it to a picklable outcome.

    Typed solver errors become error outcomes (the serving tier treats
    them as per-window failures, not run failures); anything else is a
    genuine bug and propagates.
    """
    try:
        return WindowOutcome.from_result(request, session.execute(request))
    except ReproError as error:
        return WindowOutcome.from_error(request, error)


class ThreadBackend:
    """In-process execution on a thread pool — the conformance oracle."""

    name = "thread"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError("thread backend needs >= 1 worker")
        self.workers = workers
        self._sessions: dict[int, Session] = {}
        self._executor: ThreadPoolExecutor | None = None

    def start(self, sessions: dict[int, Session]) -> None:
        self._sessions = sessions
        self._executor = ThreadPoolExecutor(max_workers=self.workers)

    def shed(self, session_id: int, frame_id: int) -> None:
        self._sessions[session_id].shed(frame_id)

    def run_jobs(self, jobs: list[WindowRequest]) -> list[WindowOutcome]:
        if self._executor is None:
            raise ServeError("backend used before start()")
        return list(
            self._executor.map(
                lambda request: execute_session_step(
                    self._sessions[request.session_id], request
                ),
                jobs,
            )
        )

    def stop(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def _worker_loop(conn, sessions: dict[int, Session]) -> None:
    """Body of one forked worker: owns a subset of sessions forever.

    The ``fork`` start method hands the built sessions over by memory
    inheritance (no pickling of estimator state); from then on the
    worker's copies are the live ones. Commands arrive on a FIFO pipe
    and are served strictly in order — which is what makes per-session
    estimator steps apply in exactly the event-loop order.
    """
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == _CMD_STOP:
                break
            if kind == _CMD_SHED:
                _, session_id, frame_id = message
                try:
                    sessions[session_id].shed(frame_id)
                    conn.send(("ok", None))
                except Exception as error:  # noqa: BLE001 — crosses a process
                    conn.send(("error", f"{type(error).__name__}: {error}"))
            elif kind == _CMD_RUN:
                _, requests = message
                outcomes = [
                    execute_session_step(sessions[request.session_id], request)
                    for request in requests
                ]
                conn.send(("results", outcomes))
            else:
                conn.send(("error", f"unknown command {kind!r}"))
    finally:
        conn.close()


class ProcessBackend:
    """Persistent ``fork`` worker processes with session affinity.

    Sessions are assigned ``sid -> worker[sid % workers]``; the mapping
    is a pure function of the session id, so it is identical across
    runs, across worker counts that divide the same way, and across the
    fleet/standalone split. After fork the *worker's* copy of a session
    is the live one: the parent must route every estimator-mutating step
    (execute *and* shed) through this backend.
    """

    name = "process"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError("process backend needs >= 1 worker")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "the process backend needs the 'fork' start method "
                "(unavailable on this platform); use --backend thread"
            )
        self.workers = workers
        self._pipes = []
        self._procs = []
        self._owned: list[list[int]] = []

    def _worker_of(self, session_id: int) -> int:
        return session_id % self.workers

    def start(self, sessions: dict[int, Session]) -> None:
        context = multiprocessing.get_context("fork")
        self._owned = [[] for _ in range(self.workers)]
        for sid in sorted(sessions):
            self._owned[self._worker_of(sid)].append(sid)
        for owned in self._owned:
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_worker_loop,
                args=(child_conn, {sid: sessions[sid] for sid in owned}),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._procs.append(proc)

    def _recv(self, worker: int):
        try:
            return self._pipes[worker].recv()
        except (EOFError, OSError) as error:
            raise ServeError(
                f"execution worker {worker} died mid-run: {error}"
            ) from error

    def shed(self, session_id: int, frame_id: int) -> None:
        worker = self._worker_of(session_id)
        self._pipes[worker].send((_CMD_SHED, session_id, frame_id))
        status, detail = self._recv(worker)
        if status != "ok":
            raise ServeError(f"shed({session_id}, {frame_id}) failed: {detail}")

    def run_jobs(self, jobs: list[WindowRequest]) -> list[WindowOutcome]:
        by_worker: dict[int, list[WindowRequest]] = {}
        for request in jobs:
            by_worker.setdefault(self._worker_of(request.session_id), []).append(
                request
            )
        # Send every worker its slice first, then collect: workers run
        # their slices concurrently while the parent blocks on pipes.
        for worker, requests in by_worker.items():
            self._pipes[worker].send((_CMD_RUN, requests))
        outcome_by_seq: dict[int, WindowOutcome] = {}
        for worker in by_worker:
            status, payload = self._recv(worker)
            if status != "results":
                raise ServeError(f"worker {worker} run failed: {payload}")
            for outcome in payload:
                outcome_by_seq[outcome.seq] = outcome
        return [outcome_by_seq[request.seq] for request in jobs]

    def stop(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send((_CMD_STOP,))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
        for pipe in self._pipes:
            pipe.close()
        self._pipes, self._procs = [], []


def make_backend(name: str, workers: int):
    """Resolve a backend name to a fresh (not yet started) instance."""
    if name == "thread":
        return ThreadBackend(workers)
    if name == "process":
        return ProcessBackend(workers)
    raise ConfigurationError(f"backend must be one of {BACKENDS}, got {name!r}")
