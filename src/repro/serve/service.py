"""The multi-session localization service: a virtual-time event loop.

The service is a discrete-event simulation over *virtual* seconds.
Events — window arrivals, batch completions, instances freeing up — live
in one heap ordered by ``(time, sequence number)``, so the schedule is a
total order and a seeded run is bit-reproducible. Real work still
happens: every served window runs the actual sliding-window NLS
optimization on an execution backend (:mod:`repro.serve.backend`) sized
to the accelerator pool — in-process threads by default, forked worker
processes for true multicore — but *when* things happen is decided
entirely by the analytical hardware latency model, never by wall-clock
measurements, so the metrics are byte-identical across backends.

Per event the loop does three things, always in the same order:

1. handle the event (ingest an arrival, complete a window, free an
   instance);
2. **pump**: every session that is READY submits its oldest pending
   window through admission control (shed / degrade / accept);
3. **dispatch**: every idle instance takes one earliest-deadline-first
   micro-batch off the queue; the batch's optimizations execute
   concurrently in wall time while their virtual completion times are
   laid out back-to-back on the instance.

Sessions never have more than one window in flight (window ``n+1``
linearizes around ``n``'s estimate), which is also what makes the
per-session estimator/controller state thread-safe without locks.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.engine import SEQUENCE, design_reconfiguration, get_engine, named_design
from repro.errors import ConfigurationError, ServeError
from repro.hw.latency import window_latency_seconds
from repro.hw.power import DEFAULT_POWER_MODEL
from repro.obs.tracer import CLOCK_VIRTUAL, Trace
from repro.portfolio.router import choose_instance, drift_candidate
from repro.runtime.controller import RuntimeController
from repro.runtime.profiler import IterationTable
from repro.serve.accelerator import AcceleratorInstance, make_pool
from repro.serve.backend import make_backend
from repro.serve.loadgen import (
    LoadProfile,
    closed_loop_start,
    open_loop_arrivals,
    session_sequence_config,
)
from repro.serve.scheduler import Admission, Scheduler
from repro.serve.session import Session, SessionState, WindowRequest
from repro.serve.telemetry import (
    METRICS_SCHEMA_VERSION,
    Telemetry,
    export_metrics,
)

_ARRIVAL, _COMPLETE, _FREE = "arrival", "complete", "free"


@dataclass
class ServeReport:
    """Outcome of one serve run."""

    profile: LoadProfile
    metrics: dict  # deterministic; exactly what SERVE_METRICS.json holds
    cache_line: str  # live engine stats (stdout only — disk-state dependent)
    wall_seconds: float  # stdout only — never part of the metrics file
    trace: Trace | None = None  # virtual-time spans; deterministic
    telemetry: Telemetry | None = None
    # Wall-clock split (stdout/bench only): session build + backend
    # start vs the event loop itself. wall_seconds is their sum.
    prepare_seconds: float = 0.0

    def write_metrics(self, path: str | Path) -> Path:
        return export_metrics(self.metrics, path)

    def write_trace(self, path: str | Path) -> Path:
        """Export the virtual-time span trace as flat JSONL
        (byte-identical across repeats of a seeded run)."""
        if self.trace is None:
            raise ServeError("this report carries no trace")
        return self.trace.export_jsonl(path)

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Export the trace as Chrome ``trace_event`` JSON."""
        if self.trace is None:
            raise ServeError("this report carries no trace")
        return self.trace.export_chrome(path)

    def write_obs_metrics(self, path: str | Path) -> Path:
        """Export the run's counters/gauges/histograms as the canonical
        ``OBS_METRICS.json`` via :class:`repro.obs.MetricsRegistry`."""
        if self.telemetry is None:
            raise ServeError("this report carries no telemetry")
        return self.telemetry.to_registry().export_json(path)

    def render(self) -> str:
        totals = self.metrics["totals"]
        latency = self.metrics["latency_ms"]
        queue = self.metrics["queue"]
        batches = self.metrics["batches"]
        lines = [
            f"== serve: {self.profile.name} ==",
            (
                f"sessions {self.profile.num_sessions}  "
                f"instances {self.profile.num_instances}  "
                f"arrival {self.profile.arrival}  seed {self.profile.seed}"
            ),
            (
                f"served {totals['windows_served']}  "
                f"shed {totals['windows_shed']}  "
                f"degraded {totals['windows_degraded']}  "
                f"deadline-missed {totals['deadline_misses']}  "
                f"errors {totals['errors']}"
            ),
            (
                f"latency p50 {latency['p50_ms']:.2f} ms  "
                f"p95 {latency['p95_ms']:.2f} ms  "
                f"p99 {latency['p99_ms']:.2f} ms  "
                f"max {latency['max_ms']:.2f} ms"
            ),
            (
                f"throughput {totals['throughput_wps']:.1f} windows/s over "
                f"{totals['makespan_s']:.2f} virtual s  "
                f"(wall {self.wall_seconds:.2f} s)"
            ),
            (
                f"queue depth max {queue['depth_max']}  "
                f"mean {queue['depth_time_weighted_mean']:.2f}  "
                f"batch occupancy {batches['mean_occupancy']:.2f}"
            ),
            f"energy {totals['energy_j']:.3f} J across the fleet",
        ]
        return "\n".join(lines)


class LocalizationService:
    """Runs one :class:`LoadProfile` against a pool of accelerators."""

    def __init__(
        self,
        profile: LoadProfile,
        engine=None,
        fidelity: str = "analytical",
        backend: str = "thread",
        workers: int | None = None,
        session_ids: tuple[int, ...] | None = None,
        shard_id: int | None = None,
        decision_log: list | None = None,
    ) -> None:
        if backend == "process" and fidelity == "functional":
            raise ConfigurationError(
                "the process backend supports analytical fidelity only "
                "(functional fidelity needs the window problem in the "
                "parent process); use backend='thread'"
            )
        self.profile = profile
        self.engine = engine if engine is not None else get_engine()
        self.fidelity = fidelity
        self.backend_name = backend
        self.workers = workers
        # The session-id subset this service owns. None means the whole
        # profile; a fleet shard passes its consistent-hash slice. Ids
        # are *global*: arrival times and sequence configs are seeded
        # per id, so a shard run equals the same ids run standalone.
        self.session_ids = (
            tuple(range(profile.num_sessions))
            if session_ids is None
            else tuple(sorted(session_ids))
        )
        if not self.session_ids:
            raise ConfigurationError("a service needs at least one session id")
        self.shard_id = shard_id
        # Optional admission-feature log (policy training's teacher
        # data). Observing is free of side effects on the run itself:
        # the features are computed either way, and the log is never
        # part of the exported metrics.
        self._decision_log = decision_log
        self._event_seq = 0
        self._request_seq = 0
        self._events: list[tuple[float, int, str, int]] = []
        self._prepared = False
        self._backend = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _build(self) -> None:
        profile = self.profile
        design = named_design(profile.design, self.engine)
        reconfig = design_reconfiguration(profile.design, self.engine)
        table = IterationTable()
        # Learned runtime control: resolve the profile's frozen policy
        # artifact (or train it through the content-addressed POLICY
        # stage) before the clock starts — the weights are read-only for
        # the whole run, shared across sessions and the scheduler.
        self.policy = None
        if profile.policy:
            from repro.runtime.policy import load_policy

            self.policy = load_policy(profile.policy, engine=self.engine)
        # One prototype controller holds the shared read-only tables;
        # every session forks its own counter state from it.
        prototype = RuntimeController(
            table=table, reconfig=reconfig, policy=self.policy
        )
        self.static_config = design.config
        self.reconfig = reconfig

        # Fleet planning: a portfolio profile solves the config mix for
        # its traffic forecast and deploys it across the pool; otherwise
        # every instance carries the named design's config. The solve is
        # pure (spec + seed -> solution), so shard runs and repeats
        # deploy byte-identical fleets.
        self.portfolio_solution = None
        pool_configs = [design.config] * profile.num_instances
        if profile.portfolio:
            from dataclasses import replace as dc_replace

            from repro.portfolio import (
                DEFAULT_RECONFIG_MODEL,
                default_portfolio_spec,
                resolve_forecast,
                solve_portfolio,
            )

            forecast = dc_replace(
                resolve_forecast(profile.portfolio),
                num_sessions=profile.num_sessions,
                rate_hz=profile.rate_hz,
                seed=profile.seed,
            )
            self.portfolio_solution = solve_portfolio(
                default_portfolio_spec(
                    forecast,
                    num_instances=profile.num_instances,
                    max_configs=profile.portfolio_configs,
                )
            )
            pool_configs = list(self.portfolio_solution.instance_configs())
            self.swap_model = DEFAULT_RECONFIG_MODEL
            self.portfolio_configs = tuple(
                sorted(set(pool_configs), key=lambda c: c.as_tuple())
            )
        self._pool_configs = pool_configs
        self._drift_counts: dict[int, int] = {}

        self.sessions: dict[int, Session] = {}
        for sid in self.session_ids:
            sequence = self.engine.run(
                SEQUENCE, session_sequence_config(profile, sid)
            )
            self.sessions[sid] = Session(
                session_id=sid,
                sequence=sequence,
                controller=prototype.for_session(),
                window_size=profile.window_size,
                capture_problems=self.fidelity == "functional",
            )

        self.pool: list[AcceleratorInstance] = make_pool(
            profile.num_instances, fidelity=self.fidelity, configs=pool_configs
        )
        self.scheduler = Scheduler(
            max_queue=profile.max_queue,
            backpressure=profile.backpressure,
            batch_size=profile.batch_size,
            policy=self.policy,
        )
        # Latency-SLO headroom state: an EWMA of served-window service
        # seconds, updated at completion accounting (virtual-time
        # ordered, so the learned admission features — and therefore the
        # decisions — are backend- and repeat-invariant).
        self._service_time_ewma = 0.0
        self._windows_accounted = 0
        self.telemetry = Telemetry()
        # All spans are stamped with virtual times from the (single
        # threaded) event loop, so the trace is byte-identical across
        # repeats and across wall-clock worker counts.
        trace_name = f"serve:{profile.name}"
        if self.shard_id is not None:
            trace_name = f"{trace_name}:shard{self.shard_id}"
        self.trace = Trace(clock=CLOCK_VIRTUAL, name=trace_name)
        for session in self.sessions.values():
            self.telemetry.session(
                session.session_id, session.sequence.config.name
            )

        if profile.arrival == "poisson":
            for session in self.sessions.values():
                for t in open_loop_arrivals(
                    profile, session.session_id, session.total_windows
                ):
                    self._push_event(t, _ARRIVAL, session.session_id)
        else:
            for session in self.sessions.values():
                if session.total_windows > 0:
                    self._push_event(
                        closed_loop_start(profile, session.session_id),
                        _ARRIVAL,
                        session.session_id,
                    )

    def _push_event(self, t: float, kind: str, payload: int) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (t, self._event_seq, kind, payload))

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Build sessions and start the execution backend.

        Split from :meth:`run` so a fleet coordinator can fork process
        workers from the main thread (before shard event loops start on
        threads) — forking from a threaded process is a footgun.
        """
        if self._prepared:
            return
        prep_started = time.perf_counter()
        self._memo_before = self.engine.stats.memory_hits
        self._distinct_before = (
            self.engine.stats.computed + self.engine.stats.disk_hits
        )
        self._build()
        workers = self.workers if self.workers is not None else len(self.pool)
        self._backend = make_backend(self.backend_name, max(1, workers))
        self._backend.start(self.sessions)
        self.prepare_seconds = time.perf_counter() - prep_started
        self._prepared = True

    def run(self) -> ServeReport:
        self.prepare()
        started = time.perf_counter()
        try:
            while self._events:
                t, _, kind, payload = heapq.heappop(self._events)
                if kind == _ARRIVAL:
                    self.sessions[payload].on_arrival(t)
                elif kind == _COMPLETE:
                    self._on_complete(t, self.sessions[payload])
                # _FREE events carry no state change: they exist to wake
                # the dispatcher at the instant an instance goes idle.
                self._pump(t)
                self._dispatch(t)
        finally:
            self._backend.stop()

        for session in self.sessions.values():
            session.maybe_drain()
        # A session may end WAITING with frames remaining (the arrival
        # horizon closed mid-recording); what must NOT survive the loop
        # is in-flight work, per-session backlog, or queued requests.
        stuck = [
            s.session_id
            for s in self.sessions.values()
            if s.state is SessionState.INFLIGHT or s.pending
        ]
        if stuck or len(self.scheduler) > 0:
            raise ServeError(
                f"serve run ended with live state: sessions {stuck}, "
                f"queue depth {len(self.scheduler)}"
            )
        wall = time.perf_counter() - started
        metrics = self._metrics(
            memo_hits=self.engine.stats.memory_hits - self._memo_before,
            distinct_artifacts=(
                self.engine.stats.computed + self.engine.stats.disk_hits
            )
            - self._distinct_before,
        )
        return ServeReport(
            profile=self.profile,
            metrics=metrics,
            cache_line=self.engine.stats_line(),
            wall_seconds=wall + self.prepare_seconds,
            trace=self.trace,
            telemetry=self.telemetry,
            prepare_seconds=self.prepare_seconds,
        )

    def _on_complete(self, t: float, session: Session) -> None:
        session.on_complete()
        profile = self.profile
        if profile.arrival == "closed":
            next_t = t + profile.think_time_s
            if session.frames_remaining and next_t < profile.duration_s:
                self._push_event(next_t, _ARRIVAL, session.session_id)
        session.maybe_drain()

    # ------------------------------------------------------------------
    # Pump: admission control + submission
    # ------------------------------------------------------------------

    _SERVICE_EWMA_ALPHA = 0.2

    def _slo_headroom(self) -> float:
        """Fraction of the deadline budget left at the recent
        service-time EWMA (1 = untouched, <= 0 = the EWMA alone already
        eats the whole per-window deadline)."""
        if self._windows_accounted == 0:
            return 1.0
        return 1.0 - self._service_time_ewma / self.profile.deadline_s

    def _account_service(self, session: Session, service_s: float, drift_m: float) -> None:
        """Fold one served window into the learned-control features.

        Runs at completion-accounting time on the event-loop thread —
        a deterministic point in the virtual-time total order.
        """
        self._service_time_ewma += self._SERVICE_EWMA_ALPHA * (
            service_s - self._service_time_ewma
        )
        self._windows_accounted += 1
        session.controller.observe_drift(drift_m)

    def _pump(self, t: float) -> None:
        profile = self.profile
        headroom = self._slo_headroom()
        for session in self.sessions.values():
            if session.state is not SessionState.READY:
                # Backlog trimming below must wait too: frames have to
                # enter the estimator in order, and an INFLIGHT session
                # may still have its current frame queued un-ingested.
                continue
            metrics = self.telemetry.session(session.session_id)
            # A robot whose backlog outgrew its bound sheds its oldest
            # frames first (freshest data is worth the most). Sheds are
            # estimator-mutating steps, so they route through the
            # execution backend like served windows do: under the
            # process backend the worker's session copy is the live one.
            while len(session.pending) > profile.max_pending_per_session:
                frame_id, _ = session.take_pending()
                self._backend.shed(session.session_id, frame_id)
                self.scheduler.record_shed()
                self.telemetry.record_shed(metrics, t)
            drift = session.controller.drift_estimate
            admission = self.scheduler.admit(headroom=headroom, drift=drift)
            if self._decision_log is not None:
                self._decision_log.append(
                    {
                        "queue_frac": len(self.scheduler) / profile.max_queue,
                        "band_frac": profile.backpressure / profile.max_queue,
                        "headroom": headroom,
                        "drift": drift,
                        "action": admission.value,
                    }
                )
            frame_id, ready_time = session.take_pending()
            if admission is Admission.SHED:
                self._backend.shed(session.session_id, frame_id)
                self.scheduler.record_shed()
                self.telemetry.record_shed(metrics, t)
                session.maybe_drain()
                continue
            degraded = admission is Admission.DEGRADE
            iterations, config, reconfigured = session.controller.decide(
                session.front_end_feature_count(frame_id),
                degrade=profile.degrade_drop if degraded else 0,
            )
            self._request_seq += 1
            request = WindowRequest(
                session_id=session.session_id,
                frame_id=frame_id,
                ready_time=ready_time,
                deadline=ready_time + profile.deadline_s,
                iterations=iterations,
                config=config,
                reconfigured=reconfigured,
                degraded=degraded,
                seq=self._request_seq,
            )
            session.mark_inflight()
            self.scheduler.push(request)
            self.telemetry.sample_queue_depth(t, len(self.scheduler))

    # ------------------------------------------------------------------
    # Dispatch: micro-batches onto free instances
    # ------------------------------------------------------------------

    def _dispatch(self, t: float) -> None:
        if self.profile.route == "marginal":
            self._dispatch_marginal(t)
        else:
            self._dispatch_fifo(t)

    def _dispatch_fifo(self, t: float) -> None:
        assignments: list[tuple[AcceleratorInstance, list[WindowRequest]]] = []
        for instance in self.pool:
            if instance.free_at > t or len(self.scheduler) == 0:
                continue
            batch = self.scheduler.next_batch()
            if batch:
                assignments.append((instance, batch))
        if not assignments:
            return
        self.telemetry.sample_queue_depth(t, len(self.scheduler))

        # Execute every job of every batch concurrently in wall time;
        # virtual-time accounting below consumes results in submission
        # order, so worker interleaving cannot change the outcome.
        jobs = [request for _, batch in assignments for request in batch]
        results = self._backend.run_jobs(jobs)
        result_by_seq = {outcome.seq: outcome for outcome in results}

        for instance, batch in assignments:
            self.telemetry.record_batch(len(batch))
            instance.batches += 1
            cursor = t
            for request in batch:
                session = self.sessions[request.session_id]
                metrics = self.telemetry.session(session.session_id)
                outcome = result_by_seq[request.seq]
                if not outcome.ok:
                    self.telemetry.errors += 1
                    session.on_complete()
                    session.maybe_drain()
                    continue
                # A portfolio pool is heterogeneous: windows run on the
                # instance's own deployed config at that config's power,
                # exactly as the marginal route accounts them. The
                # homogeneous pool keeps the runtime-reconfiguration
                # tier's request-level config and gated power.
                portfolio = self.portfolio_solution is not None
                charge = instance.charge(
                    outcome.stats,
                    instance.config if portfolio else request.config,
                    request.iterations,
                    request.reconfigured,
                    problem=session.last_problem,
                )
                completion = cursor + charge.total_s
                energy = charge.compute_s * (
                    DEFAULT_POWER_MODEL.power(instance.config)
                    if portfolio
                    else self.reconfig.gated_power(request.iterations)
                )
                self.trace.add_span(
                    "queue_wait",
                    category="serve",
                    start_s=request.ready_time,
                    duration_s=t - request.ready_time,
                    depth=1,
                    session=request.session_id,
                    frame=request.frame_id,
                )
                if request.reconfigured:
                    # The reconfiguration rides the host link (the +3
                    # config bytes), so mark it with the transfer window.
                    self.trace.add_span(
                        "reconfig",
                        category="serve",
                        start_s=cursor,
                        duration_s=charge.transfer_s,
                        depth=1,
                        session=request.session_id,
                        nd=request.config.nd,
                        nm=request.config.nm,
                        s=request.config.s,
                    )
                self.trace.add_span(
                    "service",
                    category="serve",
                    start_s=cursor,
                    duration_s=charge.total_s,
                    depth=1,
                    session=request.session_id,
                    frame=request.frame_id,
                    iterations=request.iterations,
                    degraded=request.degraded,
                )
                self.telemetry.record_window(
                    metrics,
                    ready_time=request.ready_time,
                    dispatch_time=t,
                    completion_time=completion,
                    deadline=request.deadline,
                    iterations=request.iterations,
                    degraded=request.degraded,
                    reconfigured=request.reconfigured,
                    energy_j=energy,
                    drift_m=outcome.newest_position_error,
                    config_id=instance.config_id,
                    service_s=charge.total_s,
                )
                self._account_service(
                    session, charge.total_s, outcome.newest_position_error
                )
                instance.occupy(cursor, charge.total_s)
                cursor = completion
                self._push_event(completion, _COMPLETE, session.session_id)
            if cursor > t:
                self.trace.add_span(
                    "batch",
                    category="serve",
                    start_s=t,
                    duration_s=cursor - t,
                    instance=instance.instance_id,
                    occupancy=len(batch),
                )
                self._push_event(cursor, _FREE, instance.instance_id)

    def _dispatch_marginal(self, t: float) -> None:
        """Config-aware dispatch: route each window to the instance that
        minimizes its marginal virtual completion time.

        One fleet-wide EDF slice (``batch_size`` per free instance) is
        drained per dispatch; every window is then assigned — in EDF
        order, so routing is a total order — to the free instance whose
        queue-ahead plus service time on *that instance's config* is
        smallest, with an energy tiebreak (:func:`choose_instance`,
        pinned against a brute-force oracle by the conformance harness).
        """
        free = [inst for inst in self.pool if inst.free_at <= t]
        if not free or len(self.scheduler) == 0:
            return
        requests = self.scheduler.next_requests(
            self.profile.batch_size * len(free)
        )
        if not requests:
            return
        self.telemetry.sample_queue_depth(t, len(self.scheduler))

        # As in FIFO dispatch: all numerics run concurrently in wall
        # time, and virtual-time accounting consumes them in EDF order.
        # Routing happens after execution because the service time
        # depends on the executed window's stats — which are themselves
        # backend-invariant, so the routing decisions are too.
        results = self._backend.run_jobs(list(requests))
        result_by_seq = {outcome.seq: outcome for outcome in results}

        cursors = {inst.instance_id: t for inst in free}
        batches: dict[int, list] = {inst.instance_id: [] for inst in free}
        for request in requests:
            session = self.sessions[request.session_id]
            metrics = self.telemetry.session(session.session_id)
            outcome = result_by_seq[request.seq]
            if not outcome.ok:
                self.telemetry.errors += 1
                session.on_complete()
                session.maybe_drain()
                continue
            charges = [
                inst.charge(
                    outcome.stats,
                    inst.config,
                    request.iterations,
                    request.reconfigured,
                    problem=session.last_problem,
                )
                for inst in free
            ]
            energies = [
                charge.compute_s * DEFAULT_POWER_MODEL.power(inst.config)
                for inst, charge in zip(free, charges)
            ]
            pick = choose_instance(
                t,
                [cursors[inst.instance_id] for inst in free],
                [charge.total_s for charge in charges],
                energies,
            )
            instance, charge, energy = free[pick], charges[pick], energies[pick]
            cursor = cursors[instance.instance_id]
            completion = cursor + charge.total_s
            self.trace.add_span(
                "queue_wait",
                category="serve",
                start_s=request.ready_time,
                duration_s=t - request.ready_time,
                depth=1,
                session=request.session_id,
                frame=request.frame_id,
            )
            self.trace.add_span(
                "service",
                category="serve",
                start_s=cursor,
                duration_s=charge.total_s,
                depth=1,
                session=request.session_id,
                frame=request.frame_id,
                iterations=request.iterations,
                degraded=request.degraded,
                instance=instance.instance_id,
                config=instance.config_id,
            )
            self.telemetry.record_window(
                metrics,
                ready_time=request.ready_time,
                dispatch_time=t,
                completion_time=completion,
                deadline=request.deadline,
                iterations=request.iterations,
                degraded=request.degraded,
                reconfigured=request.reconfigured,
                energy_j=energy,
                drift_m=outcome.newest_position_error,
                config_id=instance.config_id,
                service_s=charge.total_s,
            )
            self._account_service(
                session, charge.total_s, outcome.newest_position_error
            )
            instance.occupy(cursor, charge.total_s)
            cursors[instance.instance_id] = completion
            batches[instance.instance_id].append((request, outcome))
            self._push_event(completion, _COMPLETE, session.session_id)

        for instance in free:
            batch = batches[instance.instance_id]
            if not batch:
                continue
            self.telemetry.record_batch(len(batch))
            instance.batches += 1
            self.trace.add_span(
                "batch",
                category="serve",
                start_s=t,
                duration_s=cursors[instance.instance_id] - t,
                instance=instance.instance_id,
                occupancy=len(batch),
            )
            self._maybe_reconfigure(instance, batch)
            self._push_event(instance.free_at, _FREE, instance.instance_id)

    def _maybe_reconfigure(self, instance: AcceleratorInstance, batch) -> None:
        """Between-batch partial reconfiguration on sustained drift.

        After ``reconfig_after`` consecutive batches that another
        portfolio config would have served faster (by more than the swap
        model's margin), the instance swaps to that config, paying the
        model's virtual time and energy while offline.
        """
        profile = self.profile
        if (
            self.portfolio_solution is None
            or profile.reconfig_after < 1
            or len(self.portfolio_configs) < 2
        ):
            return
        service_by_config = {
            config.label: sum(
                window_latency_seconds(
                    outcome.stats, config, request.iterations, instance.platform
                )
                for request, outcome in batch
            )
            for config in self.portfolio_configs
        }
        target = drift_candidate(
            instance.config,
            self.portfolio_configs,
            service_by_config,
            self.swap_model.improvement_margin,
        )
        if target is None:
            self._drift_counts[instance.instance_id] = 0
            return
        count = self._drift_counts.get(instance.instance_id, 0) + 1
        if count < profile.reconfig_after:
            self._drift_counts[instance.instance_id] = count
            return
        self._drift_counts[instance.instance_id] = 0
        swap = self.swap_model.swap_cost(instance.config, target)
        start = instance.free_at
        previous = instance.config_id
        instance.reconfigure(target, swap.seconds, swap.joules, start)
        self.telemetry.record_reconfig(
            instance.config_id, swap.seconds, swap.joules
        )
        self.trace.add_span(
            "partial_reconfig",
            category="serve",
            start_s=start,
            duration_s=swap.seconds,
            instance=instance.instance_id,
            from_config=previous,
            to_config=instance.config_id,
        )

    # ------------------------------------------------------------------
    # Metrics assembly
    # ------------------------------------------------------------------

    def _metrics(self, memo_hits: int, distinct_artifacts: int) -> dict:
        metrics = self.telemetry.as_dict()
        horizon = self.telemetry.end_time_s
        metrics["schema"] = METRICS_SCHEMA_VERSION
        metrics["profile"] = asdict(self.profile)
        metrics["fidelity"] = self.fidelity
        metrics["scheduler"] = self.scheduler.as_dict()
        metrics["instances"] = [
            instance.as_dict(horizon) for instance in self.pool
        ]
        metrics["design"] = {
            "name": self.profile.design,
            "nd": self.static_config.nd,
            "nm": self.static_config.nm,
            "s": self.static_config.s,
        }
        # The learned runtime policy in force (empty name = the 2-bit
        # counter + fixed-regime baseline). The digest pins exactly
        # which frozen weights produced these numbers.
        metrics["policy"] = (
            {
                "name": self.policy.name,
                "digest": self.policy.digest,
                "source": self.profile.policy,
            }
            if self.policy is not None
            else {"name": ""}
        )
        # The solved fleet portfolio (empty name = homogeneous pool).
        # PortfolioSolution.as_dict() holds no timing fields, so this
        # stays byte-identical across repeats and backends.
        metrics["portfolio"] = (
            self.portfolio_solution.as_dict()
            if self.portfolio_solution is not None
            else {"name": ""}
        )
        # Which slice of the fleet this run served. Deliberately free of
        # backend/worker facts: the same shard must export byte-identical
        # metrics under the thread oracle and the process backend.
        metrics["shard"] = {
            "shard_id": -1 if self.shard_id is None else self.shard_id,
            "session_ids": list(self.session_ids),
            "num_sessions": len(self.session_ids),
        }
        # Only run-invariant cache numbers belong here: blob-level disk
        # counters depend on whether a previous run warmed the cache, and
        # SERVE_METRICS.json must be byte-identical across repeats.
        metrics["cache"] = {
            "memo_hits": memo_hits,
            "distinct_artifacts": distinct_artifacts,
        }
        return metrics


def run_profile(
    profile: LoadProfile,
    engine=None,
    fidelity: str = "analytical",
    backend: str = "thread",
    workers: int | None = None,
) -> ServeReport:
    """Convenience wrapper: build the service and run it once."""
    return LocalizationService(
        profile, engine=engine, fidelity=fidelity, backend=backend, workers=workers
    ).run()
