"""CLI: ``python -m repro.serve [profile]`` runs the serving tier.

Runs one named load profile (seeded, bit-deterministic) against a pool
of simulated accelerator instances and writes the virtual-time metrics
to ``SERVE_METRICS.json``. Profile knobs — fleet shape, horizon, seed —
can be overridden from the command line; the overridden profile is
recorded verbatim in the metrics file, so a run is always replayable
from its own output.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys

from repro.engine import DEFAULT_CACHE_DIR, Engine, configure
from repro.errors import ConfigurationError, ServeError
from repro.serve.accelerator import FIDELITIES
from repro.serve.backend import BACKENDS
from repro.serve.fleet import FleetCoordinator
from repro.serve.loadgen import available_profiles, resolve_profile
from repro.serve.service import LocalizationService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve many localization sessions on an accelerator pool.",
    )
    parser.add_argument(
        "profile",
        nargs="?",
        default="smoke",
        help="load profile to run (default: smoke; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print registered load profiles and exit"
    )
    parser.add_argument(
        "--sessions", type=int, metavar="N", help="override the session count"
    )
    parser.add_argument(
        "--instances", type=int, metavar="N", help="override the accelerator pool size"
    )
    parser.add_argument(
        "--duration",
        type=float,
        metavar="S",
        help="override the virtual-time arrival horizon (seconds)",
    )
    parser.add_argument(
        "--batch-size", type=int, metavar="N", help="override the micro-batch cap"
    )
    parser.add_argument("--seed", type=int, metavar="N", help="override the seed")
    parser.add_argument(
        "--portfolio",
        metavar="FORECAST",
        help="solve a repro.portfolio fleet for this traffic forecast and "
        "deploy its mixed configs across the instances",
    )
    parser.add_argument(
        "--policy",
        metavar="SOURCE",
        help="learned runtime control: a frozen POLICY.json artifact "
        "path, or a registered train-spec name (e.g. 'default') "
        "resolved through the engine cache; omit for the 2-bit counter "
        "+ fixed-regime baseline",
    )
    parser.add_argument(
        "--route",
        choices=("fifo", "marginal"),
        help="dispatch policy: FIFO pool (baseline) or config-aware "
        "marginal-completion-time routing",
    )
    parser.add_argument(
        "--reconfig-after",
        type=int,
        metavar="N",
        help="partially reconfigure an instance after N consecutive "
        "drifting batches (requires --portfolio; 0 disables)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="shard sessions across N shared-nothing schedulers via "
        "consistent hashing (default: 1, the single-queue service)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="thread",
        help="where NLS numerics run: in-process threads (the oracle) or "
        "forked worker processes (true multicore); metrics are "
        "byte-identical either way",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="execution workers per shard (default: the shard's instance count)",
    )
    parser.add_argument(
        "--drain",
        type=int,
        action="append",
        default=[],
        metavar="SHARD",
        help="mark a shard drained/failed; its sessions rehash "
        "deterministically onto the survivors (repeatable)",
    )
    parser.add_argument(
        "--fidelity",
        choices=FIDELITIES,
        default="analytical",
        help="service-time model: closed-form latency or cycle-level replay",
    )
    parser.add_argument(
        "--output",
        default="SERVE_METRICS.json",
        metavar="PATH",
        help="metrics file to write (default: SERVE_METRICS.json)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="export the virtual-time span trace as JSONL",
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="export the span trace as Chrome trace_event JSON",
    )
    parser.add_argument(
        "--obs-metrics",
        metavar="PATH",
        help="export counters/gauges/histograms as canonical OBS_METRICS.json",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="engine worker threads (virtual-time outputs are identical "
        "at any worker count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=str(DEFAULT_CACHE_DIR),
        metavar="PATH",
        help=f"artifact cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk artifact cache (in-process memo stays on)",
    )
    return parser


def _apply_overrides(profile, args):
    overrides = {
        "num_sessions": args.sessions,
        "num_instances": args.instances,
        "duration_s": args.duration,
        "batch_size": args.batch_size,
        "seed": args.seed,
        "portfolio": args.portfolio,
        "route": args.route,
        "reconfig_after": args.reconfig_after,
        "policy": args.policy,
    }
    overrides = {k: v for k, v in overrides.items() if v is not None}
    return dataclasses.replace(profile, **overrides) if overrides else profile


def main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in available_profiles():
            print(name)
        return 0

    # REPRO_NO_CACHE is the environment analogue of --no-cache (either
    # disables the disk cache; metrics are identical both ways).
    env_no_cache = os.environ.get("REPRO_NO_CACHE", "").lower() in ("1", "true", "yes")
    engine = configure(
        cache_dir=args.cache_dir,
        use_disk=not (args.no_cache or env_no_cache),
        jobs=args.jobs,
    )
    use_disk = not (args.no_cache or env_no_cache)
    try:
        profile = _apply_overrides(resolve_profile(args.profile), args)
        if args.shards == 1 and not args.drain:
            report = LocalizationService(
                profile,
                engine=engine,
                fidelity=args.fidelity,
                backend=args.backend,
                workers=args.workers,
            ).run()
        else:
            # Shards must share nothing: each gets its own engine (same
            # disk cache is fine — artifacts are content-addressed).
            coordinator = FleetCoordinator(
                profile,
                args.shards,
                backend=args.backend,
                workers=args.workers,
                fidelity=args.fidelity,
                drained=frozenset(args.drain),
                engine_factory=lambda: Engine(
                    cache_dir=args.cache_dir, use_disk=use_disk, jobs=args.jobs
                ),
            )
            report = coordinator.run()
    except (ConfigurationError, ServeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    path = report.write_metrics(args.output)
    print(f"metrics -> {path}")
    if args.trace:
        print(f"trace -> {report.write_trace(args.trace)}")
    if args.chrome_trace:
        print(f"chrome trace -> {report.write_chrome_trace(args.chrome_trace)}")
    if args.obs_metrics:
        print(f"obs metrics -> {report.write_obs_metrics(args.obs_metrics)}")
    cache_line = getattr(report, "cache_line", None)
    if cache_line:  # fleet runs keep per-shard engines; no single line
        print(cache_line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
