"""Deadline-aware micro-batching scheduler with admission control.

The scheduler owns one bounded, fleet-wide queue of ready windows. Three
regimes, decided per submission from the instantaneous queue depth:

* depth < ``backpressure``      -> **ACCEPT** (full iteration count);
* ``backpressure`` <= depth < ``max_queue`` -> **DEGRADE** (the runtime
  controller drops ``degrade_drop`` NLS iterations — the Sec. 6 knob
  repurposed as a load-shedding dial: each degraded window costs fewer
  accelerator cycles, trading a little accuracy for queue drain);
* depth >= ``max_queue``        -> **SHED** (the window is never
  enqueued; the session dead-reckons through it).

Dispatch pops up to ``batch_size`` requests in earliest-deadline-first
order to form one micro-batch per free accelerator instance. Ordering is
total (deadline, then global submission sequence number), so scheduling
decisions are bit-deterministic.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.serve.session import WindowRequest


class Admission(enum.Enum):
    ACCEPT = "accept"
    DEGRADE = "degrade"
    SHED = "shed"


@dataclass
class Scheduler:
    """Bounded earliest-deadline-first queue over all sessions.

    ``accepted``/``degraded``/``shed`` partition the submissions: every
    window a session offers lands in exactly one bucket, and
    ``submitted`` is their sum (an invariant the serve tests pin).

    ``policy`` is the learned-admission seam: a frozen
    :class:`repro.runtime.policy.ControllerPolicy` whose admission head
    replaces the two fixed queue-depth thresholds inside the band
    ``[0, max_queue)``. The hard bound is not delegated — at
    ``depth >= max_queue`` the decision is SHED no matter what the
    policy says (the bound is what keeps overload memory-safe), and a
    learned SHED below ``backpressure`` is demoted to DEGRADE so a
    mis-extrapolated head cannot drop windows from a near-empty queue.
    ``policy=None`` keeps the fixed-regime path bit-identical.
    """

    max_queue: int = 64
    backpressure: int = 12
    batch_size: int = 4
    policy: object | None = None
    _heap: list[tuple[float, int, WindowRequest]] = field(default_factory=list)
    submitted: int = 0
    accepted: int = 0
    degraded: int = 0
    shed: int = 0

    def __post_init__(self) -> None:
        if self.max_queue < 1 or self.batch_size < 1:
            raise ServeError("max_queue and batch_size must be >= 1")
        if self.backpressure < 0:
            # A negative threshold would make depth >= backpressure true
            # forever: every submission silently lands in DEGRADE.
            raise ServeError("backpressure threshold must be >= 0")
        if self.backpressure > self.max_queue:
            raise ServeError("backpressure threshold must be <= max_queue")

    def __len__(self) -> int:
        return len(self._heap)

    def admit(self, *, headroom: float = 1.0, drift: float = 0.0) -> Admission:
        """Admission decision for the next submission at current depth.

        ``headroom`` (fraction of the deadline budget left at the recent
        service-time EWMA) and ``drift`` (the session's drift-estimate
        EWMA, meters) are the learned head's extra features; the fixed
        regimes ignore them.
        """
        depth = len(self._heap)
        if depth >= self.max_queue:
            return Admission.SHED
        if self.policy is None:
            if depth >= self.backpressure:
                return Admission.DEGRADE
            return Admission.ACCEPT
        action = self.policy.admission(
            depth / self.max_queue,
            self.backpressure / self.max_queue,
            headroom,
            drift,
        )
        if action == "shed" and depth < self.backpressure:
            action = "degrade"
        return Admission(action)

    def push(self, request: WindowRequest) -> None:
        if len(self._heap) >= self.max_queue:
            # admit() said SHED; pushing anyway is a caller bug, and the
            # bound is what keeps overload memory-safe.
            raise ServeError("scheduler queue overflow: admission control bypassed")
        heapq.heappush(self._heap, (request.deadline, request.seq, request))
        self.submitted += 1
        if request.degraded:
            self.degraded += 1
        else:
            self.accepted += 1

    def record_shed(self) -> None:
        self.submitted += 1
        self.shed += 1

    def next_batch(self) -> list[WindowRequest]:
        """Pop up to ``batch_size`` requests, earliest deadline first."""
        return self.next_requests(self.batch_size)

    def next_requests(self, limit: int) -> list[WindowRequest]:
        """Pop up to ``limit`` requests, earliest deadline first.

        The config-aware router drains one fleet-wide slice per dispatch
        (``batch_size`` per free instance) and assigns each request to an
        instance itself, so it needs the EDF pop decoupled from the
        per-instance batch cap.
        """
        batch: list[WindowRequest] = []
        while self._heap and len(batch) < limit:
            _, _, request = heapq.heappop(self._heap)
            batch.append(request)
        return batch

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "degraded": self.degraded,
            "shed": self.shed,
            "max_queue": self.max_queue,
            "backpressure": self.backpressure,
            "batch_size": self.batch_size,
        }
