"""Sharded serving: shared-nothing shards behind a fleet coordinator.

One :class:`~repro.serve.service.LocalizationService` is a single EDF
queue over one session set — a *shard*. This module scales the tier out
by running N shards side by side, each an independent shared-nothing
service with its own scheduler, admission regimes, virtual clock, seeded
arrival streams, engine memo, and plan caches:

* **Placement** is consistent hashing of the global session id onto a
  ring of shard virtual nodes (:class:`HashRing`), with bounded loads:
  no shard takes more than ``ceil(sessions / shards)``. Removing a
  shard — drain or failure — moves that shard's sessions, each to a
  deterministic surviving shard, plus at most a cap's worth of overflow
  rebalancing; everyone else stays put.
* **Execution**: every shard's event loop runs on its own coordinator
  thread, and each shard carries its own execution backend
  (:mod:`repro.serve.backend`). With ``backend="process"`` the NLS
  numerics of different shards run in different OS processes — the
  fleet finally uses all host cores — while the thread backend remains
  the byte-exact small-scale oracle.
* **Correctness anchor**: because shards share nothing, an N-shard fleet
  run over a session set *is* the union of N single-shard runs — each
  shard's ``SERVE_METRICS.json`` is byte-identical to running its
  session slice through a standalone service, regardless of backend or
  worker count. The merged fleet metrics are a pure function of the
  per-shard metric dicts (:func:`merge_shard_metrics`).
"""

from __future__ import annotations

import bisect
import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.engine import Engine
from repro.errors import ConfigurationError, ServeError
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.tracer import CLOCK_VIRTUAL, Span, Trace
from repro.serve.loadgen import LoadProfile
from repro.serve.service import LocalizationService, ServeReport
from repro.serve.telemetry import METRICS_SCHEMA_VERSION, export_metrics

DEFAULT_VNODES = 64


def _ring_hash(key: str) -> int:
    """Stable 64-bit ring position (sha256 prefix; never Python hash())."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing of session ids onto shards.

    Each shard contributes ``vnodes`` points; a session lands on the
    first point clockwise from its own hash. The property the drain
    logic leans on: removing one shard's points reassigns only the keys
    that mapped to them.
    """

    def __init__(self, shard_ids: list[int], vnodes: int = DEFAULT_VNODES) -> None:
        if not shard_ids:
            raise ConfigurationError("a hash ring needs at least one shard")
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self._points = sorted(
            (_ring_hash(f"shard:{sid}:vnode:{v}"), sid)
            for sid in set(shard_ids)
            for v in range(vnodes)
        )

    def preference(self, session_id: int):
        """Distinct shards in clockwise order from the session's point.

        The first element is the session's home shard; the rest are its
        deterministic overflow order for bounded-load placement.
        """
        probe = (_ring_hash(f"session:{session_id}"), -1)
        start = bisect.bisect_right(self._points, probe)
        seen: set[int] = set()
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in seen:
                seen.add(shard)
                yield shard

    def assign(self, session_id: int) -> int:
        """The shard owning ``session_id`` (first point clockwise)."""
        return next(self.preference(session_id))


@dataclass(frozen=True)
class ShardSpec:
    """One shard's share of the fleet: sessions and instances."""

    shard_id: int
    session_ids: tuple[int, ...]
    num_instances: int


def plan_shards(
    profile: LoadProfile,
    num_shards: int,
    drained: frozenset[int] | set[int] = frozenset(),
    vnodes: int = DEFAULT_VNODES,
) -> tuple[ShardSpec, ...]:
    """Deterministic fleet plan: session placement + instance split.

    Placement is consistent hashing **with bounded loads**: each session
    goes to its home shard (first ring point clockwise) unless that
    shard is already at the ``ceil(sessions / shards)`` cap, in which
    case it walks the ring to the next shard with room. The cap matters
    because the slowest shard bounds the fleet's wall clock — pure
    consistent hashing over a handful of keys routinely lands 40% of
    them on one shard, capping multicore speedup well below N.

    ``drained`` shards are excluded from the ring, so their sessions
    rehash onto survivors; every other session keeps its shard unless
    the tighter per-survivor cap forces a bounded number of overflow
    moves. The profile's instances are spread round-robin across active
    shards (never below one per shard, so a small pool over many shards
    overprovisions rather than starving a shard).
    """
    if num_shards < 1:
        raise ConfigurationError("need at least one shard")
    active = [sid for sid in range(num_shards) if sid not in set(drained)]
    if not active:
        raise ConfigurationError("cannot drain every shard in the fleet")
    ring = HashRing(active, vnodes=vnodes)
    cap = -(-profile.num_sessions // len(active))  # ceil division
    sessions_by_shard: dict[int, list[int]] = {sid: [] for sid in active}
    for session_id in range(profile.num_sessions):
        for shard_id in ring.preference(session_id):
            if len(sessions_by_shard[shard_id]) < cap:
                sessions_by_shard[shard_id].append(session_id)
                break
    base, remainder = divmod(profile.num_instances, len(active))
    return tuple(
        ShardSpec(
            shard_id=sid,
            session_ids=tuple(sessions_by_shard[sid]),
            num_instances=max(1, base + (1 if index < remainder else 0)),
        )
        for index, sid in enumerate(active)
    )


def shard_service(
    profile: LoadProfile,
    spec: ShardSpec,
    engine=None,
    fidelity: str = "analytical",
    backend: str = "thread",
    workers: int | None = None,
) -> LocalizationService:
    """The standalone service equivalent of one fleet shard.

    Both the coordinator and the union-equivalence tests build shards
    through here, so "fleet shard" and "single-shard run" are the same
    object by construction.
    """
    return LocalizationService(
        replace(profile, num_instances=spec.num_instances),
        engine=engine if engine is not None else Engine(use_disk=False),
        fidelity=fidelity,
        backend=backend,
        workers=workers,
        session_ids=spec.session_ids,
        shard_id=spec.shard_id,
    )


@dataclass
class FleetReport:
    """Merged outcome of one sharded run (plus every shard's report)."""

    profile: LoadProfile
    specs: tuple[ShardSpec, ...]
    shard_reports: list[ServeReport]
    metrics: dict  # merged + per-shard; deterministic
    wall_seconds: float

    def write_metrics(self, path: str | Path) -> Path:
        return export_metrics(self.metrics, path)

    def merged_trace(self) -> Trace:
        """All shards' virtual-time spans on one trace, tagged by shard.

        Spans are concatenated in shard order, so the export is
        byte-identical across repeats and backends like its inputs.
        """
        trace = Trace(clock=CLOCK_VIRTUAL, name=f"serve:{self.profile.name}:fleet")
        for spec, report in zip(self.specs, self.shard_reports):
            if report is None or report.trace is None:
                continue
            for span in report.trace.spans:
                trace.spans.append(
                    Span(
                        name=span.name,
                        category=span.category,
                        start_s=span.start_s,
                        duration_s=span.duration_s,
                        depth=span.depth,
                        track=span.track,
                        attributes={**span.attributes, "shard": spec.shard_id},
                    )
                )
        return trace

    def write_trace(self, path: str | Path) -> Path:
        return self.merged_trace().export_jsonl(path)

    def write_chrome_trace(self, path: str | Path) -> Path:
        return self.merged_trace().export_chrome(path)

    def to_registry(self) -> MetricsRegistry:
        """Fleet-level counters/gauges/histograms as a
        :class:`repro.obs.MetricsRegistry` (canonical OBS_METRICS.json)."""
        merged = self.metrics
        registry = MetricsRegistry()
        totals = merged["totals"]
        registry.counter(
            "serve_windows_served_total", "windows completed"
        ).inc(totals["windows_served"])
        registry.counter(
            "serve_windows_shed_total", "windows shed by admission control"
        ).inc(totals["windows_shed"])
        registry.counter(
            "serve_windows_degraded_total", "windows served at reduced effort"
        ).inc(totals["windows_degraded"])
        registry.counter(
            "serve_deadline_misses_total", "windows completed past deadline"
        ).inc(totals["deadline_misses"])
        registry.counter("serve_errors_total", "solver errors").inc(totals["errors"])
        registry.counter(
            "serve_reconfigurations_total", "partial-reconfiguration swaps"
        ).inc(totals["reconfigurations"])
        registry.counter(
            "serve_reconfig_energy_joules_total",
            "energy spent on partial reconfiguration",
        ).inc(totals["reconfig_energy_j"])
        for entry in merged["configs"]:
            registry.counter(
                f"serve_config_windows_served_total:{entry['config_id']}",
                f"windows served on design point {entry['config_id']}",
            ).inc(entry["windows_served"])
            registry.counter(
                f"serve_config_energy_joules_total:{entry['config_id']}",
                f"window energy on design point {entry['config_id']}",
            ).inc(entry["energy_j"])
        registry.gauge("serve_num_shards", "shards in the fleet").set(
            merged["fleet"]["num_shards"]
        )
        registry.gauge(
            "serve_queue_depth_max", "peak queue depth across shards"
        ).set(merged["queue"]["depth_max"])
        registry.gauge(
            "serve_queue_depth_mean", "time-weighted mean queue depth"
        ).set(merged["queue"]["depth_time_weighted_mean"])
        registry.gauge("serve_makespan_seconds", "virtual makespan").set(
            totals["makespan_s"]
        )
        for name, key in (
            ("serve_latency_seconds", "latency_ms"),
            ("serve_queue_wait_seconds", "queue_wait_ms"),
            ("serve_service_seconds", "service_ms"),
        ):
            registry.register_histogram(
                name, LatencyHistogram.from_dict(merged[key])
            )
        return registry

    def write_obs_metrics(self, path: str | Path) -> Path:
        return self.to_registry().export_json(path)

    def render(self) -> str:
        totals = self.metrics["totals"]
        latency = self.metrics["latency_ms"]
        fleet = self.metrics["fleet"]
        drained = (
            f" (drained: {fleet['drained']})" if fleet["drained"] else ""
        )
        lines = [
            f"== serve fleet: {self.profile.name} ==",
            (
                f"shards {len(self.specs)} of {fleet['num_shards']}{drained}  "
                f"sessions {self.profile.num_sessions}  "
                f"instances {self.profile.num_instances}  seed {self.profile.seed}"
            ),
        ]
        for spec, report in zip(self.specs, self.shard_reports):
            if report is None:
                lines.append(
                    f"  shard {spec.shard_id}: 0 sessions (empty slice)"
                )
                continue
            shard_totals = report.metrics["totals"]
            lines.append(
                f"  shard {spec.shard_id}: {len(spec.session_ids)} sessions on "
                f"{spec.num_instances} instance(s)  "
                f"served {shard_totals['windows_served']}  "
                f"shed {shard_totals['windows_shed']}  "
                f"p99 {report.metrics['latency_ms']['p99_ms']:.2f} ms"
            )
        lines += [
            (
                f"served {totals['windows_served']}  shed {totals['windows_shed']}  "
                f"degraded {totals['windows_degraded']}  "
                f"deadline-missed {totals['deadline_misses']}  "
                f"errors {totals['errors']}"
            ),
            (
                f"latency p50 {latency['p50_ms']:.2f} ms  "
                f"p95 {latency['p95_ms']:.2f} ms  p99 {latency['p99_ms']:.2f} ms"
            ),
            (
                f"throughput {totals['throughput_wps']:.1f} windows/s over "
                f"{totals['makespan_s']:.2f} virtual s  "
                f"(wall {self.wall_seconds:.2f} s)"
            ),
            f"energy {totals['energy_j']:.3f} J across the fleet",
        ]
        return "\n".join(lines)


def merge_shard_metrics(
    shard_metrics: list[dict],
    profile: LoadProfile,
    num_shards: int,
    drained: frozenset[int] | set[int] = frozenset(),
) -> dict:
    """Fold per-shard metric dicts into one fleet-level dict.

    Pure and deterministic: the merged file is a function of the shard
    files alone, so merging the outputs of N standalone runs gives the
    byte-identical fleet artifact. Shapes mirror the per-shard file
    (``totals``/``latency_ms``/``queue``/...), with the full per-shard
    dicts preserved under ``"shards"``.
    """
    if not shard_metrics:
        raise ServeError("cannot merge zero shard metric sets")

    def total(key: str) -> float:
        return sum(m["totals"][key] for m in shard_metrics)

    served = total("windows_served")
    shed = total("windows_shed")
    makespan = max(m["totals"]["makespan_s"] for m in shard_metrics)

    def merge_histograms(key: str) -> dict:
        merged = LatencyHistogram()
        for m in shard_metrics:
            merged.merge(LatencyHistogram.from_dict(m[key]))
        return merged.as_dict()

    occupancy: dict[str, int] = {}
    for m in shard_metrics:
        for size, count in m["batches"]["occupancy_histogram"].items():
            occupancy[size] = occupancy.get(size, 0) + count
    batches = sum(occupancy.values())
    batched_windows = sum(int(size) * count for size, count in occupancy.items())

    # Shards run concurrently in virtual time, so the fleet's
    # time-weighted mean depth over [0, makespan] is the sum of each
    # shard's depth integral over the shared horizon.
    depth_integral = sum(
        m["queue"]["depth_time_weighted_mean"] * m["totals"]["makespan_s"]
        for m in shard_metrics
    )

    sessions = sorted(
        (entry for m in shard_metrics for entry in m["sessions"]),
        key=lambda entry: entry["session_id"],
    )
    instances = [
        {"shard_id": m["shard"]["shard_id"], **entry}
        for m in shard_metrics
        for entry in m["instances"]
    ]

    # Per-config counters aggregate by the stable config id: the same
    # design point on different shards is one fleet-level line, and every
    # counter (windows, busy time, window energy, reconfig time/energy)
    # sums exactly — the conservation property tests/test_serve_fleet.py
    # holds across shard counts.
    configs: dict[str, dict] = {}
    for m in shard_metrics:
        for entry in m.get("configs", []):
            merged_entry = configs.setdefault(
                entry["config_id"],
                {
                    "config_id": entry["config_id"],
                    "windows_served": 0,
                    "busy_seconds": 0.0,
                    "energy_j": 0.0,
                    "reconfigurations": 0,
                    "reconfig_seconds": 0.0,
                    "reconfig_energy_j": 0.0,
                },
            )
            for key in (
                "windows_served",
                "busy_seconds",
                "energy_j",
                "reconfigurations",
                "reconfig_seconds",
                "reconfig_energy_j",
            ):
                merged_entry[key] += entry[key]

    first = shard_metrics[0]
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "profile": asdict(profile),
        "fidelity": first["fidelity"],
        "design": first["design"],
        "totals": {
            "windows_served": served,
            "windows_shed": shed,
            "windows_degraded": total("windows_degraded"),
            "deadline_misses": total("deadline_misses"),
            "errors": total("errors"),
            "shed_fraction": shed / (served + shed) if served + shed else 0.0,
            "makespan_s": makespan,
            "throughput_wps": served / makespan if makespan else 0.0,
            "energy_j": total("energy_j"),
            "reconfigurations": total("reconfigurations"),
            "reconfig_energy_j": total("reconfig_energy_j"),
        },
        "latency_ms": merge_histograms("latency_ms"),
        "queue_wait_ms": merge_histograms("queue_wait_ms"),
        "service_ms": merge_histograms("service_ms"),
        "queue": {
            "depth_max": max(m["queue"]["depth_max"] for m in shard_metrics),
            "depth_time_weighted_mean": (
                depth_integral / makespan if makespan else 0.0
            ),
        },
        "batches": {
            "count": batches,
            "mean_occupancy": batched_windows / batches if batches else 0.0,
            "occupancy_histogram": {
                size: occupancy[size]
                for size in sorted(occupancy, key=int)
            },
        },
        "sessions": sessions,
        "configs": [configs[cid] for cid in sorted(configs)],
        # Each shard solves its own instance slice; the fleet-level view
        # is the merged "configs" list above (and the per-shard solutions
        # under "shards"), so only the forecast name is lifted here.
        "portfolio": {"name": first["portfolio"]["name"]},
        # Every shard resolves the same frozen artifact (the profile
        # names it), so lifting the first shard's identity is exact.
        "policy": first.get("policy", {"name": ""}),
        "scheduler": {
            "submitted": sum(m["scheduler"]["submitted"] for m in shard_metrics),
            "accepted": sum(m["scheduler"]["accepted"] for m in shard_metrics),
            "degraded": sum(m["scheduler"]["degraded"] for m in shard_metrics),
            "shed": sum(m["scheduler"]["shed"] for m in shard_metrics),
            "max_queue": profile.max_queue,
            "backpressure": profile.backpressure,
            "batch_size": profile.batch_size,
        },
        "instances": instances,
        "cache": {
            "memo_hits": sum(m["cache"]["memo_hits"] for m in shard_metrics),
            "distinct_artifacts": sum(
                m["cache"]["distinct_artifacts"] for m in shard_metrics
            ),
        },
        "fleet": {
            "num_shards": num_shards,
            "drained": sorted(drained),
            "shards": [
                {
                    "shard_id": m["shard"]["shard_id"],
                    "session_ids": m["shard"]["session_ids"],
                    "num_instances": m["profile"]["num_instances"],
                    "windows_served": m["totals"]["windows_served"],
                    "makespan_s": m["totals"]["makespan_s"],
                    "throughput_wps": m["totals"]["throughput_wps"],
                }
                for m in shard_metrics
            ],
        },
        "shards": shard_metrics,
    }


class FleetCoordinator:
    """Launches shards, runs them side by side, merges their telemetry.

    ``engine_factory`` builds one engine *per shard* (default: a fresh
    in-memory engine) — shards must share nothing, or their cache
    counters would depend on cross-shard timing.
    """

    def __init__(
        self,
        profile: LoadProfile,
        num_shards: int,
        backend: str = "thread",
        workers: int | None = None,
        fidelity: str = "analytical",
        drained: frozenset[int] | set[int] = frozenset(),
        engine_factory=None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        self.profile = profile
        self.num_shards = num_shards
        self.backend = backend
        self.workers = workers
        self.fidelity = fidelity
        self.drained = frozenset(drained)
        self.engine_factory = engine_factory or (lambda: Engine(use_disk=False))
        self.specs = plan_shards(
            profile, num_shards, drained=self.drained, vnodes=vnodes
        )

    def run(self) -> FleetReport:
        started = time.perf_counter()
        # Build + fork sequentially on the calling thread (fork safety),
        # then run every shard's event loop on its own thread. Thread
        # backends stay GIL-bound (the oracle); process backends put each
        # shard's numerics on separate cores.
        live: list[tuple[ShardSpec, LocalizationService]] = []
        for spec in self.specs:
            if not spec.session_ids:
                continue
            service = shard_service(
                self.profile,
                spec,
                engine=self.engine_factory(),
                fidelity=self.fidelity,
                backend=self.backend,
                workers=self.workers,
            )
            service.prepare()
            live.append((spec, service))
        if not live:
            raise ServeError("fleet plan left every shard empty")

        with ThreadPoolExecutor(max_workers=len(live)) as executor:
            futures = [
                (spec, executor.submit(service.run)) for spec, service in live
            ]
            reports_by_shard: dict[int, ServeReport] = {}
            errors = []
            for spec, future in futures:
                try:
                    reports_by_shard[spec.shard_id] = future.result()
                except Exception as error:  # noqa: BLE001 — reported below
                    errors.append((spec.shard_id, error))
        if errors:
            detail = "; ".join(f"shard {sid}: {err}" for sid, err in errors)
            raise ServeError(f"fleet run failed: {detail}")

        shard_reports = [
            reports_by_shard.get(spec.shard_id) for spec in self.specs
        ]
        merged = merge_shard_metrics(
            [r.metrics for r in shard_reports if r is not None],
            self.profile,
            self.num_shards,
            drained=self.drained,
        )
        return FleetReport(
            profile=self.profile,
            specs=self.specs,
            shard_reports=shard_reports,
            metrics=merged,
            wall_seconds=time.perf_counter() - started,
        )


def run_fleet(
    profile: LoadProfile,
    num_shards: int,
    backend: str = "thread",
    workers: int | None = None,
    fidelity: str = "analytical",
    drained: frozenset[int] | set[int] = frozenset(),
    engine_factory=None,
) -> FleetReport:
    """Convenience wrapper: plan, launch, run, merge."""
    return FleetCoordinator(
        profile,
        num_shards,
        backend=backend,
        workers=workers,
        fidelity=fidelity,
        drained=drained,
        engine_factory=engine_factory,
    ).run()
