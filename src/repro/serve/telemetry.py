"""Serve-tier telemetry: latency histograms, queue/batch gauges, drift.

Everything here is driven by *virtual* (simulated) time, so a seeded
serve run produces bit-identical metrics on every execution — the
property the determinism tests and the ``SERVE_METRICS.json`` contract
rely on. Wall-clock numbers (how long the simulation itself took) are
deliberately kept out of the exported metrics and reported only on
stdout.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

# The log-binned histogram lives in repro.obs.metrics now — one
# implementation for the whole stack; this re-export keeps the serve
# tier's public name (`from repro.serve import LatencyHistogram`) alive.
from repro.obs.metrics import LatencyHistogram, MetricsRegistry

METRICS_SCHEMA_VERSION = 1

__all__ = [
    "ConfigMetrics",
    "LatencyHistogram",
    "METRICS_SCHEMA_VERSION",
    "SessionMetrics",
    "Telemetry",
    "export_metrics",
]


@dataclass
class SessionMetrics:
    """Per-session accounting the serve report breaks out."""

    session_id: int
    sequence: str = ""
    windows_served: int = 0
    windows_shed: int = 0
    windows_degraded: int = 0
    deadline_misses: int = 0
    reconfigurations: int = 0
    iterations_total: int = 0
    energy_j: float = 0.0
    drift_sum_m: float = 0.0
    drift_max_m: float = 0.0

    def record_drift(self, meters: float) -> None:
        self.drift_sum_m += meters
        self.drift_max_m = max(self.drift_max_m, meters)

    def as_dict(self) -> dict:
        served = self.windows_served
        return {
            "session_id": self.session_id,
            "sequence": self.sequence,
            "windows_served": served,
            "windows_shed": self.windows_shed,
            "windows_degraded": self.windows_degraded,
            "deadline_misses": self.deadline_misses,
            "reconfigurations": self.reconfigurations,
            "mean_iterations": self.iterations_total / served if served else 0.0,
            "energy_j": self.energy_j,
            "mean_drift_m": self.drift_sum_m / served if served else 0.0,
            "max_drift_m": self.drift_max_m,
        }


@dataclass
class ConfigMetrics:
    """Per-design-point accounting across the (possibly mixed) pool.

    Keyed by the stable ``HardwareConfig.label`` config id, so the same
    design point aggregates across instances — and, through
    :func:`repro.serve.fleet.merge_shard_metrics`, across shards.
    """

    config_id: str
    windows_served: int = 0
    busy_seconds: float = 0.0
    energy_j: float = 0.0
    reconfigurations: int = 0
    reconfig_seconds: float = 0.0
    reconfig_energy_j: float = 0.0

    def as_dict(self) -> dict:
        return {
            "config_id": self.config_id,
            "windows_served": self.windows_served,
            "busy_seconds": self.busy_seconds,
            "energy_j": self.energy_j,
            "reconfigurations": self.reconfigurations,
            "reconfig_seconds": self.reconfig_seconds,
            "reconfig_energy_j": self.reconfig_energy_j,
        }


class Telemetry:
    """All counters and gauges of one serve run."""

    def __init__(self) -> None:
        self.latency = LatencyHistogram()  # ready -> completion
        self.queue_wait = LatencyHistogram()  # ready -> dispatch
        self.service = LatencyHistogram()  # dispatch -> completion
        self.batch_occupancy: dict[int, int] = {}
        self.windows_served = 0
        self.windows_shed = 0
        self.windows_degraded = 0
        self.deadline_misses = 0
        self.errors = 0
        self.sessions: dict[int, SessionMetrics] = {}
        self.configs: dict[str, ConfigMetrics] = {}
        self.reconfigurations = 0
        self.reconfig_energy_j = 0.0
        # Time-weighted queue-depth integral plus the exact maximum.
        self.queue_depth_max = 0
        self._depth_integral = 0.0
        self._last_depth = 0
        self._last_depth_t = 0.0
        self.end_time_s = 0.0

    def session(self, session_id: int, sequence: str = "") -> SessionMetrics:
        metrics = self.sessions.get(session_id)
        if metrics is None:
            metrics = self.sessions[session_id] = SessionMetrics(
                session_id=session_id, sequence=sequence
            )
        return metrics

    def config(self, config_id: str) -> ConfigMetrics:
        metrics = self.configs.get(config_id)
        if metrics is None:
            metrics = self.configs[config_id] = ConfigMetrics(config_id=config_id)
        return metrics

    def record_reconfig(self, config_id: str, seconds: float, joules: float) -> None:
        """One partial-reconfiguration swap, charged to the *new* config."""
        metrics = self.config(config_id)
        metrics.reconfigurations += 1
        metrics.reconfig_seconds += seconds
        metrics.reconfig_energy_j += joules
        self.reconfigurations += 1
        self.reconfig_energy_j += joules

    def sample_queue_depth(self, t: float, depth: int) -> None:
        """Record a queue-depth change at virtual time ``t``."""
        if t > self._last_depth_t:
            self._depth_integral += self._last_depth * (t - self._last_depth_t)
            self._last_depth_t = t
        self._last_depth = depth
        self.queue_depth_max = max(self.queue_depth_max, depth)

    def record_batch(self, size: int) -> None:
        self.batch_occupancy[size] = self.batch_occupancy.get(size, 0) + 1

    def record_window(
        self,
        session: SessionMetrics,
        ready_time: float,
        dispatch_time: float,
        completion_time: float,
        deadline: float,
        iterations: int,
        degraded: bool,
        reconfigured: bool,
        energy_j: float,
        drift_m: float,
        config_id: str = "",
        service_s: float = 0.0,
    ) -> None:
        self.latency.record(completion_time - ready_time)
        self.queue_wait.record(dispatch_time - ready_time)
        self.service.record(completion_time - dispatch_time)
        self.windows_served += 1
        session.windows_served += 1
        session.iterations_total += iterations
        session.energy_j += energy_j
        session.record_drift(drift_m)
        if config_id:
            config = self.config(config_id)
            config.windows_served += 1
            config.busy_seconds += service_s
            config.energy_j += energy_j
        if degraded:
            self.windows_degraded += 1
            session.windows_degraded += 1
        if reconfigured:
            session.reconfigurations += 1
        if completion_time > deadline:
            self.deadline_misses += 1
            session.deadline_misses += 1
        self.end_time_s = max(self.end_time_s, completion_time)

    def record_shed(self, session: SessionMetrics, t: float) -> None:
        self.windows_shed += 1
        session.windows_shed += 1
        self.end_time_s = max(self.end_time_s, t)

    def queue_depth_mean(self) -> float:
        if self.end_time_s <= 0:
            return 0.0
        integral = self._depth_integral
        if self.end_time_s > self._last_depth_t:
            integral += self._last_depth * (self.end_time_s - self._last_depth_t)
        return integral / self.end_time_s

    def to_registry(self) -> MetricsRegistry:
        """Snapshot this run as a :class:`repro.obs.MetricsRegistry`.

        The live histograms are registered by reference (they are final
        once the run ends), so ``registry.export_json`` writes the
        canonical ``OBS_METRICS.json`` without copying bins.
        """
        registry = MetricsRegistry()
        registry.counter(
            "serve_windows_served_total", "windows completed"
        ).inc(self.windows_served)
        registry.counter(
            "serve_windows_shed_total", "windows shed by admission control"
        ).inc(self.windows_shed)
        registry.counter(
            "serve_windows_degraded_total", "windows served at reduced effort"
        ).inc(self.windows_degraded)
        registry.counter(
            "serve_deadline_misses_total", "windows completed past deadline"
        ).inc(self.deadline_misses)
        registry.counter("serve_errors_total", "solver errors").inc(self.errors)
        registry.gauge(
            "serve_queue_depth_max", "peak queue depth"
        ).set(self.queue_depth_max)
        registry.gauge(
            "serve_queue_depth_mean", "time-weighted mean queue depth"
        ).set(self.queue_depth_mean())
        registry.gauge("serve_makespan_seconds", "virtual makespan").set(
            self.end_time_s
        )
        registry.counter(
            "serve_reconfigurations_total", "partial-reconfiguration swaps"
        ).inc(self.reconfigurations)
        registry.counter(
            "serve_reconfig_energy_joules_total",
            "energy spent on partial reconfiguration",
        ).inc(self.reconfig_energy_j)
        for config_id in sorted(self.configs):
            config = self.configs[config_id]
            registry.counter(
                f"serve_config_windows_served_total:{config_id}",
                f"windows served on design point {config_id}",
            ).inc(config.windows_served)
            registry.counter(
                f"serve_config_energy_joules_total:{config_id}",
                f"window energy on design point {config_id}",
            ).inc(config.energy_j)
        registry.register_histogram("serve_latency_seconds", self.latency)
        registry.register_histogram("serve_queue_wait_seconds", self.queue_wait)
        registry.register_histogram("serve_service_seconds", self.service)
        return registry

    def as_dict(self) -> dict:
        total_windows = self.windows_served + self.windows_shed
        batches = sum(self.batch_occupancy.values())
        batched_windows = sum(s * n for s, n in self.batch_occupancy.items())
        return {
            "totals": {
                "windows_served": self.windows_served,
                "windows_shed": self.windows_shed,
                "windows_degraded": self.windows_degraded,
                "deadline_misses": self.deadline_misses,
                "errors": self.errors,
                "shed_fraction": (
                    self.windows_shed / total_windows if total_windows else 0.0
                ),
                "makespan_s": self.end_time_s,
                "throughput_wps": (
                    self.windows_served / self.end_time_s if self.end_time_s else 0.0
                ),
                "energy_j": sum(s.energy_j for s in self.sessions.values()),
                "reconfigurations": self.reconfigurations,
                "reconfig_energy_j": self.reconfig_energy_j,
            },
            "latency_ms": self.latency.as_dict(),
            "queue_wait_ms": self.queue_wait.as_dict(),
            "service_ms": self.service.as_dict(),
            "queue": {
                "depth_max": self.queue_depth_max,
                "depth_time_weighted_mean": self.queue_depth_mean(),
            },
            "batches": {
                "count": batches,
                "mean_occupancy": batched_windows / batches if batches else 0.0,
                "occupancy_histogram": {
                    str(size): count
                    for size, count in sorted(self.batch_occupancy.items())
                },
            },
            "sessions": [
                self.sessions[sid].as_dict() for sid in sorted(self.sessions)
            ],
            "configs": [
                self.configs[cid].as_dict() for cid in sorted(self.configs)
            ],
        }


def export_metrics(metrics: dict, path: str | Path) -> Path:
    """Write a metrics dict as canonical JSON (sorted keys, fixed layout).

    Canonical form is what makes the determinism acceptance check
    meaningful: two runs agree iff their files are byte-identical.
    """
    path = Path(path)
    path.write_text(json.dumps(metrics, sort_keys=True, indent=2) + "\n")
    return path
