"""One robot's serving session: estimator + runtime controller + backlog.

A :class:`Session` is a small state machine::

    WAITING --arrival--> READY --dispatch--> INFLIGHT --completion--> ...
       \\                   |                                        /
        \\                  +--(shed)--> WAITING <------------------+
         +--frames exhausted--> DRAINED

It owns the per-robot mutable state: a :class:`SlidingWindowEstimator`
fed keyframe by keyframe, a per-session :class:`RuntimeController`
(fresh 2-bit counter; the iteration and reconfiguration tables are
shared read-only across the fleet — see the controller's concurrency
contract), and the pending backlog of arrived-but-not-yet-submitted
windows.

Thread-safety model: the service's event loop mutates a session only
while it is *not* INFLIGHT; while INFLIGHT, exactly one accelerator
worker thread runs :meth:`execute`. A session therefore never needs a
lock — the scheduler's single-inflight-window-per-session rule *is* the
synchronization.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.data.sequences import Sequence
from repro.data.stats import WindowStats
from repro.errors import ServeError
from repro.hw.config import HardwareConfig
from repro.runtime.controller import RuntimeController
from repro.slam.estimator import (
    EstimatorConfig,
    RunResult,
    SlidingWindowEstimator,
    WindowResult,
)
from repro.slam.nls import LMConfig


class SessionState(enum.Enum):
    WAITING = "waiting"  # no window ready to submit
    READY = "ready"  # >= 1 pending window, none in flight
    INFLIGHT = "inflight"  # one window queued or executing
    DRAINED = "drained"  # recording exhausted


# Wire types are slots-only, not frozen: frozen+slots dataclasses can't
# be pickled on Python 3.10 (CPython gained the needed __getstate__ /
# __setstate__ pair only in 3.11), and picklability is load-bearing —
# the process execution backend ships these across worker pipes.
@dataclass(slots=True)
class WindowRequest:
    """One window's trip through the scheduler.

    ``seq`` is a per-shard monotone tiebreaker so heap ordering is total
    and deterministic. Requests are plain picklable value objects: the
    process execution backend ships them to worker processes verbatim.
    """

    session_id: int
    frame_id: int
    ready_time: float
    deadline: float
    iterations: int
    config: HardwareConfig
    reconfigured: bool
    degraded: bool
    seq: int


@dataclass(slots=True)
class WindowOutcome:
    """The picklable result of one session step crossing the worker seam.

    Both execution backends (in-process threads and worker processes)
    reduce a served window to this value object: the workload statistics
    the latency/energy models charge from, the drift number telemetry
    records, and — when the optimization failed with a typed error — the
    error's name and message instead of a live exception object.
    """

    session_id: int
    frame_id: int
    seq: int
    stats: WindowStats | None = None
    newest_position_error: float = 0.0
    iterations: int = 0
    accepted_steps: int = 0
    final_cost: float = 0.0
    error_type: str | None = None
    error_message: str | None = None

    @property
    def ok(self) -> bool:
        return self.error_type is None

    @classmethod
    def from_result(cls, request: WindowRequest, window) -> "WindowOutcome":
        return cls(
            session_id=request.session_id,
            frame_id=request.frame_id,
            seq=request.seq,
            stats=window.stats,
            newest_position_error=window.newest_position_error,
            iterations=window.iterations,
            accepted_steps=window.accepted_steps,
            final_cost=window.final_cost,
        )

    @classmethod
    def from_error(cls, request: WindowRequest, error: Exception) -> "WindowOutcome":
        return cls(
            session_id=request.session_id,
            frame_id=request.frame_id,
            seq=request.seq,
            error_type=type(error).__name__,
            error_message=str(error),
        )


@dataclass
class Session:
    """Per-robot serving state."""

    session_id: int
    sequence: Sequence
    controller: RuntimeController
    window_size: int = 6
    # Capture each window's pre-optimization problem (needed only by the
    # pool's "functional" fidelity, which re-executes one NLS iteration
    # through the cycle-level hardware path).
    capture_problems: bool = False
    estimator: SlidingWindowEstimator = field(init=False)
    result: RunResult = field(init=False)

    def __post_init__(self) -> None:
        self.last_problem = None
        probe = self._capture_problem if self.capture_problems else None
        self.estimator = SlidingWindowEstimator(
            EstimatorConfig(
                window_size=self.window_size,
                lm=LMConfig(),
                window_probe=probe,
                seed=self.session_id,
            )
        )
        self.result = self.estimator.start(self.sequence)
        # Frame 0 bootstraps the estimator synchronously; windows to
        # serve are frames 1 .. num_keyframes-1, in order.
        self.estimator.step(self.sequence, 0, self.result)
        self.state = SessionState.WAITING
        self.next_frame = 1
        self.pending: deque[tuple[int, float]] = deque()  # (frame_id, ready_time)

    @property
    def total_windows(self) -> int:
        return max(self.sequence.num_keyframes - 1, 0)

    @property
    def frames_remaining(self) -> bool:
        return self.next_frame < self.sequence.num_keyframes

    # ------------------------------------------------------------------
    # Event-loop side (never runs concurrently with execute())
    # ------------------------------------------------------------------

    def on_arrival(self, t: float) -> bool:
        """The front-end produced the next keyframe at virtual time ``t``.

        Returns False when the recording is exhausted.
        """
        if not self.frames_remaining:
            return False
        self.pending.append((self.next_frame, t))
        self.next_frame += 1
        if self.state is SessionState.WAITING:
            self.state = SessionState.READY
        return True

    def front_end_feature_count(self, frame_id: int) -> int:
        """The sensing front-end's load signal for one keyframe — what
        the runtime controller keys its iteration decision on."""
        return self.sequence.observations[frame_id].num_features

    def take_pending(self) -> tuple[int, float]:
        """Pop the oldest pending window for submission/shedding."""
        if not self.pending:
            raise ServeError(f"session {self.session_id} has no pending window")
        frame_id, ready_time = self.pending.popleft()
        if not self.pending and self.state is SessionState.READY:
            self.state = SessionState.WAITING
        return frame_id, ready_time

    def mark_inflight(self) -> None:
        if self.state is SessionState.INFLIGHT:
            raise ServeError(
                f"session {self.session_id} already has a window in flight"
            )
        self.state = SessionState.INFLIGHT

    def shed(self, frame_id: int) -> None:
        """Admission control dropped this window: ingest the keyframe
        (dead-reckoning keeps the state chain consistent) but skip the
        accelerator's optimization entirely."""
        self.estimator.step(self.sequence, frame_id, self.result, skip_optimize=True)

    def on_complete(self) -> None:
        if self.state is not SessionState.INFLIGHT:
            raise ServeError(
                f"session {self.session_id} completed a window while {self.state}"
            )
        self.state = SessionState.READY if self.pending else SessionState.WAITING
        if not self.pending and not self.frames_remaining:
            self.state = SessionState.DRAINED

    def maybe_drain(self) -> None:
        """Mark DRAINED once nothing is pending and no frames remain."""
        if (
            self.state in (SessionState.WAITING, SessionState.READY)
            and not self.pending
            and not self.frames_remaining
        ):
            self.state = SessionState.DRAINED

    # ------------------------------------------------------------------
    # Worker side (runs on an accelerator thread while INFLIGHT)
    # ------------------------------------------------------------------

    def _capture_problem(self, problem, frame_id) -> None:
        del frame_id
        self.last_problem = problem

    def execute(self, request: WindowRequest) -> WindowResult:
        """Run the window optimization the accelerator would perform."""
        window = self.estimator.step(
            self.sequence,
            request.frame_id,
            self.result,
            iteration_cap=request.iterations,
        )
        if window is None:
            raise ServeError(
                f"session {self.session_id} frame {request.frame_id} "
                "produced no window result"
            )
        return window
