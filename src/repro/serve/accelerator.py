"""Simulated accelerator instances: real numerics, modeled service time.

Each :class:`AcceleratorInstance` stands in for one synthesized FPGA
(one Tbl. 2 design). Executing a window does two things:

1. runs the *actual* window optimization (the estimator's NLS solve —
   bit-identical to what the modeled hardware computes, per the
   conformance contract between ``hw.sim.functional`` and the software
   solver), on a worker thread so a fleet of instances uses the host's
   cores; and
2. charges *simulated* service time in virtual seconds: the analytical
   latency model (Equ. 13-15) for the gated configuration and applied
   iteration count, plus the host-link transfer for the window payload
   (and the 3 config bytes when the decision changed).

``fidelity="functional"`` additionally routes one NLS iteration through
:func:`repro.hw.sim.functional.run_iteration_functional` so the
per-iteration cycle charge comes from the measured Evaluate/Update
Cholesky timeline instead of the closed-form Equ. 7-8 — slower, but it
ties the serving tier to the cycle-level model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.stats import WindowStats
from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.hw.fpga import FpgaPlatform, ZC706
from repro.hw.latency import marginalization_latency, nls_iteration_latency
from repro.runtime.host import HostLink, window_payload_bytes

FIDELITIES = ("analytical", "functional")


@dataclass(frozen=True)
class ServiceCharge:
    """One window's simulated occupancy of an accelerator instance."""

    compute_s: float  # Equ. 13-15 (or measured-Cholesky) compute time
    transfer_s: float  # host-link payload (+3 config bytes if reconfigured)

    @property
    def total_s(self) -> float:
        return self.compute_s + self.transfer_s


@dataclass
class AcceleratorInstance:
    """One simulated accelerator worker in the pool."""

    instance_id: int
    platform: FpgaPlatform = ZC706
    link: HostLink = field(default_factory=HostLink)
    fidelity: str = "analytical"
    # The design point this instance currently holds. Homogeneous pools
    # give every instance the profile's named design; a portfolio fleet
    # mixes configs, and partial reconfiguration may swap this at
    # runtime (see reconfigure()).
    config: HardwareConfig = field(default_factory=HardwareConfig)
    free_at: float = 0.0
    windows_executed: int = 0
    busy_seconds: float = 0.0
    batches: int = 0
    reconfigurations: int = 0
    reconfig_seconds: float = 0.0
    reconfig_joules: float = 0.0
    # SolverPlan cache the functional fidelity solves through. None means
    # the process-wide default cache — the same one the software
    # estimator uses, so serving-tier and estimator windows of identical
    # structure share plans (per worker thread; the cache is thread-keyed).
    plan_cache: object | None = None

    def __post_init__(self) -> None:
        if self.fidelity not in FIDELITIES:
            raise ConfigurationError(
                f"fidelity must be one of {FIDELITIES}, got {self.fidelity!r}"
            )

    @property
    def config_id(self) -> str:
        """Stable telemetry identity of the current design point."""
        return self.config.label

    def charge(
        self,
        stats: WindowStats,
        config: HardwareConfig,
        iterations: int,
        reconfigured: bool,
        problem=None,
    ) -> "ServiceCharge":
        """Virtual seconds this window occupies the instance."""
        if self.fidelity == "functional" and problem is not None:
            from repro.geometry.navstate import STATE_DIM
            from repro.hw.sim.functional import run_iteration_functional
            from repro.linalg.plan import default_plan_cache

            cache = self.plan_cache or default_plan_cache()
            plan = cache.get(
                len(problem.inv_depths), STATE_DIM * len(problem.states)
            )
            execution = run_iteration_functional(
                problem, config, platform=self.platform, plan=plan
            )
            compute_cycles = (
                iterations * execution.cycles + marginalization_latency(stats, config)
            )
        else:
            compute_cycles = iterations * nls_iteration_latency(
                stats, config
            ) + marginalization_latency(stats, config)
        compute = compute_cycles / self.platform.frequency_hz
        transfer = self.link.transfer_seconds(
            window_payload_bytes(stats, reconfigured=reconfigured)
        )
        return ServiceCharge(compute_s=compute, transfer_s=transfer)

    def occupy(self, start: float, seconds: float) -> float:
        """Charge ``seconds`` of busy time starting at ``start``; returns
        the new free-at time."""
        self.free_at = start + seconds
        self.busy_seconds += seconds
        self.windows_executed += 1
        return self.free_at

    def reconfigure(
        self, config: HardwareConfig, seconds: float, joules: float, start: float
    ) -> float:
        """Partially reconfigure to ``config`` starting at ``start``.

        The instance is offline for ``seconds`` of virtual time (counted
        as busy — the fabric is occupied by the configuration port) and
        the swap energy is accumulated separately from window energy.
        Returns the new free-at time.
        """
        self.config = config
        self.reconfigurations += 1
        self.reconfig_seconds += seconds
        self.reconfig_joules += joules
        self.busy_seconds += seconds
        self.free_at = start + seconds
        return self.free_at

    def utilization(self, horizon_s: float) -> float:
        return self.busy_seconds / horizon_s if horizon_s > 0 else 0.0

    def as_dict(self, horizon_s: float) -> dict:
        return {
            "instance_id": self.instance_id,
            "config_id": self.config_id,
            "windows_executed": self.windows_executed,
            "batches": self.batches,
            "busy_seconds": self.busy_seconds,
            "utilization": self.utilization(horizon_s),
            "reconfigurations": self.reconfigurations,
        }


def make_pool(
    num_instances: int,
    platform: FpgaPlatform = ZC706,
    link: HostLink | None = None,
    fidelity: str = "analytical",
    configs: list[HardwareConfig] | tuple[HardwareConfig, ...] | None = None,
) -> list[AcceleratorInstance]:
    """A pool of ``num_instances`` accelerator instances.

    ``configs`` makes the pool heterogeneous: one
    :class:`HardwareConfig` per instance, in instance-id order (a solved
    portfolio's ``instance_configs()`` expansion). Omitted, every
    instance carries the default config — the homogeneous pool the FIFO
    baseline uses.
    """
    if num_instances < 1:
        raise ConfigurationError("need at least one accelerator instance")
    if configs is not None and len(configs) != num_instances:
        raise ConfigurationError(
            f"configs must list one HardwareConfig per instance: got "
            f"{len(configs)} for {num_instances} instances"
        )
    return [
        AcceleratorInstance(
            instance_id=i,
            platform=platform,
            link=link or HostLink(),
            fidelity=fidelity,
            config=configs[i] if configs is not None else HardwareConfig(),
        )
        for i in range(num_instances)
    ]
