"""``repro.serve`` — a multi-session localization service.

The serving tier runs many concurrent SLAM sessions (robots) against a
pool of simulated accelerator instances, with cross-session
micro-batching, deadline-aware scheduling, admission control that
degrades or sheds under overload, and deterministic virtual-time
telemetry exported as ``SERVE_METRICS.json``. See ``docs/serving.md``.

Typical use::

    from repro.serve import resolve_profile, run_profile

    report = run_profile(resolve_profile("smoke"))
    print(report.render())
    report.write_metrics("SERVE_METRICS.json")
"""

from repro.serve.accelerator import (
    FIDELITIES,
    AcceleratorInstance,
    ServiceCharge,
    make_pool,
)
from repro.serve.loadgen import (
    PROFILES,
    LoadProfile,
    available_profiles,
    open_loop_arrivals,
    resolve_profile,
    session_sequence_config,
)
from repro.serve.scheduler import Admission, Scheduler
from repro.serve.service import LocalizationService, ServeReport, run_profile
from repro.serve.session import Session, SessionState, WindowRequest
from repro.serve.telemetry import (
    METRICS_SCHEMA_VERSION,
    LatencyHistogram,
    SessionMetrics,
    Telemetry,
    export_metrics,
)

__all__ = [
    "AcceleratorInstance",
    "Admission",
    "FIDELITIES",
    "LatencyHistogram",
    "LoadProfile",
    "LocalizationService",
    "METRICS_SCHEMA_VERSION",
    "PROFILES",
    "Scheduler",
    "ServeReport",
    "ServiceCharge",
    "Session",
    "SessionMetrics",
    "SessionState",
    "Telemetry",
    "WindowRequest",
    "available_profiles",
    "export_metrics",
    "make_pool",
    "open_loop_arrivals",
    "resolve_profile",
    "run_profile",
    "session_sequence_config",
]
