"""``repro.serve`` — a multi-session localization service.

The serving tier runs many concurrent SLAM sessions (robots) against a
pool of simulated accelerator instances, with cross-session
micro-batching, deadline-aware scheduling, admission control that
degrades or sheds under overload, and deterministic virtual-time
telemetry exported as ``SERVE_METRICS.json``. See ``docs/serving.md``.

Typical use::

    from repro.serve import resolve_profile, run_profile

    report = run_profile(resolve_profile("smoke"))
    print(report.render())
    report.write_metrics("SERVE_METRICS.json")
"""

from repro.serve.accelerator import (
    FIDELITIES,
    AcceleratorInstance,
    ServiceCharge,
    make_pool,
)
from repro.serve.backend import (
    BACKENDS,
    ProcessBackend,
    ThreadBackend,
    make_backend,
)
from repro.serve.fleet import (
    FleetCoordinator,
    FleetReport,
    HashRing,
    ShardSpec,
    merge_shard_metrics,
    plan_shards,
    run_fleet,
    shard_service,
)
from repro.serve.loadgen import (
    PROFILES,
    LoadProfile,
    available_profiles,
    open_loop_arrivals,
    resolve_profile,
    session_sequence_config,
)
from repro.serve.scheduler import Admission, Scheduler
from repro.serve.service import LocalizationService, ServeReport, run_profile
from repro.serve.session import (
    Session,
    SessionState,
    WindowOutcome,
    WindowRequest,
)
from repro.serve.telemetry import (
    METRICS_SCHEMA_VERSION,
    ConfigMetrics,
    LatencyHistogram,
    SessionMetrics,
    Telemetry,
    export_metrics,
)

__all__ = [
    "AcceleratorInstance",
    "Admission",
    "BACKENDS",
    "ConfigMetrics",
    "FIDELITIES",
    "FleetCoordinator",
    "FleetReport",
    "HashRing",
    "LatencyHistogram",
    "LoadProfile",
    "LocalizationService",
    "METRICS_SCHEMA_VERSION",
    "PROFILES",
    "ProcessBackend",
    "Scheduler",
    "ServeReport",
    "ServiceCharge",
    "Session",
    "SessionMetrics",
    "SessionState",
    "ShardSpec",
    "Telemetry",
    "ThreadBackend",
    "WindowOutcome",
    "WindowRequest",
    "available_profiles",
    "export_metrics",
    "make_backend",
    "make_pool",
    "merge_shard_metrics",
    "open_loop_arrivals",
    "plan_shards",
    "resolve_profile",
    "run_fleet",
    "run_profile",
    "session_sequence_config",
    "shard_service",
]
