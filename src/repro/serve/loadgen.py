"""Deterministic load generation: profiles and seeded arrival processes.

Two arrival disciplines, both classic serving-benchmark shapes:

* **open-loop Poisson** — each session's windows become ready at seeded
  exponential inter-arrival times, independent of service progress (the
  discipline that exposes queueing collapse under overload);
* **closed-loop** — each robot submits its next window a fixed think
  time after the previous one completes (arrival rate self-limits to
  service capacity, the discipline real robots follow).

A :class:`LoadProfile` bundles the arrival process with fleet shape
(sessions, accelerator instances), scheduler knobs (queue bound,
backpressure thresholds, batch size, deadline), and the dataset mix.
Profiles are frozen dataclasses: the profile plus its seed fully
determines the run.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, replace

from repro.data.sequences import EUROC_SEQUENCES, KITTI_SEQUENCES, SequenceConfig
from repro.errors import ConfigurationError
from repro.utils.rng import rng_from_seed, split_seed


@dataclass(frozen=True)
class LoadProfile:
    """Everything needed to deterministically replay one load pattern."""

    name: str
    description: str = ""
    num_sessions: int = 8
    num_instances: int = 2
    arrival: str = "poisson"  # "poisson" (open-loop) | "closed" (closed-loop)
    rate_hz: float = 4.0  # per-session window arrival rate (open-loop)
    think_time_s: float = 0.05  # completion -> next submission (closed-loop)
    duration_s: float = 10.0  # virtual-time horizon for new arrivals
    sequence_duration_s: float = 3.0  # length of each robot's recording
    window_size: int = 6
    deadline_s: float = 0.25  # per-window latency budget
    max_queue: int = 64  # hard bound; beyond it windows are shed
    backpressure: int = 12  # queue depth where degradation kicks in
    degrade_drop: int = 2  # NLS iterations dropped while degraded
    max_pending_per_session: int = 4  # per-robot backlog before shedding
    batch_size: int = 4  # micro-batch cap per dispatch
    design: str = "High-Perf"  # named Tbl. 2 design backing the pool
    scenario: str = ""  # "" = catalog mix; else a repro.scenarios regime
    # Fleet-planning knobs (repro.portfolio). portfolio="" keeps the
    # homogeneous named-design pool; a forecast name solves a portfolio
    # and deploys its mixed configs across the instances. route picks
    # the dispatcher: "fifo" (the baseline/oracle) or "marginal"
    # (config-aware routing by marginal completion time).
    portfolio: str = ""  # "" = homogeneous pool; else a traffic forecast
    route: str = "fifo"  # "fifo" | "marginal"
    portfolio_configs: int = 0  # cap on distinct configs (0 = solver default)
    reconfig_after: int = 0  # drift batches before a swap (0 = never)
    # Learned runtime control (repro.runtime.policy). "" keeps the 2-bit
    # counter + fixed admission regimes; a "*.json" path loads a frozen
    # POLICY.json artifact; any other name resolves a registered
    # PolicyTrainSpec through the engine's content-addressed POLICY
    # stage. Either way the weights are frozen before the run starts, so
    # the profile + artifact still fully determine the metrics.
    policy: str = ""
    seed: int = 0

    # Validation names the offending field so a bad override in a CLI
    # flag or profile table is a one-look diagnosis, not a guessing game
    # over an aggregate message.
    _AT_LEAST_ONE = (
        "num_sessions",
        "num_instances",
        "max_queue",
        "batch_size",
        "max_pending_per_session",
    )
    _POSITIVE = (
        "rate_hz",
        "think_time_s",
        "duration_s",
        "sequence_duration_s",
        "deadline_s",
    )

    def __post_init__(self) -> None:
        for name in self._AT_LEAST_ONE:
            value = getattr(self, name)
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        if self.arrival not in ("poisson", "closed"):
            raise ConfigurationError(
                f"arrival must be 'poisson' or 'closed', got {self.arrival!r}"
            )
        for name in self._POSITIVE:
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.backpressure > self.max_queue:
            raise ConfigurationError(
                f"backpressure ({self.backpressure}) must be <= "
                f"max_queue ({self.max_queue})"
            )
        if self.scenario:
            from repro.scenarios import resolve_scenario

            resolve_scenario(self.scenario)  # raises with did-you-mean
        if self.route not in ("fifo", "marginal"):
            raise ConfigurationError(
                f"route must be 'fifo' or 'marginal', got {self.route!r}"
            )
        if self.portfolio:
            from repro.portfolio import resolve_forecast

            resolve_forecast(self.portfolio)  # raises with did-you-mean
        if self.policy and not self.policy.endswith(".json"):
            from repro.runtime.policy import resolve_policy_spec

            resolve_policy_spec(self.policy)  # raises with did-you-mean
        if self.portfolio_configs < 0:
            raise ConfigurationError(
                f"portfolio_configs must be >= 0, got {self.portfolio_configs}"
            )
        if self.reconfig_after < 0:
            raise ConfigurationError(
                f"reconfig_after must be >= 0, got {self.reconfig_after}"
            )
        if self.reconfig_after > 0 and not self.portfolio:
            raise ConfigurationError(
                "reconfig_after needs a portfolio: a homogeneous pool has "
                "nothing to swap to"
            )


# The dataset mix: sessions cycle through the catalog, so a fleet larger
# than the catalog re-uses sequence configs — which is exactly what makes
# the engine's artifact cache visible in the serve telemetry.
_CATALOG_CYCLE = tuple(
    ("euroc", name) for name in sorted(EUROC_SEQUENCES)
) + tuple(("kitti", name) for name in sorted(KITTI_SEQUENCES))


def session_sequence_config(profile: LoadProfile, session_id: int) -> SequenceConfig:
    """The catalog sequence backing one session, at the profile length.

    A scenario-tagged profile replaces the catalog mix with the regime's
    synthetic recordings: each session gets the deterministic
    :func:`repro.scenarios.scenario_sequence_config` for its id, so
    degrade/shed behaviour is exercised by realistic degenerate inputs
    rather than hand-injected faults.
    """
    if profile.scenario:
        from repro.scenarios import scenario_sequence_config

        return scenario_sequence_config(
            profile.scenario, session_id, duration=profile.sequence_duration_s
        )
    kind, name = _CATALOG_CYCLE[session_id % len(_CATALOG_CYCLE)]
    catalog = EUROC_SEQUENCES if kind == "euroc" else KITTI_SEQUENCES
    return replace(catalog[name], duration=profile.sequence_duration_s)


def open_loop_arrivals(
    profile: LoadProfile, session_id: int, num_windows: int
) -> list[float]:
    """Seeded Poisson arrival times for one open-loop session.

    At most ``num_windows`` arrivals (a recording has finitely many
    keyframes) and none beyond the profile's virtual-time horizon.
    """
    rng = rng_from_seed(split_seed(profile.seed, f"arrivals:{session_id}"))
    times: list[float] = []
    t = float(rng.exponential(1.0 / profile.rate_hz))
    while t < profile.duration_s and len(times) < num_windows:
        times.append(t)
        t += float(rng.exponential(1.0 / profile.rate_hz))
    return times


def closed_loop_start(profile: LoadProfile, session_id: int) -> float:
    """Seeded start offset of one closed-loop session (staggers the fleet)."""
    rng = rng_from_seed(split_seed(profile.seed, f"start:{session_id}"))
    return float(rng.uniform(0.0, profile.think_time_s + 1.0 / profile.rate_hz))


def _profile(name: str, description: str, **overrides) -> LoadProfile:
    return LoadProfile(name=name, description=description, **overrides)


PROFILES: dict[str, LoadProfile] = {
    "smoke": _profile(
        "smoke",
        "CI-sized open-loop run: 8 sessions on 2 instances, under capacity",
        num_sessions=8,
        num_instances=2,
        rate_hz=4.0,
        duration_s=8.0,
        sequence_duration_s=3.0,
    ),
    "steady": _profile(
        "steady",
        "16 sessions on 4 instances at moderate utilization",
        num_sessions=16,
        num_instances=4,
        rate_hz=4.0,
        duration_s=12.0,
        sequence_duration_s=6.0,
    ),
    # Note the queue-depth invariant: each session keeps at most one
    # window in the scheduler (single-inflight rule), so depth is
    # bounded by num_sessions — an overload profile must set max_queue
    # *below* the session count or admission-level shedding can never
    # trigger.
    "overload": _profile(
        "overload",
        "12 sessions burst-arriving on 1 instance: exercises backpressure "
        "degradation, admission shedding, and per-session backlog shedding",
        num_sessions=12,
        num_instances=1,
        rate_hz=60.0,
        duration_s=2.0,
        sequence_duration_s=4.0,
        max_queue=8,
        backpressure=4,
        deadline_s=0.05,
        max_pending_per_session=2,
    ),
    "closed-loop": _profile(
        "closed-loop",
        "8 robots in closed loop on 2 instances (self-limiting arrivals)",
        arrival="closed",
        num_sessions=8,
        num_instances=2,
        think_time_s=0.03,
        duration_s=8.0,
        sequence_duration_s=3.0,
    ),
    # Scenario-tagged profiles: the regime's synthetic recordings replace
    # the catalog mix (see session_sequence_config). The two hard regimes
    # carry overload-shaped scheduler knobs — max_queue below the session
    # count (the single-inflight rule bounds depth by num_sessions) and a
    # tight deadline — so DEGRADE and SHED trigger from the regime's own
    # arrival pressure, with zero errors expected.
    "scenario-tunnel": _profile(
        "scenario-tunnel",
        "12 drones burst-arriving through a feature-drought tunnel on 1 "
        "instance: cheap windows at very high rate, shedding at admission",
        num_sessions=12,
        num_instances=1,
        rate_hz=200.0,
        duration_s=2.0,
        sequence_duration_s=3.0,
        max_queue=4,
        backpressure=2,
        deadline_s=0.02,
        max_pending_per_session=1,
        scenario="tunnel",
    ),
    "scenario-loop-closure": _profile(
        "scenario-loop-closure",
        "8 cars hitting loop closures on 1 instance: sudden large windows "
        "overload service capacity",
        num_sessions=8,
        num_instances=1,
        rate_hz=40.0,
        duration_s=2.0,
        sequence_duration_s=2.0,
        max_queue=5,
        backpressure=2,
        deadline_s=0.05,
        max_pending_per_session=2,
        scenario="loop_closure",
    ),
    "scenario-aggressive": _profile(
        "scenario-aggressive",
        "8 drones under aggressive flight on 2 instances (high angular "
        "rates, short tracks)",
        num_sessions=8,
        num_instances=2,
        rate_hz=8.0,
        duration_s=4.0,
        sequence_duration_s=3.0,
        scenario="aggressive",
    ),
    # The portfolio profile: the solved "mixed" forecast deploys a
    # heterogeneous pool and the marginal-cost router steers each window
    # to the cheapest instance. CI's portfolio-smoke job runs this on 2
    # shards; bench_portfolio.py uses a tuned variant of the same shape.
    "portfolio-mixed": _profile(
        "portfolio-mixed",
        "8 robots over the mixed degenerate regimes on a 4-instance "
        "portfolio fleet with config-aware routing",
        num_sessions=8,
        num_instances=4,
        rate_hz=4.0,
        duration_s=6.0,
        sequence_duration_s=3.0,
        scenario="mixed",
        portfolio="mixed",
        route="marginal",
    ),
    "scenario-highway": _profile(
        "scenario-highway",
        "8 cars at highway speed on 2 instances (distant low-parallax "
        "features)",
        num_sessions=8,
        num_instances=2,
        rate_hz=8.0,
        duration_s=4.0,
        sequence_duration_s=3.0,
        scenario="highway",
    ),
}


def available_profiles() -> list[str]:
    """All registered load-profile names, sorted."""
    return sorted(PROFILES)


def resolve_profile(name: str) -> LoadProfile:
    """Look up a named profile, with did-you-mean on typos."""
    if name not in PROFILES:
        close = difflib.get_close_matches(name, PROFILES, n=3, cutoff=0.4)
        hint = (
            f"; did you mean {' or '.join(repr(c) for c in close)}?"
            if close
            else f"; choose from {available_profiles()}"
        )
        raise ConfigurationError(f"unknown load profile {name!r}{hint}")
    return PROFILES[name]
