"""Exception hierarchy for the Archytas reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from infeasible optimization
problems or malformed data-flow graphs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class InfeasibleDesignError(ReproError):
    """The synthesizer's constrained optimization has no feasible point.

    Raised when no (nd, nm, s) assignment satisfies the latency and
    resource constraints of :class:`repro.synth.spec.DesignSpec` on the
    target FPGA.
    """


class GraphError(ReproError):
    """A macro data-flow graph is malformed (cycles, dangling edges, ...)."""


class ScheduleError(ReproError):
    """The static scheduler could not map an M-DFG onto the template."""


class DataError(ReproError):
    """A dataset, trace, or sliding window is structurally invalid."""


class SolverError(ReproError):
    """A numerical solver failed to make progress (singular system, ...)."""


class ServeError(ReproError):
    """The serving tier violated one of its invariants.

    Raised for internal contract breaks in :mod:`repro.serve` (a session
    stepped out of order, a scheduler queue overflow that admission
    control should have prevented, ...). Expected overload behaviour —
    shedding and degrading — is *not* an error and is reported through
    telemetry counters instead.
    """
