"""Lowering scenario specs into concrete workloads.

Three lowering targets, one per layer of the stack:

* :func:`make_scenario_window` — a single :class:`WindowProblem` shaped
  by the regime, for the differential oracles and the estimator/NLS
  paths. Every matrix window keeps its IMU factors and the pose anchor
  prior, so the problems are *hard but solvable* — the exactly singular
  limit is the fault injector's corner, reached through
  :func:`make_drought_window` with ``baseline=0``.
* :func:`make_scenario_stats_series` — a ``(WindowStats, iterations)``
  series with the regime's temporal shape (droughts decay, loop
  closures spike), for the cycle-trace / latency-model paths.
* :func:`scenario_sequence_config` — a :class:`SequenceConfig` whose
  synthetic recording exhibits the regime, for the serving tier's
  scenario-tagged load profiles.

All three are pure functions of ``(spec, seed)`` — bit-deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.data.sequences import SequenceConfig
from repro.data.stats import WindowStats
from repro.data.tracks import TrackerConfig
from repro.geometry.camera import PinholeCamera
from repro.geometry.navstate import NavState
from repro.geometry.se3 import SE3
from repro.geometry.so3 import so3_exp
from repro.imu.preintegration import ImuPreintegration
from repro.scenarios.spec import (
    REGIME_AGGRESSIVE,
    REGIME_HIGHWAY,
    REGIME_LOOP_CLOSURE,
    REGIME_NOMINAL,
    REGIME_TUNNEL,
    ScenarioSpec,
    resolve_scenario,
)
from repro.slam.problem import WindowProblem
from repro.slam.residuals import ImuFactor, VisualFactor, make_pose_anchor_prior
from repro.utils.rng import rng_from_seed, split_seed

# Keyframe spacing of the nominal forward-motion shape (what
# repro.testing.workloads.make_random_window uses).
_NOMINAL_STEP = 0.45
_KF_DT = 0.2


def _static_imu_factors(num_keyframes: int) -> list[ImuFactor]:
    """The hover preintegrations every synthetic window carries."""
    factors = []
    for k in range(1, num_keyframes):
        pre = ImuPreintegration()
        for _ in range(40):
            pre.integrate(np.zeros(3), np.array([0.0, 0.0, 9.81]), 0.005, 1e-3, 1e-2)
        factors.append(ImuFactor(k - 1, k, pre))
    return factors


# ----------------------------------------------------------------------
# The drought window: the single code path behind both the tunnel
# regime and the fault injector's degenerate window
# ----------------------------------------------------------------------

def make_drought_window(
    seed: int = 0,
    num_keyframes: int = 3,
    num_features: int = 8,
    baseline: float = 0.0,
    conditioned: bool = False,
    backend: str = "batched",
) -> WindowProblem:
    """A feature-drought window: tiny baseline, one observation per track.

    ``baseline`` is the per-keyframe translation. At ``baseline=0`` with
    ``conditioned=False`` this is *exactly* the rank-deficient window the
    fault injector (:func:`repro.testing.faults.make_degenerate_window`)
    hands to the graceful-degradation tests: identical poses, so no
    visual factor carries depth information and the unregularized normal
    equations are singular. ``conditioned=True`` adds the IMU factors and
    the pose anchor prior back, which is how the tunnel regime stays in
    oracle-comparable (solvable) territory while keeping the same
    drought geometry and the same RNG draw order.
    """
    rng = np.random.default_rng(seed)
    camera = PinholeCamera()
    states = {
        k: NavState(
            pose=SE3(np.eye(3), np.array([baseline * k, 0.0, 0.0])),
            velocity=(
                np.array([baseline / _KF_DT, 0.0, 0.0])
                if conditioned
                else np.zeros(3)
            ),
        )
        for k in range(num_keyframes)
    }
    factors = []
    inv_depths = {}
    for fid in range(num_features):
        bearing = np.array([rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3), 1.0])
        pixel = np.array(
            [rng.uniform(0.0, camera.width), rng.uniform(0.0, camera.height)]
        )
        factors.append(VisualFactor(fid, 0, 1, bearing, pixel, weight=1.0))
        inv_depths[fid] = 0.2
    return WindowProblem(
        camera=camera,
        states=states,
        inv_depths=inv_depths,
        visual_factors=factors,
        imu_factors=_static_imu_factors(num_keyframes) if conditioned else [],
        priors=[make_pose_anchor_prior(0, states[0])] if conditioned else [],
        backend=backend,
    )


# ----------------------------------------------------------------------
# The structured regimes: one parameterized geometry
# ----------------------------------------------------------------------

def _structured_window(
    seed: int,
    num_keyframes: int,
    num_features: int,
    *,
    step: float,
    axis: int,
    rot_noise: float,
    bearing_spread: tuple[float, float],
    depth_range: tuple[float, float],
    anchor_origin: bool,
    track_length: int | None,
    backend: str,
    huber_delta: float | None,
) -> WindowProblem:
    """The shared keyframes-past-a-feature-field generator.

    ``axis`` selects the motion direction (0 = lateral like the nominal
    builder, 2 = along the optical axis for highway), ``anchor_origin``
    pins every track's anchor to frame 0 (revisited landmarks),
    ``track_length`` caps how many later keyframes observe each feature
    (``None`` = all of them — long tracks).
    """
    rng = np.random.default_rng(seed)
    camera = PinholeCamera()
    states: dict[int, NavState] = {}
    for k in range(num_keyframes):
        rotation = so3_exp(rng.normal(scale=rot_noise, size=3))
        position = np.zeros(3)
        position[axis] = step * k
        position += rng.normal(scale=0.02, size=3)
        velocity = np.zeros(3)
        velocity[axis] = step / _KF_DT
        states[k] = NavState(
            pose=SE3(rotation, position),
            velocity=velocity + rng.normal(scale=0.05, size=3),
        )

    factors: list[VisualFactor] = []
    inv_depths: dict[int, float] = {}
    sx, sy = bearing_spread
    for fid in range(num_features):
        anchor = 0 if anchor_origin else int(rng.integers(0, num_keyframes - 1))
        bearing = np.array([rng.uniform(-sx, sx), rng.uniform(-sy, sy), 1.0])
        depth = rng.uniform(*depth_range)
        last = (
            num_keyframes
            if track_length is None
            else min(anchor + 1 + track_length, num_keyframes)
        )
        observed = 0
        for target in range(anchor + 1, last):
            pixel = np.array(
                [rng.uniform(0.0, camera.width), rng.uniform(0.0, camera.height)]
            )
            factors.append(
                VisualFactor(
                    fid, anchor, target, bearing, pixel,
                    weight=float(rng.uniform(0.5, 2.0)),
                )
            )
            observed += 1
        if observed:
            inv_depths[fid] = float(1.0 / depth)
    factors = [f for f in factors if f.feature_id in inv_depths]

    return WindowProblem(
        camera=camera,
        states=states,
        inv_depths=inv_depths,
        visual_factors=factors,
        imu_factors=_static_imu_factors(num_keyframes),
        priors=[make_pose_anchor_prior(0, states[0])],
        huber_delta=huber_delta,
        backend=backend,
    )


def make_scenario_window(
    scenario: str | ScenarioSpec,
    seed: int,
    num_keyframes: int = 4,
    num_features: int = 12,
    backend: str = "batched",
    huber_delta: float | None = None,
) -> WindowProblem:
    """One window problem shaped by the scenario's regime.

    ``num_keyframes``/``num_features`` are the *nominal* scale; each
    regime reshapes them (tunnel decays the feature count, loop closure
    grows it). Mixtures pick their regime deterministically from the
    seed, so a sweep over seeds samples the mixture's components.
    """
    spec = resolve_scenario(scenario)
    regime = spec.regime_at(int(seed))
    sev = spec.severity
    if regime == REGIME_NOMINAL:
        from repro.testing.workloads import make_random_window

        return make_random_window(
            seed,
            num_keyframes=num_keyframes,
            num_features=num_features,
            huber_delta=huber_delta,
            backend=backend,
        )
    if regime == REGIME_TUNNEL:
        # Track counts decay toward zero; the baseline shrinks toward
        # (but never reaches) the fault injector's singular limit.
        drought_features = max(2, int(round(num_features * (1.0 - 0.8 * sev))))
        return make_drought_window(
            seed,
            num_keyframes=num_keyframes,
            num_features=drought_features,
            baseline=_NOMINAL_STEP * (1.0 - 0.9 * sev),
            conditioned=True,
            backend=backend,
        )
    if regime == REGIME_LOOP_CLOSURE:
        # Revisited landmarks: every track anchors at the oldest frame
        # and is observed from all later ones; the window suddenly
        # carries far more observations than the nominal shape.
        return _structured_window(
            seed,
            num_keyframes,
            int(round(num_features * (1.0 + sev))),
            step=_NOMINAL_STEP,
            axis=0,
            rot_noise=0.03,
            bearing_spread=(0.4, 0.3),
            depth_range=(2.5, 9.0),
            anchor_origin=True,
            track_length=None,
            backend=backend,
            huber_delta=huber_delta,
        )
    if regime == REGIME_AGGRESSIVE:
        # Drone dynamics: large inter-keyframe rotations; tracks break
        # after a single follow-up observation.
        return _structured_window(
            seed,
            num_keyframes,
            num_features,
            step=_NOMINAL_STEP,
            axis=0,
            rot_noise=0.03 + 0.27 * sev,
            bearing_spread=(0.4, 0.3),
            depth_range=(2.5, 9.0),
            anchor_origin=False,
            track_length=1,
            backend=backend,
            huber_delta=huber_delta,
        )
    # Highway: fast motion along the optical axis toward distant,
    # low-parallax features clustered near the focus of expansion.
    return _structured_window(
        seed,
        num_keyframes,
        num_features,
        step=1.2 + 0.8 * sev,
        axis=2,
        rot_noise=0.005,
        bearing_spread=(0.1, 0.08),
        depth_range=(25.0, 80.0),
        anchor_origin=False,
        track_length=None,
        backend=backend,
        huber_delta=huber_delta,
    )


# ----------------------------------------------------------------------
# Stats-series lowering (the cycle-trace / latency-model path)
# ----------------------------------------------------------------------

def make_scenario_stats_series(
    scenario: str | ScenarioSpec,
    seed: int,
    num_windows: int = 16,
    max_features: int = 200,
    max_iterations: int = 6,
) -> list[tuple[WindowStats, int]]:
    """A ``(WindowStats, iterations)`` series with the regime's shape.

    Tunnel decays the feature count toward zero across the series; loop
    closure holds a moderate load with periodic observation spikes;
    aggressive keeps tracks short (low ``No``, high marginalization);
    highway keeps distant tracks alive (high ``No``). Mixtures switch
    regime per window, which is exactly the irregular load the runtime
    controller exists for.
    """
    spec = resolve_scenario(scenario)
    rng = rng_from_seed(split_seed(spec.seed, f"stats:{seed}"))
    horizon = max(num_windows - 1, 1)
    series: list[tuple[WindowStats, int]] = []
    for index in range(num_windows):
        regime = spec.regime_at(index)
        sev = spec.severity
        if regime == REGIME_TUNNEL:
            # Quadratic decay to a near-zero floor by the last window.
            fraction = max(0.02, (1.0 - index / horizon) ** 2) * (1.0 - 0.4 * sev)
            features = max(1, int(round(max_features * fraction * rng.uniform(0.6, 1.0))))
            keyframes = int(rng.integers(2, 7))
            avg_obs = float(rng.uniform(1.0, min(2.5, keyframes)))
            marginalized = int(rng.integers(0, max(features // 6, 1) + 1))
        elif regime == REGIME_LOOP_CLOSURE:
            keyframes = int(rng.integers(8, 13))
            spike = index % 4 == 3
            scale = rng.uniform(0.85, 1.0) if spike else rng.uniform(0.25, 0.45)
            features = max(1, int(round(max_features * scale)))
            avg_obs = float(
                rng.uniform(6.0, 8.0) if spike else rng.uniform(2.0, 4.0)
            )
            marginalized = int(rng.integers(0, max(features // 4, 1) + 1))
        elif regime == REGIME_AGGRESSIVE:
            features = max(1, int(round(max_features * rng.uniform(0.2, 0.6))))
            keyframes = int(rng.integers(4, 9))
            avg_obs = float(rng.uniform(2.0, 3.0))
            marginalized = int(rng.integers(features // 4, max(features // 2, 1) + 1))
        elif regime == REGIME_HIGHWAY:
            features = max(1, int(round(max_features * rng.uniform(0.5, 0.9))))
            keyframes = int(rng.integers(6, 11))
            avg_obs = float(rng.uniform(4.0, min(8.0, keyframes)))
            marginalized = int(rng.integers(0, max(features // 8, 1) + 1))
        else:  # nominal
            features = max(1, int(round(max_features * rng.uniform(0.3, 0.8))))
            keyframes = int(rng.integers(2, 13))
            avg_obs = float(rng.uniform(2.0, min(8.0, keyframes)))
            marginalized = int(rng.integers(0, max(features // 4, 1) + 1))
        stats = WindowStats(
            num_features=features,
            avg_observations=avg_obs,
            num_keyframes=keyframes,
            num_marginalized=min(marginalized, features),
            num_observations=int(round(avg_obs * features)),
        )
        series.append((stats, int(rng.integers(1, max_iterations + 1))))
    return series


# ----------------------------------------------------------------------
# Sequence-config lowering (the serving tier)
# ----------------------------------------------------------------------

def scenario_sequence_config(
    scenario: str | ScenarioSpec,
    session_id: int,
    duration: float = 3.0,
) -> SequenceConfig:
    """The synthetic recording backing one scenario-tagged serve session.

    Each regime tunes the sequence synthesizer toward its failure shape:
    tunnel starves the landmark field (density floor near zero), loop
    closure densifies it with near-immortal tracks, aggressive scales up
    the drone dynamics, highway drives a fast low-curvature car past a
    sparse distant field. Per-session seeds are split from the spec
    seed, so a fleet of sessions explores the regime rather than
    replaying one recording.
    """
    spec = resolve_scenario(scenario)
    regime = spec.regime_at(int(session_id))
    sev = spec.severity
    seed = split_seed(spec.seed, f"sequence:{regime}:{session_id}")
    name = f"scn-{regime}-{session_id}"
    if regime == REGIME_TUNNEL:
        return SequenceConfig(
            name=name,
            kind="drone",
            seed=seed,
            duration=duration,
            landmark_count=900,
            density_period=max(2.0 * duration, 4.0),
            density_floor=max(0.02, 0.15 * (1.0 - sev)),
            motion_scale=0.8,
            tracker=TrackerConfig(max_features=60, drop_probability=0.35),
        )
    if regime == REGIME_LOOP_CLOSURE:
        return SequenceConfig(
            name=name,
            kind="car",
            seed=seed,
            duration=duration,
            imu_rate=100.0,
            landmark_count=24000,
            density_period=30.0,
            density_floor=0.3,
            motion_scale=0.9,
            tracker=TrackerConfig(max_features=360, drop_probability=0.01),
        )
    if regime == REGIME_AGGRESSIVE:
        return SequenceConfig(
            name=name,
            kind="drone",
            seed=seed,
            duration=duration,
            landmark_count=2500,
            density_period=25.0,
            motion_scale=1.0 + 0.8 * sev,
            tracker=TrackerConfig(max_features=150, drop_probability=0.3),
        )
    if regime == REGIME_HIGHWAY:
        return SequenceConfig(
            name=name,
            kind="car",
            seed=seed,
            duration=duration,
            imu_rate=100.0,
            landmark_count=12000,
            density_period=60.0,
            density_floor=0.4,
            motion_scale=0.25,
            tracker=TrackerConfig(max_features=260, drop_probability=0.03),
        )
    return SequenceConfig(name=name, kind="drone", seed=seed, duration=duration)
