"""Scenario specifications: named degenerate regimes and seeded mixtures.

Archytas (Sec. 7.6) motivates dynamic optimization by the workload
regimes a robot actually meets — feature droughts, sudden large windows,
aggressive flight — yet a default loadgen only ever produces one
well-conditioned visual-inertial shape. A :class:`ScenarioSpec` is a
frozen description of one such regime (or a seeded mixture of regimes)
that every layer of the stack can lower deterministically:

* :mod:`repro.scenarios.builders` turns a spec into window problems,
  workload-statistics series, and sequence configurations;
* :mod:`repro.serve.loadgen` tags :class:`~repro.serve.loadgen.LoadProfile`
  with a scenario so serve sessions run over regime-shaped recordings;
* :mod:`repro.testing` runs every oracle against every regime at
  multiple design points (the SLAMBench-style scenario x config matrix).

The spec plus a seed fully determines everything downstream — two
processes lowering the same spec produce bit-identical workloads.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.rng import rng_from_seed, split_seed

# The canonical regime names, in presentation order.
REGIME_NOMINAL = "nominal"
REGIME_TUNNEL = "tunnel"
REGIME_LOOP_CLOSURE = "loop_closure"
REGIME_AGGRESSIVE = "aggressive"
REGIME_HIGHWAY = "highway"

DEGENERATE_REGIMES: tuple[str, ...] = (
    REGIME_TUNNEL,
    REGIME_LOOP_CLOSURE,
    REGIME_AGGRESSIVE,
    REGIME_HIGHWAY,
)
REGIMES: tuple[str, ...] = (REGIME_NOMINAL,) + DEGENERATE_REGIMES

# One-line description per regime; docs/scenarios.md carries the full
# paper grounding.
REGIME_DESCRIPTIONS: dict[str, str] = {
    REGIME_NOMINAL: (
        "well-conditioned visual-inertial motion — the shape every "
        "pre-scenario workload had"
    ),
    REGIME_TUNNEL: (
        "feature drought: texture-poor stretch where track counts decay "
        "to near zero and windows approach rank deficiency"
    ),
    REGIME_LOOP_CLOSURE: (
        "sudden large windows with revisited landmarks anchored far in "
        "the past (long tracks, observation counts spike)"
    ),
    REGIME_AGGRESSIVE: (
        "drone-flight dynamics: high angular rates and short, "
        "frequently broken tracks"
    ),
    REGIME_HIGHWAY: (
        "fast forward motion toward distant, low-parallax features near "
        "the focus of expansion"
    ),
}


@dataclass(frozen=True)
class ScenarioSpec:
    """A frozen, fully deterministic description of one workload regime.

    Attributes:
        name: presentation name (registry key for named scenarios).
        components: ``(regime, weight)`` pairs; a pure regime is a
            single component with weight 1. Mixture draws are seeded per
            window index, so a mixture is as reproducible as a pure
            regime.
        severity: in ``(0, 1]`` — how deep into the degenerate corner
            the generators push (1.0 is the hardest shape each regime
            produces while staying numerically solvable; the exactly
            singular limit lives in :mod:`repro.testing.faults`).
        seed: base seed folded into every downstream draw.
    """

    name: str
    components: tuple[tuple[str, float], ...]
    severity: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError(
                f"scenario {self.name!r} needs at least one regime component"
            )
        for regime, weight in self.components:
            if regime not in REGIMES:
                raise ConfigurationError(
                    f"scenario {self.name!r} references unknown regime "
                    f"{regime!r}; choose from {list(REGIMES)}"
                )
            if not weight > 0.0:
                raise ConfigurationError(
                    f"scenario {self.name!r}: component {regime!r} weight "
                    f"must be positive, got {weight}"
                )
        if not 0.0 < self.severity <= 1.0:
            raise ConfigurationError(
                f"scenario {self.name!r}: severity must be in (0, 1], "
                f"got {self.severity}"
            )

    @property
    def is_mixture(self) -> bool:
        return len(self.components) > 1

    @property
    def primary_regime(self) -> str:
        """The heaviest component (ties broken by component order)."""
        return max(self.components, key=lambda c: c[1])[0]

    def regime_at(self, window_index: int) -> str:
        """The regime governing window ``window_index``.

        Pure scenarios always return their single regime; mixtures draw
        from the component weights with a seed derived from
        ``(self.seed, window_index)``, so the per-window regime sequence
        is frozen by the spec alone.
        """
        if not self.is_mixture:
            return self.components[0][0]
        rng = rng_from_seed(split_seed(self.seed, f"{self.name}:mix:{window_index}"))
        total = sum(weight for _, weight in self.components)
        pick = rng.uniform(0.0, total)
        acc = 0.0
        for regime, weight in self.components:
            acc += weight
            if pick <= acc:
                return regime
        return self.components[-1][0]

    def label(self) -> str:
        if self.is_mixture:
            parts = "+".join(regime for regime, _ in self.components)
            return f"{self.name}({parts}, severity={self.severity:g})"
        return f"{self.name}(severity={self.severity:g})"


def pure(regime: str, severity: float = 1.0, seed: int = 0) -> ScenarioSpec:
    """A single-regime spec (validated against the registry)."""
    return ScenarioSpec(
        name=regime, components=((regime, 1.0),), severity=severity, seed=seed
    )


def mixture(
    components: dict[str, float] | tuple[tuple[str, float], ...],
    name: str = "mixed",
    severity: float = 1.0,
    seed: int = 0,
) -> ScenarioSpec:
    """A seeded mixture of regimes with the given weights."""
    if isinstance(components, dict):
        components = tuple(sorted(components.items()))
    return ScenarioSpec(
        name=name, components=tuple(components), severity=severity, seed=seed
    )


# Named scenarios the CLI/matrix/loadgen resolve by string. "mixed" is
# the canonical seeded mixture of all four degenerate regimes.
SCENARIOS: dict[str, ScenarioSpec] = {
    **{regime: pure(regime) for regime in REGIMES},
    "mixed": mixture({regime: 1.0 for regime in DEGENERATE_REGIMES}),
}


def available_scenarios() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


def resolve_scenario(scenario: str | ScenarioSpec) -> ScenarioSpec:
    """Look up a named scenario (pass-through for specs), with
    did-you-mean on typos."""
    if isinstance(scenario, ScenarioSpec):
        return scenario
    if scenario not in SCENARIOS:
        close = difflib.get_close_matches(scenario, SCENARIOS, n=3, cutoff=0.4)
        hint = (
            f"; did you mean {' or '.join(repr(c) for c in close)}?"
            if close
            else f"; choose from {available_scenarios()}"
        )
        raise ConfigurationError(f"unknown scenario {scenario!r}{hint}")
    return SCENARIOS[scenario]
