"""Named degenerate workload regimes and their deterministic lowerings.

See :mod:`repro.scenarios.spec` for the regime registry and
:mod:`repro.scenarios.builders` for the per-layer lowerings
(window problems, stats series, sequence configs). ``docs/scenarios.md``
describes each regime and its paper grounding.
"""

from repro.scenarios.builders import (
    make_drought_window,
    make_scenario_stats_series,
    make_scenario_window,
    scenario_sequence_config,
)
from repro.scenarios.spec import (
    DEGENERATE_REGIMES,
    REGIME_DESCRIPTIONS,
    REGIMES,
    SCENARIOS,
    ScenarioSpec,
    available_scenarios,
    mixture,
    pure,
    resolve_scenario,
)

__all__ = [
    "DEGENERATE_REGIMES",
    "REGIME_DESCRIPTIONS",
    "REGIMES",
    "SCENARIOS",
    "ScenarioSpec",
    "available_scenarios",
    "make_drought_window",
    "make_scenario_stats_series",
    "make_scenario_window",
    "mixture",
    "pure",
    "resolve_scenario",
    "scenario_sequence_config",
]
